"""Deterministic, seeded fault injection for the sweep resilience layer.

Every recovery path in :mod:`repro.sweep` — pool respawn after a worker
death, per-cell timeouts, retry-with-backoff, cache quarantine, run-log
truncation tolerance, the ``--verify-replay`` differential guard — is
exercised by *injected* faults so the chaos tests and the CI chaos job can
prove the machinery works without depending on real OOM kills.  The
injector is:

* **deterministic** — whether a fault fires is a pure function of
  ``(seed, kind, target, attempt)``, so a killed-and-retried cell sees the
  same decision sequence in every run and across processes (forked
  workers inherit the installed plan; requeued attempts carry their
  attempt number);
* **scoped** — nothing in this module runs unless a plan is installed via
  ``--inject-faults SPEC``, the ``REPRO_FAULTS`` environment variable, or
  :func:`install`; the default is a no-op plan with zero overhead at the
  fire points (one ``is None`` check).

The module also hosts the **bitstream fuzzer** (:func:`corrupt_bitstream`)
— the codec-layer counterpart of the sweep injector: a seeded grammar of
channel errors (bit flips, bursts, truncation, duplication, garbage
insertion) over a serialized :class:`repro.codec.syntax.CodedSequence`,
pure in ``(seed, kind, offset)``, which drives ``python -m repro
fuzz-decode`` and the robust-decoder property tests.

Spec grammar (also in :class:`repro.errors.FaultSpecError.hint`)::

    SPEC   := [ 'seed=' INT ';' ] clause ( (';' | ',') clause )*
    clause := KIND ':' TARGET ( ':' PARAM )*
    KIND   := 'kill' | 'raise' | 'hang' | 'latency' | 'corrupt'
              | 'truncate' | 'diverge' | 'slowclient' | 'disconnect'
              | 'dropresult' | 'coordkill' | 'svckill'
    TARGET := cell, scenario or stream name, or '*' (any)
    PARAM  := 'times=' INT   -- fire on the first INT attempts (default 1)
            | 'p=' FLOAT     -- fire with this probability per attempt
            | 'delay=' FLOAT -- seconds of injected latency
                                ('latency' / 'hang')

Kinds and their fire points:

===========  ================================================================
``kill``     worker calls ``os._exit(13)`` at cell start — the classic
             SIGKILL/OOM signature that breaks the process pool.  Honoured
             only inside pool workers (never in-process, so the degraded
             serial path always terminates).
``raise``    raises :class:`repro.errors.TransientCellError` at cell start
             — the retry-with-backoff path.
``hang``     freezes the worker for ``delay`` seconds (default 30) while it
             holds work: a distributed sweep worker hangs after leasing a
             cell and *before* its first heartbeat (the lease-expiry
             path), a serve pool worker hangs at segment start (the
             per-segment deadline / migration path).  Like ``kill`` it is
             honoured only inside worker processes, so the degraded
             serial path and in-process services always terminate.
``latency``  sleeps ``delay`` seconds inside the cell's deadline — the
             ``--cell-timeout`` path.
``corrupt``  flips one byte of a just-written cache entry — the checksum
             + quarantine path (parent-side, counted per plan instance).
``truncate`` truncates the final run-log line mid-write — the tolerant
             JSONL reader path (parent-side).
``diverge``  perturbs a columnar replay result before the sampled
             differential guard compares it to the legacy walk — the
             ``--verify-replay`` detection + fallback path.
``slowclient``  injects ``delay`` seconds into a stream's ``collect`` on
             the codec service (:mod:`repro.serve`) — a consumer that
             stops draining, which is what fills the bounded per-stream
             queue and exercises the backpressure/shedding path.
``disconnect``  makes the TCP transport drop a connection mid-session
             before answering a request for the target stream — the
             vanished-client signature; the server must abort the
             connection's streams and release their worker state.
``dropresult``  a distributed sweep worker finishes the target cell but
             drops its coordinator connection *before* reporting the
             result — the completed-but-unreported death signature; the
             coordinator must requeue the cell and the replacement
             attempt recovers the finished payload through the shared
             cache service.
``coordkill``  the sweep *coordinator* process calls ``os._exit(13)``
             right after journaling the target cell's result commit —
             the control-plane SIGKILL signature.  Fired in the parent
             (never gated on being a worker); because the fire point
             sits *after* the journal's commit barrier, the targeted
             cell is always durable, so a ``--resume-journal`` restart
             restores it instead of re-committing and the clause never
             re-fires.
``svckill``  the codec *service* process calls ``os._exit(13)`` right
             after journaling a segment commit for the target stream;
             the attempt number is the absolute segment index, so
             ``times=1`` kills after the stream's first segment and a
             restarted service (``--journal``) resumes past it without
             re-firing.
===========  ================================================================
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import FaultSpecError, TransientCellError

KINDS = ("kill", "raise", "hang", "latency", "corrupt", "truncate",
         "diverge", "slowclient", "disconnect", "dropresult",
         "coordkill", "svckill")

#: default freeze duration of a ``hang`` clause without ``delay=``
HANG_DEFAULT_S = 30.0

#: environment variable holding a spec (inherited by forked workers)
ENV_VAR = "REPRO_FAULTS"

#: exit status of an injected worker kill (distinctive in pool diagnostics)
KILL_EXIT_STATUS = 13


@dataclass
class FaultClause:
    """One parsed clause: fire ``kind`` at ``target`` per its schedule."""

    kind: str
    target: str
    times: int = 1
    probability: Optional[float] = None
    delay_s: float = 0.0
    #: parent-side fire count for stateful kinds (corrupt/truncate)
    fired: int = field(default=0, compare=False)

    def matches(self, target: str) -> bool:
        return self.target in ("*", target)


class FaultPlan:
    """An installed set of clauses plus the seed their decisions hash."""

    def __init__(self, clauses: List[FaultClause], seed: int = 0):
        self.clauses = clauses
        self.seed = seed

    def _fires(self, clause: FaultClause, target: str, attempt: int) -> bool:
        if clause.probability is not None:
            blob = f"{self.seed}:{clause.kind}:{target}:{attempt}"
            digest = hashlib.sha256(blob.encode("utf-8")).digest()
            draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
            return draw < clause.probability
        return attempt < clause.times

    def decide(self, kind: str, target: str,
               attempt: int = 0) -> Optional[FaultClause]:
        """The first matching clause that fires, else None (stateless)."""
        for clause in self.clauses:
            if clause.kind == kind and clause.matches(target) \
                    and self._fires(clause, target, attempt):
                return clause
        return None

    def consume(self, kind: str, target: str) -> Optional[FaultClause]:
        """Like :meth:`decide` for parent-side points, counting each fire
        against ``times`` on this plan instance (corrupt/truncate have no
        natural attempt number)."""
        for clause in self.clauses:
            if clause.kind == kind and clause.matches(target) \
                    and clause.probability is None \
                    and clause.fired < clause.times:
                clause.fired += 1
                return clause
        return None


def parse_spec(spec: str) -> FaultPlan:
    """Parse the spec grammar into a :class:`FaultPlan`.

    Raises :class:`~repro.errors.FaultSpecError` with the offending clause
    on any syntax problem.
    """
    seed = 0
    clauses: List[FaultClause] = []
    parts = [part.strip()
             for part in spec.replace(",", ";").split(";") if part.strip()]
    if not parts:
        raise FaultSpecError(f"empty fault spec {spec!r}")
    if parts[0].startswith("seed="):
        try:
            seed = int(parts[0][len("seed="):])
        except ValueError:
            raise FaultSpecError(f"bad seed clause {parts[0]!r}") from None
        parts = parts[1:]
    for part in parts:
        fields = part.split(":")
        if len(fields) < 2:
            raise FaultSpecError(
                f"clause {part!r} needs at least kind:target")
        kind, target = fields[0], fields[1]
        if kind not in KINDS:
            raise FaultSpecError(
                f"unknown fault kind {kind!r} in {part!r}; expected one of "
                f"{', '.join(KINDS)}")
        if not target:
            raise FaultSpecError(f"empty target in clause {part!r}")
        clause = FaultClause(kind=kind, target=target)
        for param in fields[2:]:
            key, sep, value = param.partition("=")
            try:
                if key == "times" and sep:
                    clause.times = int(value)
                elif key == "p" and sep:
                    clause.probability = float(value)
                    if not 0.0 <= clause.probability <= 1.0:
                        raise ValueError
                elif key == "delay" and sep:
                    clause.delay_s = float(value)
                else:
                    raise FaultSpecError(
                        f"unknown parameter {param!r} in clause {part!r}")
            except ValueError:
                raise FaultSpecError(
                    f"bad value in parameter {param!r} of clause "
                    f"{part!r}") from None
        clauses.append(clause)
    return FaultPlan(clauses, seed=seed)


# -- installation -------------------------------------------------------------

_PLAN: Optional[FaultPlan] = None
_SPEC: Optional[str] = None


def install(spec: Optional[str]) -> Optional[FaultPlan]:
    """Install (or with None, clear) the process-wide fault plan.

    Also mirrors the spec into :data:`ENV_VAR` so pool workers spawned by
    any start method — not just ``fork`` — inherit it.
    """
    global _PLAN, _SPEC
    if spec is None:
        _PLAN = None
        _SPEC = None
        os.environ.pop(ENV_VAR, None)
        return None
    _PLAN = parse_spec(spec)
    _SPEC = spec
    os.environ[ENV_VAR] = spec
    return _PLAN


def install_from_environment() -> Optional[FaultPlan]:
    """Adopt :data:`ENV_VAR` if set and no plan is installed yet."""
    global _PLAN, _SPEC
    if _PLAN is None and os.environ.get(ENV_VAR):
        _SPEC = os.environ[ENV_VAR]
        _PLAN = parse_spec(_SPEC)
    return _PLAN


def active_spec() -> Optional[str]:
    """The raw spec string behind the installed plan (None when off).

    The streaming service ships this with every pool task so a plan
    installed (or cleared) in the parent after its workers forked still
    governs them — clause decisions are pure in (seed, kind, target,
    attempt), so a worker re-parsing the spec decides identically.
    """
    return _SPEC


def active() -> Optional[FaultPlan]:
    """The installed plan, or None when fault injection is off."""
    return _PLAN


def clear() -> None:
    """Remove any installed plan (test teardown)."""
    install(None)


_FORCED_WORKER = False


def mark_worker_process() -> None:
    """Declare this process a sweep worker for fault-injection purposes.

    Pool workers are recognised automatically through
    ``multiprocessing.parent_process()``, but a ``python -m repro
    sweep-worker`` process is spawned as a plain subprocess (possibly on
    another host), which that check cannot see.  The worker entry point
    calls this so ``kill`` clauses are honoured there too — while the
    coordinator process and the degraded serial path stay exempt, which
    is what guarantees degradation always terminates.
    """
    global _FORCED_WORKER
    _FORCED_WORKER = True


def _in_worker() -> bool:
    return _FORCED_WORKER or multiprocessing.parent_process() is not None


# -- fire points --------------------------------------------------------------

def fire_worker_faults(cell: str, attempt: int) -> None:
    """Called at cell start inside :func:`repro.sweep.executor.execute_cell`.

    Applies ``kill`` (pool workers only), ``raise`` and ``latency`` clauses
    in that order; a no-op unless a plan is installed.
    """
    plan = _PLAN
    if plan is None:
        return
    if _in_worker() and plan.decide("kill", cell, attempt) is not None:
        os._exit(KILL_EXIT_STATUS)
    clause = plan.decide("raise", cell, attempt)
    if clause is not None:
        raise TransientCellError(
            f"injected transient fault in cell {cell!r} "
            f"(attempt {attempt})")
    clause = plan.decide("latency", cell, attempt)
    if clause is not None:
        time.sleep(clause.delay_s)


def maybe_corrupt_file(path: pathlib.Path, target: str) -> bool:
    """Flip one mid-file byte of ``path`` if a ``corrupt`` clause matches.

    Called by the orchestrator right after a cache write; returns whether
    corruption was applied.
    """
    plan = _PLAN
    if plan is None or plan.consume("corrupt", target) is None:
        return False
    path = pathlib.Path(path)
    data = bytearray(path.read_bytes())
    if not data:
        return False
    index = len(data) // 2
    data[index] ^= 0xFF
    path.write_bytes(bytes(data))
    return True


def maybe_truncate_file(path: pathlib.Path, target: str = "*",
                        keep_fraction: float = 0.5) -> bool:
    """Truncate the final line of ``path`` if a ``truncate`` clause matches
    — the signature of a crash mid-write that the tolerant JSONL reader
    must absorb."""
    plan = _PLAN
    if plan is None or plan.consume("truncate", target) is None:
        return False
    path = pathlib.Path(path)
    data = path.read_bytes()
    if not data:
        return False
    body = data.rstrip(b"\n")
    cut = body.rfind(b"\n") + 1          # start of the final line
    keep = cut + int((len(body) - cut) * keep_fraction)
    path.write_bytes(data[:max(keep, 1)])
    return True


def client_delay(stream: str, attempt: int = 0) -> float:
    """Seconds of injected slow-client latency for a stream's ``collect``.

    Fire point of the ``slowclient`` kind, called by
    :meth:`repro.serve.CodecService.collect` with the stream's collect
    count as the attempt number — so ``times=N`` stalls the first N
    collects of a stream and ``p=``/``delay=`` shape a persistently slow
    consumer.  Returns 0.0 when no plan is installed or nothing fires.
    """
    plan = _PLAN
    if plan is None:
        return 0.0
    clause = plan.decide("slowclient", stream, attempt)
    return clause.delay_s if clause is not None else 0.0


def should_disconnect(stream: str, attempt: int = 0) -> bool:
    """Whether the transport should drop the connection before answering
    a request for ``stream`` — the ``disconnect`` kind's fire point,
    called by the JSON-lines server with the connection's request count
    as the attempt number."""
    plan = _PLAN
    if plan is None:
        return False
    return plan.decide("disconnect", stream, attempt) is not None


def hang_delay(target: str, attempt: int = 0) -> float:
    """Seconds a ``hang`` clause freezes this worker for, else 0.0.

    Fire point of the ``hang`` kind.  The distributed sweep worker calls
    it with the leased cell and attempt number right after leasing —
    *before* starting heartbeats, so the freeze suppresses them exactly
    like a genuinely hung process would.  The serve pool worker calls it
    at segment start with the stream id and the parent's per-stream
    dispatch sequence number, so a migrated re-dispatch (attempt+1) runs
    clean.  Honoured only inside worker processes (like ``kill``) so the
    degraded serial path and in-process services always terminate.
    """
    plan = _PLAN
    if plan is None or not _in_worker():
        return 0.0
    clause = plan.decide("hang", target, attempt)
    if clause is None:
        return 0.0
    return clause.delay_s if clause.delay_s > 0 else HANG_DEFAULT_S


def should_drop_result(cell: str, attempt: int = 0) -> bool:
    """Whether a distributed sweep worker should drop its coordinator
    connection *after* finishing ``cell`` but *before* reporting the
    result — the ``dropresult`` kind's fire point, called by the
    ``sweep-worker`` loop.  The decision is pure in (seed, kind, cell,
    attempt), so the requeued attempt sees the clause already spent."""
    plan = _PLAN
    if plan is None:
        return False
    return plan.decide("dropresult", cell, attempt) is not None


def control_kill(kind: str, target: str, attempt: int = 0) -> None:
    """Fire point of the ``coordkill`` / ``svckill`` kinds.

    Called by the sweep coordinator right after journaling a result
    commit (``kind="coordkill"``, target = cell name, attempt = 0) and
    by the codec service right after journaling a segment commit
    (``kind="svckill"``, target = stream id, attempt = the absolute
    segment index).  Unlike ``kill``/``hang`` this is *not* gated on
    being a worker process — the whole point is to murder the
    control-plane parent.  The exit happens after the journal's commit
    barrier, so everything the clause's target describes is durable and
    a journal-resumed restart never re-fires the same clause.
    """
    plan = _PLAN
    if plan is None:
        return
    if plan.decide(kind, target, attempt) is not None:
        os._exit(KILL_EXIT_STATUS)


def replay_perturbation(scenario: str, attempt: int = 0) -> int:
    """Extra cycles a ``diverge`` clause injects into a columnar result
    before the ``--verify-replay`` guard compares it to the legacy walk."""
    plan = _PLAN
    if plan is None:
        return 0
    return 1 if plan.decide("diverge", scenario, attempt) is not None else 0


# -- bitstream fuzzing --------------------------------------------------------
#
# The codec-side counterpart of the sweep fault injector: a seeded grammar
# of channel errors applied to a serialized CodedSequence, pure in
# (seed, kind, offset), driving `python -m repro fuzz-decode` and
# tests/test_bitstream_fuzz.py.  Unlike the plan-based injectors above it
# needs no installation — corruption is an explicit function call.

#: corruption kinds corrupt_bitstream understands, in application order
BITSTREAM_KINDS = ("bitflip", "burst", "truncate", "duplicate", "insert")


@dataclass(frozen=True)
class BitstreamCorruption:
    """One applied corruption: kind, byte offset, human-readable detail."""

    kind: str
    offset: int
    detail: str


def _fuzz_draw(seed: int, kind: str, offset: int, salt: str = "") -> float:
    """Uniform [0,1) draw, pure in (seed, kind, offset, salt)."""
    blob = f"fuzz:{seed}:{kind}:{offset}:{salt}"
    digest = hashlib.sha256(blob.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


def _fuzz_int(seed: int, kind: str, offset: int, salt: str, low: int,
              high: int) -> int:
    """Integer in [low, high], pure in (seed, kind, offset, salt)."""
    return low + int(_fuzz_draw(seed, kind, offset, salt)
                     * (high - low + 1))


def corrupt_bitstream(payload: bytes, seed: int,
                      kinds: Tuple[str, ...] = BITSTREAM_KINDS,
                      rate: float = 1e-3,
                      ) -> Tuple[bytes, List[BitstreamCorruption]]:
    """Apply seeded channel errors to a serialized bitstream.

    Every decision — whether a corruption fires at a byte offset, which
    bit flips, how long a burst runs — is a pure function of
    ``(seed, kind, offset)``, so a (payload, seed, kinds, rate) tuple
    always produces the same corrupted bytes, across runs and processes.
    ``rate`` scales roughly with corrupted-bits-per-payload-bit;
    ``rate=0`` returns the payload unchanged.  Returns the corrupted
    payload and the list of applied corruptions.
    """
    for kind in kinds:
        if kind not in BITSTREAM_KINDS:
            raise FaultSpecError(
                f"unknown bitstream corruption kind {kind!r}; expected a "
                f"subset of {', '.join(BITSTREAM_KINDS)}")
    if rate < 0:
        raise FaultSpecError(f"corruption rate must be >= 0, got {rate}")
    if not payload or rate == 0:
        return payload, []
    events: List[BitstreamCorruption] = []
    truncate_at: Optional[int] = None
    if "truncate" in kinds and \
            _fuzz_draw(seed, "truncate", 0) < min(1.0, rate * len(payload)):
        truncate_at = 1 + _fuzz_int(seed, "truncate", 0, "at", 0,
                                    len(payload) - 2)
    out = bytearray()
    burst_left = 0
    for offset, byte in enumerate(payload):
        if truncate_at is not None and offset >= truncate_at:
            events.append(BitstreamCorruption(
                "truncate", offset,
                f"cut {len(payload) - offset} trailing bytes"))
            break
        if "insert" in kinds and \
                _fuzz_draw(seed, "insert", offset) < rate / 4:
            count = 1 + _fuzz_int(seed, "insert", offset, "len", 0, 15)
            out.extend(_fuzz_int(seed, "insert", offset, f"byte{i}", 0, 255)
                       for i in range(count))
            events.append(BitstreamCorruption(
                "insert", offset, f"inserted {count} garbage bytes"))
        if "duplicate" in kinds and offset and \
                _fuzz_draw(seed, "duplicate", offset) < rate / 4:
            window = 1 + _fuzz_int(seed, "duplicate", offset, "len", 0,
                                   min(15, offset - 1))
            out.extend(payload[offset - window:offset])
            events.append(BitstreamCorruption(
                "duplicate", offset,
                f"replayed the previous {window} bytes"))
        if "burst" in kinds and burst_left == 0 and \
                _fuzz_draw(seed, "burst", offset) < rate / 4:
            burst_left = 2 + _fuzz_int(seed, "burst", offset, "len", 0, 14)
            events.append(BitstreamCorruption(
                "burst", offset, f"{burst_left}-byte error burst"))
        if burst_left:
            byte ^= _fuzz_int(seed, "burst", offset, "xor", 1, 255)
            burst_left -= 1
        elif "bitflip" in kinds and \
                _fuzz_draw(seed, "bitflip", offset) < rate * 8:
            bit = _fuzz_int(seed, "bitflip", offset, "bit", 0, 7)
            byte ^= 0x80 >> bit
            events.append(BitstreamCorruption(
                "bitflip", offset, f"flipped bit {bit}"))
        out.append(byte)
    return bytes(out), events

"""The sweep driver: plan → cache probe → parallel execute → report.

:func:`run_sweep` regenerates the EXPERIMENTS report the same way the
serial runner does, but treats each section as an independent, memoisable
*cell*:

1. resolve the cell list (``workload`` header + tables + figures +
   extensions, optionally filtered by ``--only``);
2. probe the on-disk cache with each cell's content key — hits are
   restored without running anything and logged as ``cache_hit`` events;
3. fan the misses across the process pool (``--jobs``), logging
   ``cell_start``/``cell_finish``/``cell_error`` events with wall times
   and cycle totals as they complete, and writing each finished cell back
   to the cache atomically (so an interrupted sweep resumes from what it
   finished);
4. assemble the report in deterministic cell order — byte-identical
   regardless of job count or cache state — and write
   ``sweep_report.json`` next to the run logs.

Failures are isolated per cell: the report carries an error marker
section, the run log carries the traceback, and the caller (the ``sweep``
CLI) exits non-zero with a summary at the end instead of dying mid-sweep.
"""

from __future__ import annotations

import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.core.exploration import ExplorationConfig
from repro.errors import ExperimentError
from repro.experiments.runner import RUNNERS, cell_names, error_section
from repro.experiments.workload import (
    DEFAULT_FRAMES,
    peek_context,
    workload_fingerprint,
)
from repro.sweep.cache import SweepCache, cell_key, code_fingerprint
from repro.sweep.events import RunLog, build_sweep_report
from repro.sweep.executor import WORKLOAD_CELL, CellResult, run_cells

#: default root for the cache, run logs and sweep_report.json
DEFAULT_ROOT = pathlib.Path(".repro-sweep")


@dataclass
class SweepConfig:
    """Everything one sweep invocation needs to know."""

    frames: int = DEFAULT_FRAMES
    seed: int = 2002
    jobs: int = 1
    extensions: bool = True
    #: restrict to these cells (the workload header always runs)
    only: Optional[Sequence[str]] = None
    root: pathlib.Path = field(default_factory=lambda: DEFAULT_ROOT)
    #: overrides ``root/cache`` when set
    cache_dir: Optional[pathlib.Path] = None
    use_cache: bool = True

    def resolve_cells(self) -> List[str]:
        names = [WORKLOAD_CELL] + cell_names(self.extensions)
        if self.only is None:
            return names
        wanted = list(dict.fromkeys(self.only))
        unknown = [name for name in wanted
                   if name != WORKLOAD_CELL and name not in RUNNERS]
        if unknown:
            raise ExperimentError(
                f"unknown cell(s) {', '.join(unknown)}; available: "
                f"{', '.join(cell_names(True))}")
        return [WORKLOAD_CELL] + [n for n in wanted if n != WORKLOAD_CELL]


@dataclass
class SweepResult:
    """A finished sweep: the report text plus its observability record."""

    report: str
    cells: List[CellResult]
    sweep_report: Dict
    run_log: pathlib.Path
    report_path: pathlib.Path

    @property
    def failures(self) -> List[CellResult]:
        return [cell for cell in self.cells if cell.error]

    @property
    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cached)


def _assemble(cells: List[CellResult]) -> str:
    """Join cell sections into the report, in deterministic cell order."""
    sections = []
    for cell in cells:
        if cell.error:
            sections.append(error_section(cell.name, cell.error))
        else:
            sections.append(cell.rendered)
    return "\n\n".join(sections)


def _write_json(path: pathlib.Path, payload: Dict) -> None:
    import json
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def run_sweep(config: Optional[SweepConfig] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> SweepResult:
    """Run (or restore from cache) every requested cell and assemble the
    report; see the module docstring for the full pipeline."""
    config = config or SweepConfig()
    names = config.resolve_cells()
    workload = workload_fingerprint(
        ExplorationConfig(frames=config.frames, seed=config.seed))
    code_version = code_fingerprint()
    cache = SweepCache(config.cache_dir or config.root / "cache",
                       enabled=config.use_cache)
    label = time.strftime("run-%Y%m%d-%H%M%S") + f"-{os.getpid()}"
    started = time.perf_counter()

    keys = {name: cell_key(name, workload, code_version) for name in names}
    results: Dict[str, CellResult] = {}
    misses: List[str] = []
    with RunLog(config.root / "runs" / f"{label}.jsonl") as log:
        log.event("sweep_start", label=label, frames=config.frames,
                  seed=config.seed, jobs=config.jobs,
                  cache_enabled=config.use_cache,
                  code_version=code_version, cells=names)
        for name in names:
            payload = cache.get(keys[name])
            if payload is not None:
                results[name] = CellResult(
                    name, rendered=payload["rendered"], cached=True,
                    wall_s=payload.get("wall_s", 0.0),
                    cycles=payload.get("cycles"))
                log.event("cache_hit", cell=name, key=keys[name],
                          saved_wall_s=payload.get("wall_s", 0.0),
                          cycles=payload.get("cycles"))
                if progress:
                    progress(f"{name}: cache hit")
            else:
                misses.append(name)

        def on_start(name: str) -> None:
            log.event("cell_start", cell=name, key=keys[name])
            if progress:
                progress(f"running {name}...")

        def on_result(result: CellResult) -> None:
            if result.error:
                log.event("cell_error", cell=result.name,
                          wall_s=round(result.wall_s, 4),
                          traceback=result.error)
                if progress:
                    progress(f"{result.name}: FAILED")
                return
            log.event("cell_finish", cell=result.name,
                      wall_s=round(result.wall_s, 4), cycles=result.cycles)
            cache.put(keys[result.name], {
                "cell": result.name,
                "rendered": result.rendered,
                "wall_s": round(result.wall_s, 4),
                "cycles": result.cycles,
                "workload": workload,
                "code_version": code_version,
            })

        for result in run_cells(misses, config.frames, config.seed,
                                jobs=config.jobs, on_start=on_start,
                                on_result=on_result):
            results[result.name] = result

        ordered = [results[name] for name in names]
        wall_s = time.perf_counter() - started
        context = peek_context(config.frames, config.seed)
        replay = context.replay_breakdown() if context is not None else None
        if replay is not None:
            log.event("replay_breakdown", **replay)
        sweep_report = build_sweep_report(workload, code_version,
                                          config.jobs, ordered, wall_s,
                                          replay=replay)
        log.event("sweep_finish", **sweep_report["totals"])

    report_path = config.root / "sweep_report.json"
    _write_json(report_path, sweep_report)
    return SweepResult(
        report=_assemble(ordered),
        cells=ordered,
        sweep_report=sweep_report,
        run_log=config.root / "runs" / f"{label}.jsonl",
        report_path=report_path,
    )

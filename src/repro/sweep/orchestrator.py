"""The sweep driver: plan → cache probe → resilient execute → report.

:func:`run_sweep` regenerates the EXPERIMENTS report the same way the
serial runner does, but treats each section as an independent, memoisable
*cell*:

1. resolve the cell list (``workload`` header + tables + figures +
   extensions, optionally filtered by ``--only``);
2. probe the on-disk cache with each cell's content key — hits are
   restored without running anything and logged as ``cache_hit`` events;
   corrupt entries are quarantined (``cache_corrupt``) and recomputed,
   never silently re-hit.  Cells the **checkpoint** recorded from an
   interrupted earlier run restore next (``checkpoint_restore``) — this
   works even with ``--no-cache``, because the checkpoint is the crash-
   recovery journal, not the memoisation cache;
3. fan the misses across the process pool (``--jobs``) — or, with
   ``--distributed HOST:PORT``, across the multi-host work-stealing
   fleet (:mod:`repro.sweep.distributed`) — under the resilience
   policy: per-cell timeouts, bounded retry-with-backoff, pool respawn
   (or cross-host requeue) after worker deaths and serial degradation
   as the last resort — every recovery action logged as a structured
   event (``cell_timeout`` / ``cell_retry`` / ``pool_respawn`` /
   ``worker_lost`` / ``degraded_serial``).  Each finished cell is
   written to the cache and the checkpoint atomically, so an
   interrupted sweep resumes from what it finished.  With ``--journal
   DIR`` the distributed coordinator additionally write-ahead journals
   its control-plane state (:mod:`repro.journal`), and ``--resume-journal
   DIR`` restarts a SIGKILLed coordinator from it: committed cells are
   restored (``journal_recovered`` event), outstanding leases requeued
   at attempt + 1, and the deterministic artifacts stay byte-identical
   to an uninterrupted run;
4. assemble the report in deterministic cell order — byte-identical
   regardless of job count, worker fleet, cache state, or how many
   faults were recovered from — and write the deterministic
   ``sweep_report.json`` plus the ``sweep_timing.json`` sidecar next to
   the run logs (:func:`repro.sweep.events.split_sweep_report`).  A
   fully successful sweep clears its checkpoint.

Cache keys are **per-cell**: each cell's ``code_version`` is the
fingerprint of its static import closure
(:func:`repro.sweep.deps.cell_code_version`), so an edit invalidates
exactly the cells that can reach the edited module.  ``--incremental``
leans on that: it diffs the new keys against the previous on-disk
``sweep_report.json``, logs the plan (``incremental_plan``, then
``incremental_skip`` / ``incremental_invalidated`` / ``incremental_miss``
per cell), restores every unchanged cell from the cache and re-executes
only the invalidated ones — and still writes the full report, byte-for-
byte identical to a cold sweep of the same tree.

Failures are isolated per cell: the report carries an error marker
section, the run log carries the traceback, and the caller (the ``sweep``
CLI) exits non-zero with a summary at the end instead of dying mid-sweep.

``--verify-replay PCT`` arms the sampled differential guard
(:func:`repro.core.timing.set_replay_verification`): that fraction of
columnar replay evaluations is re-checked against the legacy walk, and
any divergence is logged as a ``replay_divergence`` event with the
field-level diff (the legacy result wins).  ``--inject-faults SPEC``
installs the deterministic fault injector (:mod:`repro.faults`) that the
chaos tests and the CI chaos job drive these paths with.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import faults, supervise
from repro.core.exploration import ExplorationConfig
from repro.core.timing import set_replay_verification
from repro.errors import ExperimentError, JournalMismatch, SweepWorkerDied
from repro.journal import Journal, load_journal, segment_paths
from repro.experiments.runner import RUNNERS, cell_names, error_section
from repro.experiments.workload import (
    DEFAULT_FRAMES,
    peek_context,
    workload_fingerprint,
)
from repro.sweep.cache import SweepCache, cell_key
from repro.sweep.deps import cell_code_versions, sweep_code_version
from repro.sweep.events import (
    RunLog,
    build_sweep_report,
    host_label,
    split_sweep_report,
)
from repro.sweep.executor import (
    WORKLOAD_CELL,
    CellResult,
    ResiliencePolicy,
    _run_serial,
    run_cells,
)

#: default root for the cache, run logs and sweep_report.json
DEFAULT_ROOT = pathlib.Path(".repro-sweep")

#: disambiguates run-log labels of sweeps started in the same second
_RUN_SEQUENCE = itertools.count()


@dataclass
class SweepConfig:
    """Everything one sweep invocation needs to know."""

    frames: int = DEFAULT_FRAMES
    seed: int = 2002
    jobs: int = 1
    extensions: bool = True
    #: restrict to these cells (the workload header always runs)
    only: Optional[Sequence[str]] = None
    root: pathlib.Path = field(default_factory=lambda: DEFAULT_ROOT)
    #: overrides ``root/cache`` when set
    cache_dir: Optional[pathlib.Path] = None
    use_cache: bool = True
    #: per-cell wall-clock budget in seconds (None = unlimited)
    cell_timeout_s: Optional[float] = None
    #: retry budget for timeouts and transient failures
    max_retries: int = 2
    #: base of the exponential retry backoff
    retry_backoff_s: float = 0.05
    #: consecutive pool deaths tolerated before degrading to serial
    max_pool_deaths: int = 3
    #: percentage of columnar replays re-checked against the legacy walk
    verify_replay_pct: float = 0.0
    #: deterministic fault-injection spec (see :mod:`repro.faults`);
    #: None also adopts the REPRO_FAULTS environment variable
    fault_spec: Optional[str] = None
    #: diff cell keys against the previous sweep_report.json and
    #: re-execute only invalidated cells (requires the cache)
    incremental: bool = False
    #: ``HOST:PORT`` to bind the multi-host coordinator on (None = the
    #: single-host pool path)
    distributed: Optional[str] = None
    #: local worker subprocesses the coordinator spawns itself
    spawn_workers: int = 0
    #: how long the coordinator waits for a (first or replacement)
    #: worker before degrading to serial execution
    worker_wait_s: float = 30.0
    #: distributed workers heartbeat at this interval while executing
    heartbeat_s: float = 5.0
    #: a lease silent this long is revoked and requeued (None = 4x the
    #: heartbeat interval)
    lease_timeout_s: Optional[float] = None
    #: shared secret workers must prove over HMAC challenge-response
    #: (None also adopts the REPRO_AUTH_TOKEN environment variable)
    auth_token: Optional[str] = None
    #: write-ahead journal directory for the distributed coordinator's
    #: control-plane state (lease grants/releases, result commits); a
    #: fresh run clears any stale segments first
    journal_dir: Optional[pathlib.Path] = None
    #: resume a killed coordinator from this journal directory:
    #: committed cells are restored, outstanding leases requeued at
    #: attempt + 1, and journaling continues into the same directory
    resume_journal: Optional[pathlib.Path] = None
    #: LRU-by-mtime bound on the memoisation cache; entries this run
    #: touched are never evicted (None = unbounded)
    cache_max_bytes: Optional[int] = None
    #: analyse this tree instead of the installed package when
    #: fingerprinting code (benchmarks point it at a modified copy)
    code_root: Optional[pathlib.Path] = None

    def resolve_cells(self) -> List[str]:
        names = [WORKLOAD_CELL] + cell_names(self.extensions)
        if self.only is None:
            return names
        wanted = list(dict.fromkeys(self.only))
        unknown = [name for name in wanted
                   if name != WORKLOAD_CELL and name not in RUNNERS]
        if unknown:
            raise ExperimentError(
                f"unknown cell(s) {', '.join(unknown)}; available: "
                f"{', '.join(cell_names(True))}")
        return [WORKLOAD_CELL] + [n for n in wanted if n != WORKLOAD_CELL]

    def policy(self) -> ResiliencePolicy:
        return ResiliencePolicy(
            cell_timeout_s=self.cell_timeout_s,
            max_retries=self.max_retries,
            backoff_base_s=self.retry_backoff_s,
            max_pool_deaths=self.max_pool_deaths,
        )


@dataclass
class SweepResult:
    """A finished sweep: the report text plus its observability record.

    ``sweep_report`` is the in-memory superset dict; on disk it is split
    into the deterministic ``report_path`` (byte-identical across
    runners) and the ``timing_path`` sidecar — see
    :func:`repro.sweep.events.split_sweep_report`.
    """

    report: str
    cells: List[CellResult]
    sweep_report: Dict
    run_log: pathlib.Path
    report_path: pathlib.Path
    timing_path: Optional[pathlib.Path] = None

    @property
    def failures(self) -> List[CellResult]:
        return [cell for cell in self.cells if cell.error]

    @property
    def cache_hits(self) -> int:
        return sum(1 for cell in self.cells if cell.cached)


def _previous_cells(report_path: pathlib.Path) -> Optional[Dict[str, Dict]]:
    """The previous deterministic report's cells by name, or None when
    no (readable, keyed) previous report exists — an unreadable previous
    report downgrades --incremental to a plain sweep, never an error."""
    try:
        with open(report_path, encoding="utf-8") as handle:
            previous = json.load(handle)
        rows = {row["name"]: row for row in previous["cells"]}
    except (OSError, ValueError, KeyError, TypeError):
        return None
    if not all("key" in row for row in rows.values()):
        return None   # pre-keyed report format: nothing to diff against
    return rows


def _assemble(cells: List[CellResult]) -> str:
    """Join cell sections into the report, in deterministic cell order."""
    sections = []
    for cell in cells:
        if cell.error:
            sections.append(error_section(cell.name, cell.error))
        else:
            sections.append(cell.rendered)
    return "\n\n".join(sections)


def _write_json(path: pathlib.Path, payload: Dict) -> None:
    import json
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.with_suffix(path.suffix + ".tmp")
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    os.replace(tmp, path)


def _restored_result(name: str, payload: Dict) -> CellResult:
    return CellResult(
        name, rendered=payload["rendered"], cached=True,
        wall_s=payload.get("wall_s", 0.0),
        cycles=payload.get("cycles"))


def _journal_identity(workload: Dict, frames: int, seed: int,
                      cell_versions: Dict[str, str],
                      keys: Dict[str, str]) -> Dict:
    """What a journal must agree on before its records may be replayed:
    replaying leases and results across a workload or code edit would
    silently mix incompatible states."""
    return {"workload": workload, "frames": frames, "seed": seed,
            "cell_versions": cell_versions, "keys": keys}


def _resume_from_journal(journal_dir: pathlib.Path, identity: Dict):
    """Replay a killed coordinator's journal: ``(results, requeue,
    stats)``.

    Raises structured ``REPRO-JRN-*`` errors — an empty journal, a
    corrupt one, or one written by a different (workload, code) tree
    fails loudly; resume never silently starts fresh.
    """
    from repro.sweep.distributed import recover_from_journal
    records = load_journal(journal_dir)
    recorded = next((record for record in records
                     if record.get("type") == "sweep_identity"), None)
    if recorded is None:
        raise JournalMismatch(
            f"journal {journal_dir} carries no sweep_identity record")
    for field_, value in identity.items():
        if recorded.get(field_) != value:
            raise JournalMismatch(
                f"journal {journal_dir} was written by a different "
                f"sweep: {field_} differs from the resuming run")
    return recover_from_journal(records)


def run_sweep(config: Optional[SweepConfig] = None,
              progress: Optional[Callable[[str], None]] = None
              ) -> SweepResult:
    """Run (or restore from cache/checkpoint) every requested cell and
    assemble the report; see the module docstring for the full pipeline."""
    config = config or SweepConfig()
    if (config.journal_dir or config.resume_journal) \
            and config.distributed is None:
        raise ExperimentError(
            "--journal/--resume-journal capture the distributed "
            "coordinator's control-plane state and require --distributed")
    if config.fault_spec is not None:
        faults.install(config.fault_spec)
    else:
        faults.install_from_environment()
    if config.verify_replay_pct:
        set_replay_verification(config.verify_replay_pct, seed=config.seed)
    names = config.resolve_cells()
    workload = workload_fingerprint(
        ExplorationConfig(frames=config.frames, seed=config.seed))
    cell_versions = cell_code_versions(names, config.code_root)
    code_version = sweep_code_version(cell_versions)
    cache = SweepCache(config.cache_dir or config.root / "cache",
                       enabled=config.use_cache,
                       max_bytes=config.cache_max_bytes)
    #: the crash-recovery journal: always on, cleared by a clean finish,
    #: so an interrupted sweep resumes its completed cells even when the
    #: memoisation cache is disabled
    checkpoint = SweepCache(config.root / "checkpoint")
    # host + pid + per-process counter: sweeps started the same second —
    # in one process, or on different hosts writing one shared run
    # directory — must not append to the same run log
    label = (time.strftime("run-%Y%m%d-%H%M%S")
             + f"-{host_label()}-{os.getpid()}-{next(_RUN_SEQUENCE)}")
    started = time.perf_counter()
    report_path = config.root / "sweep_report.json"

    keys = {name: cell_key(name, workload, cell_versions[name])
            for name in names}
    previous: Optional[Dict[str, Dict]] = None
    if config.incremental:
        if not config.use_cache:
            raise ExperimentError(
                "--incremental diffs against cached cells and cannot "
                "run with --no-cache")
        previous = _previous_cells(report_path)
    results: Dict[str, CellResult] = {}
    misses: List[str] = []
    hosts: Optional[Dict] = None
    log_path = config.root / "runs" / f"{label}.jsonl"
    with RunLog(log_path) as log:
        cache.on_corrupt = checkpoint.on_corrupt = \
            lambda info: log.event("cache_corrupt", **info)
        log.event("sweep_start", label=label, frames=config.frames,
                  seed=config.seed, jobs=config.jobs,
                  cache_enabled=config.use_cache,
                  code_version=code_version, cells=names,
                  cell_timeout_s=config.cell_timeout_s,
                  max_retries=config.max_retries,
                  verify_replay_pct=config.verify_replay_pct,
                  incremental=config.incremental,
                  distributed=config.distributed,
                  faults=faults.active() is not None)
        if previous is not None:
            unchanged = [name for name in names
                         if previous.get(name, {}).get("key")
                         == keys[name]]
            invalidated = [name for name in names if name not in unchanged]
            log.event("incremental_plan", previous=str(report_path),
                      unchanged=unchanged, invalidated=invalidated)
        for name in names:
            unchanged = False
            if previous is not None:
                prev_row = previous.get(name) or {}
                unchanged = prev_row.get("key") == keys[name]
                if unchanged:
                    log.event("incremental_skip", cell=name,
                              key=keys[name])
                else:
                    log.event("incremental_invalidated", cell=name,
                              key=keys[name],
                              previous_key=prev_row.get("key"),
                              code_version=cell_versions[name],
                              previous_code_version=prev_row.get(
                                  "code_version"))
            payload = cache.get(keys[name])
            if payload is not None:
                results[name] = _restored_result(name, payload)
                log.event("cache_hit", cell=name, key=keys[name],
                          saved_wall_s=payload.get("wall_s", 0.0),
                          cycles=payload.get("cycles"))
                if progress:
                    progress(f"{name}: cache hit")
                continue
            payload = checkpoint.get(keys[name])
            if payload is not None:
                results[name] = _restored_result(name, payload)
                log.event("checkpoint_restore", cell=name, key=keys[name],
                          saved_wall_s=payload.get("wall_s", 0.0))
                # promote the checkpointed cell into the cache so the
                # recovery survives the checkpoint's end-of-run cleanup
                cache.put(keys[name], payload)
                if progress:
                    progress(f"{name}: restored from checkpoint")
                continue
            if unchanged:
                # the planner expected a restore but the entry is gone
                # (evicted, cleared or quarantined): record the broken
                # expectation, then execute honestly
                log.event("incremental_miss", cell=name, key=keys[name])
            misses.append(name)

        def on_start(name: str) -> None:
            log.event("cell_start", cell=name, key=keys[name])
            if progress:
                progress(f"running {name}...")

        def on_event(kind: str, **fields) -> None:
            log.event(kind, **fields)
            if progress:
                cell = fields.get("cell", ", ".join(
                    fields.get("cells", fields.get("requeued", []))) or "-")
                progress(f"{kind}: {cell}")

        def on_result(result: CellResult) -> None:
            if result.error:
                log.event("cell_error", cell=result.name,
                          wall_s=round(result.wall_s, 4),
                          attempts=result.attempts,
                          error_code=result.error_code,
                          traceback=result.error)
                if progress:
                    progress(f"{result.name}: FAILED")
                return
            log.event("cell_finish", cell=result.name,
                      wall_s=round(result.wall_s, 4), cycles=result.cycles,
                      attempts=result.attempts)
            payload = {
                "cell": result.name,
                "rendered": result.rendered,
                "wall_s": round(result.wall_s, 4),
                "cycles": result.cycles,
                "workload": workload,
                "code_version": cell_versions[result.name],
            }
            key = keys[result.name]
            checkpoint.put(key, payload)
            cache.put(key, payload)
            if cache.enabled:
                # chaos hook: a ``corrupt`` fault clause flips a byte of
                # the entry we just wrote, exercising the quarantine path
                # on the next run
                faults.maybe_corrupt_file(cache.entry_path(key),
                                          result.name)

        if config.distributed is not None and misses:
            from repro.sweep.distributed import parse_bind, run_distributed
            bind_host, bind_port = parse_bind(config.distributed)
            journal = None
            requeue: Dict[str, int] = {}
            journal_dir = config.resume_journal or config.journal_dir
            if journal_dir is not None:
                journal_dir = pathlib.Path(journal_dir)
                identity = _journal_identity(workload, config.frames,
                                             config.seed, cell_versions,
                                             keys)
                if config.resume_journal:
                    recovered, requeue, stats = _resume_from_journal(
                        journal_dir, identity)
                    restored = 0
                    for name, result in recovered.items():
                        if name not in keys or name in results \
                                or name not in misses:
                            continue
                        results[name] = result
                        restored += 1
                        if result.ok:
                            # a commit the kill window kept out of the
                            # checkpoint: promote it now so later sweeps
                            # (and the degraded path) see it normally
                            payload = {
                                "cell": name,
                                "rendered": result.rendered,
                                "wall_s": round(result.wall_s, 4),
                                "cycles": result.cycles,
                                "workload": workload,
                                "code_version": cell_versions[name],
                            }
                            checkpoint.put(keys[name], payload)
                            cache.put(keys[name], payload)
                    on_event("journal_recovered", journal=str(journal_dir),
                             restored=restored, **stats)
                else:
                    # a fresh --journal run owns the directory: stale
                    # segments from an unrelated earlier sweep must not
                    # poison a later resume
                    for stale in segment_paths(journal_dir):
                        stale.unlink()
                journal = Journal(journal_dir)
                if journal.writer.seq == 0:
                    journal.write("sweep_identity", **identity)
            items = [(name, requeue.get(name, 0)) for name in misses
                     if name not in results]
            remaining: List[Tuple[str, int]] = []
            if items:
                resolved, remaining, hosts = run_distributed(
                    items, keys=keys,
                    frames=config.frames, seed=config.seed,
                    policy=config.policy(), cache=cache,
                    checkpoint=checkpoint, workload=workload,
                    cell_versions=cell_versions, host=bind_host,
                    port=bind_port, emit=on_event, on_start=on_start,
                    on_result=on_result,
                    spawn_workers=config.spawn_workers,
                    worker_wait_s=config.worker_wait_s,
                    heartbeat_s=config.heartbeat_s,
                    lease_timeout_s=config.lease_timeout_s,
                    auth_token=supervise.resolve_token(config.auth_token),
                    log_dir=config.root / "runs", label=label,
                    journal=journal)
                results.update(resolved)
            if journal is not None:
                journal.close()
            if remaining:
                # the fleet never materialised or died off: finish the
                # unresolved cells serially in-process, where injected
                # kills are not honoured, so the sweep still terminates
                on_event("degraded_serial",
                         cells=[name for name, _ in remaining],
                         code=SweepWorkerDied.code)
                results.update(_run_serial(
                    remaining, config.frames, config.seed,
                    config.policy(), on_start, on_result, on_event))
        else:
            for result in run_cells(misses, config.frames, config.seed,
                                    jobs=config.jobs, on_start=on_start,
                                    on_result=on_result,
                                    policy=config.policy(),
                                    on_event=on_event):
                results[result.name] = result

        ordered = [results[name] for name in names if name in results]
        wall_s = time.perf_counter() - started
        context = peek_context(config.frames, config.seed)
        replay = context.replay_breakdown() if context is not None else None
        if replay is not None:
            log.event("replay_breakdown", **replay)
        if context is not None:
            for record in context.replay_divergences():
                log.event("replay_divergence", **record)
        sweep_report = build_sweep_report(workload, code_version,
                                          config.jobs, ordered, wall_s,
                                          replay=replay, keys=keys,
                                          cell_versions=cell_versions,
                                          hosts=hosts)
        evicted = cache.evict()
        if evicted["evicted"]:
            log.event("cache_evicted", max_bytes=config.cache_max_bytes,
                      **evicted)
        log.event("sweep_finish", **sweep_report["totals"])

    # chaos hook: a ``truncate`` clause shears the final run-log line,
    # exercising the tolerant JSONL reader
    faults.maybe_truncate_file(log_path, "runlog")
    if len(ordered) == len(names) and not any(c.error for c in ordered):
        checkpoint.clear()
        # like the checkpoint, the journal is crash-recovery state: a
        # clean finish retires it so a stale resume cannot replay it
        retired = config.resume_journal or config.journal_dir
        if retired is not None:
            for segment in segment_paths(pathlib.Path(retired)):
                segment.unlink()

    # split before writing: sweep_report.json carries only fields that
    # are pure functions of (workload, code), so serial / pooled /
    # distributed / incremental runs of the same tree produce it
    # byte-for-byte; everything schedule-dependent lands in the sidecar
    deterministic, timing = split_sweep_report(sweep_report)
    timing_path = config.root / "sweep_timing.json"
    _write_json(report_path, deterministic)
    _write_json(timing_path, timing)
    return SweepResult(
        report=_assemble(ordered),
        cells=ordered,
        sweep_report=sweep_report,
        run_log=log_path,
        report_path=report_path,
        timing_path=timing_path,
    )

"""On-disk memoisation of rendered report cells, with integrity checking.

Every cell of the experiment sweep is a pure function of three inputs: the
workload configuration (frames, seed, Q, search step, timing/cost-model
knobs), the cell's name, and the version of the code that computes it.
:func:`cell_key` hashes those three into a content address and
:class:`SweepCache` stores the rendered section plus its timing metadata
under it, one JSON file per cell.

Invalidation rules (documented in EXPERIMENTS.md):

* changing any workload knob (``--frames``, seed, Q, ...) invalidates every
  cell, because each key embeds the full workload fingerprint;
* editing a module under ``src/repro/`` invalidates exactly the cells
  whose static import closure reaches it — each cell's ``code_version``
  is the per-module-closure fingerprint from
  :func:`repro.sweep.deps.cell_code_version` (a codec-only edit no
  longer touches the replay-timing cells).  The orchestration layer
  (``sweep/``, the fault injector, the CLI shim) is excluded outright
  because it cannot change what a cell computes; cells unknown to the
  registry fall back to the whole-tree :func:`code_fingerprint`;
* editing docs, tests, benchmarks or examples invalidates nothing.

Writes are atomic (temp file + :func:`os.replace`), so a sweep killed
mid-write never leaves a truncated cell behind and an interrupted sweep
resumes from its completed cells.

**Integrity.** Each entry is an envelope ``{format, sha256, payload}``
where the digest covers the canonical JSON encoding of the payload.  An
entry that fails to decode, fails its checksum, or predates the envelope
format is **never a silent miss**: it is quarantined — renamed into
``quarantine/`` next to the cache — and reported through the
``on_corrupt`` callback (the orchestrator logs it as a ``cache_corrupt``
run-log event, code :class:`repro.errors.CacheCorrupt`).  Quarantining
instead of deleting preserves the evidence, and renaming guarantees the
corrupt bytes cannot be re-hit on the next run.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import sys
import tempfile
from typing import Callable, Dict, Optional

from repro.errors import CacheCorrupt

_FINGERPRINTS: Dict[str, str] = {}

#: envelope format version; bumping it invalidates (quarantines) old entries
CACHE_FORMAT = 2


def code_fingerprint(package_root: Optional[pathlib.Path] = None) -> str:
    """Content hash of every model/experiment source under ``repro``.

    Hashes (relative path, file contents) of each ``*.py`` file in the
    installed ``repro`` package, excluding the ``sweep/`` orchestration
    package itself, the fault injector and the CLI shim — none affects
    what a cell computes.  Memoised per path for the life of the process.
    """
    if package_root is None:
        import repro
        package_root = pathlib.Path(repro.__file__).parent
    root = pathlib.Path(package_root)
    cache_token = str(root.resolve())
    if cache_token in _FINGERPRINTS:
        return _FINGERPRINTS[cache_token]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel.startswith("sweep/") or rel in ("__main__.py", "faults.py"):
            continue
        digest.update(rel.encode("utf-8"))
        digest.update(b"\0")
        digest.update(hashlib.sha256(path.read_bytes()).digest())
    _FINGERPRINTS[cache_token] = digest.hexdigest()[:16]
    return _FINGERPRINTS[cache_token]


def cell_key(name: str, workload: Dict, code_version: str) -> str:
    """Stable content address of one sweep cell.

    ``workload`` is the JSON-serialisable fingerprint from
    :func:`repro.experiments.workload.workload_fingerprint`; the key is the
    sha256 of the canonical (sorted-keys) JSON encoding of all three
    inputs, so equal configurations hash equally across processes and
    platforms.
    """
    blob = json.dumps(
        {"cell": name, "workload": workload, "code": code_version},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def payload_digest(payload: Dict) -> str:
    """sha256 of the canonical JSON encoding of a cache payload."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SweepCache:
    """One-file-per-cell JSON store with atomic writes and checksums.

    ``enabled=False`` turns every operation into a no-op so callers never
    branch on ``--no-cache`` themselves.  ``on_corrupt`` receives a dict
    ``{key, path, reason, code}`` whenever an entry is quarantined; with
    no callback the report goes to stderr — corruption is never silent.

    ``max_bytes`` bounds the store for long-lived shared caches:
    :meth:`evict` prunes least-recently-written entries (LRU by mtime)
    until the total fits, never touching an entry this process read or
    wrote — the current run's working set is always safe.
    """

    def __init__(self, root: pathlib.Path, enabled: bool = True,
                 on_corrupt: Optional[Callable[[Dict], None]] = None,
                 max_bytes: Optional[int] = None):
        self.root = pathlib.Path(root)
        self.enabled = enabled
        self.on_corrupt = on_corrupt
        self.max_bytes = max_bytes
        #: keys this run touched (get hits + puts) — never evicted
        self._protected: set = set()

    def entry_path(self, key: str) -> pathlib.Path:
        """Where the entry for ``key`` lives on disk."""
        return self.root / f"{key}.json"

    # kept for callers that used the private spelling
    _path = entry_path

    @property
    def quarantine_dir(self) -> pathlib.Path:
        return self.root / "quarantine"

    def _quarantine(self, key: str, path: pathlib.Path,
                    reason: str) -> None:
        """Move a corrupt entry aside and report it (never silently)."""
        target = self.quarantine_dir / f"{path.name}.corrupt"
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, target)
        except OSError:
            target = path  # leave evidence in place if the move fails
        info = {"key": key, "path": str(target), "reason": reason,
                "code": CacheCorrupt.code}
        if self.on_corrupt is not None:
            self.on_corrupt(info)
        else:
            print(f"warning: [{CacheCorrupt.code}] quarantined corrupt "
                  f"sweep-cache entry {path.name}: {reason}",
                  file=sys.stderr)

    def get(self, key: str) -> Optional[Dict]:
        """The stored payload for ``key``, or None on miss.

        A present-but-corrupt entry (bad JSON, failed checksum, unknown
        format) is quarantined and reported, then treated as a miss so
        the cell recomputes.
        """
        if not self.enabled:
            return None
        path = self.entry_path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return None
        try:
            # UnicodeDecodeError is a ValueError: bytes that are no longer
            # valid UTF-8 take the same quarantine path as bad JSON
            envelope = json.loads(raw.decode("utf-8"))
            if not isinstance(envelope, dict):
                raise ValueError("entry is not a JSON object")
            if envelope.get("format") != CACHE_FORMAT:
                raise ValueError(
                    f"unknown cache format {envelope.get('format')!r} "
                    f"(expected {CACHE_FORMAT})")
            payload = envelope["payload"]
            stored = envelope["sha256"]
            actual = payload_digest(payload)
            if stored != actual:
                raise ValueError(
                    f"checksum mismatch: stored {stored[:12]}..., "
                    f"computed {actual[:12]}...")
        except (ValueError, KeyError, TypeError) as exc:
            self._quarantine(key, path, str(exc))
            return None
        self._protected.add(key)
        return payload

    def put(self, key: str, payload: Dict) -> None:
        """Atomically store ``payload`` (a JSON-serialisable dict) inside
        a checksummed envelope."""
        if not self.enabled:
            return
        envelope = {"format": CACHE_FORMAT,
                    "sha256": payload_digest(payload),
                    "payload": payload}
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(envelope, handle, sort_keys=True)
                # durability before visibility: a power-loss-style kill
                # between rename and writeback must not leave a
                # half-written entry for quarantine to eat
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.entry_path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self._protected.add(key)

    def evict(self) -> Dict[str, int]:
        """Prune least-recently-written entries down to ``max_bytes``.

        Entries this run read or wrote are never candidates, so a bound
        smaller than the current working set simply keeps the working
        set.  Returns ``{"evicted": N, "reclaimed_bytes": B,
        "kept": K, "kept_bytes": ...}`` (all zero when no bound is set
        or the store already fits) — the orchestrator turns a non-empty
        result into a ``cache_evicted`` run-log event.
        """
        stats = {"evicted": 0, "reclaimed_bytes": 0, "kept": 0,
                 "kept_bytes": 0}
        if not self.enabled or self.max_bytes is None \
                or not self.root.is_dir():
            return stats
        entries = []   # (mtime, size, key, path)
        for path in self.root.glob("*.json"):
            try:
                stat = path.stat()
            except OSError:
                continue   # raced with another run's eviction
            entries.append((stat.st_mtime, stat.st_size, path.stem, path))
        total = sum(size for _, size, _, _ in entries)
        for mtime, size, key, path in sorted(entries):
            if total <= self.max_bytes:
                break
            if key in self._protected:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            stats["evicted"] += 1
            stats["reclaimed_bytes"] += size
        stats["kept"] = len(entries) - stats["evicted"]
        stats["kept_bytes"] = total
        return stats

    def clear(self) -> int:
        """Delete every cached cell; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

"""On-disk memoisation of rendered report cells.

Every cell of the experiment sweep is a pure function of three inputs: the
workload configuration (frames, seed, Q, search step, timing/cost-model
knobs), the cell's name, and the version of the code that computes it.
:func:`cell_key` hashes those three into a content address and
:class:`SweepCache` stores the rendered section plus its timing metadata
under it, one JSON file per cell.

Invalidation rules (documented in EXPERIMENTS.md):

* changing any workload knob (``--frames``, seed, Q, ...) invalidates every
  cell, because each key embeds the full workload fingerprint;
* editing any module under ``src/repro/`` **except** this ``sweep/``
  package invalidates every cell — :func:`code_fingerprint` hashes the
  model/experiment sources, and the orchestration layer is deliberately
  excluded because it cannot change what a cell computes;
* editing docs, tests, benchmarks or examples invalidates nothing.

Writes are atomic (temp file + :func:`os.replace`), so a sweep killed
mid-write never leaves a truncated cell behind and an interrupted sweep
resumes from its completed cells.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import tempfile
from typing import Dict, Optional

_FINGERPRINTS: Dict[str, str] = {}


def code_fingerprint(package_root: Optional[pathlib.Path] = None) -> str:
    """Content hash of every model/experiment source under ``repro``.

    Hashes (relative path, file contents) of each ``*.py`` file in the
    installed ``repro`` package, excluding the ``sweep/`` orchestration
    package itself and the CLI shim — neither affects what a cell
    computes.  Memoised per path for the life of the process.
    """
    if package_root is None:
        import repro
        package_root = pathlib.Path(repro.__file__).parent
    root = pathlib.Path(package_root)
    cache_token = str(root.resolve())
    if cache_token in _FINGERPRINTS:
        return _FINGERPRINTS[cache_token]
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        rel = path.relative_to(root).as_posix()
        if rel.startswith("sweep/") or rel == "__main__.py":
            continue
        digest.update(rel.encode("utf-8"))
        digest.update(b"\0")
        digest.update(hashlib.sha256(path.read_bytes()).digest())
    _FINGERPRINTS[cache_token] = digest.hexdigest()[:16]
    return _FINGERPRINTS[cache_token]


def cell_key(name: str, workload: Dict, code_version: str) -> str:
    """Stable content address of one sweep cell.

    ``workload`` is the JSON-serialisable fingerprint from
    :func:`repro.experiments.workload.workload_fingerprint`; the key is the
    sha256 of the canonical (sorted-keys) JSON encoding of all three
    inputs, so equal configurations hash equally across processes and
    platforms.
    """
    blob = json.dumps(
        {"cell": name, "workload": workload, "code": code_version},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class SweepCache:
    """One-file-per-cell JSON store with atomic writes.

    ``enabled=False`` turns every operation into a no-op so callers never
    branch on ``--no-cache`` themselves.
    """

    def __init__(self, root: pathlib.Path, enabled: bool = True):
        self.root = pathlib.Path(root)
        self.enabled = enabled

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def get(self, key: str) -> Optional[Dict]:
        """The stored payload for ``key``, or None on miss/corruption."""
        if not self.enabled:
            return None
        try:
            with open(self._path(key), encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def put(self, key: str, payload: Dict) -> None:
        """Atomically store ``payload`` (a JSON-serialisable dict)."""
        if not self.enabled:
            return
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(payload, handle, sort_keys=True)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def clear(self) -> int:
        """Delete every cached cell; returns how many were removed."""
        removed = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                path.unlink()
                removed += 1
        return removed

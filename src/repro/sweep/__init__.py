"""Parallel, cached orchestration of the experiment sweep.

The paper's evaluation is a design-space sweep — 7 tables, 4 figures and 6
extension experiments over scenario × bandwidth × β × buffering
combinations — and every cell of it is a pure function of (workload
configuration, repository code).  This package exploits that purity:

* :mod:`~repro.sweep.executor` fans independent cells across a process
  pool (``--jobs``) with deterministic result ordering — workers are
  forked *after* the shared encoder run and baseline replay are warm, so
  they inherit the expensive state instead of recomputing it;
* :mod:`~repro.sweep.cache` memoises rendered cells on disk, keyed by a
  content hash of (workload config, cell name, code version), so a
  re-run after an unrelated edit replays only invalidated cells and an
  interrupted sweep resumes where it stopped;
* :mod:`~repro.sweep.deps` makes those code versions **per cell**: a
  static import-graph walk fingerprints each cell's reachable module
  closure, so a codec-only edit leaves every replay-timing cell's key —
  and its cache entry — intact.  ``--incremental`` diffs the keys
  against the previous ``sweep_report.json`` and re-executes only
  invalidated cells;
* :mod:`~repro.sweep.distributed` runs the misses on a multi-host
  work-stealing fleet (``--distributed HOST:PORT`` +
  ``python -m repro sweep-worker``): pull-based leasing over
  TCP/JSON-lines, the cache re-exported as a network service, and the
  same resilience accounting across worker deaths and disconnects;
* :mod:`~repro.sweep.events` records structured start/finish/cache-hit
  events (wall time, cycle totals) to a JSONL run log and distils them
  into the ``sweep_report.json`` artifact that
  :func:`repro.experiments.report.render_sweep_provenance` turns into the
  EXPERIMENTS.md provenance stamp;
* :mod:`~repro.sweep.orchestrator` ties the three together behind
  :func:`run_sweep` / ``python -m repro sweep``.

The parallel + cached path renders every cell through the same
:func:`repro.experiments.runner.run_cell` as the serial runner, so its
table/figure sections are byte-identical to ``python -m repro report`` —
asserted by the differential tests in ``tests/test_sweep.py``.

On top sits the **resilience layer** (free when nothing fails): per-cell
wall-clock timeouts, bounded retry-with-backoff for transient failures,
pool respawn after worker deaths with serial degradation as the last
resort, checksummed cache entries with quarantine of corrupt files, a
crash-recovery checkpoint that survives ``--no-cache``, and the sampled
``--verify-replay`` differential guard — every recovery action a
structured run-log event, every failure mode a deterministic
:mod:`repro.faults` injection exercised by ``tests/test_resilience.py``
and the CI chaos job.
"""

from repro.sweep.cache import SweepCache, cell_key, code_fingerprint
from repro.sweep.deps import cell_closure, cell_code_version, \
    cell_code_versions
from repro.sweep.events import RunLog, merge_sweep_report, read_events, \
    split_sweep_report
from repro.sweep.executor import WORKLOAD_CELL, CellResult, \
    ResiliencePolicy, execute_cell, run_cells
from repro.sweep.orchestrator import SweepConfig, SweepResult, run_sweep

__all__ = [
    "CellResult",
    "ResiliencePolicy",
    "RunLog",
    "SweepCache",
    "SweepConfig",
    "SweepResult",
    "WORKLOAD_CELL",
    "cell_closure",
    "cell_code_version",
    "cell_code_versions",
    "cell_key",
    "code_fingerprint",
    "execute_cell",
    "merge_sweep_report",
    "read_events",
    "run_cells",
    "run_sweep",
    "split_sweep_report",
]

"""Static import-graph dependency analysis for fine-grained cache keys.

The sweep cache's original invalidation rule was blunt: one
:func:`repro.sweep.cache.code_fingerprint` over *all* of ``src/repro``
(minus the orchestration layer), so editing any model file invalidated
every cached cell — a decoder-only fix re-ran the replay-timing cells it
cannot possibly affect.  This module computes what each cell *actually
depends on*:

1. :func:`scan` parses every module under the ``repro`` package with
   :mod:`ast` and records, per module, a content fingerprint and the set
   of ``repro.*`` modules it imports (function-level imports included —
   ``ast.walk`` sees them all);
2. :func:`closure` walks that graph transitively from a set of roots;
3. :func:`cell_code_version` hashes the (module → fingerprint) map of a
   cell's closure into the ``code_version`` component of its cache key,
   so a cell's key moves **only** when a module it can reach changes.

Root selection mirrors how :func:`repro.sweep.executor.execute_cell`
dispatches: every registered cell roots at its runner's defining module
(``RUNNERS[name][1].__module__``); context-backed cells (tables,
extensions, the ``workload`` header) additionally root at
``repro.experiments.workload``, whose closure covers the shared encoder
run and replay engine those cells consume.  ``repro.experiments.runner``
itself is folded in *shallow* (file hash only, not its closure): every
cell renders through its ``run_cell``, but rooting its full closure would
pull every experiment module into every key and defeat the analysis.

Two deliberate approximations, both conservative in the direction that
matters:

* **ancestor package ``__init__`` files are not implicit members** —
  Python executes them on import, but a re-export shim cannot change what
  a cell computes unless a module it re-exports changes, and *that*
  module enters the closure wherever it is actually imported.  An
  ``__init__`` **is** a member when an import resolves to it by name
  (``from repro.codec import Mpeg4Encoder`` pulls ``codec/__init__`` and,
  through it, everything the shim imports);
* the orchestration exclusions of the global fingerprint carry over —
  ``repro.sweep.*``, ``repro.faults`` and ``repro.__main__`` never enter
  a closure, because they cannot change what a cell computes.

Cells the registry does not know fall back to the global
:func:`~repro.sweep.cache.code_fingerprint`, so an unknown cell is never
under-invalidated.
"""

from __future__ import annotations

import ast
import hashlib
import json
import pathlib
from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Set, Tuple

from repro.sweep.cache import code_fingerprint

#: the package every analysed module lives under
PACKAGE = "repro"

#: closure of every context-backed cell: the shared encoder/replay state
CONTEXT_MODULE = "repro.experiments.workload"

#: rendered through by every cell; folded in shallow (file hash only)
DISPATCH_MODULES = ("repro.experiments.runner",)

#: the synthetic header cell (mirrors repro.sweep.executor.WORKLOAD_CELL,
#: spelled literally to keep this module import-light)
_WORKLOAD_CELL = "workload"

_SCANS: Dict[str, Dict[str, "ModuleInfo"]] = {}


@dataclass(frozen=True)
class ModuleInfo:
    """One scanned module: where it lives, its hash, what it imports."""

    name: str
    path: str
    fingerprint: str
    imports: Tuple[str, ...]


def _excluded(name: str) -> bool:
    """Orchestration modules that can never change what a cell computes
    (the same exclusion set as the global code fingerprint)."""
    return (name.startswith("repro.sweep")
            or name in ("repro.faults", "repro.__main__",
                        "repro.jsonlines"))


def _module_name(rel: pathlib.PurePath) -> str:
    parts = list(rel.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join([PACKAGE] + parts)


def _package_parts(name: str, is_package: bool) -> Tuple[str, ...]:
    """The package a module's relative imports resolve against."""
    parts = tuple(name.split("."))
    return parts if is_package else parts[:-1]


def _resolve(parts: Tuple[str, ...], known: Set[str]) -> Optional[str]:
    """Map a dotted import target onto the module file that defines it.

    ``repro.codec.frame`` → that module; ``repro.codec`` → the package
    ``__init__``; ``repro.codec.frame.YuvFrame`` (a symbol) → its longest
    known module prefix.  Targets outside ``repro`` resolve to None.
    """
    if not parts or parts[0] != PACKAGE:
        return None
    while parts:
        name = ".".join(parts)
        if name in known:
            return name
        parts = parts[:-1]
    return None


def _imports_of(tree: ast.AST, module: str, is_package: bool,
                known: Set[str]) -> Tuple[str, ...]:
    found: Set[str] = set()
    base = _package_parts(module, is_package)
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = _resolve(tuple(alias.name.split(".")), known)
                if target:
                    found.add(target)
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                anchor = base[:len(base) - (node.level - 1)]
            else:
                anchor = ()
            prefix = anchor + tuple(
                node.module.split(".") if node.module else ())
            for alias in node.names:
                target = _resolve(prefix + (alias.name,), known)
                if target is None:
                    target = _resolve(prefix, known)
                if target:
                    found.add(target)
    found.discard(module)
    return tuple(sorted(found))


def scan(package_root: Optional[pathlib.Path] = None
         ) -> Dict[str, ModuleInfo]:
    """Parse every module under ``repro`` into the import graph.

    Memoised per resolved root for the life of the process (the sweep
    computes one key per cell; re-parsing the tree each time would cost
    more than the cells).  Pass an explicit ``package_root`` to analyse a
    modified copy of the tree (the incremental benchmark does).
    """
    if package_root is None:
        import repro
        package_root = pathlib.Path(repro.__file__).parent
    root = pathlib.Path(package_root)
    token = str(root.resolve())
    if token in _SCANS:
        return _SCANS[token]
    paths = {path: _module_name(path.relative_to(root))
             for path in sorted(root.rglob("*.py"))}
    known = set(paths.values())
    modules: Dict[str, ModuleInfo] = {}
    for path, name in paths.items():
        source = path.read_bytes()
        rel = path.relative_to(root).as_posix()
        fingerprint = hashlib.sha256(
            rel.encode("utf-8") + b"\0" + source).hexdigest()[:16]
        try:
            tree = ast.parse(source, filename=str(path))
            imports = _imports_of(tree, name, path.name == "__init__.py",
                                  known)
        except SyntaxError:
            # an unparseable module cannot execute either; fingerprint it
            # (so edits still invalidate) with no outgoing edges
            imports = ()
        modules[name] = ModuleInfo(name=name, path=rel,
                                   fingerprint=fingerprint,
                                   imports=imports)
    _SCANS[token] = modules
    return modules


def reset_scan_cache() -> None:
    """Forget memoised scans (tests that edit a tree in place)."""
    _SCANS.clear()


def closure(roots: Iterable[str],
            modules: Dict[str, ModuleInfo]) -> Set[str]:
    """Transitive import closure of ``roots``, excluded modules skipped."""
    seen: Set[str] = set()
    stack = [name for name in roots if name in modules
             and not _excluded(name)]
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        stack.extend(dep for dep in modules[name].imports
                     if dep not in seen and not _excluded(dep))
    return seen


def cell_roots(name: str) -> Optional[Tuple[str, ...]]:
    """The modules a cell's execution is rooted at, or None if the cell
    is unknown to the registry (caller falls back to the global
    fingerprint)."""
    if name == _WORKLOAD_CELL:
        return (CONTEXT_MODULE,)
    from repro.experiments.runner import RUNNERS
    entry = RUNNERS.get(name)
    if entry is None:
        return None
    kind, runner = entry
    roots = [runner.__module__]
    if kind != "figure":
        roots.append(CONTEXT_MODULE)
    return tuple(dict.fromkeys(roots))


def cell_closure(name: str,
                 package_root: Optional[pathlib.Path] = None
                 ) -> Optional[Tuple[str, ...]]:
    """Sorted module closure backing one cell's cache key (None when the
    cell falls back to the global fingerprint)."""
    roots = cell_roots(name)
    if roots is None:
        return None
    modules = scan(package_root)
    if any(root not in modules for root in roots):
        return None
    members = closure(roots, modules)
    members.update(mod for mod in DISPATCH_MODULES if mod in modules)
    return tuple(sorted(members))


def cell_code_version(name: str,
                      package_root: Optional[pathlib.Path] = None) -> str:
    """The ``code_version`` cache-key component of one cell.

    A 16-hex digest over the (module → fingerprint) map of the cell's
    import closure — stable across processes and hosts, and moved only
    by edits to modules the cell can actually reach.
    """
    members = cell_closure(name, package_root)
    if members is None:
        return code_fingerprint(package_root)
    modules = scan(package_root)
    blob = json.dumps({mod: modules[mod].fingerprint for mod in members},
                      sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def cell_code_versions(names: Iterable[str],
                       package_root: Optional[pathlib.Path] = None
                       ) -> Dict[str, str]:
    """Per-cell code versions for a whole sweep (one tree scan)."""
    return {name: cell_code_version(name, package_root) for name in names}


def sweep_code_version(cell_versions: Dict[str, str]) -> str:
    """The sweep-level ``code_version``: a digest of the per-cell map.

    This is what the deterministic report and the provenance stamp
    carry — it moves when any *reachable* module changes and stays put
    for edits outside every cell's closure (the byte-identity the
    incremental gate ``cmp``s after a codec-only edit).
    """
    blob = json.dumps(cell_versions, sort_keys=True,
                      separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]

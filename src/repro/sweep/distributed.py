"""Multi-host work-stealing execution of sweep cells.

One sweep process becomes the **coordinator** (``python -m repro sweep
--distributed HOST:PORT``): it binds a TCP/JSON-lines endpoint (the same
framing layer as the codec service, :mod:`repro.jsonlines`), holds the
queue of cache-miss cells, and serves the content-addressed cache to the
fleet.  Any number of **workers** (``python -m repro sweep-worker
--connect HOST:PORT``) connect — before the sweep, or mid-sweep — and
pull work instead of being pushed it, which is all "work stealing" needs
here: a fast host simply leases more cells, and a worker that joins late
leases whatever is left.

Protocol (one JSON object per line, worker → coordinator)::

    {"op": "auth_challenge"}
        → {"ok": true, "challenge": NONCE|null}        null: auth not required
    {"op": "hello", "worker": ..., "host": ..., "pid": ...,
     "proof": HMAC(token, NONCE)}                      proof only under auth
        → {"ok": true, "frames": N, "seed": S, "timeout_s": T|null,
           "faults": SPEC|null, "heartbeat_s": H, "lease_timeout_s": L}
    {"op": "lease"}
        → {"ok": true, "cell": NAME, "attempt": A, "key": KEY}
        | {"ok": true, "wait": true, "backoff_s": B}   nothing leasable yet
        | {"ok": true, "done": true}                   sweep finished
    {"op": "heartbeat", "cell": NAME}
        → {"ok": true, "leased": bool}                 false: lease revoked
    {"op": "result", "cell": NAME, "attempt": A, "restored": bool,
     "result": {...CellResult fields...}}
        → {"ok": true, "accepted": bool}
    {"op": "cache_get", "key": KEY} → {"ok": true, "payload": {...}|null}
    {"op": "cache_put", "key": KEY, "payload": {...}} → {"ok": true}

The cache service is backed by the sweep's memoisation cache *and* its
crash-recovery checkpoint, so it works under ``--no-cache`` too; a worker
probes it at lease time and publishes every finished cell, which is what
makes the ``dropresult`` fault recoverable without re-execution.

Resilience is the PR-4 discipline stretched across hosts:

* a connection that drops with cells leased gets them **requeued at
  attempt + 1** (``worker_lost`` event, code ``REPRO-DIST-WORKER-LOST``)
  — the cross-host analogue of ``pool_respawn``;
* every lease carries a **heartbeat deadline**
  (:class:`repro.supervise.LeaseTable`): workers beat every
  ``heartbeat_s`` while executing, and a lease silent past
  ``lease_timeout_s`` is revoked and requeued at attempt + 1
  (``lease_expired`` event, code ``REPRO-DIST-LEASE-EXPIRED``) even
  while its TCP connection stays open — a *hung* worker is handled
  exactly like a dead one, and first-result-wins dedup makes its
  eventual straggler result harmless;
* with ``--auth-token`` (or ``REPRO_AUTH_TOKEN``) set, hello frames
  must prove knowledge of the shared secret via HMAC challenge–response
  (:mod:`repro.supervise`); a mismatch is rejected with the structured
  ``REPRO-DIST-AUTH`` code, never silently dropped;
* with ``--journal DIR`` the coordinator write-ahead journals its sweep
  identity, lease grants/releases and result commits
  (:mod:`repro.journal`, fsync on every commit barrier); a SIGKILLed
  coordinator restarted with ``--resume-journal DIR`` restores every
  committed cell, requeues outstanding leases at attempt + 1
  (:func:`recover_from_journal`), re-admits reconnecting workers, and
  still writes byte-identical deterministic artifacts — the
  ``coordkill`` fault kind drives exactly this path in CI;
* retryable failures (timeouts, :class:`~repro.errors.TransientCellError`)
  are requeued with the same bounded exponential backoff as the pool
  path (``cell_retry`` events);
* after ``max_pool_deaths`` consecutive losses without progress — or if
  no worker shows up within ``worker_wait_s`` — the coordinator gives up
  and the orchestrator runs the remainder serially in-process
  (``degraded_serial``), which always terminates because injected kills
  are honoured only in marked worker processes.

Because a cell's rendered text and cycle totals are a pure function of
(workload, code), none of this scheduling nondeterminism can reach the
report: the orchestrator's deterministic artifacts are byte-identical to
a serial run for any worker count, any join/death schedule, clean or
faulted — the property CI's ``distributed-gate`` job ``cmp``s.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import pathlib
import subprocess
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro import faults, supervise
from repro.errors import (
    CoordinatorUnreachable,
    DistAuthError,
    DistProtocolError,
    DistributedSweepError,
    ExperimentError,
    LeaseExpired,
    ReproError,
    WorkerLost,
)
from repro.journal import Journal
from repro.jsonlines import JsonLinesClient, JsonLinesServer
from repro.sweep.cache import SweepCache
from repro.sweep.events import host_label, origin_label
from repro.sweep.executor import (
    CellResult,
    ResiliencePolicy,
    _note_attempt,
    _retry_reason,
    execute_cell,
)

#: how long a worker sleeps when the coordinator has nothing leasable
DEFAULT_POLL_S = 0.1

#: wire fields a worker ships back for one finished cell
_RESULT_FIELDS = ("rendered", "wall_s", "error", "cycles", "attempts",
                  "timed_out", "transient", "error_code")

_CODE_TO_ERROR = {cls.code: cls for cls in
                  (DistributedSweepError, WorkerLost,
                   CoordinatorUnreachable, DistProtocolError,
                   DistAuthError, LeaseExpired)}

#: default worker heartbeat interval while executing a leased cell
DEFAULT_HEARTBEAT_S = 5.0


def parse_bind(spec: str) -> Tuple[str, int]:
    """``HOST:PORT`` → (host, port); bare ``:PORT`` binds loopback."""
    host, sep, port = spec.rpartition(":")
    if not sep or not port.isdigit():
        raise ExperimentError(
            f"bad bind/connect address {spec!r}; expected HOST:PORT")
    return host or "127.0.0.1", int(port)


@dataclass(eq=False)   # identity semantics: connections live in a set
class _Conn:
    """Per-connection coordinator state."""

    worker: str = "?"
    joined: bool = False
    #: cells this connection holds a lease on: name -> attempt
    leased: Dict[str, int] = field(default_factory=dict)
    #: nonce minted for this connection's auth handshake
    challenge: Optional[str] = None


class SweepCoordinator(JsonLinesServer):
    """The queue, the cache service and the loss accounting, in one
    single-threaded event loop (handlers never block on cell work — the
    workers do that — so state needs no locks)."""

    frame_error = DistProtocolError

    def __init__(self, items: Sequence[Tuple[str, int]],
                 keys: Dict[str, str], frames: int, seed: int,
                 policy: ResiliencePolicy, cache: SweepCache,
                 checkpoint: SweepCache, workload: Dict,
                 cell_versions: Dict[str, str],
                 emit: Callable[..., None],
                 on_start: Optional[Callable[[str], None]] = None,
                 on_result: Optional[Callable[[CellResult], None]] = None,
                 host: str = "127.0.0.1", port: int = 0,
                 worker_wait_s: float = 30.0,
                 heartbeat_s: float = DEFAULT_HEARTBEAT_S,
                 lease_timeout_s: Optional[float] = None,
                 auth_token: Optional[str] = None,
                 journal: Optional[Journal] = None):
        super().__init__(host, port)
        #: [name, attempt, not_before] — leasable once not_before passes
        self._queue: List[List] = [[name, attempt, 0.0]
                                   for name, attempt in items]
        self._expected = [name for name, _ in items]
        self.keys = keys
        self.frames = frames
        self.seed = seed
        self.policy = policy
        self.cache = cache
        self.checkpoint = checkpoint
        self.workload = workload
        self.cell_versions = cell_versions
        self.emit = emit
        self.on_start = on_start
        self.on_result = on_result
        self.worker_wait_s = worker_wait_s
        self.heartbeat_s = heartbeat_s
        self.lease_timeout_s = (lease_timeout_s if lease_timeout_s
                                else 4.0 * heartbeat_s)
        self.auth_token = auth_token
        #: write-ahead journal of grants/releases/commits (None: off)
        self.journal = journal
        #: cell name -> live Lease (data carries the holding connection)
        self._leases = supervise.LeaseTable(self.lease_timeout_s)
        self.results: Dict[str, CellResult] = {}
        self.hosts: Dict[str, Dict] = {}
        self.gave_up: Optional[str] = None
        self._started: Set[str] = set()
        self._conns: Set[_Conn] = set()
        self._losses = 0
        self._ever_joined = False
        self._last_activity = time.monotonic()
        self.done = asyncio.Event()

    # -- bookkeeping -----------------------------------------------------------

    def _complete(self) -> bool:
        return all(name in self.results for name in self._expected)

    def remaining(self) -> List[Tuple[str, int]]:
        """Unresolved (cell, attempt) pairs, queued or still leased, in
        original cell order — what the degraded serial path takes over."""
        attempts = {name: attempt for name, attempt, _ in self._queue}
        for conn in self._conns:
            attempts.update(conn.leased)
        return [(name, attempts[name]) for name in self._expected
                if name in attempts and name not in self.results]

    def _requeue(self, name: str, attempt: int, delay: float) -> None:
        self._queue.append([name, attempt, time.monotonic() + delay])

    def _give_up(self, reason: str) -> None:
        if not self.done.is_set():
            self.gave_up = reason
            self.done.set()

    def _revoke_expired(self) -> None:
        """Revoke every lease past its heartbeat deadline: requeue the
        cell at attempt + 1 and emit ``lease_expired``.  The holder's
        connection may still be open — a hung worker looks exactly like
        this — so its eventual straggler result is absorbed by the
        first-result-wins dedup in :meth:`_op_result`."""
        now = time.monotonic()
        for lease in self._leases.expired(now):
            conn = lease.data.get("conn")
            if conn is not None:
                conn.leased.pop(lease.key, None)
            if lease.key in self.results:
                continue
            self._losses += 1
            delay = self.policy.backoff_s(lease.attempt + 1)
            self._requeue(lease.key, lease.attempt + 1, delay)
            if self.journal is not None:
                self.journal.append("lease_release", cell=lease.key,
                                    attempt=lease.attempt,
                                    reason="expired")
            self.emit("lease_expired", cell=lease.key,
                      worker=conn.worker if conn is not None else "?",
                      attempt=lease.attempt,
                      budget_s=round(self._leases.budget_s, 4),
                      since_beat_s=round(lease.since_beat_s(now), 4),
                      overdue_s=round(lease.overdue_s(now), 4),
                      beats=lease.beats, losses=self._losses,
                      code=LeaseExpired.code)
            if self._losses >= self.policy.max_pool_deaths:
                self._give_up(f"{self._losses} consecutive worker losses")

    async def watchdog(self) -> None:
        """Revoke expired leases, and degrade instead of hanging when
        the fleet never materialises or has died off: no connected
        workers and none joining for ``worker_wait_s`` means nobody is
        coming for the queue."""
        while not self.done.is_set():
            await asyncio.sleep(min(0.1, self.worker_wait_s / 4,
                                    self.lease_timeout_s / 4))
            self._revoke_expired()
            if self._complete() or self._conns:
                continue
            if time.monotonic() - self._last_activity > self.worker_wait_s:
                self._give_up(
                    "no workers joined" if not self._ever_joined
                    else "all workers lost and none returned")

    # -- connection lifecycle --------------------------------------------------

    def connection_state(self) -> _Conn:
        return _Conn()

    async def on_disconnect(self, conn: _Conn) -> None:
        self._conns.discard(conn)
        for name in conn.leased:
            lease = self._leases.get(name)
            if lease is not None and lease.data.get("conn") is conn:
                self._leases.release(name)
        if not conn.leased or self.done.is_set():
            return
        requeued = sorted(conn.leased)
        self._losses += 1
        for name, attempt in conn.leased.items():
            # the leased cell may be what killed the worker: bump its
            # attempt so injected faults spend their budget (and real
            # repeat offenders stay bounded by max_pool_deaths)
            self._requeue(name, attempt + 1,
                          self.policy.backoff_s(attempt + 1))
            if self.journal is not None:
                self.journal.append("lease_release", cell=name,
                                    attempt=attempt, reason="worker_lost")
        conn.leased = {}
        self.emit("worker_lost", worker=conn.worker, requeued=requeued,
                  losses=self._losses, code=WorkerLost.code,
                  max_pool_deaths=self.policy.max_pool_deaths)
        if self._losses >= self.policy.max_pool_deaths:
            self._give_up(f"{self._losses} consecutive worker losses")

    # -- request dispatch ------------------------------------------------------

    async def respond(self, line: bytes, conn: _Conn,
                      requests: int) -> Tuple[Dict[str, object], bool]:
        try:
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                raise DistProtocolError(
                    f"request is not valid JSON: {exc}") from exc
            if not isinstance(request, dict) or "op" not in request:
                raise DistProtocolError(
                    "a request is a JSON object with an 'op' field")
            op = request["op"]
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise DistProtocolError(f"unknown op {op!r}")
            if op not in ("hello", "auth_challenge") and not conn.joined:
                raise DistProtocolError("send 'hello' before any other op")
            response = handler(conn, request)
            response["ok"] = True
            return response, False
        except ReproError as exc:
            return {"ok": False, "code": exc.code, "error": str(exc),
                    "hint": exc.hint}, False

    def _op_auth_challenge(self, conn: _Conn, request: Dict) -> Dict:
        """Mint a per-connection nonce; null when auth is not required."""
        if self.auth_token is None:
            return {"challenge": None}
        conn.challenge = supervise.auth_challenge()
        return {"challenge": conn.challenge}

    def _op_hello(self, conn: _Conn, request: Dict) -> Dict:
        if self.auth_token is not None and not supervise.auth_verify(
                self.auth_token, conn.challenge, request.get("proof")):
            raise DistAuthError(
                "hello rejected: missing or invalid auth proof "
                "(request a challenge, then prove the shared token)")
        conn.worker = str(request.get("worker") or "anonymous")
        conn.joined = True
        self._conns.add(conn)
        self._ever_joined = True
        self._last_activity = time.monotonic()
        self.hosts.setdefault(conn.worker, {
            "host": request.get("host"), "pid": request.get("pid"),
            "cells": 0})
        self.emit("worker_join", worker=conn.worker,
                  host=request.get("host"), pid=request.get("pid"))
        return {"frames": self.frames, "seed": self.seed,
                "timeout_s": self.policy.cell_timeout_s,
                "max_retries": self.policy.max_retries,
                "faults": faults.active_spec(),
                "heartbeat_s": self.heartbeat_s,
                "lease_timeout_s": self.lease_timeout_s}

    def _op_lease(self, conn: _Conn, request: Dict) -> Dict:
        if self.done.is_set() or self._complete():
            self.done.set()
            return {"done": True}
        # drop queue entries a revoked lease's straggler already resolved
        self._queue = [entry for entry in self._queue
                       if entry[0] not in self.results]
        now = time.monotonic()
        for index, (name, attempt, not_before) in enumerate(self._queue):
            if not_before <= now:
                del self._queue[index]
                conn.leased[name] = attempt
                self._leases.grant(name, attempt, conn=conn)
                if self.journal is not None:
                    # durable before the worker hears about it: a killed
                    # coordinator must know this lease was outstanding
                    # so resume requeues the cell at attempt + 1
                    self.journal.write("lease_grant", cell=name,
                                       attempt=attempt, worker=conn.worker)
                if attempt == 0 and name not in self._started:
                    self._started.add(name)
                    if self.on_start:
                        self.on_start(name)
                return {"cell": name, "attempt": attempt,
                        "key": self.keys[name]}
        pending = [not_before - now for _, _, not_before in self._queue]
        backoff = max(min(pending), 0.01) if pending else DEFAULT_POLL_S
        return {"wait": True, "backoff_s": round(backoff, 4)}

    def _op_heartbeat(self, conn: _Conn, request: Dict) -> Dict:
        """Refresh a lease's deadline; ``leased`` false tells a worker
        its lease was revoked (it should still finish and report — the
        result is either first, and wins, or deduplicated)."""
        name = str(request.get("cell", ""))
        lease = self._leases.get(name)
        if lease is None or lease.data.get("conn") is not conn:
            return {"leased": False}
        self._leases.beat(name)
        self._last_activity = time.monotonic()
        return {"leased": True, "beats": lease.beats}

    def _op_result(self, conn: _Conn, request: Dict) -> Dict:
        name = request.get("cell")
        attempt = int(request.get("attempt", 0))
        conn.leased.pop(name, None)
        lease = self._leases.get(name)
        if lease is not None and lease.data.get("conn") is conn:
            self._leases.release(name)
            if self.journal is not None:
                # buffered: a lost release is harmless (resume requeues
                # the cell at attempt + 1 and dedup absorbs the rest)
                self.journal.append("lease_release", cell=name,
                                    attempt=attempt, reason="result")
        if name not in self.keys:
            raise DistProtocolError(f"result for unknown cell {name!r}")
        if name in self.results:
            # a lost worker's cell was requeued and finished elsewhere
            # before this (resurfaced) result arrived; first one wins
            self.emit("duplicate_result", cell=name, worker=conn.worker)
            return {"accepted": False}
        wire = request.get("result") or {}
        result = CellResult(
            name, worker=conn.worker,
            **{field_: wire[field_] for field_ in _RESULT_FIELDS
               if field_ in wire})
        if request.get("restored"):
            self.emit("dist_cache_hit", cell=name, key=self.keys[name],
                      worker=conn.worker)
        if result.error:
            _note_attempt(result, attempt, self.policy, self.emit)
            reason = _retry_reason(result)
            if reason and attempt < self.policy.max_retries:
                delay = self.policy.backoff_s(attempt + 1)
                self.emit("cell_retry", cell=name, attempt=attempt + 1,
                          reason=reason, backoff_s=round(delay, 4),
                          code=result.error_code)
                self._requeue(name, attempt + 1, delay)
                return {"accepted": True, "requeued": True}
        if self.journal is not None:
            # the commit barrier: once this record is fsynced the cell
            # is durable and a resumed coordinator restores it instead
            # of re-executing — which is also why the injected
            # coordinator kill fires *after* the barrier
            self.journal.write(
                "result_commit", cell=name, attempt=attempt,
                worker=conn.worker,
                result={field_: getattr(result, field_)
                        for field_ in _RESULT_FIELDS})
            faults.control_kill("coordkill", name)
        self.results[name] = result
        self._losses = 0
        self._last_activity = time.monotonic()
        if conn.worker in self.hosts:
            self.hosts[conn.worker]["cells"] += 1
        if self.on_result:
            self.on_result(result)
        if self._complete():
            self.done.set()
        return {"accepted": True}

    def _op_cache_get(self, conn: _Conn, request: Dict) -> Dict:
        key = str(request.get("key", ""))
        payload = self.cache.get(key)
        if payload is None:
            payload = self.checkpoint.get(key)
        return {"payload": payload}

    def _op_cache_put(self, conn: _Conn, request: Dict) -> Dict:
        key = str(request.get("key", ""))
        payload = request.get("payload")
        if not isinstance(payload, dict) or "rendered" not in payload:
            raise DistProtocolError(
                "cache_put payload must be a cell payload object")
        payload.setdefault("workload", self.workload)
        payload.setdefault(
            "code_version",
            self.cell_versions.get(str(payload.get("cell")), ""))
        # the checkpoint (always on) makes this durable under --no-cache;
        # the memoisation cache makes it shareable with later sweeps
        self.checkpoint.put(key, payload)
        self.cache.put(key, payload)
        return {}


# -- spawned local workers -----------------------------------------------------

class _Spawner:
    """``--spawn-workers N``: keep N local worker subprocesses alive,
    respawning dead ones while the sweep is unresolved (bounded by the
    policy's ``max_pool_deaths``, the same budget the coordinator's loss
    accounting degrades on)."""

    def __init__(self, count: int, host: str, port: int,
                 policy: ResiliencePolicy, log_dir: pathlib.Path,
                 label: str, auth_token: Optional[str] = None):
        self.count = count
        self.host = host
        self.port = port
        self.policy = policy
        self.log_dir = pathlib.Path(log_dir)
        self.label = label
        self.auth_token = auth_token
        self.respawns = 0
        self._procs: List[subprocess.Popen] = []
        self._logs: List = []

    def _spawn_one(self, index: int) -> subprocess.Popen:
        package_dir = pathlib.Path(__file__).resolve().parent.parent
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(package_dir.parent)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        if self.auth_token:
            env[supervise.AUTH_ENV_VAR] = self.auth_token
        self.log_dir.mkdir(parents=True, exist_ok=True)
        log = open(self.log_dir / f"{self.label}-worker{index}.log", "a",
                   encoding="utf-8")
        self._logs.append(log)
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "sweep-worker",
             "--connect", f"{self.host}:{self.port}",
             "--label", f"spawn{index}"],
            stdout=log, stderr=subprocess.STDOUT, env=env)

    def start(self) -> None:
        self._procs = [self._spawn_one(index)
                       for index in range(self.count)]

    def reap_and_respawn(self) -> None:
        """Respawn exited workers while the respawn budget lasts."""
        for index, proc in enumerate(self._procs):
            if proc.poll() is not None \
                    and self.respawns < self.policy.max_pool_deaths:
                self.respawns += 1
                self._procs[index] = self._spawn_one(index)

    def stop(self) -> None:
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        deadline = time.monotonic() + 5.0
        for proc in self._procs:
            try:
                proc.wait(timeout=max(deadline - time.monotonic(), 0.1))
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait()
        for log in self._logs:
            log.close()


def run_distributed(items: Sequence[Tuple[str, int]], *,
                    keys: Dict[str, str], frames: int, seed: int,
                    policy: ResiliencePolicy, cache: SweepCache,
                    checkpoint: SweepCache, workload: Dict,
                    cell_versions: Dict[str, str],
                    host: str, port: int,
                    emit: Callable[..., None],
                    on_start: Optional[Callable[[str], None]] = None,
                    on_result: Optional[Callable[[CellResult], None]] = None,
                    spawn_workers: int = 0, worker_wait_s: float = 30.0,
                    heartbeat_s: float = DEFAULT_HEARTBEAT_S,
                    lease_timeout_s: Optional[float] = None,
                    auth_token: Optional[str] = None,
                    log_dir: Optional[pathlib.Path] = None,
                    label: str = "sweep",
                    ready: Optional[Callable[[Tuple[str, int]], None]] = None,
                    journal: Optional[Journal] = None,
                    ) -> Tuple[Dict[str, CellResult],
                               List[Tuple[str, int]], Dict[str, Dict]]:
    """Coordinate ``items`` across the worker fleet; blocks until every
    cell resolved or the coordinator degraded.

    Returns ``(results, remaining, hosts)``: resolved cells, unresolved
    (cell, attempt) pairs for the serial fallback, and the per-worker
    attribution block for the timing sidecar.  ``ready`` (if given)
    receives the bound (host, port) once the endpoint accepts workers —
    tests use it to connect in-process workers.
    """
    coordinator = SweepCoordinator(
        items, keys, frames, seed, policy, cache, checkpoint, workload,
        cell_versions, emit, on_start=on_start, on_result=on_result,
        host=host, port=port, worker_wait_s=worker_wait_s,
        heartbeat_s=heartbeat_s, lease_timeout_s=lease_timeout_s,
        auth_token=auth_token, journal=journal)

    async def _main():
        bound = await coordinator.start()
        if ready is not None:
            ready(bound)
        spawner = None
        if spawn_workers > 0:
            spawner = _Spawner(spawn_workers, bound[0], bound[1], policy,
                               log_dir or pathlib.Path("."), label,
                               auth_token=auth_token)
            spawner.start()
        watchdog = asyncio.create_task(coordinator.watchdog())
        try:
            while not coordinator.done.is_set():
                if spawner is not None:
                    spawner.reap_and_respawn()
                try:
                    await asyncio.wait_for(coordinator.done.wait(), 0.2)
                except asyncio.TimeoutError:
                    pass
            # grace: let connected workers lease once more and see "done"
            deadline = time.monotonic() + 2.0
            while coordinator._conns and time.monotonic() < deadline:
                await asyncio.sleep(0.05)
        finally:
            watchdog.cancel()
            await coordinator.stop()
            if spawner is not None:
                spawner.stop()
            if journal is not None:
                journal.commit()   # flush buffered lease releases

    asyncio.run(_main())
    return coordinator.results, coordinator.remaining(), coordinator.hosts


def recover_from_journal(records: Sequence[Dict],
                         ) -> Tuple[Dict[str, CellResult],
                                    Dict[str, int], Dict[str, int]]:
    """Rebuild coordinator state from a journal's committed records.

    Returns ``(results, requeue, stats)``: cells whose results reached a
    commit barrier (restored, not re-executed), outstanding leases as
    ``cell -> attempt + 1`` (the resumed run requeues them one attempt
    up, exactly like a lost worker), and counters for the
    ``journal_recovered`` run-log event.  Duplicate commits for one cell
    — legitimate after a resume-of-a-resume — resolve last-wins and are
    counted, never raised on.
    """
    results: Dict[str, CellResult] = {}
    leases: Dict[str, int] = {}
    duplicates = 0
    for record in records:
        kind = record.get("type")
        if kind == "lease_grant":
            leases[str(record.get("cell"))] = int(record.get("attempt", 0))
        elif kind == "lease_release":
            leases.pop(str(record.get("cell")), None)
        elif kind == "result_commit":
            name = str(record.get("cell"))
            if name in results:
                duplicates += 1
            wire = record.get("result") or {}
            results[name] = CellResult(
                name, worker=record.get("worker"),
                **{field_: wire[field_] for field_ in _RESULT_FIELDS
                   if field_ in wire})
            leases.pop(name, None)
    requeue = {name: attempt + 1 for name, attempt in leases.items()
               if name not in results}
    stats = {"results": len(results), "requeued": len(requeue),
             "duplicate_commits": duplicates}
    return results, requeue, stats


# -- the worker side -----------------------------------------------------------

class WorkerClient(JsonLinesClient):
    """Blocking coordinator connection of one sweep worker."""

    unavailable_error = CoordinatorUnreachable

    def error_for(self, response: Dict[str, object]) -> ReproError:
        error = _CODE_TO_ERROR.get(response.get("code"),
                                   DistributedSweepError)
        return error(str(response.get("error", "request failed")))


def run_worker(host: str, port: int, label: Optional[str] = None,
               poll_s: float = DEFAULT_POLL_S, reconnects: int = 3,
               auth_token: Optional[str] = None,
               out: Callable[[str], None] = print) -> int:
    """``python -m repro sweep-worker``: lease, execute, report, repeat.

    Returns a process exit status: 0 when the coordinator said ``done``,
    3 when it became unreachable past the reconnect budget, 4 on an auth
    rejection (deterministic — never retried).  The worker adopts the
    coordinator's fault spec and heartbeat interval (hello response) — a
    determinism requirement: every host must decide injected faults
    identically.  While a cell executes, a background
    :class:`repro.supervise.HeartbeatSender` shares this connection
    (serialised by the client's request lock) so the coordinator can
    tell busy from hung.  ``kill`` and ``hang`` clauses are honoured
    here (:func:`repro.faults.mark_worker_process`): a ``hang`` freezes
    the worker after leasing and *before* the first heartbeat — exactly
    what a stuck process looks like — driving the lease-expiry path.  A
    ``dropresult`` clause drops the connection after the cell's payload
    reaches the shared cache but before the result is reported — the
    coordinator's requeue then recovers it without re-execution.
    """
    faults.mark_worker_process()
    worker_id = origin_label(label or "worker")
    token = supervise.resolve_token(auth_token)
    attempts_left = reconnects + 1
    while attempts_left > 0:
        attempts_left -= 1
        used = reconnects - attempts_left
        try:
            client = WorkerClient(host, port, timeout=None)
        except (CoordinatorUnreachable, OSError) as exc:
            out(f"{worker_id}: coordinator {host}:{port} unreachable "
                f"({exc}); {attempts_left} reconnect(s) left")
            time.sleep(supervise.retry_backoff_s(used, key=worker_id))
            continue
        try:
            hello_request = {
                "op": "hello", "worker": worker_id,
                "host": host_label(), "pid": os.getpid(),
            }
            if token is not None:
                challenge = client.request(
                    {"op": "auth_challenge"}).get("challenge")
                if challenge:
                    hello_request["proof"] = supervise.auth_proof(
                        token, str(challenge))
            try:
                hello = client.request(hello_request)
            except DistAuthError as exc:
                out(f"{worker_id}: rejected by coordinator: "
                    f"{exc.describe()}")
                client.close()
                return 4
            frames = int(hello["frames"])
            seed = int(hello["seed"])
            timeout_s = hello.get("timeout_s")
            heartbeat_s = float(hello.get("heartbeat_s",
                                          DEFAULT_HEARTBEAT_S))
            faults.install(hello.get("faults"))
            out(f"{worker_id}: joined {host}:{port} "
                f"(frames={frames} seed={seed})")
            while True:
                lease = client.request({"op": "lease"})
                if lease.get("done"):
                    out(f"{worker_id}: sweep done")
                    client.close()
                    return 0
                if lease.get("wait"):
                    time.sleep(float(lease.get("backoff_s", poll_s)))
                    continue
                name = lease["cell"]
                attempt = int(lease.get("attempt", 0))
                key = lease["key"]
                hang_s = faults.hang_delay(name, attempt)
                if hang_s:
                    # freeze before the first heartbeat: the coordinator
                    # sees exactly what a stuck process looks like and
                    # must revoke the lease while this sleep runs
                    out(f"{worker_id}: hanging {hang_s}s on {name} "
                        f"(injected hang)")
                    time.sleep(hang_s)
                beat = supervise.HeartbeatSender(
                    heartbeat_s,
                    lambda cell=name: client.request(
                        {"op": "heartbeat", "cell": cell})).start()
                try:
                    cached = client.request(
                        {"op": "cache_get", "key": key}).get("payload")
                    restored = cached is not None
                    if restored:
                        result = CellResult(
                            name, rendered=cached["rendered"],
                            wall_s=cached.get("wall_s", 0.0),
                            cycles=cached.get("cycles"),
                            attempts=attempt + 1)
                    else:
                        result = execute_cell(name, frames, seed, attempt,
                                              timeout_s)
                        if result.ok:
                            client.request({
                                "op": "cache_put", "key": key,
                                "payload": {
                                    "cell": name,
                                    "rendered": result.rendered,
                                    "wall_s": round(result.wall_s, 4),
                                    "cycles": result.cycles,
                                }})
                finally:
                    beat.stop(reraise=False)
                if faults.should_drop_result(name, attempt):
                    # injected completed-but-unreported death: the payload
                    # is in the shared cache, the report is not sent
                    out(f"{worker_id}: dropping connection after "
                        f"{name} (injected dropresult)")
                    client.close()
                    break    # reconnect and keep working
                wire = dataclasses.asdict(result)
                client.request({
                    "op": "result", "cell": name, "attempt": attempt,
                    "restored": restored,
                    "result": {field_: wire[field_]
                               for field_ in _RESULT_FIELDS}})
                out(f"{worker_id}: {name} "
                    f"{'restored' if restored else 'done'} "
                    f"({result.wall_s:.2f}s)")
        except (CoordinatorUnreachable, ConnectionError, OSError) as exc:
            # bounded exponential backoff + jitter before rejoining: a
            # coordinator restarting from its journal needs a moment,
            # and a dead one is detected by the budget running out
            out(f"{worker_id}: lost coordinator ({exc}); "
                f"{attempts_left} reconnect(s) left")
            time.sleep(supervise.retry_backoff_s(used, key=worker_id))
        finally:
            try:
                client.close()
            except OSError:
                pass
    return 3

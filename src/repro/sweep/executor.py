"""Process-pool execution of independent report cells.

Each cell of the sweep (a table, figure or extension experiment — plus the
synthetic ``workload`` header cell) is independent of every other, so they
fan across a process pool with a ``--jobs`` knob.  Two properties keep the
fan-out cheap and deterministic:

* **warm fork** — on platforms with ``fork`` (the only place the pool is
  used), the parent materialises the shared encoder run, the trace
  replayer and the baseline replay *before* forking, so every worker
  inherits that state copy-on-write instead of re-encoding;
* **deterministic ordering** — results are collected by submission index,
  so the assembled report is byte-identical to the serial runner's no
  matter which worker finished first.

Worker exceptions never escape: :func:`execute_cell` catches them and
returns the traceback inside its :class:`CellResult`, so one failing cell
cannot abort the sweep.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments.runner import RUNNERS, run_cell, workload_header
from repro.experiments.workload import DEFAULT_FRAMES, ExperimentContext, \
    get_context

#: the synthetic cell rendering the report's workload-description header
WORKLOAD_CELL = "workload"


@dataclass
class CellResult:
    """Outcome of one cell: rendered text plus observability metadata."""

    name: str
    rendered: str = ""
    wall_s: float = 0.0
    cached: bool = False
    error: Optional[str] = None
    cycles: Optional[Dict[str, int]] = field(default=None)

    @property
    def ok(self) -> bool:
        return self.error is None


def _cycle_totals(context: ExperimentContext) -> Dict[str, int]:
    """Deterministic cycle totals recorded with every context-backed cell."""
    baseline = context.baseline()
    totals = baseline.as_dict()
    totals["non_me_cycles"] = context.non_me_cycles()
    return totals


def execute_cell(name: str, frames: int = DEFAULT_FRAMES,
                 seed: int = 2002) -> CellResult:
    """Run one cell to completion, trapping any exception it raises."""
    started = time.perf_counter()
    try:
        if name == WORKLOAD_CELL:
            context = get_context(frames, seed)
            rendered = workload_header(context)
            cycles: Optional[Dict[str, int]] = _cycle_totals(context)
        elif RUNNERS[name][0] == "figure":
            rendered = run_cell(name)
            cycles = None
        else:
            context = get_context(frames, seed)
            rendered = run_cell(name, context)
            cycles = _cycle_totals(context)
    except Exception:
        return CellResult(name, error=traceback.format_exc(),
                          wall_s=time.perf_counter() - started)
    return CellResult(name, rendered=rendered, cycles=cycles,
                      wall_s=time.perf_counter() - started)


def warm_context(frames: int, seed: int, jobs: int = 1) -> ExperimentContext:
    """Materialise the shared encode + scenario replays in this process.

    Called in the parent before the pool forks: the encoder runs once, the
    baseline replays, and the full scenario catalogue is primed — itself
    fanned across ``jobs`` forked workers
    (:meth:`ExperimentContext.prime`) — so every cell worker inherits a
    fully warm replay cache copy-on-write and spends its time only on
    cell-specific work (rendering, ablation variants).
    """
    context = get_context(frames, seed)
    context.exploration.replayer          # encode + build the replayer
    context.baseline()                    # baseline replay + stall cache
    context.prime(jobs=jobs)              # the shared scenario catalogue
    return context


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def run_cells(names: Sequence[str], frames: int = DEFAULT_FRAMES,
              seed: int = 2002, jobs: int = 1,
              on_start: Optional[Callable[[str], None]] = None,
              on_result: Optional[Callable[[CellResult], None]] = None
              ) -> List[CellResult]:
    """Execute ``names`` and return their results in the same order.

    ``jobs > 1`` fans the cells across a forked process pool (falling back
    to serial where ``fork`` is unavailable, e.g. Windows); ``on_start`` /
    ``on_result`` fire as each cell is dispatched / completes, in
    completion order, so the run log reflects real timing.
    """
    names = list(names)
    mp_context = _fork_context()
    if jobs <= 1 or len(names) <= 1 or mp_context is None:
        results = []
        for name in names:
            if on_start:
                on_start(name)
            result = execute_cell(name, frames, seed)
            if on_result:
                on_result(result)
            results.append(result)
        return results

    warm_context(frames, seed, jobs)
    results: List[Optional[CellResult]] = [None] * len(names)
    workers = min(jobs, len(names))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=mp_context) as pool:
        futures = {}
        for index, name in enumerate(names):
            if on_start:
                on_start(name)
            futures[pool.submit(execute_cell, name, frames, seed)] = index
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = futures[future]
                try:
                    result = future.result()
                except Exception:
                    result = CellResult(names[index],
                                        error=traceback.format_exc())
                results[index] = result
                if on_result:
                    on_result(result)
    return [result for result in results if result is not None]

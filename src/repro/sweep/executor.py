"""Fault-tolerant process-pool execution of independent report cells.

Each cell of the sweep (a table, figure or extension experiment — plus the
synthetic ``workload`` header cell) is independent of every other, so they
fan across a process pool with a ``--jobs`` knob.  Two properties keep the
fan-out cheap and deterministic:

* **warm fork** — on platforms with ``fork`` (the only place the pool is
  used), the parent materialises the shared encoder run, the trace
  replayer and the baseline replay *before* forking, so every worker
  inherits that state copy-on-write instead of re-encoding;
* **deterministic ordering** — results are collected by cell name and
  assembled in submission order, so the report is byte-identical to the
  serial runner's no matter which worker finished first.

On top of that sits the resilience layer (:class:`ResiliencePolicy`),
designed so that *nothing here costs anything when nothing fails*:

* **per-cell wall-clock timeouts** — a SIGALRM deadline raised *inside*
  the worker (:class:`~repro.errors.CellTimeout`), so a runaway cell is
  abandoned without killing the worker or the pool;
* **bounded retry with exponential backoff** — timeouts and failures
  marked :class:`~repro.errors.TransientCellError` (the fault injector's
  ``raise`` kind uses it) are retried up to ``max_retries`` times;
* **pool-death recovery** — a worker killed mid-cell (OOM, SIGKILL, the
  injector's ``kill`` kind) breaks the pool; the runner respawns it and
  requeues every unfinished cell with an incremented attempt number.
  After ``max_pool_deaths`` *consecutive* deaths without progress it
  degrades to serial in-process execution, which always terminates
  (injected kills are honoured only inside pool workers);
* **structured events** — every recovery action surfaces through the
  ``on_event`` callback as ``cell_timeout`` / ``cell_retry`` /
  ``pool_respawn`` / ``degraded_serial``, each tagged with its
  :mod:`repro.errors` code, which the orchestrator writes to the run log.

Worker exceptions never escape: :func:`execute_cell` catches them and
returns the traceback inside its :class:`CellResult`, so one failing cell
cannot abort the sweep.  ``KeyboardInterrupt``/``SystemExit`` are
re-raised, never absorbed.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro import faults
from repro.errors import (
    CellTimeout,
    ReproError,
    SweepWorkerDied,
    TransientCellError,
)
from repro.experiments.runner import RUNNERS, run_cell, workload_header
from repro.experiments.workload import DEFAULT_FRAMES, ExperimentContext, \
    get_context

#: the synthetic cell rendering the report's workload-description header
WORKLOAD_CELL = "workload"

#: signature of an event sink: ``on_event(kind, **fields)``
EventSink = Callable[..., None]


@dataclass
class ResiliencePolicy:
    """Failure-handling knobs of one sweep run.

    The defaults keep the warm path free: with no timeout configured and
    no faults installed, :func:`execute_cell` performs zero extra
    syscalls, and the retry machinery is a handful of integer
    comparisons per cell.
    """

    #: per-cell wall-clock budget in seconds (None = unlimited)
    cell_timeout_s: Optional[float] = None
    #: how many times one cell may be retried after a retryable failure
    max_retries: int = 2
    #: base of the exponential backoff between retries of the same cell
    backoff_base_s: float = 0.05
    #: ceiling on any single backoff sleep
    backoff_max_s: float = 2.0
    #: consecutive pool deaths tolerated before degrading to serial
    max_pool_deaths: int = 3
    #: injectable sleep (tests replace it to assert the backoff schedule)
    sleep: Callable[[float], None] = time.sleep

    def backoff_s(self, attempt: int) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        return min(self.backoff_base_s * (2 ** max(attempt - 1, 0)),
                   self.backoff_max_s)


@dataclass
class CellResult:
    """Outcome of one cell: rendered text plus observability metadata."""

    name: str
    rendered: str = ""
    wall_s: float = 0.0
    cached: bool = False
    error: Optional[str] = None
    cycles: Optional[Dict[str, int]] = field(default=None)
    #: execution attempts this result took (1 = first try succeeded)
    attempts: int = 1
    #: the failed attempt exceeded its wall-clock budget
    timed_out: bool = False
    #: the failure was declared retryable (TransientCellError)
    transient: bool = False
    #: stable repro.errors code of the failure, when one applies
    error_code: Optional[str] = None
    #: distributed-worker attribution (``host-pid-label``), None when the
    #: cell ran locally; lands in the sweep_timing.json sidecar only
    worker: Optional[str] = None

    @property
    def ok(self) -> bool:
        return self.error is None


def _cycle_totals(context: ExperimentContext) -> Dict[str, int]:
    """Deterministic cycle totals recorded with every context-backed cell."""
    baseline = context.baseline()
    totals = baseline.as_dict()
    totals["non_me_cycles"] = context.non_me_cycles()
    return totals


@contextmanager
def _deadline(seconds: Optional[float], cell: str):
    """Raise :class:`CellTimeout` inside the block after ``seconds``.

    Implemented with ``SIGALRM`` so the timeout fires *inside* the
    (single-threaded) worker and the worker survives to take the next
    cell.  A no-op when no budget is set, off the main thread, or on
    platforms without ``SIGALRM`` — exactly the "free when unused"
    property the warm path needs.
    """
    if not seconds or not hasattr(signal, "SIGALRM") \
            or threading.current_thread() is not threading.main_thread():
        yield
        return

    def _on_alarm(signum, frame):
        raise CellTimeout(
            f"cell {cell!r} exceeded its {seconds:.4g}s wall-clock budget")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_cell(name: str, frames: int = DEFAULT_FRAMES,
                 seed: int = 2002, attempt: int = 0,
                 timeout_s: Optional[float] = None) -> CellResult:
    """Run one cell to completion, trapping any exception it raises.

    ``attempt`` is the zero-based retry count — it feeds the deterministic
    fault injector (so an injected fault stops firing once its ``times``
    budget is spent) and the returned :attr:`CellResult.attempts`.
    ``KeyboardInterrupt`` and ``SystemExit`` propagate: an operator's ^C
    must never be swallowed into an error section.
    """
    faults.install_from_environment()
    started = time.perf_counter()
    try:
        with _deadline(timeout_s, name):
            faults.fire_worker_faults(name, attempt)
            if name == WORKLOAD_CELL:
                context = get_context(frames, seed)
                rendered = workload_header(context)
                cycles: Optional[Dict[str, int]] = _cycle_totals(context)
            elif RUNNERS[name][0] == "figure":
                rendered = run_cell(name)
                cycles = None
            else:
                context = get_context(frames, seed)
                rendered = run_cell(name, context)
                cycles = _cycle_totals(context)
    except CellTimeout:
        return CellResult(name, error=traceback.format_exc(),
                          wall_s=time.perf_counter() - started,
                          attempts=attempt + 1, timed_out=True,
                          error_code=CellTimeout.code)
    except TransientCellError:
        return CellResult(name, error=traceback.format_exc(),
                          wall_s=time.perf_counter() - started,
                          attempts=attempt + 1, transient=True,
                          error_code=TransientCellError.code)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:
        code = exc.code if isinstance(exc, ReproError) else None
        return CellResult(name, error=traceback.format_exc(),
                          wall_s=time.perf_counter() - started,
                          attempts=attempt + 1, error_code=code)
    return CellResult(name, rendered=rendered, cycles=cycles,
                      wall_s=time.perf_counter() - started,
                      attempts=attempt + 1)


def warm_context(frames: int, seed: int, jobs: int = 1) -> ExperimentContext:
    """Materialise the shared encode + scenario replays in this process.

    Called in the parent before the pool forks: the encoder runs once, the
    baseline replays, and the full scenario catalogue is primed — itself
    fanned across ``jobs`` forked workers
    (:meth:`ExperimentContext.prime`) — so every cell worker inherits a
    fully warm replay cache copy-on-write and spends its time only on
    cell-specific work (rendering, ablation variants).
    """
    context = get_context(frames, seed)
    context.exploration.replayer          # encode + build the replayer
    context.baseline()                    # baseline replay + stall cache
    context.prime(jobs=jobs)              # the shared scenario catalogue
    return context


def _fork_context() -> Optional[multiprocessing.context.BaseContext]:
    if "fork" not in multiprocessing.get_all_start_methods():
        return None
    return multiprocessing.get_context("fork")


def _retry_reason(result: CellResult) -> Optional[str]:
    """Why this failed attempt qualifies for a retry, or None if it
    doesn't (deterministic failures fail fast)."""
    if result.timed_out:
        return "timeout"
    if result.transient:
        return "transient"
    return None


def _note_attempt(result: CellResult, attempt: int,
                  policy: ResiliencePolicy, emit: EventSink) -> None:
    """Emit the per-attempt observability events (timeouts)."""
    if result.timed_out:
        emit("cell_timeout", cell=result.name, attempt=attempt,
             timeout_s=policy.cell_timeout_s, code=CellTimeout.code,
             wall_s=round(result.wall_s, 4))


def _run_serial(items: Sequence[Tuple[str, int]], frames: int, seed: int,
                policy: ResiliencePolicy,
                on_start: Optional[Callable[[str], None]],
                on_result: Optional[Callable[[CellResult], None]],
                emit: EventSink) -> Dict[str, CellResult]:
    """In-process execution with the same retry/timeout semantics as the
    pool path.  Used for ``jobs <= 1`` and as the degraded mode after
    repeated pool deaths (injected kills are not honoured in-process, so
    degradation always terminates)."""
    results: Dict[str, CellResult] = {}
    for name, attempt in items:
        if on_start and attempt == 0:
            on_start(name)
        while True:
            result = execute_cell(name, frames, seed, attempt,
                                  policy.cell_timeout_s)
            if result.error:
                _note_attempt(result, attempt, policy, emit)
                reason = _retry_reason(result)
                if reason and attempt < policy.max_retries:
                    attempt += 1
                    delay = policy.backoff_s(attempt)
                    emit("cell_retry", cell=name, attempt=attempt,
                         reason=reason, backoff_s=round(delay, 4),
                         code=result.error_code)
                    policy.sleep(delay)
                    continue
            break
        results[name] = result
        if on_result:
            on_result(result)
    return results


def run_cells(names: Sequence[str], frames: int = DEFAULT_FRAMES,
              seed: int = 2002, jobs: int = 1,
              on_start: Optional[Callable[[str], None]] = None,
              on_result: Optional[Callable[[CellResult], None]] = None,
              policy: Optional[ResiliencePolicy] = None,
              on_event: Optional[EventSink] = None
              ) -> List[CellResult]:
    """Execute ``names`` and return their results in the same order.

    ``jobs > 1`` fans the cells across a forked process pool (falling back
    to serial where ``fork`` is unavailable, e.g. Windows); ``on_start`` /
    ``on_result`` fire as each cell is dispatched / completes, in
    completion order, so the run log reflects real timing.  ``policy``
    configures the resilience layer and ``on_event`` receives its
    structured recovery events (see the module docstring).
    """
    names = list(names)
    policy = policy or ResiliencePolicy()
    emit: EventSink = on_event or (lambda kind, **fields: None)
    mp_context = _fork_context()
    if jobs <= 1 or len(names) <= 1 or mp_context is None:
        results = _run_serial([(name, 0) for name in names], frames, seed,
                              policy, on_start, on_result, emit)
        return [results[name] for name in names]

    warm_context(frames, seed, jobs)
    results: Dict[str, CellResult] = {}
    queue: Deque[Tuple[str, int]] = deque((name, 0) for name in names)
    pool_deaths = 0

    while queue:
        if pool_deaths >= policy.max_pool_deaths:
            remaining = list(queue)
            queue.clear()
            emit("degraded_serial", pool_deaths=pool_deaths,
                 cells=[name for name, _ in remaining],
                 code=SweepWorkerDied.code)
            results.update(_run_serial(remaining, frames, seed, policy,
                                       on_start, on_result, emit))
            break

        inflight: Dict[object, Tuple[str, int]] = {}
        unfinished: List[Tuple[str, int]] = []
        broken = False
        with ProcessPoolExecutor(max_workers=min(jobs, len(queue)),
                                 mp_context=mp_context) as pool:

            def submit(name: str, attempt: int) -> object:
                future = pool.submit(execute_cell, name, frames, seed,
                                     attempt, policy.cell_timeout_s)
                inflight[future] = (name, attempt)
                return future

            while queue:
                name, attempt = queue.popleft()
                if on_start and attempt == 0:
                    on_start(name)
                submit(name, attempt)

            pending = set(inflight)
            while pending and not broken:
                done, pending = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    name, attempt = inflight.pop(future)
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broken = True
                        unfinished.append((name, attempt))
                        continue
                    except (KeyboardInterrupt, SystemExit):
                        raise
                    except Exception:
                        # pool infrastructure failure other than a death:
                        # surface it as this cell's error
                        result = CellResult(name,
                                            error=traceback.format_exc(),
                                            attempts=attempt + 1)
                    if result.error:
                        _note_attempt(result, attempt, policy, emit)
                        reason = _retry_reason(result)
                        if reason and attempt < policy.max_retries:
                            if broken:
                                # the pool died while this retryable
                                # failure was in flight; let the respawn
                                # requeue it instead of resubmitting into
                                # a broken pool
                                unfinished.append((name, attempt))
                                continue
                            attempt += 1
                            delay = policy.backoff_s(attempt)
                            emit("cell_retry", cell=name, attempt=attempt,
                                 reason=reason, backoff_s=round(delay, 4),
                                 code=result.error_code)
                            policy.sleep(delay)
                            try:
                                pending.add(submit(name, attempt))
                            except BrokenProcessPool:
                                broken = True
                                unfinished.append((name, attempt))
                            continue
                    results[name] = result
                    pool_deaths = 0
                    if on_result:
                        on_result(result)
            if broken:
                unfinished.extend(inflight.pop(future)
                                  for future in pending)

        if broken:
            pool_deaths += 1
            requeued = sorted({name for name, _ in unfinished})
            emit("pool_respawn", death=pool_deaths, requeued=requeued,
                 code=SweepWorkerDied.code,
                 max_pool_deaths=policy.max_pool_deaths)
            # every unfinished cell might have been the one that killed
            # the worker, so each carries an incremented attempt — the
            # deterministic fault injector then stops firing once its
            # ``times`` budget is spent, and real repeat offenders are
            # bounded by max_pool_deaths
            queue.extend((name, attempt + 1)
                         for name, attempt in unfinished)

    return [results[name] for name in names if name in results]

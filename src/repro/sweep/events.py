"""Structured observability for sweep runs.

Two artifacts record what a sweep did and how long it took:

* the **run log** — an append-only JSONL stream (:class:`RunLog`), one
  event per line: ``sweep_start``, then per cell either ``cache_hit``,
  ``checkpoint_restore`` or ``cell_start``/``cell_finish``/``cell_error``
  (with wall time and cycle totals), interleaved with the resilience
  layer's recovery events — ``cell_retry``, ``cell_timeout``,
  ``pool_respawn``, ``degraded_serial``, ``cache_corrupt``,
  ``replay_divergence``, each tagged with its :mod:`repro.errors` code —
  then ``sweep_finish`` with the totals.  Because each line is flushed as
  it is written, a killed sweep still leaves a parseable prefix —
  :func:`read_events` tolerates a truncated final line (and raises
  :class:`~repro.errors.RunLogCorrupt` on mid-stream corruption);
* the **sweep report** — ``sweep_report.json``
  (:func:`build_sweep_report`), the per-cell summary that
  :func:`repro.experiments.report.render_sweep_provenance` consumes to
  stamp EXPERIMENTS.md with timing provenance.

Cycle totals in both artifacts come from
:meth:`repro.core.timing.MeTimingResult.as_dict` — deterministic replay
numbers, so a serial and a parallel sweep of the same workload report
identical cycles (only the wall times differ).
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, List, Optional

from repro.errors import RunLogCorrupt


class RunLog:
    """Append-only JSONL event stream, flushed per event."""

    def __init__(self, path: pathlib.Path):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def event(self, kind: str, **fields) -> None:
        """Write one event line: ``{"t": ..., "event": kind, **fields}``."""
        record = {"t": round(time.time(), 3), "event": kind}
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        self._handle.close()

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: pathlib.Path, kind: Optional[str] = None,
                strict: bool = True) -> List[Dict]:
    """Parse a run log back into event dicts (optionally one kind only).

    A truncated **final** line — the signature of a crash mid-write — is
    always skipped rather than raised on.  An unparseable line *earlier*
    in the stream means the log cannot be trusted and raises
    :class:`~repro.errors.RunLogCorrupt` (code
    ``REPRO-RES-RUNLOG-CORRUPT``); pass ``strict=False`` to skip such
    lines when a partial event stream is acceptable.
    """
    with open(path, encoding="utf-8") as handle:
        lines = [line.strip() for line in handle]
    while lines and not lines[-1]:
        lines.pop()
    events: List[Dict] = []
    for index, line in enumerate(lines):
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if index == len(lines) - 1:
                continue  # tolerated: crash mid-write of the final event
            if strict:
                raise RunLogCorrupt(
                    f"run log {path} line {index + 1} is not valid JSON "
                    f"(and is not the final line): {line[:80]!r}") from None
            continue
        if kind is None or record.get("event") == kind:
            events.append(record)
    return events


def build_sweep_report(workload: Dict, code_version: str, jobs: int,
                       cells: List, wall_s: float,
                       replay: Optional[Dict] = None) -> Dict:
    """Distil a sweep's cell results into the ``sweep_report.json`` dict.

    ``cells`` are :class:`repro.sweep.executor.CellResult` objects in
    report order.  The dict is stable apart from wall times and the
    generation timestamp, so differential tests compare its cycle numbers
    directly.  ``replay`` is the replay-engine observability block
    (:meth:`repro.experiments.workload.ExperimentContext.replay_breakdown`)
    of the run's warmed context, when one exists.
    """
    cell_rows = []
    for cell in cells:
        row = {
            "name": cell.name,
            "cached": cell.cached,
            "wall_s": round(cell.wall_s, 4),
            "error": cell.error.strip().splitlines()[-1] if cell.error
            else None,
        }
        if cell.cycles is not None:
            row["cycles"] = cell.cycles
        if cell.attempts > 1:
            row["attempts"] = cell.attempts
        if cell.error_code:
            row["error_code"] = cell.error_code
        cell_rows.append(row)
    return {
        "version": 1,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "workload": workload,
        "code_version": code_version,
        "jobs": jobs,
        "replay": replay,
        "cells": cell_rows,
        "totals": {
            "cells": len(cells),
            "cache_hits": sum(1 for cell in cells if cell.cached),
            "executed": sum(1 for cell in cells
                            if not cell.cached and not cell.error),
            "errors": sum(1 for cell in cells if cell.error),
            "retries": sum(cell.attempts - 1 for cell in cells),
            "wall_s": round(wall_s, 4),
        },
    }

"""Structured observability for sweep runs.

Three artifacts record what a sweep did and how long it took:

* the **run log** — an append-only JSONL stream (:class:`RunLog`), one
  event per line: ``sweep_start``, then per cell either ``cache_hit``,
  ``checkpoint_restore`` or ``cell_start``/``cell_finish``/``cell_error``
  (with wall time and cycle totals), interleaved with the resilience
  layer's recovery events — ``cell_retry``, ``cell_timeout``,
  ``pool_respawn``, ``degraded_serial``, ``cache_corrupt``,
  ``replay_divergence``, the distributed runner's ``worker_join`` /
  ``worker_lost`` / ``dist_cache_hit`` and the incremental planner's
  ``incremental_plan`` / ``incremental_skip`` / ``incremental_invalidated``
  / ``incremental_miss``, each tagged with its :mod:`repro.errors` code —
  then ``sweep_finish`` with the totals.  Every event carries an
  ``origin`` (``host-pid``, workers append their label), so run logs
  merged across hosts stay unambiguous; :func:`origin_label` builds it
  and the orchestrator folds the same host component into run-log file
  names.  Because each line is flushed as it is written, a killed sweep
  still leaves a parseable prefix — :func:`read_events` tolerates a
  truncated final line (and raises :class:`~repro.errors.RunLogCorrupt`
  on mid-stream corruption);
* the **sweep report** — ``sweep_report.json``, the *deterministic*
  per-cell summary (names, cache keys, per-cell code versions, cycle
  totals, errors).  It contains nothing host-, timing- or
  schedule-dependent, so a serial run, a 4-job pool run and a multi-host
  distributed run of the same workload write byte-identical files — the
  differential suites ``cmp`` them directly.  It is also the input the
  ``--incremental`` planner diffs new keys against;
* the **timing sidecar** — ``sweep_timing.json``, everything the report
  deliberately leaves out: wall times, cache hits, attempts, job count,
  per-worker attribution and the replay-engine breakdown.

:func:`build_sweep_report` assembles one in-memory superset dict (what
:class:`repro.sweep.orchestrator.SweepResult` exposes and the
EXPERIMENTS.md provenance stamp consumes); :func:`split_sweep_report`
divides it into the two on-disk artifacts and :func:`merge_sweep_report`
reassembles them when stamping from disk.

Cycle totals come from
:meth:`repro.core.timing.MeTimingResult.as_dict` — deterministic replay
numbers, so a serial and a parallel sweep of the same workload report
identical cycles (only the wall times differ).
"""

from __future__ import annotations

import json
import os
import pathlib
import re
import socket
import time
from typing import Dict, List, Optional

from repro.errors import RunLogCorrupt

#: per-cell fields that are a pure function of (workload, code); they
#: land in sweep_report.json and must be byte-identical across runners
DETERMINISTIC_CELL_FIELDS = ("name", "key", "code_version", "cycles",
                             "error", "error_code")

#: per-cell fields that depend on scheduling, caching or the host; they
#: land in the sweep_timing.json sidecar
TIMING_CELL_FIELDS = ("name", "cached", "wall_s", "attempts", "worker")


def host_label() -> str:
    """This machine's hostname, sanitised for file names and labels."""
    name = socket.gethostname() or "localhost"
    return re.sub(r"[^A-Za-z0-9.-]+", "-", name)[:32] or "localhost"


def origin_label(worker: Optional[str] = None) -> str:
    """``host-pid[-worker]`` — the namespace component that keeps labels
    and events from different hosts (and workers on one host) distinct
    when their run logs are merged."""
    origin = f"{host_label()}-{os.getpid()}"
    return f"{origin}-{worker}" if worker else origin


class RunLog:
    """Append-only JSONL event stream, flushed per event.

    ``origin`` namespaces every event with the writing host and process
    (see :func:`origin_label`); events that already carry an explicit
    ``origin`` field (e.g. relayed from a remote worker) keep it.
    """

    def __init__(self, path: pathlib.Path, origin: Optional[str] = None):
        self.path = pathlib.Path(path)
        self.origin = origin or origin_label()
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")

    def event(self, kind: str, **fields) -> None:
        """Write one event line: ``{"t": ..., "event": kind, **fields}``."""
        record = {"t": round(time.time(), 3), "event": kind,
                  "origin": self.origin}
        record.update(fields)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        """Fsync then close: the log's tail must survive a power-loss-
        style kill right after the sweep finishes, not just a process
        exit (flush alone leaves the tail in the page cache)."""
        if self._handle.closed:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()

    def __enter__(self) -> "RunLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_events(path: pathlib.Path, kind: Optional[str] = None,
                strict: bool = True) -> List[Dict]:
    """Parse a run log back into event dicts (optionally one kind only).

    A truncated **final** line — the signature of a crash mid-write — is
    always skipped rather than raised on.  An unparseable line *earlier*
    in the stream means the log cannot be trusted and raises
    :class:`~repro.errors.RunLogCorrupt` (code
    ``REPRO-RES-RUNLOG-CORRUPT``); pass ``strict=False`` to skip such
    lines when a partial event stream is acceptable.
    """
    with open(path, encoding="utf-8") as handle:
        lines = [line.strip() for line in handle]
    while lines and not lines[-1]:
        lines.pop()
    events: List[Dict] = []
    for index, line in enumerate(lines):
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError:
            if index == len(lines) - 1:
                continue  # tolerated: crash mid-write of the final event
            if strict:
                raise RunLogCorrupt(
                    f"run log {path} line {index + 1} is not valid JSON "
                    f"(and is not the final line): {line[:80]!r}") from None
            continue
        if kind is None or record.get("event") == kind:
            events.append(record)
    return events


def build_sweep_report(workload: Dict, code_version: str, jobs: int,
                       cells: List, wall_s: float,
                       replay: Optional[Dict] = None,
                       keys: Optional[Dict[str, str]] = None,
                       cell_versions: Optional[Dict[str, str]] = None,
                       hosts: Optional[Dict] = None) -> Dict:
    """Distil a sweep's cell results into the in-memory report dict.

    ``cells`` are :class:`repro.sweep.executor.CellResult` objects in
    report order; ``keys``/``cell_versions`` map cell names onto their
    cache keys and per-module-closure code versions
    (:func:`repro.sweep.deps.cell_code_version`); ``hosts`` is the
    distributed runner's per-worker attribution block.  The returned
    dict is the superset of both on-disk artifacts — feed it to
    :func:`split_sweep_report` to get the deterministic
    ``sweep_report.json`` half and the ``sweep_timing.json`` sidecar.
    ``replay`` is the replay-engine observability block
    (:meth:`repro.experiments.workload.ExperimentContext.replay_breakdown`)
    of the run's warmed context, when one exists.
    """
    cell_rows = []
    for cell in cells:
        row = {
            "name": cell.name,
            "cached": cell.cached,
            "wall_s": round(cell.wall_s, 4),
            "error": cell.error.strip().splitlines()[-1] if cell.error
            else None,
        }
        if keys and cell.name in keys:
            row["key"] = keys[cell.name]
        if cell_versions and cell.name in cell_versions:
            row["code_version"] = cell_versions[cell.name]
        if cell.cycles is not None:
            row["cycles"] = cell.cycles
        if cell.attempts > 1:
            row["attempts"] = cell.attempts
        if cell.error_code:
            row["error_code"] = cell.error_code
        if getattr(cell, "worker", None):
            row["worker"] = cell.worker
        cell_rows.append(row)
    return {
        "version": 2,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "workload": workload,
        "code_version": code_version,
        "jobs": jobs,
        "replay": replay,
        "hosts": hosts,
        "cells": cell_rows,
        "totals": {
            "cells": len(cells),
            "cache_hits": sum(1 for cell in cells if cell.cached),
            "executed": sum(1 for cell in cells
                            if not cell.cached and not cell.error),
            "errors": sum(1 for cell in cells if cell.error),
            "retries": sum(cell.attempts - 1 for cell in cells),
            "wall_s": round(wall_s, 4),
        },
    }


def split_sweep_report(report: Dict) -> tuple:
    """Split the superset dict into ``(deterministic, timing)`` halves.

    The deterministic half is a pure function of (workload, code): cell
    names, cache keys, per-cell code versions, cycle totals and error
    outcomes — every runner (serial, pooled, distributed, incremental)
    of the same inputs writes identical bytes.  The timing half carries
    the rest: timestamps, wall times, cache/attempt/worker attribution,
    job count, hosts, the replay breakdown.
    """
    det_cells = []
    timing_cells = []
    for row in report["cells"]:
        det_cells.append({field: row[field]
                          for field in DETERMINISTIC_CELL_FIELDS
                          if field in row})
        timing_cells.append({field: row[field]
                             for field in TIMING_CELL_FIELDS
                             if field in row})
    totals = report["totals"]
    deterministic = {
        "version": report["version"],
        "workload": report["workload"],
        "code_version": report["code_version"],
        "cells": det_cells,
        "totals": {"cells": totals["cells"], "errors": totals["errors"]},
    }
    timing = {
        "version": report["version"],
        "generated_at": report["generated_at"],
        "jobs": report["jobs"],
        "replay": report["replay"],
        "hosts": report.get("hosts"),
        "cells": timing_cells,
        "totals": {key: totals[key]
                   for key in ("cache_hits", "executed", "retries",
                               "wall_s")},
    }
    return deterministic, timing


def merge_sweep_report(deterministic: Dict,
                       timing: Optional[Dict] = None) -> Dict:
    """Reassemble the superset dict from the two on-disk artifacts.

    The timing sidecar is optional (someone may ship only the
    deterministic report); missing timing fields get neutral defaults so
    the provenance renderer still works.
    """
    timing = timing or {}
    timing_rows = {row["name"]: row for row in timing.get("cells", [])}
    cells = []
    for det_row in deterministic["cells"]:
        row = dict(det_row)
        extra = timing_rows.get(det_row["name"], {})
        row.setdefault("cached", extra.get("cached", False))
        row.setdefault("wall_s", extra.get("wall_s", 0.0))
        for field in ("attempts", "worker"):
            if field in extra:
                row[field] = extra[field]
        cells.append(row)
    totals = dict(deterministic["totals"])
    totals.update(timing.get("totals", {}))
    totals.setdefault("cache_hits", 0)
    totals.setdefault("executed",
                      totals["cells"] - totals["errors"])
    totals.setdefault("retries", 0)
    totals.setdefault("wall_s", 0.0)
    return {
        "version": deterministic["version"],
        "generated_at": timing.get("generated_at", "unknown"),
        "workload": deterministic["workload"],
        "code_version": deterministic["code_version"],
        "jobs": timing.get("jobs", 1),
        "replay": timing.get("replay"),
        "hosts": timing.get("hosts"),
        "cells": cells,
        "totals": totals,
    }

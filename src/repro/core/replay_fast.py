"""Per-scenario evaluation over a compiled trace (the columnar engine).

:mod:`repro.core.replay_compile` reduces each stream family to its flagged
events (misses, absent-line prefetch attempts, stale reference rows); the
evaluators here replay only those events with exact bus and prefetch-buffer
state (:class:`~repro.memory.prefetch.PrefetchArrayState`) and charge every
stall-free invocation its memoized static loop latency in O(1).

The cycle-exactness contract: every evaluator reproduces the legacy
:class:`~repro.core.timing.TraceReplayer` walk operation for operation —
same bus-request order, same prefetch dedup/drop/reap decisions, same
Line Buffer A/B semantics — asserted field-for-field by the differential
tests.  The one case the columnar model cannot represent (a Line Buffer B
prefetch dropped because the prefetch buffer is full, which changes buffer
membership and invalidates the shared classification) raises
:class:`ColumnarFallback`, and the caller reruns that scenario through the
legacy path.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.replay_compile import CompiledTrace, REFERENCE_ROWS
from repro.memory.hierarchy import MemoryTimings
from repro.memory.prefetch import PrefetchArrayState
from repro.rfu.loop_model import LoopKernelModel, LoopKernelParams

#: inter-invocation spacing of the instruction-level stall replay (cycles);
#: the legacy walk in ``TraceReplayer._replay_instruction_stalls`` advances
#: ``now`` by this amount after each invocation's accesses
INTER_ACCESS_SPACING = 280


class ColumnarFallback(Exception):
    """The compiled classification cannot represent this scenario's timing
    (a Line Buffer B prefetch was dropped); replay via the legacy path."""


def _prefetch_state(timings: MemoryTimings) -> PrefetchArrayState:
    return PrefetchArrayState(timings.prefetch_entries, timings.bus_latency,
                              timings.bus_service_interval)


def instruction_stall_replay(compiled: CompiledTrace,
                             timings: MemoryTimings) -> Tuple[int, int]:
    """(stall cycles, demand misses) of the baseline memory behaviour.

    Walks only the classified misses: a hit never advances the legacy
    walk's clock, so the cycle of miss *j* in invocation *k* is exactly
    ``k * INTER_ACCESS_SPACING`` plus the stalls accumulated so far.
    """
    cls = compiled.instruction_classification()
    pf = _prefetch_state(timings)
    hw_next_line = timings.hardware_next_line_prefetch
    lb = compiled.line_bytes
    miss_line = cls.miss_line
    miss_inv = cls.miss_inv
    miss_next = cls.miss_next_absent
    issue, lookup, bus_request = pf.issue, pf.lookup, pf.bus_request
    now = 0
    prev_inv = 0
    stalls = 0
    demand = 0
    for j in range(len(miss_line)):
        inv = miss_inv[j]
        if inv != prev_inv:
            now += INTER_ACCESS_SPACING * (inv - prev_inv)
            prev_inv = inv
        line = miss_line[j]
        if hw_next_line and miss_next[j]:
            issue(line + lb, now)
        ready = lookup(line, now)
        if ready is None:
            stall = bus_request(now) - now
            demand += 1
        elif ready > now:
            stall = ready - now
        else:
            stall = 0
        stalls += stall
        now += stall
    return stalls, demand


def _latency_tuples(model: LoopKernelModel) -> List[Tuple[int, ...]]:
    """(pre-loop cycles, II, drain, rows, total) per ``alignment*4+mode``."""
    return [(lat.overhead + lat.fill, lat.initiation_interval, lat.drain,
             lat.rows, lat.total) for lat in model.latency_table()]


def loop_replay(compiled: CompiledTrace, params: LoopKernelParams,
                timings: MemoryTimings, lbb_banks: int,
                invocation_overhead: int) -> Dict[str, int]:
    """Replay one loop-level scenario; returns the MeTimingResult fields.

    Raises :class:`ColumnarFallback` when the scenario's timing leaves the
    compiled classification's domain (LBB prefetch drop).
    """
    model = LoopKernelModel(params)
    lat = _latency_tuples(model)
    pf = _prefetch_state(timings)
    if params.use_line_buffer_b:
        out = _loop_lbb_replay(compiled, lat, pf, lbb_banks * 17,
                               invocation_overhead,
                               timings.hardware_next_line_prefetch)
    else:
        out = _loop_plain_replay(compiled, lat, pf, invocation_overhead,
                                 timings.hardware_next_line_prefetch)
    out["worst_loop_latency"] = model.worst_case_latency()
    return out


def _lba_schedule(counts: List[int], now: int,
                  bus_request) -> Tuple[List[int], int]:
    """Row-ready cycles of one Line Buffer A fill with missing lines."""
    ready = [0] * REFERENCE_ROWS
    when = now
    for r in range(REFERENCE_ROWS):
        row_ready = when + 2
        remaining = counts[r]
        while remaining:
            arrival = bus_request(when)
            if arrival > row_ready:
                row_ready = arrival
            remaining -= 1
        ready[r] = row_ready
        when += 1
    return ready, max(ready)


def _loop_plain_replay(compiled: CompiledTrace, lat, pf: PrefetchArrayState,
                       overhead: int, hw_next_line: bool) -> Dict[str, int]:
    cls = compiled.loop_classification()
    lb = compiled.line_bytes
    key_list = compiled.key_list
    rows_unused = None
    del rows_unused
    row_first, row_last = compiled.row_first, compiled.row_last
    gstarts = compiled.group_starts_list
    lba_counts = cls.lba_miss_counts
    lba_any = cls.lba_group_has_miss
    pf_line, pf_row, pf_off = cls.pf_line, cls.pf_row, cls.pf_off
    load_flags, load_off = cls.load_flags, cls.load_off
    inv_nmiss, miss_off = cls.inv_nmiss, cls.miss_off
    miss_next = cls.miss_next_absent
    issue, lookup, bus_request = pf.issue, pf.lookup, pf.bus_request
    now = 0
    static = 0
    stalls = 0
    demand = 0
    for g in range(len(gstarts) - 1):
        start, end = gstarts[g], gstarts[g + 1]
        group_base = now
        if lba_any[g]:
            ready, ready_max = _lba_schedule(lba_counts[g], now, bus_request)
        else:
            ready = None
            ready_max = now + REFERENCE_ROWS + 1
        k = pf_off[start]
        k_end = pf_off[start + 1]
        while k < k_end:
            issue(pf_line[k], now + pf_row[k])
            k += 1
        now += 2  # the two rfupft issue slots
        for i in range(start, end):
            now += overhead
            static += overhead
            if i + 1 < end:
                k = pf_off[i + 1]
                k_end = pf_off[i + 2]
                while k < k_end:
                    issue(pf_line[k], now + pf_row[k])
                    k += 1
                now += 1
            pre, ii, drain, rows_i, total = lat[key_list[i]]
            if not inv_nmiss[i] and now + pre >= ready_max:
                # stall-free: every load hits, every reference row is ready
                now += total
                static += total
                continue
            t = now + pre
            inv_stall = 0
            fo = load_off[i]
            mo = miss_off[i]
            first_i = row_first[i]
            last_i = row_last[i]
            for r in range(rows_i):
                line = first_i[r]
                while True:
                    if load_flags[fo]:
                        if hw_next_line and miss_next[mo]:
                            issue(line + lb, t)
                        mo += 1
                        arrival = lookup(line, t)
                        if arrival is None:
                            stall = bus_request(t) - t
                            demand += 1
                        elif arrival > t:
                            stall = arrival - t
                        else:
                            stall = 0
                        if stall:
                            inv_stall += stall
                            t += stall
                    fo += 1
                    if line == last_i[r]:
                        break
                    line = last_i[r]
                if r < REFERENCE_ROWS:
                    row_ready = ready[r] if ready is not None \
                        else group_base + r + 2
                    if row_ready > t:
                        inv_stall += row_ready - t
                        t = row_ready
                t += ii
            t += drain
            cycles = t - now
            now = t
            static += cycles - inv_stall
            stalls += inv_stall
    return {"static_cycles": static, "stall_cycles": stalls,
            "demand_misses": demand, "prefetch_issued": pf.issued,
            "prefetch_late": pf.late, "lb_reuse": 0}


def _loop_lbb_replay(compiled: CompiledTrace, lat, pf: PrefetchArrayState,
                     capacity: int, overhead: int,
                     hw_next_line: bool) -> Dict[str, int]:
    cls = compiled.lbb_classification(capacity)
    lb = compiled.line_bytes
    key_list = compiled.key_list
    row_first, row_last = compiled.row_first, compiled.row_last
    gstarts = compiled.group_starts_list
    lba_counts = cls.lba_miss_counts
    lba_any = cls.lba_group_has_miss
    pf_line, pf_row = cls.pf_line, cls.pf_row
    pf_kind, pf_off = cls.pf_kind, cls.pf_off
    read_flags, read_off = cls.read_flags, cls.read_off
    inv_nmiss, miss_off = cls.inv_nmiss, cls.miss_off
    miss_next = cls.miss_next_absent
    issue, lookup, bus_request = pf.issue, pf.lookup, pf.bus_request
    pending = pf.pending
    arrival_of: Dict[int, int] = {}  # line -> staged arrival cycle
    arrival_max = 0
    requests = 0
    now = 0
    static = 0
    stalls = 0
    demand = 0

    def stage(i: int, base: int) -> None:
        """Process candidate ``i``'s non-reuse prefetch-pattern events."""
        nonlocal requests, arrival_max
        k = pf_off[i]
        k_end = pf_off[i + 1]
        while k < k_end:
            line = pf_line[k]
            when = base + pf_row[k]
            if pf_kind[k] == 1:
                arrival = when + 2  # resident line: buffer access latency
            else:
                arrival = pending.get(line)
                if arrival is not None:
                    pf.duplicates += 1
                else:
                    if pf.in_flight(when) >= pf.capacity:
                        raise ColumnarFallback(
                            "Line Buffer B prefetch dropped (prefetch "
                            "buffer full): classification no longer valid")
                    arrival = bus_request(when)
                    pending[line] = arrival
                    pf.issued += 1
                    pf.reap(when)
                requests += 1
            arrival_of[line] = arrival
            if arrival > arrival_max:
                arrival_max = arrival
            k += 1

    for g in range(len(gstarts) - 1):
        start, end = gstarts[g], gstarts[g + 1]
        group_base = now
        if lba_any[g]:
            ready, ready_max = _lba_schedule(lba_counts[g], now, bus_request)
        else:
            ready = None
            ready_max = now + REFERENCE_ROWS + 1
        stage(start, now)
        now += 2
        for i in range(start, end):
            now += overhead
            static += overhead
            if i + 1 < end:
                stage(i + 1, now)
                now += 1
            pre, ii, drain, rows_i, total = lat[key_list[i]]
            t0 = now + pre
            if not inv_nmiss[i] and t0 >= ready_max and t0 >= arrival_max:
                # every read tag-hits an already-arrived entry (or hits the
                # D-cache), and every reference row is long ready
                now += total
                static += total
                continue
            t = t0
            inv_stall = 0
            ro = read_off[i]
            mo = miss_off[i]
            first_i = row_first[i]
            last_i = row_last[i]
            for r in range(rows_i):
                line = first_i[r]
                while True:
                    flag = read_flags[ro]
                    if flag == 0:
                        arrival = arrival_of[line]
                        if arrival > t:
                            inv_stall += arrival - t
                            t = arrival
                    elif flag == 2:
                        if hw_next_line and miss_next[mo]:
                            issue(line + lb, t)
                        mo += 1
                        arrival = lookup(line, t)
                        if arrival is None:
                            stall = bus_request(t) - t
                            demand += 1
                        elif arrival > t:
                            stall = arrival - t
                        else:
                            stall = 0
                        if stall:
                            inv_stall += stall
                            t += stall
                    else:
                        mo = mo  # tag miss, D-cache hit: no stall
                    ro += 1
                    if line == last_i[r]:
                        break
                    line = last_i[r]
                if r < REFERENCE_ROWS:
                    row_ready = ready[r] if ready is not None \
                        else group_base + r + 2
                    if row_ready > t:
                        inv_stall += row_ready - t
                        t = row_ready
                t += ii
            t += drain
            cycles = t - now
            now = t
            static += cycles - inv_stall
            stalls += inv_stall
    return {"static_cycles": static, "stall_cycles": stalls,
            "demand_misses": demand,
            "prefetch_issued": pf.issued + requests,
            "prefetch_late": pf.late, "lb_reuse": cls.reused_total}

"""The paper's contribution: the RFU architectural exploration framework.

Given one encoding run's GetSad trace, the framework replays it under each
architectural scenario — the optimised baseline, the instruction-level RFU
scenarios A1/A2/A3, and the loop-level kernels across bandwidth, technology
scaling and local-storage options — and produces the cycle/stall/speedup
numbers of the paper's Tables 1–7 on *one common platform*.
"""

from repro.core.scenarios import (
    INSTRUCTION_SCENARIOS,
    LOOP_SCENARIOS,
    Scenario,
    all_scenarios,
    instruction_scenario,
    loop_scenario,
)
from repro.core.replay_compile import CompiledTrace
from repro.core.timing import (
    MeTimingResult,
    TraceReplayer,
    default_replay_engine,
    set_default_replay_engine,
)
from repro.core.exploration import ExplorationConfig, Exploration, ExplorationResult

__all__ = [
    "CompiledTrace",
    "Exploration",
    "ExplorationConfig",
    "ExplorationResult",
    "INSTRUCTION_SCENARIOS",
    "LOOP_SCENARIOS",
    "MeTimingResult",
    "Scenario",
    "TraceReplayer",
    "default_replay_engine",
    "set_default_replay_engine",
    "all_scenarios",
    "instruction_scenario",
    "loop_scenario",
]

"""Columnar compilation of an ``MeTrace`` for the fast replay engine.

The legacy :class:`~repro.core.timing.TraceReplayer` re-derives addresses,
geometry and cache behaviour per invocation *per scenario*.  This module
does that work exactly once per trace:

* **columns** — numpy arrays with one entry per invocation: predictor and
  reference base addresses, byte alignment, interpolation mode, the
  ``predictor_geometry`` row/word counts, the per-row first/last cache-line
  addresses (batched through
  :func:`repro.rfu.prefetch_ops.macroblock_row_line_bounds`) and the
  macroblock-group boundaries;
* **classification passes** — the key observation making scenario replay
  cheap: D-cache *membership* evolves only with the fixed access stream
  (loads access-and-fill, prefetches and Line Buffer A only query), never
  with timing.  So hit/miss outcomes can be classified once per stream
  family and shared by every scenario replaying that stream:

  - :meth:`CompiledTrace.instruction_classification` — the baseline
    load stream (predictor lines + 16 reference rows per invocation),
    shared by all instruction-level scenarios;
  - :meth:`CompiledTrace.loop_classification` — the loop-level stream
    (Line Buffer A queries, candidate prefetch-pattern queries, predictor
    line loads), shared by every non-LBB loop scenario regardless of
    bandwidth or β;
  - :meth:`CompiledTrace.lbb_classification` — the Line Buffer B stream,
    keyed by LBB capacity.  LBB membership is timing-independent *unless*
    a prefetch is dropped for lack of buffer entries; the per-scenario
    evaluator detects that case and falls back to the legacy path.

Per-scenario evaluation (:mod:`repro.core.replay_fast`) then touches only
the classified events — misses, absent-line prefetch attempts, stale Line
Buffer A rows — with exact bus/prefetch-buffer state, and takes an O(1)
memoized latency for the overwhelmingly common stall-free invocation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.codec.tracer import MeTrace
from repro.memory.cache import new_lru_sets
from repro.rfu.loop_model import predictor_geometry_tables
from repro.rfu.prefetch_ops import macroblock_row_line_bounds

#: rows of the reference macroblock gathered into Line Buffer A
REFERENCE_ROWS = 16
#: bytes per reference-macroblock row
REFERENCE_ROW_BYTES = 16
#: worst-case predictor rows (vertical/diagonal interpolation)
MAX_PREDICTOR_ROWS = 17


@dataclass
class InstructionClassification:
    """Misses of the instruction-level load stream, in stream order."""

    miss_line: List[int]         # line address of each miss
    miss_inv: List[int]          # invocation index of each miss
    miss_next_absent: List[bool]  # next line absent at miss time (HW prefetch)
    accesses: int                # total line accesses classified


@dataclass
class LoopClassification:
    """Flagged events of the non-LBB loop-level stream, in stream order."""

    lba_miss_counts: List[List[int]]  # per group: 16 missing-line counts
    lba_group_has_miss: List[bool]    # any missing reference line in group
    pf_line: List[int]    # absent candidate lines (prefetch-pattern attempts)
    pf_row: List[int]     # macroblock row of each attempt (issue offset)
    pf_off: List[int]     # per-invocation offsets into pf_line (len n+1)
    load_flags: List[int]  # 1 per predictor line access: 0 hit / 1 miss
    load_off: List[int]    # per-invocation offsets into load_flags (len n+1)
    inv_nmiss: List[int]   # misses per invocation
    miss_off: List[int]    # per-invocation offsets into miss stream (len n+1)
    miss_next_absent: List[bool]  # per miss: next line absent at miss time


@dataclass
class LbbClassification:
    """Flagged events of the Line Buffer B loop stream, in stream order.

    Prefetch events keep only the lines that were **not** already resident
    in the buffer (the reuse path has no timing side effects beyond its
    count); ``kind`` 1 means the line sat in the D-cache (arrival at the
    2-cycle buffer latency), 2 means it went through the prefetch buffer
    and bus.  Read flags: 0 tag hit, 1 tag miss/D-cache hit, 2 tag
    miss/D-cache miss.
    """

    lba_miss_counts: List[List[int]]
    lba_group_has_miss: List[bool]
    pf_line: List[int]
    pf_row: List[int]
    pf_kind: List[int]
    pf_off: List[int]
    read_flags: List[int]
    read_off: List[int]
    inv_nmiss: List[int]          # kind-2 reads per invocation
    miss_off: List[int]
    miss_next_absent: List[bool]
    reused_total: int             # buffer-resident reuses (lb_reuse stat)


class CompiledTrace:
    """One trace compiled to columns + lazily-built classifications."""

    def __init__(self, trace: MeTrace, plane_bases: Dict[str, int],
                 stride: int, line_bytes: int, num_sets: int, assoc: int):
        self.n = len(trace)
        self.stride = stride
        self.line_bytes = line_bytes
        self.num_sets = num_sets
        self.assoc = assoc
        self.line_shift = line_bytes.bit_length() - 1
        self._build_columns(trace, plane_bases)
        self._instruction: Optional[InstructionClassification] = None
        self._loop: Optional[LoopClassification] = None
        self._lbb: Dict[int, LbbClassification] = {}

    # -- column construction --------------------------------------------------
    def _build_columns(self, trace: MeTrace,
                       plane_bases: Dict[str, int]) -> None:
        inv = trace.invocations
        n = self.n
        frame = np.fromiter((i.frame for i in inv), np.int64, n)
        mb_x = np.fromiter((i.mb_x for i in inv), np.int64, n)
        mb_y = np.fromiter((i.mb_y for i in inv), np.int64, n)
        pred_x = np.fromiter((i.pred_x for i in inv), np.int64, n)
        pred_y = np.fromiter((i.pred_y for i in inv), np.int64, n)
        mode = np.fromiter((int(i.mode) for i in inv), np.int64, n)

        unique_frames = np.unique(frame)
        recon = np.array([plane_bases[f"recon{f - 1}"]
                          for f in unique_frames.tolist()], dtype=np.int64)
        orig = np.array([plane_bases[f"orig{f}"]
                         for f in unique_frames.tolist()], dtype=np.int64)
        frame_idx = np.searchsorted(unique_frames, frame)

        stride = self.stride
        self.pred_base = recon[frame_idx] + pred_y * stride + pred_x
        self.ref_base = orig[frame_idx] + mb_y * stride + mb_x
        self.align = self.pred_base % 4
        self.word_base = self.pred_base - self.align
        rows_table, words_table = predictor_geometry_tables()
        self.rows = rows_table[self.align, mode]
        self.words = words_table[self.align, mode]
        self.span = 4 * self.words
        #: static-cycle table key per invocation: ``alignment * 4 + mode``
        self.key = self.align * 4 + mode

        if n:
            change = ((frame[1:] != frame[:-1]) | (mb_x[1:] != mb_x[:-1])
                      | (mb_y[1:] != mb_y[:-1]))
            self.group_starts = np.concatenate(
                ([0], np.nonzero(change)[0] + 1, [n]))
        else:
            self.group_starts = np.array([0], dtype=np.int64)

        # batched per-row line bounds: a padded (n, 17) grid for the
        # predictor rows and an (n_groups, 16) grid for the reference rows
        lb = self.line_bytes
        first, last = macroblock_row_line_bounds(
            self.word_base, stride, MAX_PREDICTOR_ROWS, self.span, lb)
        self.row_first: List[List[int]] = first.tolist()
        self.row_last: List[List[int]] = last.tolist()
        group_ref = self.ref_base[self.group_starts[:-1]]
        ref_first, ref_last = macroblock_row_line_bounds(
            group_ref, stride, REFERENCE_ROWS, REFERENCE_ROW_BYTES, lb)
        self.lba_first: List[List[int]] = ref_first.tolist()
        self.lba_last: List[List[int]] = ref_last.tolist()

        # plain-int views for the Python classification/evaluation loops
        self.rows_list = self.rows.tolist()
        self.key_list = self.key.tolist()
        self.ref_list = self.ref_base.tolist()
        self.group_starts_list = self.group_starts.tolist()

    def static_key_counts(self) -> np.ndarray:
        """Invocation count per ``alignment * 4 + mode`` key (16 bins).

        Instruction-level static cycles reduce to the dot product of this
        histogram with the kernel library's per-shape cycle table.
        """
        return np.bincount(self.key, minlength=16)

    # -- classification passes ------------------------------------------------
    def instruction_classification(self) -> InstructionClassification:
        """Classify the instruction-level load stream once (all variants)."""
        if self._instruction is not None:
            return self._instruction
        ns, assoc, shift = self.num_sets, self.assoc, self.line_shift
        lb, stride = self.line_bytes, self.stride
        sets = new_lru_sets(ns)
        miss_line: List[int] = []
        miss_inv: List[int] = []
        miss_next: List[bool] = []
        accesses = 0
        row_first, row_last = self.row_first, self.row_last
        rows_list, ref_list = self.rows_list, self.ref_list
        for i in range(self.n):
            first_i = row_first[i]
            last_i = row_last[i]
            for r in range(rows_list[i]):
                line = first_i[r]
                while True:
                    accesses += 1
                    ways = sets[(line >> shift) % ns]
                    if line in ways:
                        if ways[-1] != line:
                            ways.remove(line)
                            ways.append(line)
                    else:
                        miss_line.append(line)
                        miss_inv.append(i)
                        nxt = line + lb
                        miss_next.append(nxt not in sets[(nxt >> shift) % ns])
                        if len(ways) >= assoc:
                            ways.pop(0)
                        ways.append(line)
                    if line == last_i[r]:
                        break
                    line = last_i[r]
            base = ref_list[i]
            for r in range(REFERENCE_ROWS):
                addr = base + r * stride
                line = addr - addr % lb
                accesses += 1
                ways = sets[(line >> shift) % ns]
                if line in ways:
                    if ways[-1] != line:
                        ways.remove(line)
                        ways.append(line)
                else:
                    miss_line.append(line)
                    miss_inv.append(i)
                    nxt = line + lb
                    miss_next.append(nxt not in sets[(nxt >> shift) % ns])
                    if len(ways) >= assoc:
                        ways.pop(0)
                    ways.append(line)
        self._instruction = InstructionClassification(
            miss_line=miss_line, miss_inv=miss_inv,
            miss_next_absent=miss_next, accesses=accesses)
        return self._instruction

    def _classify_lba(self, group: int, sets: List[List[int]],
                      lba_counts: List[List[int]]) -> bool:
        """Record missing-line counts of one group's reference fill."""
        ns, shift = self.num_sets, self.line_shift
        first_g = self.lba_first[group]
        last_g = self.lba_last[group]
        counts = [0] * REFERENCE_ROWS
        any_miss = False
        for r in range(REFERENCE_ROWS):
            line = first_g[r]
            c = 0
            if line not in sets[(line >> shift) % ns]:
                c = 1
            other = last_g[r]
            if other != line and other not in sets[(other >> shift) % ns]:
                c += 1
            if c:
                counts[r] = c
                any_miss = True
        lba_counts.append(counts)
        return any_miss

    def loop_classification(self) -> LoopClassification:
        """Classify the non-LBB loop stream once (all bandwidths and β)."""
        if self._loop is not None:
            return self._loop
        ns, assoc, shift = self.num_sets, self.assoc, self.line_shift
        lb = self.line_bytes
        sets = new_lru_sets(ns)
        lba_counts: List[List[int]] = []
        lba_any: List[bool] = []
        pf_line: List[int] = []
        pf_row: List[int] = []
        pf_off: List[int] = [0]
        load_flags: List[int] = []
        load_off: List[int] = [0]
        inv_nmiss: List[int] = []
        miss_off: List[int] = [0]
        miss_next: List[bool] = []
        row_first, row_last = self.row_first, self.row_last
        rows_list = self.rows_list
        gstarts = self.group_starts_list

        def classify_prefetch(i: int) -> None:
            # prefetch-pattern queries: record absent lines only (resident
            # lines never reach the prefetch buffer); membership untouched
            first_i = row_first[i]
            last_i = row_last[i]
            for r in range(rows_list[i]):
                line = first_i[r]
                if line not in sets[(line >> shift) % ns]:
                    pf_line.append(line)
                    pf_row.append(r)
                other = last_i[r]
                if other != line \
                        and other not in sets[(other >> shift) % ns]:
                    pf_line.append(other)
                    pf_row.append(r)
            pf_off.append(len(pf_line))

        for g in range(len(gstarts) - 1):
            start, end = gstarts[g], gstarts[g + 1]
            lba_any.append(self._classify_lba(g, sets, lba_counts))
            classify_prefetch(start)
            for i in range(start, end):
                if i + 1 < end:
                    classify_prefetch(i + 1)
                nmiss = 0
                first_i = row_first[i]
                last_i = row_last[i]
                for r in range(rows_list[i]):
                    line = first_i[r]
                    while True:
                        ways = sets[(line >> shift) % ns]
                        if line in ways:
                            if ways[-1] != line:
                                ways.remove(line)
                                ways.append(line)
                            load_flags.append(0)
                        else:
                            load_flags.append(1)
                            nmiss += 1
                            nxt = line + lb
                            miss_next.append(
                                nxt not in sets[(nxt >> shift) % ns])
                            if len(ways) >= assoc:
                                ways.pop(0)
                            ways.append(line)
                        if line == last_i[r]:
                            break
                        line = last_i[r]
                load_off.append(len(load_flags))
                inv_nmiss.append(nmiss)
                miss_off.append(len(miss_next))
        self._loop = LoopClassification(
            lba_miss_counts=lba_counts, lba_group_has_miss=lba_any,
            pf_line=pf_line, pf_row=pf_row, pf_off=pf_off,
            load_flags=load_flags, load_off=load_off,
            inv_nmiss=inv_nmiss, miss_off=miss_off,
            miss_next_absent=miss_next)
        return self._loop

    def lbb_classification(self, capacity: int) -> LbbClassification:
        """Classify the Line Buffer B stream for one buffer capacity.

        Assumes no prefetch-buffer drop occurs (a drop would leave a line
        out of the buffer and change membership downstream); the
        per-scenario evaluator checks the capacity rule against live
        timing state and falls back to the legacy replay if it ever
        triggers, so the assumption is verified, not trusted.
        """
        cached = self._lbb.get(capacity)
        if cached is not None:
            return cached
        ns, assoc, shift = self.num_sets, self.assoc, self.line_shift
        lb = self.line_bytes
        sets = new_lru_sets(ns)
        lbb: Dict[int, bool] = {}  # insertion order = LRU order
        lba_counts: List[List[int]] = []
        lba_any: List[bool] = []
        pf_line: List[int] = []
        pf_row: List[int] = []
        pf_kind: List[int] = []
        pf_off: List[int] = [0]
        read_flags: List[int] = []
        read_off: List[int] = [0]
        inv_nmiss: List[int] = []
        miss_off: List[int] = [0]
        miss_next: List[bool] = []
        reused = 0
        row_first, row_last = self.row_first, self.row_last
        rows_list = self.rows_list
        gstarts = self.group_starts_list

        def stage_line(line: int, r: int) -> None:
            nonlocal reused
            if line in lbb:
                # associative reuse: LRU refresh, arrival kept, no request
                del lbb[line]
                lbb[line] = True
                reused += 1
                return
            kind = 1 if line in sets[(line >> shift) % ns] else 2
            while len(lbb) >= capacity:
                del lbb[next(iter(lbb))]
            lbb[line] = True
            pf_line.append(line)
            pf_row.append(r)
            pf_kind.append(kind)

        def classify_prefetch(i: int) -> None:
            first_i = row_first[i]
            last_i = row_last[i]
            for r in range(rows_list[i]):
                line = first_i[r]
                stage_line(line, r)
                if last_i[r] != line:
                    stage_line(last_i[r], r)
            pf_off.append(len(pf_line))

        for g in range(len(gstarts) - 1):
            start, end = gstarts[g], gstarts[g + 1]
            lba_any.append(self._classify_lba(g, sets, lba_counts))
            classify_prefetch(start)
            for i in range(start, end):
                if i + 1 < end:
                    classify_prefetch(i + 1)
                nmiss = 0
                first_i = row_first[i]
                last_i = row_last[i]
                for r in range(rows_list[i]):
                    line = first_i[r]
                    while True:
                        if line in lbb:
                            # tag hit: the fill moves the line on chip
                            # through the D$ controller (read_line keeps
                            # it warm there)
                            read_flags.append(0)
                            ways = sets[(line >> shift) % ns]
                            if line in ways:
                                ways.remove(line)
                                ways.append(line)
                            else:
                                if len(ways) >= assoc:
                                    ways.pop(0)
                                ways.append(line)
                        else:
                            # tag miss: a normal D-cache access
                            ways = sets[(line >> shift) % ns]
                            if line in ways:
                                read_flags.append(1)
                                if ways[-1] != line:
                                    ways.remove(line)
                                    ways.append(line)
                            else:
                                read_flags.append(2)
                                nmiss += 1
                                nxt = line + lb
                                miss_next.append(
                                    nxt not in sets[(nxt >> shift) % ns])
                                if len(ways) >= assoc:
                                    ways.pop(0)
                                ways.append(line)
                        if line == last_i[r]:
                            break
                        line = last_i[r]
                read_off.append(len(read_flags))
                inv_nmiss.append(nmiss)
                miss_off.append(len(miss_next))
        result = LbbClassification(
            lba_miss_counts=lba_counts, lba_group_has_miss=lba_any,
            pf_line=pf_line, pf_row=pf_row, pf_kind=pf_kind, pf_off=pf_off,
            read_flags=read_flags, read_off=read_off,
            inv_nmiss=inv_nmiss, miss_off=miss_off,
            miss_next_absent=miss_next, reused_total=reused)
        self._lbb[capacity] = result
        return result

"""Trace-driven timing of the ME kernel under each architectural scenario.

The replayer walks one encoding run's GetSad trace in program order and
charges, per invocation,

* **static cycles** — the shape's measured kernel execution time
  (instruction-level scenarios) or the RFU loop kernel's pipelined latency
  (loop-level scenarios), and
* **stall cycles** — from replaying the invocation's memory accesses
  through the D-cache / prefetch-buffer / line-buffer models, with the
  paper's prefetch strategy: the reference macroblock is gathered into
  Line Buffer A once per macroblock, and the prefetch-pattern for the
  *next* candidate predictor is issued before computing over the current
  one (double buffering with Line Buffer B in the Table 7 scenarios).

Instruction-level scenarios share the baseline's memory behaviour (A1/A2/A3
change computation only), so the baseline stall replay is computed once and
reused — exactly what the paper's tables imply.

Two replay engines produce these numbers:

* ``"columnar"`` (default) compiles the trace once into numpy column
  arrays (:class:`~repro.core.replay_compile.CompiledTrace`), classifies
  each memory stream's timing-independent hit/miss behaviour once, and
  then evaluates each scenario by replaying only the flagged events
  (:mod:`repro.core.replay_fast`);
* ``"legacy"`` walks every invocation through the object-model memory
  hierarchy (:class:`~repro.memory.MemorySystem` et al.).

Both are cycle-exact and produce identical :class:`MeTimingResult` values;
``--legacy-replay`` on the CLI (or ``set_default_replay_engine``) selects
the reference path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import faults

from repro.codec.frame import FrameLayout
from repro.codec.tracer import MeInvocation, MeTrace
from repro.core.replay_compile import CompiledTrace
from repro.core.replay_fast import (
    INTER_ACCESS_SPACING,
    ColumnarFallback,
    instruction_stall_replay,
    loop_replay,
)
from repro.core.scenarios import Scenario
from repro.errors import ExperimentError, ReplayDivergence
from repro.kernels import KernelLibrary, KernelShape
from repro.memory import (
    LineBufferA,
    LineBufferB,
    MemorySystem,
    MemoryTimings,
)
from repro.rfu.loop_model import InterpMode, LoopKernelModel, predictor_geometry
from repro.rfu.prefetch_ops import MacroblockPrefetchEngine

REPLAY_ENGINES = ("columnar", "legacy")
PHASE_NAMES = ("compile", "static", "stall", "loop")

_DEFAULT_ENGINE = ["columnar"]


def set_default_replay_engine(name: str) -> None:
    """Select the engine new :class:`TraceReplayer` instances use
    (``"columnar"`` or ``"legacy"``); the CLI's ``--legacy-replay`` flag
    routes here."""
    if name not in REPLAY_ENGINES:
        raise ExperimentError(
            f"unknown replay engine {name!r}; expected one of "
            f"{', '.join(REPLAY_ENGINES)}")
    _DEFAULT_ENGINE[0] = name


def default_replay_engine() -> str:
    """The engine newly constructed replayers default to."""
    return _DEFAULT_ENGINE[0]


#: process-wide sampled-verification state (``--verify-replay``); read
#: live by every replayer so it can be armed before or after construction
_VERIFICATION = {"pct": 0.0, "seed": 2002, "strict": False}


def set_replay_verification(pct: float, seed: int = 2002,
                            strict: bool = False) -> None:
    """Arm the sampled differential guard: re-check ``pct`` percent of
    columnar replay evaluations against the legacy walk.

    On a divergence the legacy result wins and a field-level diagnostic is
    recorded on the replayer (:attr:`TraceReplayer.divergences`, surfaced
    as ``replay_divergence`` run-log events); with ``strict=True`` the
    divergence raises :class:`~repro.errors.ReplayDivergence` instead.
    ``pct=0`` disarms the guard (the default — zero warm-path cost).
    """
    if not 0.0 <= pct <= 100.0:
        raise ExperimentError(
            f"--verify-replay expects a percentage in [0, 100], got {pct}")
    _VERIFICATION.update(pct=float(pct), seed=int(seed), strict=bool(strict))


def replay_verification() -> Dict:
    """The current verification state (pct/seed/strict)."""
    return dict(_VERIFICATION)


@dataclass
class MeTimingResult:
    """Timing of the whole ME kernel workload under one scenario."""

    scenario: str
    static_cycles: int
    stall_cycles: int
    invocations: int
    worst_loop_latency: Optional[int] = None
    demand_misses: int = 0
    prefetch_issued: int = 0
    prefetch_late: int = 0
    lb_reuse: int = 0

    @property
    def total_cycles(self) -> int:
        return self.static_cycles + self.stall_cycles

    def speedup_over(self, baseline: "MeTimingResult") -> float:
        return baseline.total_cycles / self.total_cycles

    def stall_fraction(self) -> float:
        return self.stall_cycles / self.total_cycles if self.total_cycles else 0.0

    def as_dict(self) -> Dict[str, int]:
        """Cycle totals as a JSON-serialisable dict (sweep observability).

        These are deterministic replay numbers — a serial and a parallel
        sweep of the same workload log identical values, which the sweep
        differential tests assert."""
        return {
            "static_cycles": self.static_cycles,
            "stall_cycles": self.stall_cycles,
            "total_cycles": self.total_cycles,
            "invocations": self.invocations,
        }


class _PhaseTimer:
    """Accumulates one phase's wall time + call count on ``__exit__``."""

    __slots__ = ("_bucket", "_start")

    def __init__(self, bucket: Dict[str, float]):
        self._bucket = bucket
        self._start = 0.0

    def __enter__(self) -> "_PhaseTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._bucket["wall_s"] += time.perf_counter() - self._start
        self._bucket["calls"] += 1


def _new_phases() -> Dict[str, Dict[str, float]]:
    return {name: {"wall_s": 0.0, "calls": 0, "cycles": 0}
            for name in PHASE_NAMES}


class TraceReplayer:
    """Replays one MeTrace under arbitrary scenarios."""

    #: core cycles around each GetSad call that no scenario removes:
    #: candidate address generation, the call itself, best-SAD compare and
    #: motion-vector bookkeeping of the search loop
    INVOCATION_OVERHEAD = 14

    def __init__(self, trace: MeTrace, layout: Optional[FrameLayout] = None,
                 timings: Optional[MemoryTimings] = None,
                 invocation_overhead: Optional[int] = None,
                 engine: Optional[str] = None):
        self.trace = trace
        self.layout = layout or FrameLayout()
        self.base_timings = timings or MemoryTimings()
        self.invocation_overhead = self.INVOCATION_OVERHEAD \
            if invocation_overhead is None else invocation_overhead
        engine = default_replay_engine() if engine is None else engine
        if engine not in REPLAY_ENGINES:
            raise ExperimentError(
                f"unknown replay engine {engine!r}; expected one of "
                f"{', '.join(REPLAY_ENGINES)}")
        self.engine_name = engine
        self.stride = self.layout.stride
        self._plane_bases: Dict[str, int] = {}
        self._allocate_planes()
        self._libraries: Dict[str, KernelLibrary] = {}
        #: (stall cycles, demand misses) keyed by MemoryTimings.memory_key()
        #: so scenarios with different memory knobs never share a result
        self._instruction_stalls: Dict[Tuple, Tuple[int, int]] = {}
        self._compiled_trace: Optional[CompiledTrace] = None
        self.phases = _new_phases()
        #: how many replays the sampled differential guard re-checked
        self.verified_replays = 0
        #: field-level diagnostics of every columnar/legacy divergence
        self.divergences: List[Dict] = []

    # -- observability --------------------------------------------------------
    def _phase(self, name: str) -> _PhaseTimer:
        return _PhaseTimer(self.phases[name])

    def phase_breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-phase replay cost (compile/static/stall/loop): wall seconds,
        number of timed sections, and model cycles attributed to the phase.
        Logged in sweep run-log events and ``sweep_report.json``."""
        return {name: {"wall_s": round(bucket["wall_s"], 6),
                       "calls": int(bucket["calls"]),
                       "cycles": int(bucket["cycles"])}
                for name, bucket in self.phases.items()}

    def phases_snapshot(self) -> Dict[str, Dict[str, float]]:
        """Deep copy of the phase counters (taken before forked work)."""
        return {name: dict(bucket) for name, bucket in self.phases.items()}

    def phases_delta(self, before: Dict[str, Dict[str, float]]) \
            -> Dict[str, Dict[str, float]]:
        """Phase counters accumulated since ``before`` (a snapshot).

        Parallel replay workers inherit the parent's counters via fork;
        returning only the delta lets the parent merge without double
        counting the inherited portion."""
        return {name: {key: bucket[key] - before[name][key]
                       for key in bucket}
                for name, bucket in self.phases.items()}

    def merge_phases(self, delta: Dict[str, Dict[str, float]]) -> None:
        """Fold a worker's :meth:`phases_delta` into this replayer."""
        for name, bucket in delta.items():
            mine = self.phases[name]
            for key, value in bucket.items():
                mine[key] += value

    # -- address plumbing -----------------------------------------------------
    def _allocate_planes(self) -> None:
        for frame in self.trace.frames():
            for name in (f"orig{frame}", f"recon{frame - 1}"):
                if name not in self._plane_bases:
                    self._plane_bases[name] = self.layout.allocate(name)

    def _addresses(self, inv: MeInvocation) -> Tuple[int, int, int]:
        """(pred byte address, alignment, reference MB address)."""
        pred_base = self._plane_bases[f"recon{inv.frame - 1}"] \
            + inv.pred_y * self.stride + inv.pred_x
        ref_base = self._plane_bases[f"orig{inv.frame}"] \
            + inv.mb_y * self.stride + inv.mb_x
        return pred_base, pred_base % 4, ref_base

    def _macroblock_groups(self) -> List[List[MeInvocation]]:
        groups: List[List[MeInvocation]] = []
        key = None
        for inv in self.trace:
            inv_key = (inv.frame, inv.mb_x, inv.mb_y)
            if inv_key != key:
                groups.append([])
                key = inv_key
            groups[-1].append(inv)
        return groups

    def _library(self, variant: str) -> KernelLibrary:
        if variant not in self._libraries:
            self._libraries[variant] = KernelLibrary(variant)
        return self._libraries[variant]

    def _timings(self, scenario: Scenario) -> MemoryTimings:
        base = self.base_timings
        return MemoryTimings(
            icache_size=base.icache_size, icache_line=base.icache_line,
            icache_assoc=base.icache_assoc, dcache_size=base.dcache_size,
            dcache_line=base.dcache_line, dcache_assoc=base.dcache_assoc,
            prefetch_entries=scenario.prefetch_entries,
            bus_latency=base.bus_latency,
            bus_service_interval=base.bus_service_interval,
            main_memory_size=base.main_memory_size,
        )

    def _compiled(self) -> CompiledTrace:
        """The columnar view of the trace, built once on first use."""
        if self._compiled_trace is None:
            with self._phase("compile"):
                self._compiled_trace = CompiledTrace(
                    self.trace, self._plane_bases, self.stride,
                    *self.base_timings.dcache_geometry())
        return self._compiled_trace

    # -- instruction-level scenarios ---------------------------------------------
    def _replay_instruction_stalls(self, scenario: Scenario) -> Tuple[int, int]:
        """(stall cycles, demand misses) of the baseline memory behaviour."""
        timings = self._timings(scenario)
        key = timings.memory_key()
        cached = self._instruction_stalls.get(key)
        if cached is not None:
            return cached
        with self._phase("stall"):
            if self.engine_name == "columnar":
                result = instruction_stall_replay(self._compiled(), timings)
            else:
                result = self._legacy_instruction_stalls(timings)
            self.phases["stall"]["cycles"] += result[0]
        self._instruction_stalls[key] = result
        return result

    def _legacy_instruction_stalls(self, timings: MemoryTimings) \
            -> Tuple[int, int]:
        memory = MemorySystem(timings)
        dcache = memory.dcache
        now = 0
        stride = self.stride
        for inv in self.trace:
            pred_base, align, ref_base = self._addresses(inv)
            rows, words = predictor_geometry(align, inv.mode)
            word_base = pred_base - align
            for row in range(rows):
                row_addr = word_base + row * stride
                for line in dcache.lines_for_range(row_addr, 4 * words):
                    now += memory.load_timing(line, now)
            for row in range(16):
                now += memory.load_timing(ref_base + row * stride, now)
            now += INTER_ACCESS_SPACING  # stalls dominate the spacing
        return (memory.stats.dcache_stall_cycles,
                memory.stats.demand_miss_stalls)

    def _replay_instruction(self, scenario: Scenario) -> MeTimingResult:
        library = self._library(scenario.variant)
        with self._phase("static"):
            if self.engine_name == "columnar":
                static = self._columnar_static(library)
            else:
                static = self._legacy_static(library)
            self.phases["static"]["cycles"] += static
        stalls, misses = self._replay_instruction_stalls(scenario)
        return MeTimingResult(
            scenario=scenario.name,
            static_cycles=static,
            stall_cycles=stalls,
            invocations=len(self.trace),
            demand_misses=misses,
        )

    def _columnar_static(self, library: KernelLibrary) -> int:
        """Static cycles as one vectorized lookup: per-(alignment, mode)
        invocation counts dotted with the measured kernel latencies."""
        counts = self._compiled().static_key_counts()
        static = self.invocation_overhead * len(self.trace)
        for key, count in enumerate(counts):
            if count:
                static += int(count) * library.static_cycles(
                    key // 4, InterpMode(key % 4))
        return static

    def _legacy_static(self, library: KernelLibrary) -> int:
        cache: Dict[Tuple[int, InterpMode], int] = {}
        static = self.invocation_overhead * len(self.trace)
        for inv in self.trace:
            _, align, _ = self._addresses(inv)
            key = (align, inv.mode)
            if key not in cache:
                cache[key] = library.static_cycles(align, inv.mode)
            static += cache[key]
        return static

    # -- loop-level scenarios --------------------------------------------------------
    def _replay_loop_columnar(self, scenario: Scenario) -> MeTimingResult:
        compiled = self._compiled()
        params = scenario.loop_params
        with self._phase("compile"):
            # classification passes are memoized on the compiled trace;
            # charging them here keeps "loop" a pure evaluation phase
            if params.use_line_buffer_b:
                compiled.lbb_classification(scenario.lbb_banks * 17)
            else:
                compiled.loop_classification()
        with self._phase("loop"):
            out = loop_replay(compiled, params, self._timings(scenario),
                              scenario.lbb_banks, self.invocation_overhead)
            self.phases["loop"]["cycles"] += \
                out["static_cycles"] + out["stall_cycles"]
        return MeTimingResult(
            scenario=scenario.name,
            invocations=len(self.trace),
            **out,
        )

    def _replay_loop(self, scenario: Scenario) -> MeTimingResult:
        params = scenario.loop_params
        memory = MemorySystem(self._timings(scenario))
        line_buffer_a = LineBufferA()
        line_buffer_b = LineBufferB(memory, banks=scenario.lbb_banks) \
            if params.use_line_buffer_b else None
        engine = MacroblockPrefetchEngine(memory, line_buffer_a, line_buffer_b)
        model = LoopKernelModel(params, memory, line_buffer_a, line_buffer_b,
                                engine)
        stride = self.stride
        now = 0
        static = stalls = 0

        def prefetch_candidate(inv: MeInvocation, cycle: int) -> None:
            pred_base, align, _ = self._addresses(inv)
            rows, words = predictor_geometry(align, inv.mode)
            word_base = pred_base - align
            if line_buffer_b is not None:
                engine.fill_line_buffer_b(word_base, stride, rows, cycle,
                                          row_bytes=4 * words)
            else:
                engine.prefetch_macroblock(word_base, stride, rows, cycle,
                                           row_bytes=4 * words)

        for group in self._macroblock_groups():
            _, _, ref_base = self._addresses(group[0])
            engine.fill_line_buffer_a(ref_base, stride, now)
            prefetch_candidate(group[0], now)
            now += 2  # the two rfupft issue slots
            for index, inv in enumerate(group):
                now += self.invocation_overhead
                static += self.invocation_overhead
                if index + 1 < len(group):
                    prefetch_candidate(group[index + 1], now)
                    now += 1
                pred_base, align, _ = self._addresses(inv)
                cycles, stall = model.run_invocation(
                    pred_base, stride, align, inv.mode, now)
                now += cycles
                static += cycles - stall
                stalls += stall

        pf_stats = memory.prefetch_buffer.stats
        return MeTimingResult(
            scenario=scenario.name,
            static_cycles=static,
            stall_cycles=stalls,
            invocations=len(self.trace),
            worst_loop_latency=model.worst_case_latency(),
            demand_misses=memory.stats.demand_miss_stalls,
            prefetch_issued=pf_stats.issued + (
                line_buffer_b.stats.requests if line_buffer_b else 0),
            prefetch_late=pf_stats.late,
            lb_reuse=line_buffer_b.stats.reused if line_buffer_b else 0,
        )

    def _replay_loop_legacy_timed(self, scenario: Scenario) -> MeTimingResult:
        with self._phase("loop"):
            result = self._replay_loop(scenario)
            self.phases["loop"]["cycles"] += \
                result.static_cycles + result.stall_cycles
        return result

    # -- sampled differential verification ------------------------------------
    def _should_verify(self, scenario_name: str) -> bool:
        """Deterministic sampling decision for ``--verify-replay PCT``."""
        pct = _VERIFICATION["pct"]
        if pct <= 0.0 or self.engine_name != "columnar":
            return False
        if pct >= 100.0:
            return True
        blob = f"{_VERIFICATION['seed']}:{scenario_name}"
        digest = hashlib.sha256(blob.encode("utf-8")).digest()
        draw = int.from_bytes(digest[:8], "big") / float(1 << 64)
        return draw < pct / 100.0

    def _reference_replay(self, scenario: Scenario) -> MeTimingResult:
        """The scenario through the legacy walk, bypassing every memoised
        structure the columnar path may have populated — a genuinely
        independent recomputation."""
        if scenario.kind == "instruction":
            library = self._library(scenario.variant)
            stalls, misses = self._legacy_instruction_stalls(
                self._timings(scenario))
            return MeTimingResult(
                scenario=scenario.name,
                static_cycles=self._legacy_static(library),
                stall_cycles=stalls,
                invocations=len(self.trace),
                demand_misses=misses,
            )
        return self._replay_loop(scenario)

    def _verified(self, scenario: Scenario,
                  result: MeTimingResult) -> MeTimingResult:
        """Re-check a columnar result against the legacy walk; on
        divergence record the field-level diff and fall back to legacy."""
        perturbation = faults.replay_perturbation(scenario.name)
        if perturbation:
            result = dataclasses.replace(
                result, static_cycles=result.static_cycles + perturbation)
        reference = self._reference_replay(scenario)
        self.verified_replays += 1
        if result == reference:
            return result
        diff = {}
        for f in dataclasses.fields(MeTimingResult):
            mine, theirs = getattr(result, f.name), \
                getattr(reference, f.name)
            if mine != theirs:
                diff[f.name] = {"columnar": mine, "legacy": theirs}
        record = {"scenario": scenario.name, "engine": "columnar",
                  "code": ReplayDivergence.code, "fields": diff}
        self.divergences.append(record)
        message = (f"columnar/legacy divergence in scenario "
                   f"{scenario.name!r}: {diff}")
        if _VERIFICATION["strict"]:
            raise ReplayDivergence(message)
        print(f"warning: [{ReplayDivergence.code}] {message}; using the "
              f"legacy result", file=sys.stderr)
        return reference

    # -- public API -------------------------------------------------------------------
    def replay(self, scenario: Scenario) -> MeTimingResult:
        """Replay the full trace under one scenario.

        When the sampled differential guard is armed
        (:func:`set_replay_verification`), a deterministic fraction of
        columnar evaluations is re-checked field-for-field against the
        legacy walk; a divergence is diagnosed and the legacy result is
        returned (the columnar engine never silently wins an argument
        with the reference model).
        """
        if not len(self.trace):
            raise ExperimentError("cannot replay an empty trace")
        used_columnar = self.engine_name == "columnar"
        if scenario.kind == "instruction":
            result = self._replay_instruction(scenario)
        elif self.engine_name == "columnar":
            try:
                result = self._replay_loop_columnar(scenario)
            except ColumnarFallback:
                # a dropped Line Buffer B prefetch invalidates the shared
                # classification for this scenario only; the legacy walk
                # is always exact
                result = self._replay_loop_legacy_timed(scenario)
                used_columnar = False
        else:
            result = self._replay_loop_legacy_timed(scenario)
        if used_columnar and self._should_verify(scenario.name):
            result = self._verified(scenario, result)
        return result

    def prime_shared(self, scenarios: List[Scenario]) -> None:
        """Precompute every structure the given scenarios share (compiled
        columns, stream classifications, instruction stall replays) so that
        forked replay workers inherit them instead of each rebuilding."""
        instruction = [s for s in scenarios if s.kind == "instruction"]
        loops = [s for s in scenarios if s.kind != "instruction"]
        if self.engine_name == "columnar" and scenarios:
            compiled = self._compiled()
            with self._phase("compile"):
                if instruction:
                    compiled.instruction_classification()
                if any(not s.loop_params.use_line_buffer_b for s in loops):
                    compiled.loop_classification()
                for banks in sorted({s.lbb_banks for s in loops
                                     if s.loop_params.use_line_buffer_b}):
                    compiled.lbb_classification(banks * 17)
        for scenario in instruction:
            self._replay_instruction_stalls(scenario)

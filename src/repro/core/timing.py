"""Trace-driven timing of the ME kernel under each architectural scenario.

The replayer walks one encoding run's GetSad trace in program order and
charges, per invocation,

* **static cycles** — the shape's measured kernel execution time
  (instruction-level scenarios) or the RFU loop kernel's pipelined latency
  (loop-level scenarios), and
* **stall cycles** — from replaying the invocation's memory accesses
  through the D-cache / prefetch-buffer / line-buffer models, with the
  paper's prefetch strategy: the reference macroblock is gathered into
  Line Buffer A once per macroblock, and the prefetch-pattern for the
  *next* candidate predictor is issued before computing over the current
  one (double buffering with Line Buffer B in the Table 7 scenarios).

Instruction-level scenarios share the baseline's memory behaviour (A1/A2/A3
change computation only), so the baseline stall replay is computed once and
reused — exactly what the paper's tables imply.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.codec.frame import FrameLayout
from repro.codec.tracer import MeInvocation, MeTrace
from repro.core.scenarios import Scenario
from repro.errors import ExperimentError
from repro.kernels import KernelLibrary, KernelShape
from repro.memory import (
    LineBufferA,
    LineBufferB,
    MemorySystem,
    MemoryTimings,
)
from repro.rfu.loop_model import InterpMode, LoopKernelModel, predictor_geometry
from repro.rfu.prefetch_ops import MacroblockPrefetchEngine


@dataclass
class MeTimingResult:
    """Timing of the whole ME kernel workload under one scenario."""

    scenario: str
    static_cycles: int
    stall_cycles: int
    invocations: int
    worst_loop_latency: Optional[int] = None
    demand_misses: int = 0
    prefetch_issued: int = 0
    prefetch_late: int = 0
    lb_reuse: int = 0

    @property
    def total_cycles(self) -> int:
        return self.static_cycles + self.stall_cycles

    def speedup_over(self, baseline: "MeTimingResult") -> float:
        return baseline.total_cycles / self.total_cycles

    def stall_fraction(self) -> float:
        return self.stall_cycles / self.total_cycles if self.total_cycles else 0.0

    def as_dict(self) -> Dict[str, int]:
        """Cycle totals as a JSON-serialisable dict (sweep observability).

        These are deterministic replay numbers — a serial and a parallel
        sweep of the same workload log identical values, which the sweep
        differential tests assert."""
        return {
            "static_cycles": self.static_cycles,
            "stall_cycles": self.stall_cycles,
            "total_cycles": self.total_cycles,
            "invocations": self.invocations,
        }


class TraceReplayer:
    """Replays one MeTrace under arbitrary scenarios."""

    #: core cycles around each GetSad call that no scenario removes:
    #: candidate address generation, the call itself, best-SAD compare and
    #: motion-vector bookkeeping of the search loop
    INVOCATION_OVERHEAD = 14

    def __init__(self, trace: MeTrace, layout: Optional[FrameLayout] = None,
                 timings: Optional[MemoryTimings] = None,
                 invocation_overhead: Optional[int] = None):
        self.trace = trace
        self.layout = layout or FrameLayout()
        self.base_timings = timings or MemoryTimings()
        self.invocation_overhead = self.INVOCATION_OVERHEAD \
            if invocation_overhead is None else invocation_overhead
        self.stride = self.layout.stride
        self._plane_bases: Dict[str, int] = {}
        self._allocate_planes()
        self._libraries: Dict[str, KernelLibrary] = {}
        self._instruction_stalls: Optional[Tuple[int, int]] = None

    # -- address plumbing -----------------------------------------------------
    def _allocate_planes(self) -> None:
        for frame in self.trace.frames():
            for name in (f"orig{frame}", f"recon{frame - 1}"):
                if name not in self._plane_bases:
                    self._plane_bases[name] = self.layout.allocate(name)

    def _addresses(self, inv: MeInvocation) -> Tuple[int, int, int]:
        """(pred byte address, alignment, reference MB address)."""
        pred_base = self._plane_bases[f"recon{inv.frame - 1}"] \
            + inv.pred_y * self.stride + inv.pred_x
        ref_base = self._plane_bases[f"orig{inv.frame}"] \
            + inv.mb_y * self.stride + inv.mb_x
        return pred_base, pred_base % 4, ref_base

    def _macroblock_groups(self) -> List[List[MeInvocation]]:
        groups: List[List[MeInvocation]] = []
        key = None
        for inv in self.trace:
            inv_key = (inv.frame, inv.mb_x, inv.mb_y)
            if inv_key != key:
                groups.append([])
                key = inv_key
            groups[-1].append(inv)
        return groups

    def _library(self, variant: str) -> KernelLibrary:
        if variant not in self._libraries:
            self._libraries[variant] = KernelLibrary(variant)
        return self._libraries[variant]

    def _timings(self, scenario: Scenario) -> MemoryTimings:
        base = self.base_timings
        return MemoryTimings(
            icache_size=base.icache_size, icache_line=base.icache_line,
            icache_assoc=base.icache_assoc, dcache_size=base.dcache_size,
            dcache_line=base.dcache_line, dcache_assoc=base.dcache_assoc,
            prefetch_entries=scenario.prefetch_entries,
            bus_latency=base.bus_latency,
            bus_service_interval=base.bus_service_interval,
            main_memory_size=base.main_memory_size,
        )

    # -- instruction-level scenarios ---------------------------------------------
    def _replay_instruction_stalls(self, scenario: Scenario) -> Tuple[int, int]:
        """(stall cycles, demand misses) of the baseline memory behaviour."""
        if self._instruction_stalls is not None:
            return self._instruction_stalls
        memory = MemorySystem(self._timings(scenario))
        dcache = memory.dcache
        now = 0
        stride = self.stride
        for inv in self.trace:
            pred_base, align, ref_base = self._addresses(inv)
            rows, words = predictor_geometry(align, inv.mode)
            word_base = pred_base - align
            for row in range(rows):
                row_addr = word_base + row * stride
                for line in dcache.lines_for_range(row_addr, 4 * words):
                    now += memory.load_timing(line, now)
            for row in range(16):
                now += memory.load_timing(ref_base + row * stride, now)
            now += 280  # approximate inter-access spacing; stalls dominate
        self._instruction_stalls = (memory.stats.dcache_stall_cycles,
                                    memory.stats.demand_miss_stalls)
        return self._instruction_stalls

    def _replay_instruction(self, scenario: Scenario) -> MeTimingResult:
        library = self._library(scenario.variant)
        cache: Dict[Tuple[int, InterpMode], int] = {}
        static = self.invocation_overhead * len(self.trace)
        for inv in self.trace:
            _, align, _ = self._addresses(inv)
            key = (align, inv.mode)
            if key not in cache:
                cache[key] = library.static_cycles(align, inv.mode)
            static += cache[key]
        stalls, misses = self._replay_instruction_stalls(scenario)
        return MeTimingResult(
            scenario=scenario.name,
            static_cycles=static,
            stall_cycles=stalls,
            invocations=len(self.trace),
            demand_misses=misses,
        )

    # -- loop-level scenarios --------------------------------------------------------
    def _replay_loop(self, scenario: Scenario) -> MeTimingResult:
        params = scenario.loop_params
        memory = MemorySystem(self._timings(scenario))
        line_buffer_a = LineBufferA()
        line_buffer_b = LineBufferB(memory, banks=scenario.lbb_banks) \
            if params.use_line_buffer_b else None
        engine = MacroblockPrefetchEngine(memory, line_buffer_a, line_buffer_b)
        model = LoopKernelModel(params, memory, line_buffer_a, line_buffer_b,
                                engine)
        stride = self.stride
        now = 0
        static = stalls = 0

        def prefetch_candidate(inv: MeInvocation, cycle: int) -> None:
            pred_base, align, _ = self._addresses(inv)
            rows, words = predictor_geometry(align, inv.mode)
            word_base = pred_base - align
            if line_buffer_b is not None:
                engine.fill_line_buffer_b(word_base, stride, rows, cycle,
                                          row_bytes=4 * words)
            else:
                engine.prefetch_macroblock(word_base, stride, rows, cycle,
                                           row_bytes=4 * words)

        for group in self._macroblock_groups():
            _, _, ref_base = self._addresses(group[0])
            engine.fill_line_buffer_a(ref_base, stride, now)
            prefetch_candidate(group[0], now)
            now += 2  # the two rfupft issue slots
            for index, inv in enumerate(group):
                now += self.invocation_overhead
                static += self.invocation_overhead
                if index + 1 < len(group):
                    prefetch_candidate(group[index + 1], now)
                    now += 1
                pred_base, align, _ = self._addresses(inv)
                cycles, stall = model.run_invocation(
                    pred_base, stride, align, inv.mode, now)
                now += cycles
                static += cycles - stall
                stalls += stall

        pf_stats = memory.prefetch_buffer.stats
        return MeTimingResult(
            scenario=scenario.name,
            static_cycles=static,
            stall_cycles=stalls,
            invocations=len(self.trace),
            worst_loop_latency=model.worst_case_latency(),
            demand_misses=memory.stats.demand_miss_stalls,
            prefetch_issued=pf_stats.issued + (
                line_buffer_b.stats.requests if line_buffer_b else 0),
            prefetch_late=pf_stats.late,
            lb_reuse=line_buffer_b.stats.reused if line_buffer_b else 0,
        )

    # -- public API -------------------------------------------------------------------
    def replay(self, scenario: Scenario) -> MeTimingResult:
        """Replay the full trace under one scenario."""
        if not len(self.trace):
            raise ExperimentError("cannot replay an empty trace")
        if scenario.kind == "instruction":
            return self._replay_instruction(scenario)
        return self._replay_loop(scenario)

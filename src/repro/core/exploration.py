"""End-to-end exploration driver: encode once, replay every scenario.

This is the top-level object the experiments and examples use::

    exploration = Exploration(ExplorationConfig(frames=10))
    result = exploration.run(all_scenarios())
    print(result.speedup("loop_1x32_b1"))

The encoder runs once (functional, numpy); its GetSad trace then replays
under each architectural scenario.  Whole-application numbers (the paper's
25.6 % initial profile and Table 7's %Rel column) combine the ME kernel
cycles with the non-ME cost model.

Scenario replays are mutually independent (each builds a fresh memory
system over the shared immutable trace), so :meth:`Exploration.run`
accepts a ``jobs`` knob that fans them across forked worker processes —
the parent materialises the trace, the replayer and the shared baseline
stall replay first, so workers inherit the expensive state copy-on-write
and results are identical to the serial path in the original order.
"""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.codec.costmodel import CycleCostModel
from repro.codec.encoder import EncoderConfig, EncoderReport, Mpeg4Encoder
from repro.codec.motion import ThreeStepSearch
from repro.codec.sequence import SyntheticSequenceConfig, synthetic_sequence
from repro.core.scenarios import Scenario, instruction_scenario
from repro.core.timing import MeTimingResult, TraceReplayer
from repro.errors import ExperimentError
from repro.memory import MemoryTimings


@dataclass
class ExplorationConfig:
    """Workload + platform parameters of one exploration run.

    The paper's configuration is 25 QCIF frames at Q = 10; smaller frame
    counts trade fidelity for runtime (tests use 3-4 frames).
    """

    frames: int = 25
    seed: int = 2002
    qp: int = 10
    #: initial step of the three-step integer search; 2 puts the diagonal-
    #: interpolation call fraction near the paper's measured 18 %
    search_initial_step: int = 2
    #: score ME candidates on the vectorized half-pel plane engine; the
    #: GetSad trace every scenario replays is bit-identical either way
    use_fast_engine: bool = True
    #: replay engine override ("columnar"/"legacy"); None follows the
    #: process-wide default selected by ``--legacy-replay``
    replay_engine: Optional[str] = None
    timings: MemoryTimings = field(default_factory=MemoryTimings)
    cost_model: CycleCostModel = field(default_factory=CycleCostModel)


@dataclass
class ExplorationResult:
    """Encoder statistics + per-scenario ME timing + whole-app context."""

    config: ExplorationConfig
    encoder_report: EncoderReport
    results: Dict[str, MeTimingResult]
    non_me_cycles: int

    @property
    def baseline(self) -> MeTimingResult:
        try:
            return self.results["orig"]
        except KeyError:
            raise ExperimentError(
                "the baseline 'orig' scenario was not replayed") from None

    def result(self, name: str) -> MeTimingResult:
        try:
            return self.results[name]
        except KeyError:
            raise ExperimentError(f"scenario {name!r} was not replayed") from None

    def speedup(self, name: str) -> float:
        """ME-kernel speedup of a scenario over the optimised baseline."""
        return self.result(name).speedup_over(self.baseline)

    def improvement_percent(self, name: str) -> float:
        """Cycle reduction of the ME kernel, in percent of the baseline."""
        baseline = self.baseline.total_cycles
        return 100.0 * (baseline - self.result(name).total_cycles) / baseline

    def application_cycles(self, name: str) -> int:
        """Whole-application cycles with this scenario's ME kernel."""
        return self.non_me_cycles + self.result(name).total_cycles

    def me_fraction(self, name: str) -> float:
        """GetSad share of the whole application (%Rel of Table 7)."""
        return self.result(name).total_cycles / self.application_cycles(name)

    def stall_reduction_percent(self, name: str) -> float:
        """Cache-stall reduction relative to the baseline, in percent."""
        base = self.baseline.stall_cycles
        if base == 0:
            return 0.0
        return 100.0 * (base - self.result(name).stall_cycles) / base


class Exploration:
    """Runs the functional encoder once and replays scenarios on demand."""

    def __init__(self, config: Optional[ExplorationConfig] = None):
        self.config = config or ExplorationConfig()
        self._report: Optional[EncoderReport] = None
        self._replayer: Optional[TraceReplayer] = None

    @property
    def encoder_report(self) -> EncoderReport:
        if self._report is None:
            sequence = synthetic_sequence(SyntheticSequenceConfig(
                frames=self.config.frames, seed=self.config.seed))
            encoder = Mpeg4Encoder(EncoderConfig(
                qp=self.config.qp,
                strategy=ThreeStepSearch(self.config.search_initial_step),
                use_fast_engine=self.config.use_fast_engine))
            self._report = encoder.encode(sequence)
        return self._report

    @property
    def replayer(self) -> TraceReplayer:
        if self._replayer is None:
            self._replayer = TraceReplayer(self.encoder_report.trace,
                                           timings=self.config.timings,
                                           engine=self.config.replay_engine)
        return self._replayer

    def non_me_cycles(self) -> int:
        return self.config.cost_model.non_me_cycles(self.encoder_report.work)

    def run(self, scenarios: Iterable[Scenario],
            include_baseline: bool = True,
            jobs: int = 1) -> ExplorationResult:
        """Replay the listed scenarios (plus the baseline unless disabled).

        ``jobs > 1`` replays the scenarios across that many forked worker
        processes (independent replays, deterministic result ordering);
        it falls back to the serial path where ``fork`` is unavailable.
        """
        scenarios = list(scenarios)
        if include_baseline and not any(s.name == "orig" for s in scenarios):
            scenarios.insert(0, instruction_scenario("orig"))
        if jobs > 1 and len(scenarios) > 1 \
                and "fork" in multiprocessing.get_all_start_methods():
            results = self._replay_parallel(scenarios, jobs)
        else:
            results = {scenario.name: self.replayer.replay(scenario)
                       for scenario in scenarios}
        return ExplorationResult(
            config=self.config,
            encoder_report=self.encoder_report,
            results=results,
            non_me_cycles=self.non_me_cycles(),
        )

    def _replay_parallel(self, scenarios: List[Scenario],
                         jobs: int) -> Dict[str, MeTimingResult]:
        """Fan independent scenario replays across forked workers.

        Everything the scenarios share — the compiled trace columns, the
        stream classifications, the instruction-level stall replays — is
        computed here, in the parent, so every forked worker inherits the
        cached state instead of recomputing it.  Workers return their
        phase-counter deltas alongside the timing so the parent's replay
        observability covers the forked work without double counting."""
        replayer = self.replayer
        replayer.prime_shared(scenarios)
        global _FORK_EXPLORATION
        _FORK_EXPLORATION = self
        try:
            context = multiprocessing.get_context("fork")
            with context.Pool(min(jobs, len(scenarios))) as pool:
                outcomes = pool.map(_replay_in_worker, scenarios)
        finally:
            _FORK_EXPLORATION = None
        for _, delta, divergences, verified in outcomes:
            replayer.merge_phases(delta)
            replayer.divergences.extend(divergences)
            replayer.verified_replays += verified
        return {scenario.name: timing
                for scenario, (timing, _, _, _) in zip(scenarios, outcomes)}


#: the exploration the forked replay workers operate on (set by the parent
#: immediately before the fork, inherited copy-on-write by the children)
_FORK_EXPLORATION: Optional[Exploration] = None


def _replay_in_worker(scenario: Scenario):
    """Replay one scenario; returns ``(timing, phase-counter delta,
    new divergence records, verified-replay count)``.

    The snapshot/delta dance exists because the forked worker inherits the
    parent's phase counters (and any pre-existing divergence records):
    reporting only the growth keeps the parent's merge free of the
    inherited (already-counted) portion."""
    replayer = _FORK_EXPLORATION.replayer
    before = replayer.phases_snapshot()
    known = len(replayer.divergences)
    verified_before = replayer.verified_replays
    timing = replayer.replay(scenario)
    return (timing, replayer.phases_delta(before),
            replayer.divergences[known:],
            replayer.verified_replays - verified_before)

"""Named architectural scenarios of the exploration (paper §5).

Instruction-level scenarios differ in the GetSad kernel variant executed on
the core; loop-level scenarios replace the kernel with one long-latency RFU
instruction and differ in bandwidth, technology scaling β and local
storage.  Loop-level scenarios extend the prefetch buffer to 64 entries to
hold the macroblock prefetch-pattern bursts, as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ExperimentError
from repro.rfu.loop_model import Bandwidth, LoopKernelParams


@dataclass(frozen=True)
class Scenario:
    """One point of the architectural space."""

    name: str
    kind: str                                 # "instruction" | "loop"
    variant: Optional[str] = None             # instruction kind: kernel variant
    loop_params: Optional[LoopKernelParams] = None
    prefetch_entries: int = 8
    software_prefetch: bool = False           # issue rfupft ahead of each MB
    #: Line Buffer B organisation (banks x 17 lines); 4 is the paper's
    lbb_banks: int = 4

    def __post_init__(self):
        if self.kind == "instruction" and self.variant is None:
            raise ExperimentError(f"{self.name}: instruction scenario "
                                  f"needs a kernel variant")
        if self.kind == "loop" and self.loop_params is None:
            raise ExperimentError(f"{self.name}: loop scenario needs params")
        if self.kind not in ("instruction", "loop"):
            raise ExperimentError(f"{self.name}: unknown kind {self.kind!r}")


def instruction_scenario(variant: str) -> Scenario:
    """Baseline or A1/A2/A3 scenario."""
    return Scenario(name=variant, kind="instruction", variant=variant)


def loop_scenario(bandwidth: Bandwidth, beta: float = 1.0,
                  line_buffer_b: bool = False,
                  lbb_banks: int = 4) -> Scenario:
    """A loop-level kernel scenario (Tables 2 and 7)."""
    params = LoopKernelParams(bandwidth=bandwidth, beta=beta,
                              use_line_buffer_b=line_buffer_b)
    suffix = "+2lb" if line_buffer_b else ""
    if line_buffer_b and lbb_banks != 4:
        suffix = f"+2lb{lbb_banks}"
    return Scenario(
        name=f"loop_{bandwidth.value}{suffix}_b{beta:g}",
        kind="loop",
        loop_params=params,
        prefetch_entries=64,
        software_prefetch=True,
        lbb_banks=lbb_banks,
    )


#: Table 1 scenarios in paper order.
INSTRUCTION_SCENARIOS: List[Scenario] = [
    instruction_scenario(variant) for variant in ("orig", "a1", "a2", "a3")
]

#: Table 2 scenarios in paper order (one line buffer).
LOOP_SCENARIOS: List[Scenario] = [
    loop_scenario(bandwidth, beta)
    for beta in (1.0, 5.0)
    for bandwidth in (Bandwidth.B1X32, Bandwidth.B1X64, Bandwidth.B2X64)
]

#: Table 7 scenarios (two line buffers; misses served at 1x32).
TWO_LINE_BUFFER_SCENARIOS: List[Scenario] = [
    loop_scenario(Bandwidth.B1X32, beta, line_buffer_b=True)
    for beta in (1.0, 5.0)
]


def all_scenarios() -> List[Scenario]:
    return INSTRUCTION_SCENARIOS + LOOP_SCENARIOS + TWO_LINE_BUFFER_SCENARIOS

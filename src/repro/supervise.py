"""Shared supervision primitives for the multi-process fabrics.

Both fabrics — the distributed sweep (:mod:`repro.sweep.distributed`) and
the streaming codec service (:mod:`repro.serve`) — detect *death* for
free (TCP disconnect, ``Process.is_alive``) but strand work when a peer
merely *hangs*: the connection stays open, the process stays alive, and
nothing ever finishes.  This module hosts the pieces both sides share:

* :class:`LeaseTable` — deadline supervision over a set of keyed work
  items.  A lease is granted with a time budget; refreshing it
  (:meth:`LeaseTable.beat`) pushes the deadline out; :meth:`expired`
  pops every lease past its deadline so the supervisor can revoke and
  requeue.  The sweep coordinator keys leases by cell name and refreshes
  them from worker ``{"op": "heartbeat"}`` frames; the codec service
  keys them by ``(stream, segment)`` with no refreshes at all — there
  the budget *is* the per-segment deadline.

* :class:`HeartbeatSender` — a daemon thread that invokes a callback at
  a fixed interval until stopped, swallowing nothing: the first callback
  exception stops the sender and is re-raised from :meth:`stop` (a
  worker whose heartbeats fail should hear about it, not beat on).

* :func:`retry_backoff_s` — the shared reconnect schedule: bounded
  exponential backoff with deterministic (hash-derived) jitter.  The
  transport clients and the sweep-worker reconnect loop all sleep by
  this one function, so transient connection failures are retried the
  same way everywhere and the schedule stays reproducible under test.

* The shared-secret handshake (:func:`auth_challenge`, :func:`auth_proof`,
  :func:`auth_verify`, :func:`resolve_token`): HMAC-SHA256
  challenge–response so the token itself never crosses the wire.  The
  server mints a nonce per connection; the client proves knowledge of
  the token by returning ``HMAC(token, nonce)``; comparison is
  constant-time.  Both fabrics speak exactly this handshake, differing
  only in which frame carries the proof.

Everything here is synchronous and dependency-free so the asyncio
coordinator, the blocking worker loop, and the drainer threads of the
service can all use it directly.
"""

from __future__ import annotations

import hmac
import hashlib
import os
import secrets
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional

#: environment variable consulted when no explicit token is given
AUTH_ENV_VAR = "REPRO_AUTH_TOKEN"


# -- leases -------------------------------------------------------------------

@dataclass
class Lease:
    """One supervised work item: who holds it, until when."""

    key: Hashable
    attempt: int
    budget_s: float
    granted_at: float
    #: monotonic time of the most recent grant/refresh
    last_beat: float
    deadline: float
    beats: int = 0
    #: free-form payload the supervisor wants back on expiry
    data: dict = field(default_factory=dict)

    def overdue_s(self, now: float) -> float:
        """How far past the deadline the lease is (<= 0 while live)."""
        return now - self.deadline

    def since_beat_s(self, now: float) -> float:
        """Detection latency: time since the last sign of life."""
        return now - self.last_beat


class LeaseTable:
    """Deadline supervision over keyed leases.

    Not thread-safe by itself — the sweep coordinator mutates it only
    from its single-threaded event loop; the codec service guards it
    with the service lock.  Times are ``time.monotonic()`` floats; every
    method takes an optional ``now`` so tests can drive the clock.
    """

    def __init__(self, budget_s: float):
        if budget_s <= 0:
            raise ValueError(f"lease budget must be > 0, got {budget_s}")
        self.budget_s = budget_s
        self._leases: Dict[Hashable, Lease] = {}

    def __len__(self) -> int:
        return len(self._leases)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._leases

    def get(self, key: Hashable) -> Optional[Lease]:
        return self._leases.get(key)

    def keys(self):
        return self._leases.keys()

    def values(self):
        return self._leases.values()

    def grant(self, key: Hashable, attempt: int = 0,
              now: Optional[float] = None, **data) -> Lease:
        """Grant (or re-grant) a lease with a fresh full budget."""
        now = time.monotonic() if now is None else now
        lease = Lease(key=key, attempt=attempt, budget_s=self.budget_s,
                      granted_at=now, last_beat=now,
                      deadline=now + self.budget_s, data=dict(data))
        self._leases[key] = lease
        return lease

    def beat(self, key: Hashable,
             now: Optional[float] = None) -> Optional[Lease]:
        """Refresh a lease's deadline; None if it is unknown/revoked."""
        lease = self._leases.get(key)
        if lease is None:
            return None
        now = time.monotonic() if now is None else now
        lease.last_beat = now
        lease.deadline = now + self.budget_s
        lease.beats += 1
        return lease

    def release(self, key: Hashable) -> Optional[Lease]:
        """Drop a lease (work finished or holder gone); None if absent."""
        return self._leases.pop(key, None)

    def expired(self, now: Optional[float] = None) -> List[Lease]:
        """Pop and return every lease past its deadline."""
        now = time.monotonic() if now is None else now
        dead = [lease for lease in self._leases.values()
                if lease.deadline < now]
        for lease in dead:
            del self._leases[lease.key]
        return dead

    def oldest(self) -> Optional[Lease]:
        """The lease with the earliest deadline, or None when empty."""
        if not self._leases:
            return None
        return min(self._leases.values(), key=lambda lease: lease.deadline)


# -- heartbeats ---------------------------------------------------------------

class HeartbeatSender:
    """A daemon thread beating ``send`` every ``interval_s`` until stopped.

    The first send that raises stops the loop; :meth:`stop` re-raises it
    in the caller's thread so a worker whose coordinator vanished fails
    loudly instead of silently going heartbeat-less.
    """

    def __init__(self, interval_s: float, send: Callable[[], None]):
        if interval_s <= 0:
            raise ValueError(
                f"heartbeat interval must be > 0, got {interval_s}")
        self.interval_s = interval_s
        self._send = send
        self._stop = threading.Event()
        self._error: Optional[BaseException] = None
        self.sent = 0
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            try:
                self._send()
            except BaseException as exc:  # noqa: BLE001 - re-raised in stop()
                self._error = exc
                return
            self.sent += 1

    def start(self) -> "HeartbeatSender":
        self._thread.start()
        return self

    def stop(self, reraise: bool = True) -> int:
        """Stop beating, join the thread, and return the beat count.

        Re-raises the first send error by default — pass
        ``reraise=False`` when the caller is already unwinding.
        """
        self._stop.set()
        self._thread.join()
        if reraise and self._error is not None:
            raise self._error
        return self.sent


# -- reconnect backoff --------------------------------------------------------

def retry_backoff_s(attempt: int, *, base_s: float = 0.1,
                    max_s: float = 2.0, jitter: float = 0.5,
                    key: str = "") -> float:
    """The delay before reconnect ``attempt`` (0-based): bounded
    exponential backoff with deterministic jitter.

    The base delay doubles per attempt and saturates at ``max_s``; on
    top of that up to ``jitter`` (a fraction) of the delay is added,
    derived by hashing ``(key, attempt)`` rather than from a live RNG so
    a given client's retry schedule is reproducible — the same property
    the fault injector relies on everywhere else.  Both transport
    clients and the sweep-worker reconnect loop use exactly this
    schedule so the two fabrics behave identically under a flapping
    network.
    """
    if attempt < 0:
        raise ValueError(f"attempt must be >= 0, got {attempt}")
    delay = min(base_s * (2.0 ** attempt), max_s)
    if jitter > 0:
        digest = hashlib.sha256(
            f"{key}:{attempt}".encode("utf-8")).digest()
        unit = int.from_bytes(digest[:8], "big") / float(1 << 64)
        delay += delay * jitter * unit
    return delay


# -- shared-secret handshake --------------------------------------------------

def resolve_token(explicit: Optional[str] = None) -> Optional[str]:
    """The effective auth token: explicit flag, else the environment."""
    if explicit:
        return explicit
    return os.environ.get(AUTH_ENV_VAR) or None


def auth_challenge() -> str:
    """A fresh per-connection nonce (hex, 128 bits)."""
    return secrets.token_hex(16)


def auth_proof(token: str, challenge: str) -> str:
    """``HMAC-SHA256(token, challenge)`` — the client's proof."""
    return hmac.new(token.encode("utf-8"), challenge.encode("utf-8"),
                    hashlib.sha256).hexdigest()


def auth_verify(token: str, challenge: Optional[str],
                proof: Optional[str]) -> bool:
    """Constant-time check of a client's proof against the minted nonce."""
    if not challenge or not isinstance(proof, str) or not proof:
        return False
    return hmac.compare_digest(auth_proof(token, challenge), proof)

"""The concurrent streaming codec service: many streams, one bounded pool.

The codec so far is a one-shot CLI — ``encode -> serialize -> decode`` over
a whole sequence in one process.  The paper's actual workload shape is the
opposite: *sustained* QCIF video at a fixed frame rate, many independent
streams at once, each wanting bounded latency (Wolf's MPSoC multimedia
survey frames exactly this many-streams, bounded-latency operating point
as where video codecs are deployed).  :class:`CodecService` is that shape:

* **sessions** — ``open_stream`` / ``submit_segment`` / ``collect`` /
  ``close_stream``.  A stream is either an *encode* stream (YUV frame
  segments in, per-segment stats out, the full serialized bitstream at
  close) or a *decode* stream (serialized payloads in,
  :class:`~repro.codec.decoder.DecodeHealth` reports out — malformed
  segments are concealed by the robust decoder, never fatal to the pool);
* **worker pool** — streams are pinned round-robin onto ``workers``
  forked processes (per-stream FIFO order is free: one queue per worker),
  or run in-process with ``workers=0`` (same code path, same results);
* **backpressure** — per-stream pending (submitted minus collected) is
  bounded by ``max_pending``; a submit over the bound is *shed* with a
  structured :class:`~repro.errors.BackpressureReject` (REPRO-SRV-
  BACKPRESSURE) rather than queued, so a client that stops collecting
  cannot grow service memory;
* **segmented encoding** — each worker continues its stream's
  :meth:`~repro.codec.encoder.Mpeg4Encoder.encode_segment` run, trimming
  reconstruction history to the single reference frame a continuation
  needs, and serializes the accumulated coded sequence at close — the
  bitstream is **byte-identical** to a one-shot encode of the same frames
  (``tests/test_serving.py`` asserts this for interleaved streams, clean
  and under injected worker faults);
* **shared caches** — every stream on a worker draws its half-sample
  planes and macroblock matrices from one lock-striped
  :class:`~repro.serve.shared_cache.SharedArrayCache` pair (one capacity
  knob and one hit-rate signal per worker, not per stream), surfaced in
  the close summary's ``cache`` block;
* **fault discipline** — segment execution runs under the deterministic
  injector (:mod:`repro.faults`): ``raise`` clauses retry with a bounded
  budget, ``latency`` clauses stretch segment latency, ``slowclient`` /
  ``disconnect`` clauses exercise backpressure and transport cleanup;
* **worker respawn** — a pool worker that dies is replaced (bounded by
  ``max_respawns``, counted in ``stats()``): only its in-flight
  segments fail (synthesized :class:`SegmentResult` errors), decode
  streams keep serving on the replacement, and encode streams whose
  worker-side state is lost get a structured
  :class:`~repro.errors.SegmentFailed` on their next submit instead of
  a permanent ``REPRO-SRV-UNAVAILABLE``.

The TCP/JSON-lines transport over this API lives in
:mod:`repro.serve.transport`; the operator guide is ``docs/SERVING.md``.
"""

from __future__ import annotations

import collections
import multiprocessing
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro import faults
from repro.errors import (
    BackpressureReject,
    CodecError,
    SegmentFailed,
    ServiceError,
    ServiceUnavailable,
    StreamClosed,
    StreamUnknown,
    TransientCellError,
    event_code,
)

ENCODE = "encode"
DECODE = "decode"


@dataclass
class StreamConfig:
    """Per-stream settings, fixed at ``open_stream``.

    ``kind`` selects the pipeline (:data:`ENCODE` or :data:`DECODE`);
    the encoder knobs mirror :class:`~repro.codec.encoder.EncoderConfig`.
    ``keep_history`` retains full reconstruction/trace history in the
    worker (unbounded memory — debugging only); the default trims to the
    single reference frame a continuation needs.  ``verify_decode`` makes
    the close path robust-decode the final bitstream and attach its
    :class:`~repro.codec.decoder.DecodeHealth` to the summary.
    ``max_retries`` bounds transient-fault retries per segment.
    """

    kind: str = ENCODE
    qp: int = 10
    resync_every: int = 0
    gop_size: int = 0
    keep_history: bool = False
    verify_decode: bool = False
    max_retries: int = 2

    def __post_init__(self):
        if self.kind not in (ENCODE, DECODE):
            raise ServiceError(
                f"stream kind must be {ENCODE!r} or {DECODE!r}, "
                f"got {self.kind!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "qp": self.qp,
            "resync_every": self.resync_every, "gop_size": self.gop_size,
            "keep_history": self.keep_history,
            "verify_decode": self.verify_decode,
            "max_retries": self.max_retries,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamConfig":
        known = {name: data[name] for name in cls.__dataclass_fields__
                 if name in data}
        unknown = set(data) - set(known)
        if unknown:
            raise ServiceError(
                f"unknown stream config fields {sorted(unknown)}")
        return cls(**known)


@dataclass
class SegmentResult:
    """One processed segment, as the client collects it.

    ``ok`` is False only for a failed segment (worker-side error after
    retries); ``latency_s`` is submit-to-ready as the parent saw it,
    ``wall_s`` the worker-side processing time.  Decode segments carry
    the robust decoder's health dict; encode segments the coding stats.
    """

    stream: str
    segment: int
    kind: str
    ok: bool
    frames: int = 0
    bits: int = 0
    psnr_y: Optional[float] = None
    getsad_calls: int = 0
    mbs_concealed: int = 0
    health: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    error_code: Optional[str] = None
    attempts: int = 1
    worker: int = -1
    wall_s: float = 0.0
    latency_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name)
                for name in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SegmentResult":
        return cls(**{name: data[name] for name in cls.__dataclass_fields__
                      if name in data})


@dataclass
class StreamSummary:
    """What ``close_stream`` returns: the stream's whole run.

    For encode streams ``payload`` is the serialized bitstream —
    byte-identical to a one-shot encode of every submitted frame in
    order.  ``cache`` is the worker engine's
    :meth:`~repro.codec.fastme.FastSadEngine.cache_stats` (including the
    shared-pool view); ``health`` is the aggregate decode health (decode
    streams) or the verification decode's health (``verify_decode``).
    ``uncollected`` holds any segment results the client never collected.
    """

    stream: str
    kind: str
    segments: int = 0
    frames: int = 0
    bits: int = 0
    mean_psnr_y: Optional[float] = None
    payload: bytes = b""
    cache: Dict[str, object] = field(default_factory=dict)
    health: Optional[Dict[str, object]] = None
    uncollected: List[SegmentResult] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        data = {name: getattr(self, name)
                for name in self.__dataclass_fields__}
        data["uncollected"] = [result.to_dict()
                               for result in self.uncollected]
        return data


# -- worker-side processing ---------------------------------------------------

class _WorkerStream:
    """One stream's worker-side state."""

    __slots__ = ("config", "encoder", "report", "segments", "frames",
                 "health_totals", "failed")

    def __init__(self, config: StreamConfig, plane_cache, block_cache):
        self.config = config
        self.encoder = None
        self.report = None
        if config.kind == ENCODE:
            from repro.codec.encoder import EncoderConfig, Mpeg4Encoder
            from repro.codec.fastme import FastSadEngine
            self.encoder = Mpeg4Encoder(
                EncoderConfig(qp=config.qp, gop_size=config.gop_size,
                              resync_every=config.resync_every),
                engine=FastSadEngine(plane_cache=plane_cache,
                                     block_cache=block_cache))
        self.segments = 0
        self.frames = 0
        #: decode streams: summed DecodeHealth counters across segments
        self.health_totals: Dict[str, int] = collections.defaultdict(int)
        self.failed = False


class SegmentProcessor:
    """The execution engine: runs in each pool worker, or in-process.

    Owns the worker's shared cross-stream caches and every stream pinned
    to it.  All methods return plain dicts (queue-friendly); exceptions
    never escape ``segment`` — a failing segment becomes a structured
    error result and the pool lives on.
    """

    def __init__(self, worker_index: int = 0, cache_capacity: int = 16,
                 cache_stripes: int = 8):
        from repro.serve.shared_cache import SharedArrayCache
        self.worker_index = worker_index
        self.plane_cache = SharedArrayCache(cache_capacity, cache_stripes,
                                            name="planes")
        self.block_cache = SharedArrayCache(cache_capacity, cache_stripes,
                                            name="blocks")
        self.streams: Dict[str, _WorkerStream] = {}

    def open(self, stream_id: str, config: StreamConfig) -> None:
        self.streams[stream_id] = _WorkerStream(
            config, self.plane_cache, self.block_cache)

    def abort(self, stream_id: str) -> None:
        self.streams.pop(stream_id, None)

    def segment(self, stream_id: str, index: int,
                payload: object) -> Dict[str, object]:
        state = self.streams.get(stream_id)
        base: Dict[str, object] = {
            "stream": stream_id, "segment": index,
            "worker": self.worker_index, "ok": False, "attempts": 1,
        }
        if state is None:
            # the stream was aborted with segments still queued
            base.update(kind=ENCODE, error="stream aborted",
                        error_code=StreamUnknown.code)
            return base
        base["kind"] = state.config.kind
        started = time.perf_counter()
        attempt = 0
        while True:
            try:
                faults.fire_worker_faults(stream_id, attempt)
                if state.config.kind == ENCODE:
                    result = self._encode_segment(state, payload, base)
                else:
                    result = self._decode_segment(state, payload, base)
                attempts = attempt + 1
                break
            except TransientCellError as exc:
                attempt += 1
                if attempt > state.config.max_retries:
                    state.failed = True
                    base.update(error=str(exc),
                                error_code=SegmentFailed.code)
                    result = base
                    attempts = attempt     # already counts the final try
                    break
            except Exception as exc:  # noqa: BLE001 -- never kill the pool
                state.failed = True
                base.update(error=f"{type(exc).__name__}: {exc}",
                            error_code=event_code(type(exc),
                                                  SegmentFailed.code))
                result = base
                attempts = attempt + 1
                break
        result["attempts"] = attempts
        result["wall_s"] = time.perf_counter() - started
        return result

    def _encode_segment(self, state: _WorkerStream, frames,
                        base: Dict[str, object]) -> Dict[str, object]:
        if state.failed:
            raise SegmentFailed(
                "an earlier segment of this stream failed; its encoder "
                "state is not continuable")
        stats_before = len(state.report.frame_stats) if state.report else 0
        state.report = state.encoder.encode_segment(frames, state.report)
        segment_stats = state.report.frame_stats[stats_before:]
        if not state.config.keep_history:
            # a continuation only needs the final reconstructed frame
            del state.report.reconstructed[:-1]
            state.report.motion_vectors.clear()
            from repro.codec.tracer import MeTrace
            state.report.trace = MeTrace()
        state.segments += 1
        state.frames += len(frames)
        finite = [s.psnr_y for s in segment_stats
                  if s.psnr_y != float("inf")]
        base.update(
            ok=True,
            frames=len(segment_stats),
            bits=sum(s.bits for s in segment_stats),
            psnr_y=sum(finite) / len(finite) if finite else None,
            getsad_calls=sum(s.getsad_calls for s in segment_stats),
        )
        return base

    def _decode_segment(self, state: _WorkerStream, payload,
                        base: Dict[str, object]) -> Dict[str, object]:
        from repro.codec.decoder import robust_decode
        if not isinstance(payload, (bytes, bytearray)):
            raise CodecError(
                f"decode streams take bytes segments, got "
                f"{type(payload).__name__}")
        frames, health = robust_decode(bytes(payload))
        state.segments += 1
        state.frames += len(frames)
        for key in ("frames_decoded", "mbs_decoded", "mbs_concealed",
                    "checksum_failures"):
            state.health_totals[key] += getattr(health, key)
        state.health_totals["events"] += len(health.events)
        base.update(
            ok=True,
            frames=len(frames),
            mbs_concealed=health.mbs_concealed,
            health=health.to_dict(),
        )
        return base

    def close(self, stream_id: str) -> Dict[str, object]:
        state = self.streams.pop(stream_id, None)
        if state is None:
            return {"stream": stream_id, "kind": ENCODE,
                    "error": "stream unknown to its worker",
                    "error_code": StreamUnknown.code}
        summary: Dict[str, object] = {
            "stream": stream_id, "kind": state.config.kind,
            "segments": state.segments, "frames": state.frames,
            "bits": 0, "mean_psnr_y": None, "payload": b"",
            "health": None,
        }
        if state.config.kind == ENCODE:
            summary["cache"] = state.encoder.estimator.engine.cache_stats() \
                if state.encoder.estimator.engine is not None else {}
            if state.report is not None and not state.failed:
                summary["bits"] = state.report.total_bits
                mean = state.report.mean_psnr_y
                summary["mean_psnr_y"] = None if mean == float("inf") \
                    else mean
                summary["payload"] = state.report.serialize()
                if state.config.verify_decode:
                    from repro.codec.decoder import robust_decode
                    _, health = robust_decode(summary["payload"])
                    summary["health"] = health.to_dict()
        else:
            summary["cache"] = {}
            summary["health"] = dict(state.health_totals)
        return summary

    def cache_stats(self) -> Dict[str, object]:
        return {"planes": self.plane_cache.stats(),
                "blocks": self.block_cache.stats()}


def _worker_main(worker_index: int, tasks, results) -> None:
    """Pool worker loop: drain one task queue until the shutdown marker.

    Every task carries the parent's current fault spec as its final
    element (clause decisions are pure in (seed, kind, target, attempt),
    so re-parsing in the worker preserves determinism) — a plan installed
    or cleared in the parent after the fork still reaches the pool.
    """
    processor = SegmentProcessor(worker_index)
    current_spec = faults.active_spec()
    while True:
        message = tasks.get()
        op = message[0]
        if op == "shutdown":
            break
        spec = message[-1]
        message = message[:-1]
        if spec != current_spec:
            faults.install(spec)
            current_spec = spec
        try:
            if op == "open":
                processor.open(message[1], message[2])
            elif op == "segment":
                results.put(("segment", message[1],
                             processor.segment(message[1], message[2],
                                               message[3])))
            elif op == "close":
                results.put(("closed", message[1],
                             processor.close(message[1])))
            elif op == "abort":
                processor.abort(message[1])
        except Exception as exc:  # noqa: BLE001 -- surface, never die
            results.put(("fatal", message[1] if len(message) > 1 else None,
                         f"{type(exc).__name__}: {exc}"))


# -- parent-side orchestration ------------------------------------------------

class _StreamState:
    """Parent-side bookkeeping for one stream."""

    __slots__ = ("id", "config", "worker", "submitted", "completed",
                 "collected", "closing", "summary", "failed", "results",
                 "submit_times", "collects", "rejects")

    def __init__(self, stream_id: str, config: StreamConfig, worker: int):
        self.id = stream_id
        self.config = config
        self.worker = worker
        self.submitted = 0
        self.completed = 0
        self.collected = 0
        self.closing = False
        self.summary: Optional[Dict[str, object]] = None
        self.failed = False
        self.results: Deque[SegmentResult] = collections.deque()
        self.submit_times: Dict[int, float] = {}
        self.collects = 0
        self.rejects = 0


class CodecService:
    """Long-lived multi-stream encode/decode service (see module doc).

    ``workers=0`` runs every segment in-process (synchronously inside
    ``submit_segment``, under one processor lock) with one shared cache
    pair across all streams; ``workers>=1`` forks that many pool
    processes and pins streams to them round-robin.  All public methods
    are thread-safe — the TCP transport calls them from the event loop's
    thread pool.
    """

    def __init__(self, workers: int = 2, max_pending: int = 8,
                 cache_capacity: int = 16, cache_stripes: int = 8,
                 max_respawns: int = 3):
        if workers < 0:
            raise ServiceError("workers must be >= 0 (0 = in-process)")
        if max_pending < 1:
            raise ServiceError("max_pending must be >= 1")
        self.max_pending = max_pending
        self.max_respawns = max_respawns
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._streams: Dict[str, _StreamState] = {}
        self._next_stream = 0
        self._closed_streams = 0
        self._next_worker = 0
        self._shutdown = False
        self._processor: Optional[SegmentProcessor] = None
        self._processor_lock = threading.Lock()
        self._processes: List[multiprocessing.Process] = []
        self._task_queues = []
        # one result queue + drainer thread PER worker: a worker killed
        # mid-send can leave a queue's shared write lock held forever,
        # so a respawn must abandon the poisoned queue, not inherit it
        self._result_queues = []
        self._drainers: List[threading.Thread] = []
        self._respawn_lock = threading.Lock()
        self._respawns = 0
        if workers == 0:
            self._processor = SegmentProcessor(
                0, cache_capacity, cache_stripes)
        else:
            context = multiprocessing.get_context("fork")
            for index in range(workers):
                tasks = context.Queue()
                results = context.Queue()
                process = context.Process(
                    target=_worker_main,
                    args=(index, tasks, results), daemon=True)
                process.start()
                self._task_queues.append(tasks)
                self._result_queues.append(results)
                self._processes.append(process)
            for index, results in enumerate(self._result_queues):
                drainer = threading.Thread(
                    target=self._drain, args=(index, results), daemon=True)
                drainer.start()
                self._drainers.append(drainer)

    # -- lifecycle ------------------------------------------------------------
    def __enter__(self) -> "CodecService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def workers(self) -> int:
        return len(self._processes)

    def shutdown(self) -> None:
        """Stop the pool; open streams are dropped without summaries."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            self._ready.notify_all()
        for tasks in self._task_queues:
            tasks.put(("shutdown",))
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
        for drainer in self._drainers:
            drainer.join(timeout=10)

    def _put(self, worker: int, message: Tuple) -> None:
        """Enqueue a pool task, stamped with the current fault spec (the
        worker re-installs on change — see :func:`_worker_main`)."""
        self._task_queues[worker].put(message + (faults.active_spec(),))

    def _ensure_worker(self, worker: int) -> bool:
        """Respawn a dead pool worker; returns False only when the
        respawn budget is spent (the caller's old permanent-
        ``ServiceUnavailable`` path).

        The sweep pool's respawn discipline, applied to serving: a
        worker death costs exactly the segments that were in flight on
        it — each is synthesized as a failed :class:`SegmentResult` —
        never the whole service.  Streams pinned to the dead worker are
        re-opened on its replacement: decode streams (stateless across
        segments) keep serving; encode streams whose worker-side
        encoder state is lost are marked failed, so the next submit
        gets a structured :class:`~repro.errors.SegmentFailed` telling
        the client to abort and reopen.
        """
        if not self._processes or self._processes[worker].is_alive():
            return True
        with self._respawn_lock:
            if self._processes[worker].is_alive():
                return True    # another caller already respawned it
            if self._respawns >= self.max_respawns:
                return False
            self._respawns += 1
            context = multiprocessing.get_context("fork")
            # fresh queues on BOTH sides: whatever was queued to the dead
            # worker died with it (accounted for segment by segment
            # below), and a worker terminated mid-send leaves its result
            # queue's shared write lock held forever — the replacement
            # must never inherit that poisoned pipe
            tasks = context.Queue()
            results = context.Queue()
            old_drainer = self._drainers[worker]
            self._result_queues[worker] = results
            # the old drainer exits once it sees its queue was replaced;
            # joining it before synthesizing casualties keeps delivery
            # single-writer per segment (no late stale result can race
            # the synthesized failure below)
            old_drainer.join(timeout=10)
            replacement = context.Process(
                target=_worker_main,
                args=(worker, tasks, results), daemon=True)
            replacement.start()
            self._task_queues[worker] = tasks
            self._processes[worker] = replacement
            drainer = threading.Thread(
                target=self._drain, args=(worker, results), daemon=True)
            drainer.start()
            self._drainers[worker] = drainer
            with self._lock:
                casualties = [state for state in self._streams.values()
                              if state.worker == worker]
                for state in casualties:
                    had_history = state.submitted > 0
                    for index in sorted(state.submit_times):
                        self._deliver(state, {
                            "stream": state.id, "segment": index,
                            "kind": state.config.kind, "ok": False,
                            "worker": worker, "attempts": 1,
                            "error": f"worker {worker} died with this "
                                     f"segment in flight",
                            "error_code": SegmentFailed.code,
                        })
                    if state.config.kind == ENCODE and had_history:
                        # the encoder state died with the worker; a
                        # continuation would silently restart the stream
                        state.failed = True
                self._ready.notify_all()
            for state in casualties:
                self._put(worker, ("open", state.id, state.config))
        return True

    def _drain(self, worker: int, results) -> None:
        """Drainer thread: route one worker's results into stream states.

        Exits when the service shuts down or when ``results`` is no
        longer the worker's current queue (a respawn abandoned it)."""
        while True:
            if self._result_queues[worker] is not results:
                return
            try:
                message = results.get(timeout=0.1)
            except queue_module.Empty:
                if self._shutdown:
                    return
                continue
            kind = message[0]
            with self._lock:
                state = self._streams.get(message[1])
                if kind == "segment" and state is not None:
                    self._deliver(state, message[2])
                elif kind == "closed" and state is not None:
                    state.summary = message[2]
                self._ready.notify_all()

    def _deliver(self, state: _StreamState,
                 result: Dict[str, object]) -> None:
        submitted_at = state.submit_times.pop(result["segment"], None)
        latency = time.perf_counter() - submitted_at \
            if submitted_at is not None else 0.0
        segment = SegmentResult.from_dict(result)
        segment.latency_s = latency
        if not segment.ok and state.config.kind == ENCODE:
            state.failed = True
        state.completed += 1
        state.results.append(segment)

    # -- session API ----------------------------------------------------------
    def open_stream(self, config: Optional[StreamConfig] = None,
                    stream_id: Optional[str] = None) -> str:
        """Register a stream; returns its id (never reused)."""
        config = config or StreamConfig()
        with self._lock:
            self._require_up()
            if stream_id is None:
                stream_id = f"s{self._next_stream:04d}"
            elif stream_id in self._streams:
                raise ServiceError(f"stream id {stream_id!r} already open")
            self._next_stream += 1
            worker = 0
            if self._processes:
                worker = self._next_worker % len(self._processes)
                self._next_worker += 1
            self._streams[stream_id] = _StreamState(stream_id, config,
                                                    worker)
        if self._processes:
            if not self._ensure_worker(worker):
                with self._lock:
                    self._streams.pop(stream_id, None)
                raise ServiceUnavailable(
                    f"worker {worker} died and the respawn budget is "
                    f"exhausted")
            self._put(worker, ("open", stream_id, config))
        else:
            with self._processor_lock:
                self._processor.open(stream_id, config)
        return stream_id

    def _state(self, stream_id: str) -> _StreamState:
        state = self._streams.get(stream_id)
        if state is None:
            raise StreamUnknown(f"unknown stream {stream_id!r}")
        return state

    def _require_up(self) -> None:
        if self._shutdown:
            raise ServiceUnavailable("the service is shut down")

    def submit_segment(self, stream_id: str, payload: object) -> int:
        """Enqueue one segment; returns its index within the stream.

        Sheds with :class:`~repro.errors.BackpressureReject` when the
        stream's pending window is full — the segment is NOT enqueued.
        """
        with self._lock:
            self._require_up()
            state = self._state(stream_id)
            if state.closing:
                raise StreamClosed(
                    f"stream {stream_id!r} is closed to new segments")
            if state.failed:
                raise SegmentFailed(
                    f"stream {stream_id!r} failed at segment "
                    f"{state.completed - 1}; abort it and open a new one")
            pending = state.submitted - state.collected
            if pending >= self.max_pending:
                state.rejects += 1
                raise BackpressureReject(
                    f"stream {stream_id!r} has {pending} pending segments "
                    f"(max {self.max_pending}); collect before submitting")
            index = state.submitted
            state.submitted += 1
            state.submit_times[index] = time.perf_counter()
            worker = state.worker
        if self._processes:
            if not self._processes[worker].is_alive():
                if not self._ensure_worker(worker):
                    raise ServiceUnavailable(
                        f"worker {worker} owning stream {stream_id!r} "
                        f"died and the respawn budget is exhausted")
                # the respawn synthesized a failure for this just-
                # reserved segment; the client collects it like any
                # other failed segment
                return index
            self._put(worker, ("segment", stream_id, index, payload))
        else:
            with self._processor_lock:
                result = self._processor.segment(stream_id, index, payload)
            with self._lock:
                self._deliver(state, result)
                self._ready.notify_all()
        return index

    def collect(self, stream_id: str, timeout: Optional[float] = None
                ) -> List[SegmentResult]:
        """Drain every finished segment result, oldest first.

        With ``timeout`` set, blocks up to that long for at least one
        result; ``timeout=None`` returns immediately with whatever is
        ready (possibly nothing).
        """
        delay = faults.client_delay(stream_id, self._collects_of(stream_id))
        if delay:
            time.sleep(delay)
        deadline = None if timeout is None \
            else time.perf_counter() + timeout
        with self._lock:
            state = self._state(stream_id)
            state.collects += 1
            while not state.results and deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or self._shutdown:
                    break
                self._ready.wait(remaining)
                state = self._state(stream_id)
            collected = list(state.results)
            state.results.clear()
            state.collected += len(collected)
        return collected

    def _collects_of(self, stream_id: str) -> int:
        with self._lock:
            state = self._streams.get(stream_id)
            return state.collects if state is not None else 0

    def close_stream(self, stream_id: str,
                     timeout: Optional[float] = 120.0) -> StreamSummary:
        """Finish a stream: flush its queue, return the summary.

        For encode streams the summary's ``payload`` is the final
        bitstream.  Results the client never collected ride along in
        ``summary.uncollected``.
        """
        with self._lock:
            self._require_up()
            state = self._state(stream_id)
            if state.closing:
                raise StreamClosed(f"stream {stream_id!r} already closing")
            state.closing = True
            worker = state.worker
        if self._processes:
            if not self._ensure_worker(worker):
                with self._lock:
                    self._streams.pop(stream_id, None)
                raise ServiceUnavailable(
                    f"worker {worker} owning stream {stream_id!r} died "
                    f"and the respawn budget is exhausted")
            self._put(worker, ("close", stream_id))
        else:
            with self._processor_lock:
                summary = self._processor.close(stream_id)
            with self._lock:
                state.summary = summary
        deadline = None if timeout is None \
            else time.perf_counter() + timeout
        with self._lock:
            while state.summary is None:
                remaining = None if deadline is None \
                    else deadline - time.perf_counter()
                if self._shutdown or (remaining is not None
                                      and remaining <= 0):
                    self._streams.pop(stream_id, None)
                    raise ServiceUnavailable(
                        f"no close summary for stream {stream_id!r} "
                        f"within {timeout}s")
                self._ready.wait(remaining if remaining is not None
                                 else 0.5)
            raw = state.summary
            uncollected = list(state.results)
            self._streams.pop(stream_id, None)
            self._closed_streams += 1
        summary = StreamSummary(
            stream=stream_id, kind=raw.get("kind", state.config.kind),
            segments=raw.get("segments", 0), frames=raw.get("frames", 0),
            bits=raw.get("bits", 0),
            mean_psnr_y=raw.get("mean_psnr_y"),
            payload=raw.get("payload", b""),
            cache=raw.get("cache", {}) or {},
            health=raw.get("health"),
            uncollected=uncollected,
        )
        return summary

    def abort_stream(self, stream_id: str) -> None:
        """Drop a stream without a summary (client vanished)."""
        with self._lock:
            state = self._streams.pop(stream_id, None)
            if state is None:
                return
            self._closed_streams += 1
            worker = state.worker
        if self._processes:
            if self._processes[worker].is_alive():
                self._put(worker, ("abort", stream_id))
        else:
            with self._processor_lock:
                self._processor.abort(stream_id)

    # -- observability --------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Service-wide and per-stream queue/throughput counters."""
        with self._lock:
            streams = {
                state.id: {
                    "kind": state.config.kind,
                    "worker": state.worker,
                    "submitted": state.submitted,
                    "completed": state.completed,
                    "collected": state.collected,
                    "pending": state.submitted - state.collected,
                    "rejects": state.rejects,
                    "closing": state.closing,
                    "failed": state.failed,
                }
                for state in self._streams.values()
            }
            totals = {
                "workers": len(self._processes),
                "max_pending": self.max_pending,
                "respawns": self._respawns,
                "streams_open": len(self._streams),
                "streams_closed": self._closed_streams,
                "segments_submitted": sum(s["submitted"]
                                          for s in streams.values()),
                "segments_completed": sum(s["completed"]
                                          for s in streams.values()),
                "rejects": sum(s["rejects"] for s in streams.values()),
            }
        if self._processor is not None:
            totals["cache"] = self._processor.cache_stats()
        return {"totals": totals, "streams": streams}

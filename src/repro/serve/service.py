"""The concurrent streaming codec service: many streams, one bounded pool.

The codec so far is a one-shot CLI — ``encode -> serialize -> decode`` over
a whole sequence in one process.  The paper's actual workload shape is the
opposite: *sustained* QCIF video at a fixed frame rate, many independent
streams at once, each wanting bounded latency (Wolf's MPSoC multimedia
survey frames exactly this many-streams, bounded-latency operating point
as where video codecs are deployed).  :class:`CodecService` is that shape:

* **sessions** — ``open_stream`` / ``submit_segment`` / ``collect`` /
  ``close_stream``.  A stream is either an *encode* stream (YUV frame
  segments in, per-segment stats out, the full serialized bitstream at
  close) or a *decode* stream (serialized payloads in,
  :class:`~repro.codec.decoder.DecodeHealth` reports out — malformed
  segments are concealed by the robust decoder, never fatal to the pool);
* **worker pool** — streams are pinned round-robin onto ``workers``
  forked processes (per-stream FIFO order is free: one queue per worker),
  or run in-process with ``workers=0`` (same code path, same results);
* **backpressure** — per-stream pending (submitted minus collected) is
  bounded by ``max_pending``; a submit over the bound is *shed* with a
  structured :class:`~repro.errors.BackpressureReject` (REPRO-SRV-
  BACKPRESSURE) rather than queued, so a client that stops collecting
  cannot grow service memory;
* **segmented encoding** — each worker continues its stream's
  :meth:`~repro.codec.encoder.Mpeg4Encoder.encode_segment` run, trimming
  reconstruction history to the single reference frame a continuation
  needs, and serializes the accumulated coded sequence at close — the
  bitstream is **byte-identical** to a one-shot encode of the same frames
  (``tests/test_serving.py`` asserts this for interleaved streams, clean
  and under injected worker faults);
* **shared caches** — every stream on a worker draws its half-sample
  planes and macroblock matrices from one lock-striped
  :class:`~repro.serve.shared_cache.SharedArrayCache` pair (one capacity
  knob and one hit-rate signal per worker, not per stream), surfaced in
  the close summary's ``cache`` block;
* **fault discipline** — segment execution runs under the deterministic
  injector (:mod:`repro.faults`): ``raise`` clauses retry with a bounded
  budget, ``latency`` clauses stretch segment latency, ``slowclient`` /
  ``disconnect`` clauses exercise backpressure and transport cleanup;
* **durability** — with ``journal_dir`` set the service write-ahead
  journals its control plane (:mod:`repro.journal`): every
  ``open_stream`` config, every delivered segment result (with the
  worker's migration checkpoint, pickled), every close/abort.  A
  restarted service pointed at the same journal restores every stream
  that was open when it died — original ids, last checkpoint, counters
  advanced past the last committed segment — and clients resubmit
  idempotently via per-stream sequence numbers: a duplicate of an
  already-committed segment re-delivers the journaled result instead
  of re-encoding, so the bitstream a client assembles across the
  restart is byte-identical to an uninterrupted run;
* **worker respawn + stream migration** — a pool worker that dies is
  replaced (bounded by ``max_respawns``, counted in ``stats()``), and a
  worker whose oldest in-flight segment exceeds ``segment_timeout_s``
  is declared *hung*, terminated, and handled the same way.  With
  ``migrate=True`` (the default) the casualty's streams **migrate**: a
  worker ships each encode stream's continuation checkpoint (the single
  reference frame plus encoder state left after history trimming) back
  with every segment result, the parent retains every in-flight
  segment's input frames, and on a death/hang it re-opens the stream on
  a live worker, restores the last checkpoint and re-dispatches the
  pending segments — the resulting bitstream is **byte-identical** to
  an unfaulted run (tests/test_serving.py asserts this, clean and under
  injected ``kill``/``hang`` faults).  ``close_stream`` rebalances the
  pinning counts so new streams land on the least-loaded worker.  With
  ``migrate=False`` the PR-8 poison semantics apply: in-flight segments
  fail (synthesized :class:`SegmentResult` errors), decode streams keep
  serving on the replacement, and encode streams whose worker-side
  state is lost get a structured :class:`~repro.errors.SegmentFailed`
  on their next submit instead of a permanent
  ``REPRO-SRV-UNAVAILABLE``.

The TCP/JSON-lines transport over this API lives in
:mod:`repro.serve.transport`; the operator guide is ``docs/SERVING.md``.
"""

from __future__ import annotations

import base64
import collections
import multiprocessing
import pathlib
import pickle
import queue as queue_module
import threading
import time
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple, Union

from repro import faults
from repro.errors import (
    BackpressureReject,
    CodecError,
    SegmentFailed,
    ServiceError,
    ServiceProtocolError,
    ServiceUnavailable,
    StreamClosed,
    StreamUnknown,
    TransientCellError,
    event_code,
)
from repro.journal import Journal, read_journal

ENCODE = "encode"
DECODE = "decode"


@dataclass
class StreamConfig:
    """Per-stream settings, fixed at ``open_stream``.

    ``kind`` selects the pipeline (:data:`ENCODE` or :data:`DECODE`);
    the encoder knobs mirror :class:`~repro.codec.encoder.EncoderConfig`.
    ``keep_history`` retains full reconstruction/trace history in the
    worker (unbounded memory — debugging only); the default trims to the
    single reference frame a continuation needs.  ``verify_decode`` makes
    the close path robust-decode the final bitstream and attach its
    :class:`~repro.codec.decoder.DecodeHealth` to the summary.
    ``max_retries`` bounds transient-fault retries per segment.
    """

    kind: str = ENCODE
    qp: int = 10
    resync_every: int = 0
    gop_size: int = 0
    keep_history: bool = False
    verify_decode: bool = False
    max_retries: int = 2

    def __post_init__(self):
        if self.kind not in (ENCODE, DECODE):
            raise ServiceError(
                f"stream kind must be {ENCODE!r} or {DECODE!r}, "
                f"got {self.kind!r}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind, "qp": self.qp,
            "resync_every": self.resync_every, "gop_size": self.gop_size,
            "keep_history": self.keep_history,
            "verify_decode": self.verify_decode,
            "max_retries": self.max_retries,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "StreamConfig":
        known = {name: data[name] for name in cls.__dataclass_fields__
                 if name in data}
        unknown = set(data) - set(known)
        if unknown:
            raise ServiceError(
                f"unknown stream config fields {sorted(unknown)}")
        return cls(**known)


@dataclass
class SegmentResult:
    """One processed segment, as the client collects it.

    ``ok`` is False only for a failed segment (worker-side error after
    retries); ``latency_s`` is submit-to-ready as the parent saw it,
    ``wall_s`` the worker-side processing time.  Decode segments carry
    the robust decoder's health dict; encode segments the coding stats.
    """

    stream: str
    segment: int
    kind: str
    ok: bool
    frames: int = 0
    bits: int = 0
    psnr_y: Optional[float] = None
    getsad_calls: int = 0
    mbs_concealed: int = 0
    health: Optional[Dict[str, object]] = None
    error: Optional[str] = None
    error_code: Optional[str] = None
    attempts: int = 1
    worker: int = -1
    wall_s: float = 0.0
    latency_s: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        return {name: getattr(self, name)
                for name in self.__dataclass_fields__}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SegmentResult":
        return cls(**{name: data[name] for name in cls.__dataclass_fields__
                      if name in data})


@dataclass
class StreamSummary:
    """What ``close_stream`` returns: the stream's whole run.

    For encode streams ``payload`` is the serialized bitstream —
    byte-identical to a one-shot encode of every submitted frame in
    order.  ``cache`` is the worker engine's
    :meth:`~repro.codec.fastme.FastSadEngine.cache_stats` (including the
    shared-pool view); ``health`` is the aggregate decode health (decode
    streams) or the verification decode's health (``verify_decode``).
    ``uncollected`` holds any segment results the client never collected.
    """

    stream: str
    kind: str
    segments: int = 0
    frames: int = 0
    bits: int = 0
    mean_psnr_y: Optional[float] = None
    payload: bytes = b""
    cache: Dict[str, object] = field(default_factory=dict)
    health: Optional[Dict[str, object]] = None
    uncollected: List[SegmentResult] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        data = {name: getattr(self, name)
                for name in self.__dataclass_fields__}
        data["uncollected"] = [result.to_dict()
                               for result in self.uncollected]
        return data


# -- worker-side processing ---------------------------------------------------

class _WorkerStream:
    """One stream's worker-side state."""

    __slots__ = ("config", "encoder", "report", "segments", "frames",
                 "health_totals", "failed")

    def __init__(self, config: StreamConfig, plane_cache, block_cache):
        self.config = config
        self.encoder = None
        self.report = None
        if config.kind == ENCODE:
            from repro.codec.encoder import EncoderConfig, Mpeg4Encoder
            from repro.codec.fastme import FastSadEngine
            self.encoder = Mpeg4Encoder(
                EncoderConfig(qp=config.qp, gop_size=config.gop_size,
                              resync_every=config.resync_every),
                engine=FastSadEngine(plane_cache=plane_cache,
                                     block_cache=block_cache))
        self.segments = 0
        self.frames = 0
        #: decode streams: summed DecodeHealth counters across segments
        self.health_totals: Dict[str, int] = collections.defaultdict(int)
        self.failed = False


class SegmentProcessor:
    """The execution engine: runs in each pool worker, or in-process.

    Owns the worker's shared cross-stream caches and every stream pinned
    to it.  All methods return plain dicts (queue-friendly); exceptions
    never escape ``segment`` — a failing segment becomes a structured
    error result and the pool lives on.
    """

    def __init__(self, worker_index: int = 0, cache_capacity: int = 16,
                 cache_stripes: int = 8, checkpoints: bool = False):
        from repro.serve.shared_cache import SharedArrayCache
        self.worker_index = worker_index
        self.plane_cache = SharedArrayCache(cache_capacity, cache_stripes,
                                            name="planes")
        self.block_cache = SharedArrayCache(cache_capacity, cache_stripes,
                                            name="blocks")
        self.streams: Dict[str, _WorkerStream] = {}
        #: attach a migration checkpoint to every successful segment
        #: result (pool workers under migrate=True)
        self.checkpoints = checkpoints

    def open(self, stream_id: str, config: StreamConfig) -> None:
        self.streams[stream_id] = _WorkerStream(
            config, self.plane_cache, self.block_cache)

    def abort(self, stream_id: str) -> None:
        self.streams.pop(stream_id, None)

    def restore(self, stream_id: str, checkpoint: Dict[str, object]) -> None:
        """Adopt a migrated stream's continuation state (after ``open``).

        The checkpoint is what :meth:`segment` shipped with the last
        result the parent saw delivered: segment/frame counters, decode
        health totals, and — for encode streams — the
        :class:`~repro.codec.encoder.EncoderReport` continuation state
        (already history-trimmed to the single reference frame).
        ``encode_segment`` resumes from it exactly as it would on the
        original worker, which is what keeps migrated bitstreams
        byte-identical.
        """
        state = self.streams.get(stream_id)
        if state is None:
            return
        state.segments = int(checkpoint.get("segments", 0))
        state.frames = int(checkpoint.get("frames", 0))
        state.health_totals = collections.defaultdict(
            int, checkpoint.get("health_totals") or {})
        report = checkpoint.get("report")
        if report is not None:
            state.report = report

    def segment(self, stream_id: str, index: int, payload: object,
                dispatch: int = 0) -> Dict[str, object]:
        hang_s = faults.hang_delay(stream_id, dispatch)
        if hang_s:
            # a hung worker: alive, holding work, making no progress —
            # the parent's per-segment deadline must catch this
            time.sleep(hang_s)
        state = self.streams.get(stream_id)
        base: Dict[str, object] = {
            "stream": stream_id, "segment": index,
            "worker": self.worker_index, "ok": False, "attempts": 1,
        }
        if state is None:
            # the stream was aborted with segments still queued
            base.update(kind=ENCODE, error="stream aborted",
                        error_code=StreamUnknown.code)
            return base
        base["kind"] = state.config.kind
        started = time.perf_counter()
        attempt = 0
        while True:
            try:
                faults.fire_worker_faults(stream_id, attempt)
                if state.config.kind == ENCODE:
                    result = self._encode_segment(state, payload, base)
                else:
                    result = self._decode_segment(state, payload, base)
                attempts = attempt + 1
                break
            except TransientCellError as exc:
                attempt += 1
                if attempt > state.config.max_retries:
                    state.failed = True
                    base.update(error=str(exc),
                                error_code=SegmentFailed.code)
                    result = base
                    attempts = attempt     # already counts the final try
                    break
            except Exception as exc:  # noqa: BLE001 -- never kill the pool
                state.failed = True
                base.update(error=f"{type(exc).__name__}: {exc}",
                            error_code=event_code(type(exc),
                                                  SegmentFailed.code))
                result = base
                attempts = attempt + 1
                break
        result["attempts"] = attempts
        result["wall_s"] = time.perf_counter() - started
        if self.checkpoints and result.get("ok"):
            # everything a replacement worker needs to continue this
            # stream after ``open`` + ``restore`` — for encode streams
            # the history-trimmed report already carries exactly the one
            # reference frame a continuation reads
            result["checkpoint"] = {
                "segments": state.segments,
                "frames": state.frames,
                "health_totals": dict(state.health_totals),
                "report": state.report
                          if state.config.kind == ENCODE else None,
            }
        return result

    def _encode_segment(self, state: _WorkerStream, frames,
                        base: Dict[str, object]) -> Dict[str, object]:
        if state.failed:
            raise SegmentFailed(
                "an earlier segment of this stream failed; its encoder "
                "state is not continuable")
        stats_before = len(state.report.frame_stats) if state.report else 0
        state.report = state.encoder.encode_segment(frames, state.report)
        segment_stats = state.report.frame_stats[stats_before:]
        if not state.config.keep_history:
            # a continuation only needs the final reconstructed frame
            del state.report.reconstructed[:-1]
            state.report.motion_vectors.clear()
            from repro.codec.tracer import MeTrace
            state.report.trace = MeTrace()
        state.segments += 1
        state.frames += len(frames)
        finite = [s.psnr_y for s in segment_stats
                  if s.psnr_y != float("inf")]
        base.update(
            ok=True,
            frames=len(segment_stats),
            bits=sum(s.bits for s in segment_stats),
            psnr_y=sum(finite) / len(finite) if finite else None,
            getsad_calls=sum(s.getsad_calls for s in segment_stats),
        )
        return base

    def _decode_segment(self, state: _WorkerStream, payload,
                        base: Dict[str, object]) -> Dict[str, object]:
        from repro.codec.decoder import robust_decode
        if not isinstance(payload, (bytes, bytearray)):
            raise CodecError(
                f"decode streams take bytes segments, got "
                f"{type(payload).__name__}")
        frames, health = robust_decode(bytes(payload))
        state.segments += 1
        state.frames += len(frames)
        for key in ("frames_decoded", "mbs_decoded", "mbs_concealed",
                    "checksum_failures"):
            state.health_totals[key] += getattr(health, key)
        state.health_totals["events"] += len(health.events)
        base.update(
            ok=True,
            frames=len(frames),
            mbs_concealed=health.mbs_concealed,
            health=health.to_dict(),
        )
        return base

    def close(self, stream_id: str) -> Dict[str, object]:
        state = self.streams.pop(stream_id, None)
        if state is None:
            return {"stream": stream_id, "kind": ENCODE,
                    "error": "stream unknown to its worker",
                    "error_code": StreamUnknown.code}
        summary: Dict[str, object] = {
            "stream": stream_id, "kind": state.config.kind,
            "segments": state.segments, "frames": state.frames,
            "bits": 0, "mean_psnr_y": None, "payload": b"",
            "health": None,
        }
        if state.config.kind == ENCODE:
            summary["cache"] = state.encoder.estimator.engine.cache_stats() \
                if state.encoder.estimator.engine is not None else {}
            if state.report is not None and not state.failed:
                summary["bits"] = state.report.total_bits
                mean = state.report.mean_psnr_y
                summary["mean_psnr_y"] = None if mean == float("inf") \
                    else mean
                summary["payload"] = state.report.serialize()
                if state.config.verify_decode:
                    from repro.codec.decoder import robust_decode
                    _, health = robust_decode(summary["payload"])
                    summary["health"] = health.to_dict()
        else:
            summary["cache"] = {}
            summary["health"] = dict(state.health_totals)
        return summary

    def cache_stats(self) -> Dict[str, object]:
        return {"planes": self.plane_cache.stats(),
                "blocks": self.block_cache.stats()}


def _worker_main(worker_index: int, tasks, results,
                 checkpoints: bool = False) -> None:
    """Pool worker loop: drain one task queue until the shutdown marker.

    Every task carries the parent's current fault spec as its final
    element (clause decisions are pure in (seed, kind, target, attempt),
    so re-parsing in the worker preserves determinism) — a plan installed
    or cleared in the parent after the fork still reaches the pool.
    """
    processor = SegmentProcessor(worker_index, checkpoints=checkpoints)
    current_spec = faults.active_spec()
    while True:
        message = tasks.get()
        op = message[0]
        if op == "shutdown":
            break
        spec = message[-1]
        message = message[:-1]
        if spec != current_spec:
            faults.install(spec)
            current_spec = spec
        try:
            if op == "open":
                processor.open(message[1], message[2])
            elif op == "restore":
                processor.restore(message[1], message[2])
            elif op == "segment":
                results.put(("segment", message[1],
                             processor.segment(message[1], message[2],
                                               message[4],
                                               dispatch=message[3])))
            elif op == "close":
                results.put(("closed", message[1],
                             processor.close(message[1])))
            elif op == "abort":
                processor.abort(message[1])
        except Exception as exc:  # noqa: BLE001 -- surface, never die
            results.put(("fatal", message[1] if len(message) > 1 else None,
                         f"{type(exc).__name__}: {exc}"))


# -- parent-side orchestration ------------------------------------------------

class _StreamState:
    """Parent-side bookkeeping for one stream."""

    __slots__ = ("id", "config", "worker", "submitted", "completed",
                 "collected", "closing", "summary", "failed", "results",
                 "submit_times", "collects", "rejects", "dispatches",
                 "pending_inputs", "checkpoint", "opened", "close_queued")

    def __init__(self, stream_id: str, config: StreamConfig, worker: int):
        self.id = stream_id
        self.config = config
        self.worker = worker
        self.submitted = 0
        self.completed = 0
        self.collected = 0
        self.closing = False
        self.summary: Optional[Dict[str, object]] = None
        self.failed = False
        self.results: Deque[SegmentResult] = collections.deque()
        self.submit_times: Dict[int, float] = {}
        self.collects = 0
        self.rejects = 0
        #: per-stream dispatch sequence — the fault injector's attempt
        #: axis for ``hang`` clauses, so a migrated re-dispatch of the
        #: same segment is a *new* attempt and runs clean
        self.dispatches = 0
        #: in-flight segment inputs, retained under migrate=True so a
        #: casualty's segments can be re-dispatched on a live worker
        self.pending_inputs: Dict[int, object] = {}
        #: latest delivered worker checkpoint (migrate=True pools only)
        self.checkpoint: Optional[Dict[str, object]] = None
        #: the open op reached a worker queue (migration skips others)
        self.opened = False
        #: a close op is already queued somewhere — never queue twice
        self.close_queued = False


class CodecService:
    """Long-lived multi-stream encode/decode service (see module doc).

    ``workers=0`` runs every segment in-process (synchronously inside
    ``submit_segment``, under one processor lock) with one shared cache
    pair across all streams; ``workers>=1`` forks that many pool
    processes and pins streams to them round-robin.  All public methods
    are thread-safe — the TCP transport calls them from the event loop's
    thread pool.
    """

    def __init__(self, workers: int = 2, max_pending: int = 8,
                 cache_capacity: int = 16, cache_stripes: int = 8,
                 max_respawns: int = 3, migrate: bool = True,
                 segment_timeout_s: Optional[float] = None,
                 journal_dir: Optional[Union[str, pathlib.Path]] = None):
        if workers < 0:
            raise ServiceError("workers must be >= 0 (0 = in-process)")
        if max_pending < 1:
            raise ServiceError("max_pending must be >= 1")
        self.max_pending = max_pending
        self.max_respawns = max_respawns
        #: move a casualty's streams to a live worker instead of
        #: poisoning them (module doc: "worker respawn + stream
        #: migration"); only meaningful for subprocess pools
        self._migrate = migrate
        #: workers ship per-segment checkpoints when either consumer
        #: needs them: migration (re-dispatch on a live worker) or the
        #: write-ahead journal (restore across a service restart)
        self._checkpoints = migrate or journal_dir is not None
        #: a worker whose oldest in-flight segment is older than this is
        #: declared hung and terminated (None disables the deadline)
        self._segment_timeout_s = segment_timeout_s
        self._lock = threading.Lock()
        self._ready = threading.Condition(self._lock)
        self._streams: Dict[str, _StreamState] = {}
        self._next_stream = 0
        self._closed_streams = 0
        self._next_worker = 0
        self._shutdown = False
        self._processor: Optional[SegmentProcessor] = None
        self._processor_lock = threading.Lock()
        self._processes: List[multiprocessing.Process] = []
        self._task_queues = []
        # one result queue + drainer thread PER worker: a worker killed
        # mid-send can leave a queue's shared write lock held forever,
        # so a respawn must abandon the poisoned queue, not inherit it
        self._result_queues = []
        self._drainers: List[threading.Thread] = []
        self._respawn_lock = threading.Lock()
        self._respawns = 0
        self._migrations = 0
        self._hangs_detected = 0
        #: streams currently pinned per worker — opens go to the least
        #: loaded worker and closes rebalance the counts
        self._pinned: List[int] = [0] * workers
        if workers == 0:
            self._processor = SegmentProcessor(
                0, cache_capacity, cache_stripes,
                checkpoints=journal_dir is not None)
        else:
            context = multiprocessing.get_context("fork")
            for index in range(workers):
                tasks = context.Queue()
                results = context.Queue()
                process = context.Process(
                    target=_worker_main,
                    args=(index, tasks, results, self._checkpoints),
                    daemon=True)
                process.start()
                self._task_queues.append(tasks)
                self._result_queues.append(results)
                self._processes.append(process)
            for index, results in enumerate(self._result_queues):
                drainer = threading.Thread(
                    target=self._drain, args=(index, results), daemon=True)
                drainer.start()
                self._drainers.append(drainer)
        #: write-ahead journal plus the recovery state it feeds:
        #: journaled results per restored stream keyed by segment index,
        #: awaiting idempotent re-delivery to a resubmitting client
        self._journal: Optional[Journal] = None
        self._journaled: Dict[str, Dict[int, Dict[str, object]]] = {}
        self._restored = 0
        if journal_dir is not None:
            self._open_journal(pathlib.Path(journal_dir))

    # -- lifecycle ------------------------------------------------------------
    def __enter__(self) -> "CodecService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()

    @property
    def workers(self) -> int:
        return len(self._processes)

    def shutdown(self) -> None:
        """Stop the pool; open streams are dropped without summaries
        (but survive on disk when a journal is configured — the next
        service pointed at it restores them)."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
            self._ready.notify_all()
        for tasks in self._task_queues:
            tasks.put(("shutdown",))
        for process in self._processes:
            process.join(timeout=10)
            if process.is_alive():
                process.terminate()
        for drainer in self._drainers:
            drainer.join(timeout=10)
        if self._journal is not None:
            self._journal.close()

    # -- write-ahead journal ---------------------------------------------------
    def _open_journal(self, root: pathlib.Path) -> None:
        """Replay the journal, restore every still-open stream, then
        take over the journal for this service's own writes.

        Replay folds the record stream into per-stream survivors: an
        ``open_stream`` creates one, each ``segment_commit`` advances its
        counters and adopts the newest checkpoint, a ``close_stream`` /
        ``abort_stream`` retires it.  Opening the :class:`Journal` first
        also validates the whole journal (structured
        ``REPRO-JRN-CORRUPT`` on mid-stream damage) and truncates any
        torn final record before we append after it.
        """
        self._journal = Journal(root)
        survivors: Dict[str, Dict[str, object]] = {}
        for record in read_journal(root, missing_ok=True):
            kind = record.get("type")
            stream_id = str(record.get("stream"))
            if kind == "open_stream":
                survivors[stream_id] = {
                    "config": StreamConfig.from_dict(
                        record.get("config") or {}),
                    "results": {}, "checkpoint": None, "last": -1,
                }
                # stream ids stay unique across the journal's whole
                # lifetime, even for streams that closed cleanly — a
                # reused id could collide with a stale client's
                # sequence tracking
                if stream_id.startswith("s"):
                    try:
                        self._next_stream = max(self._next_stream,
                                                int(stream_id[1:]) + 1)
                    except ValueError:
                        pass
            elif kind == "segment_commit":
                entry = survivors.get(stream_id)
                if entry is None:
                    continue
                segment = int(record.get("segment", 0))
                entry["results"][segment] = dict(record.get("result")
                                                 or {})
                raw = record.get("checkpoint")
                if raw is not None:
                    entry["checkpoint"] = pickle.loads(
                        base64.b64decode(raw))
                entry["last"] = max(entry["last"], segment)
            elif kind in ("close_stream", "abort_stream"):
                survivors.pop(stream_id, None)
        for stream_id in sorted(survivors):
            self._restore_stream(stream_id, survivors[stream_id])

    def _restore_stream(self, stream_id: str,
                        entry: Dict[str, object]) -> None:
        """Re-open one journaled stream exactly where it left off."""
        config = entry["config"]
        committed = int(entry["last"]) + 1
        worker = 0
        if self._processes:
            worker = min(range(len(self._processes)),
                         key=self._pinned.__getitem__)
            self._pinned[worker] += 1
        state = _StreamState(stream_id, config, worker)
        # every committed segment was submitted, completed AND (as far
        # as this incarnation knows) collected; a resubmitting client
        # un-collects journaled results one duplicate at a time
        state.submitted = committed
        state.completed = committed
        state.collected = committed
        state.dispatches = committed
        state.opened = True
        state.checkpoint = entry["checkpoint"]
        if config.kind == ENCODE and any(
                not result.get("ok")
                for result in entry["results"].values()):
            state.failed = True
        self._streams[stream_id] = state
        self._journaled[stream_id] = dict(entry["results"])
        if self._processes:
            self._put(worker, ("open", stream_id, config))
            if state.checkpoint is not None:
                self._put(worker, ("restore", stream_id,
                                   state.checkpoint))
        else:
            with self._processor_lock:
                self._processor.open(stream_id, config)
                if state.checkpoint is not None:
                    self._processor.restore(stream_id, state.checkpoint)
        self._restored += 1

    def _journal_stream_gone(self, stream_id: str,
                             kind: str = "close_stream") -> None:
        """Record that a stream left the service (caller holds the
        lock), so a restart does not resurrect it."""
        if self._journal is not None and not self._journal.closed:
            self._journal.write(kind, stream=stream_id)
        self._journaled.pop(stream_id, None)

    def _put(self, worker: int, message: Tuple) -> None:
        """Enqueue a pool task, stamped with the current fault spec (the
        worker re-installs on change — see :func:`_worker_main`)."""
        self._task_queues[worker].put(message + (faults.active_spec(),))

    def _ensure_worker(self, worker: int) -> bool:
        """Respawn a dead pool worker; returns False only when the
        respawn budget is spent (the caller's old permanent-
        ``ServiceUnavailable`` path).

        The sweep pool's respawn discipline, applied to serving: a
        worker death (or a hang terminated by the per-segment deadline)
        costs wall time, never correctness, and never the whole
        service.  With ``migrate=True`` the casualty's streams move to
        the least-loaded worker: re-open, restore the last delivered
        checkpoint, re-dispatch every retained in-flight input under
        fresh dispatch numbers (so a ``hang`` clause with ``times=1``
        does not re-fire), and re-queue the close if one was pending —
        the resulting bitstream is byte-identical to an unfaulted run.
        With ``migrate=False`` each in-flight segment is synthesized as
        a failed :class:`SegmentResult`; decode streams (stateless
        across segments) keep serving on the replacement; encode
        streams whose worker-side encoder state is lost are marked
        failed, so the next submit gets a structured
        :class:`~repro.errors.SegmentFailed` telling the client to
        abort and reopen.
        """
        if not self._processes or self._processes[worker].is_alive():
            return True
        with self._respawn_lock:
            if self._processes[worker].is_alive():
                return True    # another caller already respawned it
            if self._respawns >= self.max_respawns:
                return False
            self._respawns += 1
            context = multiprocessing.get_context("fork")
            # fresh queues on BOTH sides: whatever was queued to the dead
            # worker died with it (accounted for segment by segment
            # below), and a worker terminated mid-send leaves its result
            # queue's shared write lock held forever — the replacement
            # must never inherit that poisoned pipe
            tasks = context.Queue()
            results = context.Queue()
            old_drainer = self._drainers[worker]
            self._result_queues[worker] = results
            # the old drainer exits once it sees its queue was replaced;
            # joining it before migrating/synthesizing casualties keeps
            # delivery single-writer per segment (no late stale result
            # can race the recovery below).  The hung-worker path calls
            # this FROM that very drainer — it stops draining the
            # moment it returns, so there is nothing to join.
            if old_drainer is not threading.current_thread():
                old_drainer.join(timeout=10)
            replacement = context.Process(
                target=_worker_main,
                args=(worker, tasks, results, self._checkpoints),
                daemon=True)
            replacement.start()
            self._task_queues[worker] = tasks
            self._processes[worker] = replacement
            drainer = threading.Thread(
                target=self._drain, args=(worker, results), daemon=True)
            drainer.start()
            self._drainers[worker] = drainer
            moves = []     # (state, target, [(index, dispatch), ...])
            poisoned = []
            with self._lock:
                casualties = [state for state in self._streams.values()
                              if state.worker == worker]
                now = time.perf_counter()
                for state in casualties:
                    if state.summary is not None:
                        # close summary already delivered; nothing worker-
                        # side left to recover
                        continue
                    if self._migrate and not state.failed and state.opened:
                        self._pinned[worker] -= 1
                        target = min(range(len(self._processes)),
                                     key=self._pinned.__getitem__)
                        self._pinned[target] += 1
                        state.worker = target
                        resubmits = []
                        for index in sorted(state.pending_inputs):
                            resubmits.append((index, state.dispatches))
                            state.dispatches += 1
                            # restart the per-segment deadline clock, or
                            # the re-dispatched work would instantly
                            # re-trip the hang detector
                            state.submit_times[index] = now
                        self._migrations += 1
                        moves.append((state, target, resubmits))
                        continue
                    poisoned.append(state)
                    had_history = state.submitted > 0
                    for index in sorted(state.submit_times):
                        self._deliver(state, {
                            "stream": state.id, "segment": index,
                            "kind": state.config.kind, "ok": False,
                            "worker": worker, "attempts": 1,
                            "error": f"worker {worker} died with this "
                                     f"segment in flight",
                            "error_code": SegmentFailed.code,
                        })
                    if state.config.kind == ENCODE and had_history:
                        # the encoder state died with the worker; a
                        # continuation would silently restart the stream
                        state.failed = True
                self._ready.notify_all()
            for state, target, resubmits in moves:
                self._put(target, ("open", state.id, state.config))
                if state.checkpoint is not None:
                    self._put(target, ("restore", state.id,
                                       state.checkpoint))
                for index, dispatch in resubmits:
                    self._put(target, ("segment", state.id, index,
                                       dispatch,
                                       state.pending_inputs[index]))
                if state.closing:
                    state.close_queued = True
                    self._put(target, ("close", state.id))
            for state in poisoned:
                self._put(worker, ("open", state.id, state.config))
        return True

    def _drain(self, worker: int, results) -> None:
        """Drainer thread: route one worker's results into stream states.

        Also the per-segment deadline's watch point: between queue polls
        it checks whether this worker's oldest in-flight segment is
        overdue (:meth:`_check_hung`) — a kill is detected by the next
        submit/close, but only a deadline can catch a worker that is
        alive and silent.

        Exits when the service shuts down or when ``results`` is no
        longer the worker's current queue (a respawn abandoned it)."""
        while True:
            if self._result_queues[worker] is not results:
                return
            try:
                message = results.get(timeout=0.1)
            except queue_module.Empty:
                if self._shutdown:
                    return
                if self._check_hung(worker):
                    return    # the respawn replaced this very queue
                continue
            kind = message[0]
            with self._lock:
                state = self._streams.get(message[1])
                if kind == "segment" and state is not None:
                    self._deliver(state, message[2])
                elif kind == "closed" and state is not None:
                    state.summary = message[2]
                self._ready.notify_all()

    def _check_hung(self, worker: int) -> bool:
        """Terminate a worker whose oldest in-flight segment blew its
        per-segment deadline; returns True when it did (the calling
        drainer must exit — the respawn replaced its result queue).

        Detection latency is bounded by ``segment_timeout_s`` plus one
        0.1 s poll; recovery is the ordinary :meth:`_ensure_worker`
        path, so a hang and a kill converge on the same migration (or
        poison) semantics.
        """
        if self._segment_timeout_s is None or self._shutdown:
            return False
        process = self._processes[worker]
        if not process.is_alive():
            return False   # a death; the submit/close paths handle it
        with self._lock:
            oldest = min(
                (stamp for state in self._streams.values()
                 if state.worker == worker
                 for stamp in state.submit_times.values()),
                default=None)
        if oldest is None or \
                time.perf_counter() - oldest <= self._segment_timeout_s:
            return False
        process.terminate()
        process.join(timeout=10)
        self._hangs_detected += 1
        self._ensure_worker(worker)
        with self._lock:
            self._ready.notify_all()
        return True

    def _deliver(self, state: _StreamState,
                 result: Dict[str, object]) -> None:
        checkpoint = result.pop("checkpoint", None)
        submitted_at = state.submit_times.pop(result["segment"], None)
        state.pending_inputs.pop(result["segment"], None)
        latency = time.perf_counter() - submitted_at \
            if submitted_at is not None else 0.0
        segment = SegmentResult.from_dict(result)
        segment.latency_s = latency
        if not segment.ok and state.config.kind == ENCODE:
            state.failed = True
        elif segment.ok and checkpoint is not None:
            state.checkpoint = checkpoint
        state.completed += 1
        state.results.append(segment)
        if self._journal is not None:
            fields: Dict[str, object] = {
                "stream": state.id, "segment": segment.segment,
                "result": segment.to_dict(),
            }
            if checkpoint is not None:
                fields["checkpoint"] = base64.b64encode(
                    pickle.dumps(checkpoint)).decode("ascii")
            self._journal.write("segment_commit", **fields)
            # deterministic service-kill fault: fires AFTER the commit
            # barrier (attempt axis = absolute segment index), so the
            # restarted service restores past this segment and the
            # clause cannot re-fire on the same commit
            faults.control_kill("svckill", state.id, segment.segment)

    # -- session API ----------------------------------------------------------
    def open_stream(self, config: Optional[StreamConfig] = None,
                    stream_id: Optional[str] = None) -> str:
        """Register a stream; returns its id (never reused)."""
        config = config or StreamConfig()
        with self._lock:
            self._require_up()
            if stream_id is None:
                stream_id = f"s{self._next_stream:04d}"
            elif stream_id in self._streams:
                raise ServiceError(f"stream id {stream_id!r} already open")
            self._next_stream += 1
            worker = 0
            if self._processes:
                # least-loaded pinning: closes decrement the counts, so
                # long-lived services stay balanced as streams churn
                worker = min(range(len(self._processes)),
                             key=self._pinned.__getitem__)
                self._pinned[worker] += 1
            self._streams[stream_id] = _StreamState(stream_id, config,
                                                    worker)
            if self._journal is not None:
                # write-ahead: the open is durable before any worker
                # sees it, so a restart can always re-create the stream
                self._journal.write("open_stream", stream=stream_id,
                                    config=config.to_dict())
        if self._processes:
            if not self._ensure_worker(worker):
                with self._lock:
                    if self._streams.pop(stream_id, None) is not None:
                        self._pinned[worker] -= 1
                        self._journal_stream_gone(stream_id,
                                                  "abort_stream")
                raise ServiceUnavailable(
                    f"worker {worker} died and the respawn budget is "
                    f"exhausted")
            self._put(worker, ("open", stream_id, config))
            with self._lock:
                state = self._streams.get(stream_id)
                if state is not None:
                    state.opened = True
        else:
            with self._processor_lock:
                self._processor.open(stream_id, config)
        return stream_id

    def _state(self, stream_id: str) -> _StreamState:
        state = self._streams.get(stream_id)
        if state is None:
            raise StreamUnknown(f"unknown stream {stream_id!r}")
        return state

    def _require_up(self) -> None:
        if self._shutdown:
            raise ServiceUnavailable("the service is shut down")

    def submit_segment(self, stream_id: str, payload: object,
                       seq: Optional[int] = None) -> int:
        """Enqueue one segment; returns its index within the stream.

        Sheds with :class:`~repro.errors.BackpressureReject` when the
        stream's pending window is full — the segment is NOT enqueued.

        ``seq`` is the client's per-stream sequence number, the
        idempotency key for journal-based recovery: a duplicate of an
        already-committed segment (``seq < submitted``) is NOT
        re-encoded — the journaled result is re-delivered for the
        client to collect (exactly once per duplicate), keeping the
        bitstream byte-identical across a service restart.  A ``seq``
        ahead of the stream (``seq > submitted``) is a protocol error:
        the client skipped a segment.
        """
        with self._lock:
            self._require_up()
            state = self._state(stream_id)
            if state.closing:
                raise StreamClosed(
                    f"stream {stream_id!r} is closed to new segments")
            if seq is not None and seq != state.submitted:
                if seq > state.submitted:
                    raise ServiceProtocolError(
                        f"stream {stream_id!r} expects seq "
                        f"{state.submitted}, got {seq}: the client "
                        f"skipped a segment")
                # duplicate of a committed segment: re-deliver the
                # journaled result (once), never re-encode
                journaled = self._journaled.get(stream_id, {}).pop(
                    seq, None)
                if journaled is not None:
                    state.results.append(
                        SegmentResult.from_dict(journaled))
                    state.collected -= 1
                    self._ready.notify_all()
                return seq
            if state.failed:
                raise SegmentFailed(
                    f"stream {stream_id!r} failed at segment "
                    f"{state.completed - 1}; abort it and open a new one")
            pending = state.submitted - state.collected
            if pending >= self.max_pending:
                state.rejects += 1
                raise BackpressureReject(
                    f"stream {stream_id!r} has {pending} pending segments "
                    f"(max {self.max_pending}); collect before submitting")
            index = state.submitted
            state.submitted += 1
            state.submit_times[index] = time.perf_counter()
            dispatch = state.dispatches
            state.dispatches += 1
            if self._migrate and self._processes:
                # retained until the result arrives, so a migration can
                # re-dispatch this exact input on a live worker
                state.pending_inputs[index] = payload
            worker = state.worker
            alive = (not self._processes
                     or self._processes[worker].is_alive())
            if self._processes and alive:
                # dispatch under the same lock as the reservation:
                # migrations also hold it, so this segment is queued
                # exactly once — here, or (if the worker is found dead)
                # by the migration's re-dispatch of pending_inputs
                self._put(worker, ("segment", stream_id, index,
                                   dispatch, payload))
        if self._processes:
            if not alive:
                if not self._ensure_worker(worker):
                    raise ServiceUnavailable(
                        f"worker {worker} owning stream {stream_id!r} "
                        f"died and the respawn budget is exhausted")
                # migrate=True: the respawn re-dispatched this just-
                # reserved segment on the stream's new worker;
                # migrate=False: it synthesized a failure for it — the
                # client collects either like any other result
            return index
        else:
            with self._processor_lock:
                result = self._processor.segment(stream_id, index, payload)
            with self._lock:
                self._deliver(state, result)
                self._ready.notify_all()
        return index

    def collect(self, stream_id: str, timeout: Optional[float] = None
                ) -> List[SegmentResult]:
        """Drain every finished segment result, oldest first.

        With ``timeout`` set, blocks up to that long for at least one
        result; ``timeout=None`` returns immediately with whatever is
        ready (possibly nothing).
        """
        delay = faults.client_delay(stream_id, self._collects_of(stream_id))
        if delay:
            time.sleep(delay)
        deadline = None if timeout is None \
            else time.perf_counter() + timeout
        with self._lock:
            state = self._state(stream_id)
            state.collects += 1
            while not state.results and deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0 or self._shutdown:
                    break
                self._ready.wait(remaining)
                state = self._state(stream_id)
            collected = list(state.results)
            state.results.clear()
            state.collected += len(collected)
        return collected

    def _collects_of(self, stream_id: str) -> int:
        with self._lock:
            state = self._streams.get(stream_id)
            return state.collects if state is not None else 0

    def close_stream(self, stream_id: str,
                     timeout: Optional[float] = 120.0) -> StreamSummary:
        """Finish a stream: flush its queue, return the summary.

        For encode streams the summary's ``payload`` is the final
        bitstream.  Results the client never collected ride along in
        ``summary.uncollected``.
        """
        with self._lock:
            self._require_up()
            state = self._state(stream_id)
            if state.closing:
                raise StreamClosed(f"stream {stream_id!r} already closing")
            state.closing = True
            worker = state.worker
        if self._processes:
            if not self._ensure_worker(worker):
                with self._lock:
                    if self._streams.pop(stream_id, None) is not None:
                        self._unpin(state)
                        self._journal_stream_gone(stream_id,
                                                  "abort_stream")
                raise ServiceUnavailable(
                    f"worker {worker} owning stream {stream_id!r} died "
                    f"and the respawn budget is exhausted")
            with self._lock:
                # re-read: _ensure_worker may have just migrated the
                # stream — and then it queued the close itself (closing
                # was already set), so never queue a second one
                if not state.close_queued:
                    state.close_queued = True
                    self._put(state.worker, ("close", stream_id))
        else:
            with self._processor_lock:
                summary = self._processor.close(stream_id)
            with self._lock:
                state.summary = summary
        deadline = None if timeout is None \
            else time.perf_counter() + timeout
        with self._lock:
            while state.summary is None:
                remaining = None if deadline is None \
                    else deadline - time.perf_counter()
                if self._shutdown or (remaining is not None
                                      and remaining <= 0):
                    if self._streams.pop(stream_id, None) is not None:
                        self._unpin(state)
                        self._journal_stream_gone(stream_id,
                                                  "abort_stream")
                    raise ServiceUnavailable(
                        f"no close summary for stream {stream_id!r} "
                        f"within {timeout}s")
                self._ready.wait(remaining if remaining is not None
                                 else 0.5)
            raw = state.summary
            uncollected = list(state.results)
            if self._streams.pop(stream_id, None) is not None:
                self._unpin(state)
                self._journal_stream_gone(stream_id)
            self._closed_streams += 1
        summary = StreamSummary(
            stream=stream_id, kind=raw.get("kind", state.config.kind),
            segments=raw.get("segments", 0), frames=raw.get("frames", 0),
            bits=raw.get("bits", 0),
            mean_psnr_y=raw.get("mean_psnr_y"),
            payload=raw.get("payload", b""),
            cache=raw.get("cache", {}) or {},
            health=raw.get("health"),
            uncollected=uncollected,
        )
        return summary

    def _unpin(self, state: _StreamState) -> None:
        """Rebalance: drop a removed stream's pinning count (caller
        holds the lock)."""
        if self._pinned and 0 <= state.worker < len(self._pinned):
            self._pinned[state.worker] = max(
                0, self._pinned[state.worker] - 1)

    def abort_stream(self, stream_id: str) -> None:
        """Drop a stream without a summary (client vanished)."""
        with self._lock:
            state = self._streams.pop(stream_id, None)
            if state is None:
                return
            self._unpin(state)
            self._journal_stream_gone(stream_id, "abort_stream")
            self._closed_streams += 1
            worker = state.worker
        if self._processes:
            if self._processes[worker].is_alive():
                self._put(worker, ("abort", stream_id))
        else:
            with self._processor_lock:
                self._processor.abort(stream_id)

    # -- observability --------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Service-wide and per-stream queue/throughput counters."""
        with self._lock:
            streams = {
                state.id: {
                    "kind": state.config.kind,
                    "worker": state.worker,
                    "submitted": state.submitted,
                    "completed": state.completed,
                    "collected": state.collected,
                    "pending": state.submitted - state.collected,
                    "rejects": state.rejects,
                    "closing": state.closing,
                    "failed": state.failed,
                }
                for state in self._streams.values()
            }
            totals = {
                "workers": len(self._processes),
                "max_pending": self.max_pending,
                "respawns": self._respawns,
                "migrate": self._migrate,
                "migrations": self._migrations,
                "hangs_detected": self._hangs_detected,
                "journaled": self._journal is not None,
                "streams_restored": self._restored,
                "streams_open": len(self._streams),
                "streams_closed": self._closed_streams,
                "segments_submitted": sum(s["submitted"]
                                          for s in streams.values()),
                "segments_completed": sum(s["completed"]
                                          for s in streams.values()),
                "rejects": sum(s["rejects"] for s in streams.values()),
            }
        if self._processor is not None:
            totals["cache"] = self._processor.cache_stats()
        return {"totals": totals, "streams": streams}

"""Concurrent streaming codec service (sessions, pool, caches, transport).

The package splits into three layers, bottom up:

* :mod:`repro.serve.shared_cache` — lock-striped cross-stream LRU pools
  behind the ``fastme`` engine's plane/block caches;
* :mod:`repro.serve.service` — :class:`CodecService`: the session API
  (``open_stream`` / ``submit_segment`` / ``collect`` / ``close_stream``)
  over a bounded fork worker pool with per-stream backpressure;
* :mod:`repro.serve.transport` — the TCP/JSON-lines server and the
  blocking :class:`ServiceClient`.

Operator guide: ``docs/SERVING.md``.  Guarantee pinned by the tests: a
stream's bitstream is byte-identical to a one-shot encode of the same
frames, regardless of segmentation, interleaving, worker count, or
injected worker faults survived by the retry budget.
"""

from repro.serve.service import (
    CodecService,
    DECODE,
    ENCODE,
    SegmentProcessor,
    SegmentResult,
    StreamConfig,
    StreamSummary,
)
from repro.serve.shared_cache import SharedArrayCache
from repro.serve.transport import (
    ServiceClient,
    ServiceServer,
    frame_to_wire,
    run_server,
    wire_to_frame,
)

__all__ = [
    "CodecService",
    "DECODE",
    "ENCODE",
    "SegmentProcessor",
    "SegmentResult",
    "ServiceClient",
    "ServiceServer",
    "SharedArrayCache",
    "StreamConfig",
    "StreamSummary",
    "frame_to_wire",
    "run_server",
    "wire_to_frame",
]

"""TCP/JSON-lines transport for the streaming codec service.

One request per line, one JSON object per request, in both directions —
the lowest-dependency wire format the standard library can serve
(``asyncio.start_server``) and any language can speak.  The server is a
thin shell over :class:`~repro.serve.service.CodecService`: each request
maps onto one session-API call executed in the event loop's thread pool,
so the asyncio side stays responsive while segments grind in the worker
pool.

Request grammar (all ops)::

    {"op": "auth_challenge"}
    {"op": "auth",    "proof": "<hmac-sha256 hex>"}
    {"op": "open",    "config": {...StreamConfig fields...}}
    {"op": "submit",  "stream": "s0000", "frames": [<frame>...]}   encode
    {"op": "submit",  "stream": "s0000", "payload": "<base64>"}    decode
    (submit may carry "seq": N — the per-stream sequence number that
    makes resubmission after a service restart idempotent: a duplicate
    of a journal-committed segment re-delivers its recorded result
    instead of re-encoding)
    {"op": "collect", "stream": "s0000", "timeout": 5.0}
    {"op": "close",   "stream": "s0000"}
    {"op": "abort",   "stream": "s0000"}
    {"op": "stats"}

where ``<frame>`` is ``{"width": W, "height": H, "data": "<base64>"}``
with ``data`` the planar YUV 4:2:0 bytes (Y then U then V, the same
layout ``python -m repro encode`` reads from disk).  Responses are
``{"ok": true, ...}`` or ``{"ok": false, "code": "REPRO-SRV-...",
"error": "..."}`` — the ``code`` is the stable
:mod:`repro.errors` identifier, so clients branch on it, not on prose.

Failure semantics the tests pin down:

* malformed requests (bad JSON, unknown op, missing field) get a
  ``REPRO-SRV-PROTOCOL`` response and the connection stays up;
* with ``--auth-token`` (or ``REPRO_AUTH_TOKEN``) set on the server,
  every op except the ``auth_challenge``/``auth`` handshake is rejected
  with a structured ``REPRO-SRV-AUTH`` until the connection proves
  knowledge of the shared secret via HMAC-SHA256 challenge-response
  (:mod:`repro.supervise`) — the token itself never crosses the wire,
  and a mismatch is an explicit error, never a silent drop;
* a line over the 32 MiB limit closes the connection (there is no way
  to resynchronise a JSON-lines stream mid-line);
* a client disconnect aborts every stream that connection opened and
  never collected a close for — worker state is not leaked;
* a deterministic ``disconnect`` fault clause (:mod:`repro.faults`)
  drops the connection *before* the response is written, which is how
  the chaos tests exercise that cleanup path.

:class:`ServiceClient` is the blocking counterpart (plain socket), used
by ``python -m repro client`` and the tests.
"""

from __future__ import annotations

import asyncio
import base64
import json
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import faults, supervise
from repro.codec.frame import YuvFrame
from repro.errors import (
    BackpressureReject,
    ReproError,
    SegmentFailed,
    ServiceAuthError,
    ServiceError,
    ServiceProtocolError,
    ServiceUnavailable,
    StreamClosed,
    StreamUnknown,
)
# the framing layer (line limit, disconnect tolerance, cleanup) is shared
# with the distributed sweep coordinator; MAX_LINE_BYTES is re-exported
# because it is part of this module's documented contract
from repro.jsonlines import MAX_LINE_BYTES, JsonLinesClient, JsonLinesServer
from repro.serve.service import (
    CodecService,
    DECODE,
    ENCODE,
    SegmentResult,
    StreamConfig,
)

#: client-visible service errors, by wire code (for re-raising client-side)
_CODE_TO_ERROR = {
    cls.code: cls
    for cls in (ServiceError, StreamUnknown, StreamClosed,
                BackpressureReject, SegmentFailed, ServiceProtocolError,
                ServiceUnavailable, ServiceAuthError)
}


# -- wire encoding ------------------------------------------------------------

def frame_to_wire(frame: YuvFrame) -> Dict[str, object]:
    """One frame as its JSON-safe wire form (planar YUV420, base64)."""
    raw = frame.y.tobytes() + frame.u.tobytes() + frame.v.tobytes()
    return {"width": frame.width, "height": frame.height,
            "data": base64.b64encode(raw).decode("ascii")}


def wire_to_frame(data: Dict[str, object]) -> YuvFrame:
    """Parse one wire frame; raises ServiceProtocolError on bad shape."""
    try:
        width, height = int(data["width"]), int(data["height"])
        raw = base64.b64decode(data["data"], validate=True)
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceProtocolError(f"bad frame object: {exc}") from exc
    y_size = width * height
    c_size = (width // 2) * (height // 2)
    if len(raw) != y_size + 2 * c_size:
        raise ServiceProtocolError(
            f"frame data is {len(raw)} bytes; {width}x{height} planar "
            f"YUV420 needs {y_size + 2 * c_size}")
    buffer = np.frombuffer(raw, dtype=np.uint8)
    return YuvFrame(
        y=buffer[:y_size].reshape(height, width).copy(),
        u=buffer[y_size:y_size + c_size]
        .reshape(height // 2, width // 2).copy(),
        v=buffer[y_size + c_size:]
        .reshape(height // 2, width // 2).copy(),
    )


def _result_to_wire(result: SegmentResult) -> Dict[str, object]:
    return result.to_dict()


# -- server -------------------------------------------------------------------

class _ConnState:
    """Per-connection state: owned streams plus the auth handshake."""

    __slots__ = ("owned", "challenge", "authed")

    def __init__(self):
        self.owned: set = set()    # opened here, not yet closed
        self.challenge: Optional[str] = None
        self.authed = False


class ServiceServer(JsonLinesServer):
    """Asyncio JSON-lines front end over one :class:`CodecService`.

    The accept/frame/cleanup loop comes from
    :class:`repro.jsonlines.JsonLinesServer`; this class contributes the
    op dispatch (run in the event loop's thread pool so segments grind
    without blocking the loop), the shared-secret auth gate, the
    injected-disconnect fault hook, and the on-disconnect abort of the
    connection's unclosed streams.
    """

    #: an oversize request line is rejected with this protocol code
    frame_error = ServiceProtocolError

    def __init__(self, service: CodecService, host: str = "127.0.0.1",
                 port: int = 0, auth_token: Optional[str] = None):
        super().__init__(host, port)
        self.service = service
        self.auth_token = auth_token

    def connection_state(self) -> _ConnState:
        return _ConnState()

    async def respond(self, line: bytes, state: _ConnState,
                      requests: int) -> Tuple[Dict[str, object], bool]:
        response, stream_id = await asyncio.to_thread(
            self._dispatch, line, state)
        drop = stream_id is not None and faults.should_disconnect(
            stream_id, requests)
        return response, drop

    async def on_disconnect(self, state: _ConnState) -> None:
        for stream_id in state.owned:
            try:
                await asyncio.to_thread(self.service.abort_stream,
                                        stream_id)
            except ReproError:
                pass

    # -- request handling (runs in the thread pool) ---------------------------
    def _dispatch(self, line: bytes, state: _ConnState
                  ) -> Tuple[Dict[str, object], Optional[str]]:
        stream_id: Optional[str] = None
        try:
            try:
                request = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ServiceProtocolError(
                    f"request is not valid JSON: {exc}") from exc
            if not isinstance(request, dict) or "op" not in request:
                raise ServiceProtocolError(
                    "a request is a JSON object with an 'op' field")
            op = request["op"]
            stream_id = request.get("stream")
            if self.auth_token is not None and not state.authed \
                    and op not in ("auth_challenge", "auth"):
                raise ServiceAuthError(
                    "this server requires authentication; complete the "
                    "auth_challenge/auth handshake first")
            handler = getattr(self, f"_op_{op}", None)
            if handler is None:
                raise ServiceProtocolError(f"unknown op {op!r}")
            response = handler(request, state)
            response["ok"] = True
            return response, stream_id
        except ReproError as exc:
            return {"ok": False, "code": exc.code, "error": str(exc),
                    "hint": exc.hint}, stream_id

    @staticmethod
    def _required(request: Dict[str, object], field: str) -> object:
        if field not in request:
            raise ServiceProtocolError(
                f"op {request.get('op')!r} needs a {field!r} field")
        return request[field]

    def _op_auth_challenge(self, request, state) -> Dict[str, object]:
        # a null challenge tells the client auth is not required here
        if self.auth_token is None:
            return {"challenge": None}
        state.challenge = supervise.auth_challenge()
        return {"challenge": state.challenge}

    def _op_auth(self, request, state) -> Dict[str, object]:
        proof = request.get("proof")
        if not supervise.auth_verify(self.auth_token, state.challenge,
                                     proof if isinstance(proof, str)
                                     else None):
            raise ServiceAuthError(
                "authentication failed: the proof does not match this "
                "server's token (or no challenge was requested first)")
        state.authed = True
        return {"authed": True}

    def _op_open(self, request, state) -> Dict[str, object]:
        config = request.get("config") or {}
        if not isinstance(config, dict):
            raise ServiceProtocolError("'config' must be a JSON object")
        stream_id = self.service.open_stream(StreamConfig.from_dict(config))
        state.owned.add(stream_id)
        return {"stream": stream_id}

    def _op_submit(self, request, state) -> Dict[str, object]:
        stream_id = self._required(request, "stream")
        if "frames" in request:
            payload: object = [wire_to_frame(item)
                               for item in request["frames"]]
        elif "payload" in request:
            try:
                payload = base64.b64decode(request["payload"],
                                           validate=True)
            except (TypeError, ValueError) as exc:
                raise ServiceProtocolError(
                    f"'payload' is not valid base64: {exc}") from exc
        else:
            raise ServiceProtocolError(
                "submit needs 'frames' (encode) or 'payload' (decode)")
        seq = request.get("seq")
        try:
            seq = None if seq is None else int(seq)
        except (TypeError, ValueError) as exc:
            raise ServiceProtocolError(
                f"'seq' must be an integer: {exc}") from exc
        index = self.service.submit_segment(stream_id, payload, seq=seq)
        return {"stream": stream_id, "segment": index}

    def _op_collect(self, request, state) -> Dict[str, object]:
        stream_id = self._required(request, "stream")
        timeout = request.get("timeout")
        results = self.service.collect(
            stream_id, None if timeout is None else float(timeout))
        return {"stream": stream_id,
                "results": [_result_to_wire(r) for r in results]}

    def _op_close(self, request, state) -> Dict[str, object]:
        stream_id = self._required(request, "stream")
        summary = self.service.close_stream(stream_id)
        state.owned.discard(stream_id)
        data = summary.to_dict()
        data["payload"] = base64.b64encode(summary.payload).decode("ascii")
        return {"summary": data}

    def _op_abort(self, request, state) -> Dict[str, object]:
        stream_id = self._required(request, "stream")
        self.service.abort_stream(stream_id)
        state.owned.discard(stream_id)
        return {"stream": stream_id}

    def _op_stats(self, request, state) -> Dict[str, object]:
        return {"stats": self.service.stats()}


async def run_server(service: CodecService, host: str, port: int,
                     ready=None,
                     auth_token: Optional[str] = None) -> None:
    """Serve until cancelled; ``ready`` (if given) receives (host, port)."""
    server = ServiceServer(service, host, port, auth_token=auth_token)
    bound = await server.start()
    if ready is not None:
        ready(bound)
    try:
        await server.serve_forever()
    finally:
        await server.stop()


# -- blocking client ----------------------------------------------------------

class ServiceClient(JsonLinesClient):
    """Blocking JSON-lines client (``python -m repro client``, tests).

    Mirrors the in-process session API; server-side failures re-raise as
    the matching :mod:`repro.errors` class, mapped from the wire code.
    On connect it asks the server for an auth challenge and — when the
    server requires auth — answers with an HMAC proof of ``auth_token``
    (default: the ``REPRO_AUTH_TOKEN`` environment variable).  A missing
    or wrong token surfaces as a structured
    :class:`~repro.errors.ServiceAuthError` before any session call.
    """

    unavailable_error = ServiceUnavailable

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: Optional[float] = 120.0,
                 auth_token: Optional[str] = None):
        super().__init__(host, port, timeout)
        #: next sequence number per stream this client opened — sent
        #: with every submit so a journaled server can dedup
        #: resubmissions after a restart (see :meth:`submit_segment`)
        self._seqs: Dict[str, int] = {}
        challenge = self._request(
            {"op": "auth_challenge"}).get("challenge")
        if challenge is not None:
            token = supervise.resolve_token(auth_token)
            self._request({"op": "auth",
                           "proof": supervise.auth_proof(token or "",
                                                         challenge)})

    def error_for(self, response: Dict[str, object]) -> ReproError:
        error = _CODE_TO_ERROR.get(response.get("code"), ServiceError)
        return error(response.get("error", "request failed"))

    _request = JsonLinesClient.request

    # -- session API ----------------------------------------------------------
    def open_stream(self, config: Optional[StreamConfig] = None) -> str:
        request: Dict[str, object] = {"op": "open"}
        if config is not None:
            request["config"] = config.to_dict()
        stream_id = self._request(request)["stream"]
        self._seqs[stream_id] = 0
        return stream_id

    def attach_stream(self, stream_id: str, next_seq: int) -> None:
        """Adopt a stream another client incarnation opened (recovery):
        subsequent submits resume sequence numbering at ``next_seq``."""
        self._seqs[stream_id] = int(next_seq)

    def submit_segment(self, stream_id: str, payload,
                       seq: Optional[int] = None) -> int:
        """Submit one segment, stamped with its per-stream sequence
        number.  Pass ``seq`` explicitly to resubmit a segment whose
        fate is unknown after a server restart — the server re-delivers
        the journaled result for already-committed duplicates instead
        of re-encoding them."""
        request: Dict[str, object] = {"op": "submit", "stream": stream_id}
        if isinstance(payload, (bytes, bytearray)):
            request["payload"] = base64.b64encode(
                bytes(payload)).decode("ascii")
        else:
            request["frames"] = [frame_to_wire(frame) for frame in payload]
        if seq is None:
            seq = self._seqs.get(stream_id)
        if seq is not None:
            request["seq"] = seq
        index = self._request(request)["segment"]
        self._seqs[stream_id] = max(self._seqs.get(stream_id, 0),
                                    index + 1)
        return index

    def collect(self, stream_id: str,
                timeout: Optional[float] = None) -> List[SegmentResult]:
        request: Dict[str, object] = {"op": "collect", "stream": stream_id}
        if timeout is not None:
            request["timeout"] = timeout
        return [SegmentResult.from_dict(item)
                for item in self._request(request)["results"]]

    def close_stream(self, stream_id: str) -> Dict[str, object]:
        summary = self._request({"op": "close",
                                 "stream": stream_id})["summary"]
        summary["payload"] = base64.b64decode(summary["payload"])
        summary["uncollected"] = [SegmentResult.from_dict(item)
                                  for item in summary["uncollected"]]
        self._seqs.pop(stream_id, None)
        return summary

    def abort_stream(self, stream_id: str) -> None:
        self._request({"op": "abort", "stream": stream_id})
        self._seqs.pop(stream_id, None)

    def stats(self) -> Dict[str, object]:
        return self._request({"op": "stats"})["stats"]

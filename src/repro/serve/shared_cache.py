"""Lock-striped shared LRU caches for cross-stream codec state.

The ``fastme`` engine ships with *per-encoder* LRUs for its two expensive
derived artefacts — half-sample :class:`~repro.codec.fastme.ReferencePlanes`
and per-frame macroblock matrices.  One encoder per stream means one
capacity knob *per stream*: a service hosting 50 streams would hold up to
50 × 4 plane sets with no global bound and no fleet-wide hit-rate signal.

:class:`SharedArrayCache` lifts that state behind one shared, thread-safe
pool.  Like the private LRUs it is keyed on array *identity* (``id``)
with a strong reference to the key array, so entries can never be served
for a recycled id; capacity is global across every stream/engine sharing
the cache.  Concurrency is **lock-striped**: keys hash onto
``stripes`` independent ``(lock, OrderedDict)`` shards, so two worker
threads touching different reference frames almost never contend, and no
lock is ever held across the expensive ``build`` call — two threads
racing to build the same key do redundant work once instead of
serialising every build behind a global lock (the loser's value wins the
slot; both values are bit-identical because builds are pure).

Counters (hits / builds / evictions, per stripe, summed by
:meth:`SharedArrayCache.stats`) feed the serving layer's per-stream and
service-wide health output — the observability half of the
``cache_stats()`` fix this module rode in with.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.errors import CodecError


class _Stripe:
    """One shard: its lock, LRU entries and counters."""

    __slots__ = ("lock", "entries", "hits", "builds", "evictions")

    def __init__(self):
        self.lock = threading.Lock()
        #: id(array) -> (array, value); insertion order = LRU
        self.entries: "OrderedDict[int, Tuple[np.ndarray, object]]" = \
            OrderedDict()
        self.hits = 0
        self.builds = 0
        self.evictions = 0


class SharedArrayCache:
    """A lock-striped, identity-keyed LRU shared by many engines.

    ``capacity`` bounds the total entry count across all stripes (each
    stripe holds at most ``ceil(capacity / stripes)``, so the bound holds
    under any key distribution); ``stripes`` sets the concurrency grain.
    """

    def __init__(self, capacity: int = 16, stripes: int = 8,
                 name: str = "shared"):
        if capacity < 1:
            raise CodecError("shared cache capacity must be >= 1")
        if stripes < 1:
            raise CodecError("shared cache needs at least one stripe")
        self.name = name
        self.capacity = capacity
        self._per_stripe = -(-capacity // stripes)  # ceil
        self._stripes: List[_Stripe] = [_Stripe()
                                        for _ in range(min(stripes, capacity))]

    def get_or_build(self, array: np.ndarray,
                     build: Callable[[np.ndarray], object]
                     ) -> Tuple[object, bool]:
        """The cached value for ``array``, building it on a miss.

        Returns ``(value, hit)`` so callers can keep their own counters
        (the :class:`~repro.codec.fastme.FastSadEngine` contract).
        """
        key = id(array)
        stripe = self._stripes[key % len(self._stripes)]
        with stripe.lock:
            entry = stripe.entries.get(key)
            if entry is not None and entry[0] is array:
                stripe.entries.move_to_end(key)
                stripe.hits += 1
                return entry[1], True
        value = build(array)          # deliberately outside the lock
        with stripe.lock:
            stripe.builds += 1
            stripe.entries[key] = (array, value)
            stripe.entries.move_to_end(key)
            while len(stripe.entries) > self._per_stripe:
                stripe.entries.popitem(last=False)
                stripe.evictions += 1
        return value, False

    def __len__(self) -> int:
        return sum(len(stripe.entries) for stripe in self._stripes)

    def stats(self) -> Dict[str, object]:
        """Summed per-stripe counters plus the current occupancy."""
        hits = sum(stripe.hits for stripe in self._stripes)
        builds = sum(stripe.builds for stripe in self._stripes)
        lookups = hits + builds
        return {
            "name": self.name,
            "capacity": self.capacity,
            "stripes": len(self._stripes),
            "entries": len(self),
            "hits": hits,
            "builds": builds,
            "evictions": sum(stripe.evictions for stripe in self._stripes),
            "hit_rate": hits / lookups if lookups else 0.0,
        }

    def clear(self) -> None:
        """Drop every entry and zero every counter (all stripes)."""
        for stripe in self._stripes:
            with stripe.lock:
                stripe.entries.clear()
                stripe.hits = stripe.builds = stripe.evictions = 0

"""Modulo scheduling (software pipelining) of counted loops.

The SAD/DCT/MC kernels all share one loop shape: a straight-line body
followed by the ``counted_loop`` trio (``addi counter,-1`` /
``cmpnei counter,0`` / ``br``) branching back to the block's own label,
with the trip count established by a single ``movi`` in an earlier block.
This module overlaps successive iterations of such loops:

1. :func:`find_counted_loop` proves the shape (self-loop, counter and
   condition untouched by the body, statically known trip count, no other
   branch entering the loop);
2. the body's dependence graph is extended with iteration-crossing edges
   (``omega`` = iteration distance): loop-carried RAW through registers
   read before they are (re)defined, WAR/WAW against the next iteration's
   redefinition, conservative ordering of all RFU ops (the reconfigurable
   unit is stateful — DIAG configurations interleave ``send``/``exec``
   through a shared operand buffer, so the whole RFU program order is kept
   across iterations), and store-group memory ordering;
3. the minimum initiation interval (MII) comes from resource usage
   (including the loop-control ops), issue width and self-recurrences;
   iterative modulo scheduling (Rau-style, with eviction and a placement
   budget) then searches II = MII, MII+1, ... strictly below the list
   schedule's length;
4. the placement is verified (every edge, the modulo reservation table,
   register-lifetime bounds) and emitted as up to three scheduled blocks:
   ``<label>.pro`` (prologue: first ``S-1`` partial iterations plus one
   bundle adjusting the counter by ``-(S-1)``), the steady-state kernel —
   which keeps the original label so the back edge branches to it — and
   ``<label>.epi`` (drain).  The :class:`~repro.program.ir.Program` object
   is left untouched; only the scheduled view gains blocks.

Register correctness under overlap does not rely on modulo variable
expansion: every value's uses are constrained to finish strictly inside
one II window of its definition (encoded as ordinary WAR edges against
the next iteration's redefinition, with older iterations ordered first
inside shared bundles), so the allocator's one-physical-register-per-
virtual policy stays sound.

Any loop that fails a precondition — or for which no II shorter than the
list schedule is found — simply falls back to list scheduling, as does
any block that is not a counted loop.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ScheduleError
from repro.isa.instruction import Bundle, Operation
from repro.isa.opcodes import Resource
from repro.program.dag import build_dependence_graph
from repro.program.ir import BasicBlock, Program
from repro.program.legality import check_bundle_limits
from repro.program.scheduler import (
    DEFAULT_CAPACITY,
    ISSUE_WIDTH,
    PRESSURE_LIMIT,
    ScheduledBlock,
    ScheduledProgram,
    default_latency,
    schedule_block,
)

#: an edge in the loop dependence graph: (src, dst, min distance, omega);
#: the constraint is ``t[dst] + omega * II >= t[src] + distance``.
LoopEdge = Tuple[int, int, int, int]


@dataclass
class CountedLoop:
    """A provably pipelineable counted loop."""

    block: BasicBlock
    body: List[Operation]          # everything before the control trio
    control: List[Operation]       # [addi, cmpnei, br]
    counter: object
    cond: object
    trip: int                      # static iteration count


@dataclass
class PipelinedLoop:
    """Result of pipelining one loop (attached for benches/CLI)."""

    label: str
    ii: int
    stages: int
    trip: int
    baseline_length: int


def find_counted_loop(program: Program,
                      block: BasicBlock) -> Optional[CountedLoop]:
    """Prove ``block`` is a pipelineable counted loop, or return None.

    Requirements: the block ends in the ``counted_loop`` trio branching to
    itself; the body never touches the counter or the condition register;
    every branch in the program is a self-loop (so block order is
    execution order and nothing jumps into the loop past the prologue);
    and the counter's last write before the loop is a single ``movi`` with
    a positive immediate — the trip count.
    """
    if len(block.ops) < 4 or not block.terminated:
        return None
    branch = block.ops[-1]
    compare = block.ops[-2]
    decrement = block.ops[-3]
    if branch.opcode != "br" or branch.label != block.label:
        return None
    if compare.opcode != "cmpnei" or compare.imm != 0:
        return None
    if decrement.opcode != "addi" or decrement.imm != -1:
        return None
    cond = compare.dest
    counter = decrement.dest
    if branch.srcs != (cond,):
        return None
    if decrement.srcs != (counter,) or compare.srcs != (counter,):
        return None
    body = block.ops[:-3]
    for op in body:
        if op.dest is not None and op.dest in (counter, cond):
            return None
        if counter in op.srcs or cond in op.srcs:
            return None

    trip: Optional[int] = None
    before_loop = True
    for other in program.blocks:
        if other is block:
            before_loop = False
            continue
        for op in other.ops:
            if op.spec.is_branch and op.label != other.label:
                return None  # non-self branch: block order != execution order
            if op.spec.is_branch and op.label == block.label:
                return None  # something else enters the loop
            if cond in op.srcs or (op.dest is not None and op.dest == cond):
                return None
            if before_loop and op.dest is not None and op.dest == counter:
                trip = op.imm if op.opcode == "movi" else None
    if trip is None or trip < 1:
        return None
    return CountedLoop(block=block, body=list(body),
                       control=[decrement, compare, branch],
                       counter=counter, cond=cond, trip=trip)


def _body_edges(body: List[Operation], latency_of) -> List[LoopEdge]:
    """Intra- and cross-iteration dependence edges of a loop body."""
    edges: List[LoopEdge] = []
    sub = BasicBlock("body", list(body))
    intra = build_dependence_graph(sub, latency_of)
    for src, succ_edges in intra.succs.items():
        for dst, distance in succ_edges:
            edges.append((src, dst, distance, 0))

    defs: Dict[object, List[int]] = defaultdict(list)
    uses: Dict[object, List[int]] = defaultdict(list)
    for index, op in enumerate(body):
        for src in op.srcs:
            uses[src].append(index)
        if op.dest is not None:
            defs[op.dest].append(index)

    for reg, reg_defs in defs.items():
        first_def, last_def = reg_defs[0], reg_defs[-1]
        carried_latency = max(1, latency_of(body[last_def]))
        for use in uses.get(reg, ()):
            if use < first_def:
                # reads the previous iteration's (last) definition
                edges.append((last_def, use, carried_latency, 1))
            elif use >= last_def:
                # value must die before the next iteration redefines it
                edges.append((use, first_def, 0, 1))
        edges.append((last_def, first_def, 1, 1))  # WAW across iterations

    # memory: any tag group containing a store keeps conservative order
    # across iterations (addresses advance, but the model orders by tag)
    groups: Dict[object, List[int]] = defaultdict(list)
    for index, op in enumerate(body):
        spec = op.spec
        if spec.is_load or spec.is_store or spec.is_prefetch:
            groups[op.mem_tag].append(index)
    for members in groups.values():
        if any(body[i].spec.is_store for i in members):
            for src in members:
                for dst in members:
                    edges.append((src, dst, 1, 1))

    # the RFU is stateful (shared FIFOs, send/exec operand buffers): keep
    # ALL RFU ops in strict program order within and across iterations
    rfu_ops = [i for i, op in enumerate(body)
               if op.spec.resource is Resource.RFU]
    for earlier, later in zip(rfu_ops, rfu_ops[1:]):
        edges.append((earlier, later,
                      max(1, latency_of(body[earlier])), 0))
    if rfu_ops:
        edges.append((rfu_ops[-1], rfu_ops[0],
                      max(1, latency_of(body[rfu_ops[-1]])), 1))
    return edges


def _body_heights(body: List[Operation], edges: List[LoopEdge],
                  latency_of) -> List[int]:
    """Critical-path heights over the intra-iteration (omega 0) edges.

    All omega-0 edges point forward in program order, so descending index
    order is a reverse topological order.
    """
    succs = defaultdict(list)
    for src, dst, distance, omega in edges:
        if omega == 0 and src != dst:
            succs[src].append((dst, distance))
    heights = [0] * len(body)
    for index in reversed(range(len(body))):
        best = 0
        for dst, distance in succs[index]:
            best = max(best, distance + heights[dst])
        heights[index] = best + max(1, latency_of(body[index]))
    return heights


def _place_body(body: List[Operation], edges: List[LoopEdge],
                heights: List[int], ii: int,
                capacity: Dict[Resource, int], issue_width: int,
                reserved: List[Tuple[int, Resource]]
                ) -> Optional[Dict[int, int]]:
    """Iterative modulo scheduling of the body at initiation interval ``ii``.

    Returns op index -> nominal issue time, or None when the placement
    budget is exhausted or a conflict cannot be evicted (reserved control
    slots are immovable).
    """
    count = len(body)
    preds = defaultdict(list)
    succs = defaultdict(list)
    for src, dst, distance, omega in edges:
        succs[src].append((dst, distance, omega))
        preds[dst].append((src, distance, omega))

    mrt_res: List[Dict[Resource, int]] = [defaultdict(int) for _ in range(ii)]
    mrt_issue = [0] * ii
    slot_ops: List[List[int]] = [[] for _ in range(ii)]
    for slot, resource in reserved:
        mrt_res[slot][resource] += 1
        mrt_issue[slot] += 1

    time: Dict[int, int] = {}
    last_placed: Dict[int, int] = {}
    priority = {i: (-heights[i], i) for i in range(count)}
    pending = set(range(count))
    budget = 60 * count + 200

    def unplace(index: int) -> None:
        slot = time[index] % ii
        slot_ops[slot].remove(index)
        mrt_res[slot][body[index].spec.resource] -= 1
        mrt_issue[slot] -= 1
        del time[index]
        pending.add(index)

    while pending:
        budget -= 1
        if budget < 0:
            return None
        index = min(pending, key=lambda i: priority[i])
        resource = body[index].spec.resource
        earliest = 0
        for src, distance, omega in preds[index]:
            if src in time and src != index:
                earliest = max(earliest, time[src] + distance - omega * ii)
        start = max(earliest, 0)
        placed_at: Optional[int] = None
        for t in range(start, start + ii):
            slot = t % ii
            if (mrt_issue[slot] < issue_width
                    and mrt_res[slot][resource] < capacity.get(resource, 0)):
                placed_at = t
                break
        if placed_at is None:
            # forced placement with eviction (never past the budget)
            placed_at = max(start, last_placed.get(index, -1) + 1)
            slot = placed_at % ii
            if mrt_res[slot][resource] >= capacity.get(resource, 0):
                victims = [i for i in slot_ops[slot]
                           if body[i].spec.resource is resource]
                if not victims:
                    return None  # only immovable control ops hold the slot
                unplace(max(victims, key=lambda i: priority[i]))
            while mrt_issue[slot] >= issue_width:
                if not slot_ops[slot]:
                    return None
                unplace(max(slot_ops[slot], key=lambda i: priority[i]))
        slot = placed_at % ii
        time[index] = placed_at
        last_placed[index] = placed_at
        slot_ops[slot].append(index)
        mrt_res[slot][resource] += 1
        mrt_issue[slot] += 1
        pending.discard(index)
        # evict anything the new placement now violates
        for dst, distance, omega in succs[index]:
            if dst in time and dst != index:
                if time[dst] + omega * ii < time[index] + distance:
                    unplace(dst)
        for src, distance, omega in preds[index]:
            if src in time and src != index:
                if time[index] + omega * ii < time[src] + distance:
                    unplace(src)
    return time


def _verify_placement(loop: CountedLoop, edges: List[LoopEdge],
                      time: Dict[int, int], ii: int,
                      capacity: Dict[Resource, int], issue_width: int,
                      reserved: List[Tuple[int, Resource]]) -> None:
    """Internal consistency check of a modulo placement.

    Every edge constraint must hold at the chosen II, and the modulo
    reservation table (body ops folded into their slots, plus the reserved
    control slots) must fit the machine.  Raises on violation — these are
    scheduler bugs, not input errors, but a wrong overlap corrupts
    results silently, so it is always checked.
    """
    body = loop.body
    label = loop.block.label
    if sorted(time) != list(range(len(body))):
        raise ScheduleError(
            f"modulo {label!r}: placement does not cover the body")
    for src, dst, distance, omega in edges:
        if time[dst] + omega * ii < time[src] + distance:
            raise ScheduleError(
                f"modulo {label!r}: edge {body[src]} -> {body[dst]} "
                f"(distance {distance}, omega {omega}) violated at II {ii}")
    usage: List[Dict[Resource, int]] = [defaultdict(int) for _ in range(ii)]
    width = [0] * ii
    for slot, resource in reserved:
        usage[slot][resource] += 1
        width[slot] += 1
    for index, t in time.items():
        usage[t % ii][body[index].spec.resource] += 1
        width[t % ii] += 1
    for slot in range(ii):
        if width[slot] > issue_width:
            raise ScheduleError(
                f"modulo {label!r}: slot {slot} exceeds issue width")
        for resource, used in usage[slot].items():
            if used > capacity.get(resource, 0):
                raise ScheduleError(
                    f"modulo {label!r}: slot {slot} oversubscribes "
                    f"{resource.value!r}")


def _emit_blocks(loop: CountedLoop, time: Dict[int, int], ii: int,
                 capacity: Dict[Resource, int],
                 issue_width: int) -> List[ScheduledBlock]:
    """Flatten a placement into prologue / kernel / epilogue blocks.

    Iteration ``i``'s copy of an op placed at nominal time ``t`` issues at
    absolute cycle ``i*II + t``.  The prologue covers absolute cycles
    ``[0, (S-1)*II)``; the kernel window holds each op once at slot
    ``t mod II`` (executed ``trip - S + 1`` times); the epilogue drains
    the remaining partial iterations.  Within a bundle, instances from
    older iterations come first and same-iteration instances keep program
    order, which is exactly the order distance-0 (reader-before-writer)
    pairs require.
    """
    body = loop.body
    decrement, compare, branch = loop.control
    label = loop.block.label
    max_t = max(time.values()) if time else 0
    stages = max_t // ii + 1

    def sort_bundle(entries: List[Tuple[int, int]]) -> List[Operation]:
        # entries: (iteration rank, body index); older iterations first
        return [body[index] for _, index in sorted(entries)]

    blocks: List[ScheduledBlock] = []

    if stages > 1:
        pro_cycles = (stages - 1) * ii
        pro: List[List[Tuple[int, int]]] = [[] for _ in range(pro_cycles)]
        for index, t in time.items():
            for iteration in range(stages - 1):
                cycle = iteration * ii + t
                if cycle < pro_cycles:
                    pro[cycle].append((iteration, index))
        adjust = Operation("addi", dest=loop.counter, srcs=(loop.counter,),
                           imm=-(stages - 1),
                           comment="pipeline fill: kernel runs fewer times")
        bundles = [Bundle([adjust])]
        bundles += [Bundle(sort_bundle(entries)) for entries in pro]
        blocks.append(ScheduledBlock(f"{label}.pro", bundles))

    kernel: List[List[Tuple[int, int]]] = [[] for _ in range(ii)]
    for index, t in time.items():
        stage = t // ii
        # iteration rank: within one kernel window, higher stages are
        # instances of older (earlier-started) iterations
        kernel[t % ii].append((stages - 1 - stage, index))
    kernel_bundles = [Bundle(sort_bundle(entries)) for entries in kernel]
    kernel_bundles[ii - 4].ops.append(decrement)
    kernel_bundles[ii - 3].ops.append(compare)
    kernel_bundles[ii - 1].ops.append(branch)
    blocks.append(ScheduledBlock(label, kernel_bundles))

    if stages > 1:
        epi_cycles = max_t + 1 - ii
        epi: List[List[Tuple[int, int]]] = [[] for _ in range(epi_cycles)]
        for index, t in time.items():
            for drain in range(1, stages):
                if t >= drain * ii:
                    # iteration trip - drain; larger drain = older
                    epi[t - drain * ii].append((-drain, index))
        blocks.append(ScheduledBlock(
            f"{label}.epi", [Bundle(sort_bundle(entries)) for entries in epi]))

    for scheduled in blocks:
        check_bundle_limits(scheduled.bundles, capacity, issue_width,
                            scheduled.label)
    return blocks


def try_pipeline_block(program: Program, block: BasicBlock,
                       latency_of, capacity: Dict[Resource, int],
                       issue_width: int, pressure_limit: int
                       ) -> Optional[Tuple[List[ScheduledBlock],
                                           PipelinedLoop]]:
    """Pipeline one block if it is a counted loop and pipelining wins.

    Returns the scheduled blocks plus a :class:`PipelinedLoop` summary, or
    None to fall back to list scheduling.
    """
    loop = find_counted_loop(program, block)
    if loop is None or not loop.body:
        return None
    labels = {blk.label for blk in program.blocks}
    if f"{block.label}.pro" in labels or f"{block.label}.epi" in labels:
        return None
    baseline = schedule_block(block, latency_of, capacity, issue_width,
                              pressure_limit)
    body = loop.body
    resources = Counter(op.spec.resource for op in body + loop.control)
    for resource, count in resources.items():
        if capacity.get(resource, 0) < 1:
            return None
    res_mii = max(math.ceil(count / capacity[resource])
                  for resource, count in resources.items())
    issue_mii = math.ceil((len(body) + len(loop.control)) / issue_width)
    edges = _body_edges(body, latency_of)
    self_mii = max((distance for src, dst, distance, omega in edges
                    if src == dst and omega == 1), default=1)
    # the control trio needs slots II-4 (addi), II-3 (cmpnei, latency 2)
    # and II-1 (br), so II >= 4
    mii = max(res_mii, issue_mii, self_mii, 4)
    heights = _body_heights(body, edges, latency_of)

    for ii in range(mii, baseline.length):
        reserved = [(ii - 4, Resource.ALU), (ii - 3, Resource.ALU),
                    (ii - 1, Resource.BRANCH)]
        time = _place_body(body, edges, heights, ii, capacity, issue_width,
                           reserved)
        if time is None:
            continue
        stages = max(time.values()) // ii + 1
        if loop.trip < stages:
            continue  # not enough iterations to fill the pipeline
        _verify_placement(loop, edges, time, ii, capacity, issue_width,
                          reserved)
        blocks = _emit_blocks(loop, time, ii, capacity, issue_width)
        summary = PipelinedLoop(label=block.label, ii=ii, stages=stages,
                                trip=loop.trip,
                                baseline_length=baseline.length)
        return blocks, summary
    return None


def schedule_program_modulo(program: Program,
                            latency_of=None,
                            capacity: Optional[Dict[Resource, int]] = None,
                            issue_width: int = ISSUE_WIDTH,
                            pressure_limit: int = PRESSURE_LIMIT
                            ) -> ScheduledProgram:
    """Schedule ``program``, software-pipelining every eligible loop.

    Non-loop blocks (and loops that fail the preconditions or gain
    nothing) use the paper list scheduler.  The returned program carries a
    ``pipelined`` attribute listing a :class:`PipelinedLoop` per
    transformed loop.
    """
    latency_of = latency_of or default_latency
    capacity = dict(capacity or DEFAULT_CAPACITY)
    program.validate()
    blocks: List[ScheduledBlock] = []
    pipelined: List[PipelinedLoop] = []
    for blk in program.blocks:
        attempt = try_pipeline_block(program, blk, latency_of, capacity,
                                     issue_width, pressure_limit)
        if attempt is None:
            blocks.append(schedule_block(blk, latency_of, capacity,
                                         issue_width, pressure_limit))
        else:
            new_blocks, summary = attempt
            blocks.extend(new_blocks)
            pipelined.append(summary)
    scheduled = ScheduledProgram(program.name, blocks, program)
    scheduled.pipelined = pipelined
    return scheduled

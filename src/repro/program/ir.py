"""Intermediate representation: programs as labelled basic blocks.

A :class:`Program` is an ordered list of :class:`BasicBlock`; control falls
through block to block unless a branch operation transfers to another label.
Registers are :class:`~repro.isa.registers.VirtualRegister` until
:func:`repro.program.regalloc.allocate_registers` rewrites them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.errors import IsaError
from repro.isa.instruction import Operation
from repro.isa.registers import Register, VirtualRegister


@dataclass
class BasicBlock:
    """A straight-line run of operations ending in (at most) one branch."""

    label: str
    ops: List[Operation] = field(default_factory=list)

    def append(self, op: Operation) -> Operation:
        if self.terminated:
            raise IsaError(
                f"block {self.label!r} already ends in a branch; "
                f"cannot append {op!r}")
        self.ops.append(op)
        return op

    @property
    def terminated(self) -> bool:
        return bool(self.ops) and self.ops[-1].spec.is_branch

    @property
    def branch(self) -> Optional[Operation]:
        return self.ops[-1] if self.terminated else None

    def defined_registers(self) -> Set[Register]:
        return {op.dest for op in self.ops if op.dest is not None}

    def used_registers(self) -> Set[Register]:
        used: Set[Register] = set()
        for op in self.ops:
            used.update(op.srcs)
        return used

    def __repr__(self) -> str:
        return f"BasicBlock({self.label!r}, {len(self.ops)} ops)"


@dataclass
class Program:
    """An ordered collection of basic blocks plus allocation metadata.

    ``persistent`` lists virtual registers whose values must survive across
    block boundaries and loop back-edges (kernel parameters, loop counters,
    accumulators); the allocator pins each to a dedicated physical register
    for the program's whole lifetime.
    """

    name: str
    blocks: List[BasicBlock] = field(default_factory=list)
    persistent: Set[VirtualRegister] = field(default_factory=set)
    #: Virtual registers the caller initialises before execution, in order.
    params: List[VirtualRegister] = field(default_factory=list)
    #: Virtual register holding the kernel result (read after execution).
    result: Optional[VirtualRegister] = None

    def block(self, label: str) -> BasicBlock:
        for candidate in self.blocks:
            if candidate.label == label:
                return candidate
        raise IsaError(f"program {self.name!r} has no block {label!r}")

    def block_index(self) -> Dict[str, int]:
        return {blk.label: i for i, blk in enumerate(self.blocks)}

    def all_ops(self) -> List[Operation]:
        return [op for blk in self.blocks for op in blk.ops]

    def validate(self) -> None:
        """Check structural invariants: unique labels, resolvable branches."""
        labels = [blk.label for blk in self.blocks]
        if len(set(labels)) != len(labels):
            raise IsaError(f"duplicate block labels in program {self.name!r}")
        known = set(labels)
        for blk in self.blocks:
            for op in blk.ops:
                if op.spec.is_branch and op.label not in known:
                    raise IsaError(
                        f"branch target {op.label!r} in block {blk.label!r} "
                        f"does not name a block")
            for op in blk.ops[:-1]:
                if op.spec.is_branch:
                    raise IsaError(
                        f"branch {op!r} is not the last op of block "
                        f"{blk.label!r}")

    def __repr__(self) -> str:
        return f"Program({self.name!r}, {len(self.blocks)} blocks)"

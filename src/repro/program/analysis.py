"""Static schedule analysis: utilisation, bounds, and occupancy rendering.

Answers the questions an architect asks of a VLIW schedule: how full are
the issue slots, which functional unit is the bottleneck, how close is the
schedule to its dataflow and resource lower bounds, and what does slot
occupancy look like cycle by cycle (the classic VLIW "schedule picture",
used by ``python -m repro schedule --stats``).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.isa.opcodes import Resource
from repro.program.dag import build_dependence_graph
from repro.program.ir import BasicBlock
from repro.program.scheduler import (
    DEFAULT_CAPACITY,
    ISSUE_WIDTH,
    ScheduledBlock,
    ScheduledProgram,
    default_latency,
)


@dataclass
class BlockAnalysis:
    """Static schedule metrics of one block."""

    label: str
    cycles: int
    ops: int
    resource_ops: Dict[Resource, int]
    critical_path: int
    resource_bound: int

    @property
    def ipc(self) -> float:
        return self.ops / self.cycles if self.cycles else 0.0

    @property
    def slot_utilisation(self) -> float:
        return self.ops / (self.cycles * ISSUE_WIDTH) if self.cycles else 0.0

    @property
    def lower_bound(self) -> int:
        return max(self.critical_path, self.resource_bound)

    @property
    def schedule_efficiency(self) -> float:
        """lower bound / achieved: 1.0 means provably optimal length."""
        return self.lower_bound / self.cycles if self.cycles else 1.0

    def bottleneck(self) -> Optional[Resource]:
        """The resource whose capacity bound is tightest, if any."""
        best = None
        best_cycles = 0
        for resource, count in self.resource_ops.items():
            capacity = DEFAULT_CAPACITY[resource]
            needed = -(-count // capacity)
            if needed > best_cycles:
                best_cycles = needed
                best = resource
        return best


def analyse_block(scheduled: ScheduledBlock,
                  source: Optional[BasicBlock] = None,
                  latency_of=default_latency) -> BlockAnalysis:
    """Compute the metrics of one scheduled block.

    ``source`` (the pre-schedule block) enables the critical-path bound;
    without it the bound falls back to 1.
    """
    ops = [op for bundle in scheduled.bundles for op in bundle]
    resource_ops = Counter(op.spec.resource for op in ops)
    critical_path = 1
    if source is not None and source.ops:
        graph = build_dependence_graph(source, latency_of)
        # longest path of edge distances; +1 for the final issue cycle
        order = graph._topological_order()
        longest: Dict[int, int] = {index: 0 for index in order}
        for index in reversed(order):
            for successor, distance in graph.succs.get(index, ()):
                longest[index] = max(longest[index],
                                     distance + longest[successor])
        critical_path = max(longest.values()) + 1
    resource_bound = 1
    for resource, count in resource_ops.items():
        capacity = DEFAULT_CAPACITY[resource]
        resource_bound = max(resource_bound, -(-count // capacity))
    resource_bound = max(resource_bound, -(-len(ops) // ISSUE_WIDTH))
    return BlockAnalysis(
        label=scheduled.label,
        cycles=scheduled.length,
        ops=len(ops),
        resource_ops=dict(resource_ops),
        critical_path=critical_path,
        resource_bound=resource_bound,
    )


def analyse_program(scheduled: ScheduledProgram) -> List[BlockAnalysis]:
    source_blocks = {block.label: block
                     for block in scheduled.program.blocks}
    return [analyse_block(block, source_blocks.get(block.label))
            for block in scheduled.blocks]


_RESOURCE_GLYPH = {
    Resource.ALU: "A",
    Resource.MUL: "M",
    Resource.LSU: "L",
    Resource.BRANCH: "B",
    Resource.RFU: "R",
}


def occupancy_chart(scheduled: ScheduledBlock, width: int = ISSUE_WIDTH) -> str:
    """Render the classic slot-occupancy picture, one cycle per line.

    Glyphs: A = ALU, M = multiplier, L = load/store, B = branch,
    R = RFU, '.' = empty slot.
    """
    lines = [f"{scheduled.label}: cycle | slots"]
    for cycle, bundle in enumerate(scheduled.bundles):
        glyphs = [_RESOURCE_GLYPH[op.spec.resource] for op in bundle]
        glyphs += ["."] * (width - len(glyphs))
        lines.append(f"{cycle:10d} | {' '.join(glyphs)}")
    return "\n".join(lines)


def utilisation_report(scheduled: ScheduledProgram) -> str:
    """Multi-block utilisation summary, one line per block."""
    lines = [f"{'block':>14s} {'cycles':>7s} {'ops':>5s} {'IPC':>5s} "
             f"{'slots':>6s} {'eff':>5s}  bottleneck"]
    for analysis in analyse_program(scheduled):
        bottleneck = analysis.bottleneck()
        lines.append(
            f"{analysis.label:>14s} {analysis.cycles:>7d} "
            f"{analysis.ops:>5d} {analysis.ipc:>5.2f} "
            f"{100 * analysis.slot_utilisation:>5.1f}% "
            f"{100 * analysis.schedule_efficiency:>4.0f}%  "
            f"{bottleneck.value if bottleneck else '-'}")
    return "\n".join(lines)

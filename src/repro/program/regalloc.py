"""Linear-scan register allocation onto the 64 GPR / 8 BR cluster files.

Virtual registers named in ``Program.persistent`` (parameters, loop counters,
accumulators — anything live across a block boundary or a loop back edge)
receive a dedicated physical register for the program's whole lifetime,
allocated from the top of the file downwards.  All remaining virtuals are
block-local temporaries allocated by linear scan from the bottom up
(``$r1``..; ``$r0`` stays the hardwired zero).

The allocator runs on the *scheduled* program so live ranges follow issue
order, mirroring a postpass allocator as used by VLIW compilers of the Lx
generation.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from repro.errors import RegisterAllocationError
from repro.isa.instruction import Operation
from repro.isa.registers import (
    NUM_BR,
    NUM_GPR,
    BranchRegister,
    GeneralRegister,
    Register,
    VirtualRegister,
    br,
    gpr,
)
from repro.program.scheduler import ScheduledProgram


def _linear_ops(scheduled: ScheduledProgram) -> List[Tuple[int, Operation]]:
    """All operations in global issue order with a monotone position index."""
    out: List[Tuple[int, Operation]] = []
    position = 0
    for block in scheduled.blocks:
        for bundle in block.bundles:
            for op in bundle:
                out.append((position, op))
            position += 1
        position += 1  # block boundary gap
    return out


def allocate_registers(scheduled: ScheduledProgram) -> Dict[VirtualRegister, Register]:
    """Compute and apply a virtual -> architectural register mapping.

    Returns the mapping; bundles are rewritten in place.
    """
    program = scheduled.program
    ops = _linear_ops(scheduled)

    first_def: Dict[VirtualRegister, int] = {}
    last_use: Dict[VirtualRegister, int] = {}
    for position, op in ops:
        for reg in op.srcs:
            if isinstance(reg, VirtualRegister):
                last_use[reg] = position
                first_def.setdefault(reg, position)  # used before def: param
        if isinstance(op.dest, VirtualRegister):
            first_def.setdefault(op.dest, position)
            last_use.setdefault(op.dest, position)

    mapping: Dict[VirtualRegister, Register] = {}
    used_gpr: Set[int] = {0}
    used_br: Set[int] = set()

    persistent = set(program.persistent) | set(program.params)
    if program.result is not None:
        persistent.add(program.result)
    gpr_top = NUM_GPR - 1
    br_top = NUM_BR - 1
    for reg in sorted(persistent, key=lambda v: v.index):
        if reg.is_branch:
            while br_top in used_br:
                br_top -= 1
            if br_top < 0:
                raise RegisterAllocationError(
                    f"out of branch registers in {program.name!r}")
            mapping[reg] = br(br_top)
            used_br.add(br_top)
        else:
            while gpr_top in used_gpr:
                gpr_top -= 1
            if gpr_top < 1:
                raise RegisterAllocationError(
                    f"out of general registers in {program.name!r}")
            mapping[reg] = gpr(gpr_top)
            used_gpr.add(gpr_top)

    # Linear scan for the block-local temporaries.
    temps = [reg for reg in first_def
             if isinstance(reg, VirtualRegister) and reg not in mapping]
    temps.sort(key=lambda v: (first_def[v], v.index))
    free_gpr = [i for i in range(1, NUM_GPR) if i not in used_gpr]
    free_br = [i for i in range(NUM_BR) if i not in used_br]
    active: List[Tuple[int, int, bool]] = []  # (last_use, phys index, is_br)

    for reg in temps:
        start = first_def[reg]
        still_active = []
        for end, phys, is_branch in active:
            if end < start:
                (free_br if is_branch else free_gpr).append(phys)
            else:
                still_active.append((end, phys, is_branch))
        active = still_active
        pool = free_br if reg.is_branch else free_gpr
        if not pool:
            bank = "branch" if reg.is_branch else "general"
            raise RegisterAllocationError(
                f"out of {bank} registers in {program.name!r} "
                f"({len(temps)} temporaries)")
        pool.sort()
        phys = pool.pop(0)
        active.append((last_use[reg], phys, reg.is_branch))
        mapping[reg] = br(phys) if reg.is_branch else gpr(phys)

    def rewrite(reg):
        if isinstance(reg, VirtualRegister):
            return mapping[reg]
        return reg

    for block in scheduled.blocks:
        for bundle in block.bundles:
            bundle.ops = [op.renamed(rewrite) for op in bundle.ops]
    return mapping

"""Shared schedule legality checking for every scheduler tier.

A schedule is legal when (1) every operation of the source block appears
exactly once, (2) no bundle exceeds the issue width or any per-cycle
resource capacity, and (3) every dependence edge of the block's DAG is
respected: the consumer issues at least ``distance`` cycles after the
producer, and a distance-0 edge whose endpoints share a cycle keeps the
producer earlier in the bundle's operation order (the machine executes a
bundle's operations in list order, so a WAR pair sharing a cycle is legal
only reader-first).

Both the list-scheduling tiers (``paper``/``sweep``) and the modulo
scheduler validate through the bundle-level checks here; the modulo tier
additionally verifies its cross-iteration constraints in
:mod:`repro.program.modulo` where the iteration-distance edges live.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.errors import ScheduleError
from repro.isa.instruction import Bundle
from repro.isa.opcodes import Resource
from repro.program.dag import build_dependence_graph
from repro.program.ir import BasicBlock


def check_bundle_limits(bundles: List[Bundle],
                        capacity: Dict[Resource, int],
                        issue_width: int,
                        label: str) -> None:
    """Raise :class:`ScheduleError` if any bundle oversubscribes the core."""
    for cycle, bundle in enumerate(bundles):
        if len(bundle.ops) > issue_width:
            raise ScheduleError(
                f"block {label!r} cycle {cycle}: {len(bundle.ops)} ops "
                f"exceed the issue width {issue_width}")
        used: Dict[Resource, int] = {}
        for op in bundle.ops:
            resource = op.spec.resource
            used[resource] = used.get(resource, 0) + 1
        for resource, count in used.items():
            limit = capacity.get(resource, 0)
            if count > limit:
                raise ScheduleError(
                    f"block {label!r} cycle {cycle}: {count} "
                    f"{resource.value!r} ops exceed capacity {limit}")


def verify_block_schedule(block: BasicBlock,
                          bundles: List[Bundle],
                          latency_of=None,
                          capacity: Optional[Dict[Resource, int]] = None,
                          issue_width: int = 4) -> None:
    """Verify a flat (non-pipelined) schedule of ``block``.

    Raises :class:`ScheduleError` describing the first violation found.
    """
    from repro.program.scheduler import DEFAULT_CAPACITY, default_latency
    latency_of = latency_of or default_latency
    capacity = dict(capacity or DEFAULT_CAPACITY)
    label = block.label

    check_bundle_limits(bundles, capacity, issue_width, label)

    # every source op exactly once, nothing foreign
    position: Dict[int, Tuple[int, int]] = {}
    for cycle, bundle in enumerate(bundles):
        for slot, op in enumerate(bundle.ops):
            if op.uid in position:
                raise ScheduleError(
                    f"block {label!r}: {op} scheduled more than once")
            position[op.uid] = (cycle, slot)
    source_uids = [op.uid for op in block.ops]
    if sorted(position) != sorted(source_uids):
        missing = set(source_uids) - set(position)
        extra = set(position) - set(source_uids)
        raise ScheduleError(
            f"block {label!r}: schedule does not cover the block "
            f"(missing {len(missing)} ops, foreign {len(extra)} ops)")

    graph = build_dependence_graph(block, latency_of)
    for src, edges in graph.succs.items():
        src_cycle, src_slot = position[graph.ops[src].uid]
        for dst, distance in edges:
            dst_cycle, dst_slot = position[graph.ops[dst].uid]
            if dst_cycle < src_cycle + distance:
                raise ScheduleError(
                    f"block {label!r}: {graph.ops[dst]} at cycle "
                    f"{dst_cycle} violates distance {distance} from "
                    f"{graph.ops[src]} at cycle {src_cycle}")
            if (distance == 0 and dst_cycle == src_cycle
                    and dst_slot < src_slot):
                raise ScheduleError(
                    f"block {label!r} cycle {dst_cycle}: {graph.ops[dst]} "
                    f"must follow {graph.ops[src]} within the bundle "
                    f"(distance-0 edge shared a cycle in reverse order)")


def is_legal_block_schedule(block: BasicBlock, bundles: List[Bundle],
                            latency_of=None,
                            capacity: Optional[Dict[Resource, int]] = None,
                            issue_width: int = 4) -> bool:
    """Boolean wrapper over :func:`verify_block_schedule`."""
    try:
        verify_block_schedule(block, bundles, latency_of, capacity,
                              issue_width)
    except ScheduleError:
        return False
    return True

"""Dependence graph construction for one basic block.

Edges carry the minimum cycle distance between producer and consumer issue:

* RAW (true) dependence: the producer's latency;
* WAR anti-dependence: 0 (the exposed pipeline reads registers at issue, so
  a write may share the reader's cycle);
* WAW output dependence: 1;
* memory ordering inside one ``mem_tag`` group: loads may pass loads, but
  any pair involving a store keeps program order (distance 1 for
  store->load so a subsequent load observes the stored value, 0 for
  load->store and store->store which the machine applies in issue order).

RFU operations on the same configuration are kept in program order with
distance equal to the producer's configuration latency: the INIT/SEND/EXEC
protocol of the paper is inherently sequential per configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.isa.instruction import Operation
from repro.isa.opcodes import Resource
from repro.program.ir import BasicBlock


@dataclass
class DependenceGraph:
    """Immutable-ish dependence DAG over the ops of one basic block."""

    ops: List[Operation]
    #: successor adjacency: index -> list of (successor index, min distance)
    succs: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)
    preds: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)

    def add_edge(self, src: int, dst: int, distance: int) -> None:
        self.succs.setdefault(src, []).append((dst, distance))
        self.preds.setdefault(dst, []).append((src, distance))

    def critical_path_lengths(self, latency_of) -> List[int]:
        """Height of each node: longest distance to any DAG sink.

        ``latency_of(op)`` supplies the producer latency used for the node's
        own contribution (RFU latencies are configuration-dependent).
        """
        order = self._topological_order()
        heights = [0] * len(self.ops)
        for index in reversed(order):
            best = 0
            for succ, distance in self.succs.get(index, ()):
                best = max(best, distance + heights[succ])
            heights[index] = best + max(1, latency_of(self.ops[index]))
        return heights

    def _topological_order(self) -> List[int]:
        indegree = [0] * len(self.ops)
        for dst, edges in self.preds.items():
            indegree[dst] = len(edges)
        ready = [i for i, degree in enumerate(indegree) if degree == 0]
        order: List[int] = []
        while ready:
            node = ready.pop()
            order.append(node)
            for succ, _ in self.succs.get(node, ()):
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self.ops):
            raise AssertionError("dependence graph has a cycle")
        return order


def build_dependence_graph(block: BasicBlock, latency_of) -> DependenceGraph:
    """Build the dependence DAG for ``block``.

    ``latency_of(op)`` returns the producer latency of an operation,
    resolving RFU configuration latencies through the active registry.
    """
    graph = DependenceGraph(list(block.ops))
    last_def: Dict[object, int] = {}
    uses_since_def: Dict[object, List[int]] = {}
    last_store: Dict[Optional[str], int] = {}
    mem_ops: Dict[Optional[str], List[int]] = {}
    last_rfu: Dict[Optional[int], int] = {}
    branch_index: Optional[int] = None

    for index, op in enumerate(graph.ops):
        spec = op.spec
        # register dependences
        for src in op.srcs:
            if src in last_def:
                producer = last_def[src]
                graph.add_edge(producer, index,
                               latency_of(graph.ops[producer]))
            uses_since_def.setdefault(src, []).append(index)
        if op.dest is not None:
            if op.dest in last_def:
                graph.add_edge(last_def[op.dest], index, 1)  # WAW
            for reader in uses_since_def.get(op.dest, ()):
                if reader != index:
                    graph.add_edge(reader, index, 0)  # WAR
            last_def[op.dest] = index
            uses_since_def[op.dest] = []
        # memory ordering within a tag group
        if spec.is_load or spec.is_store or spec.is_prefetch:
            tag = op.mem_tag
            if spec.is_store:
                for other in mem_ops.get(tag, ()):
                    graph.add_edge(other, index, 0)
            elif tag in last_store:
                graph.add_edge(last_store[tag], index, 1)
            mem_ops.setdefault(tag, []).append(index)
            if spec.is_store:
                last_store[tag] = index
        # RFU protocol order per configuration
        if spec.resource is Resource.RFU:
            key = op.imm
            if key in last_rfu:
                producer = last_rfu[key]
                graph.add_edge(producer, index,
                               max(1, latency_of(graph.ops[producer])))
            last_rfu[key] = index
        if spec.is_branch:
            branch_index = index

    # The branch issues no earlier than every other op (it closes the block).
    if branch_index is not None:
        for index in range(len(graph.ops)):
            if index != branch_index:
                graph.add_edge(index, branch_index, 0)
    return graph

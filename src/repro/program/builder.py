"""Fluent builder for constructing kernels in the ST200+RFU IR.

Example::

    kb = KernelBuilder("axpy")
    a, x, y = kb.param("a"), kb.param("x"), kb.param("y")
    with kb.block("body"):
        product = kb.emit("mul", a, x)
        total = kb.emit("add", product, y)
    kb.set_result(total)
    program = kb.finish()

Each ``emit`` creates a fresh virtual destination register (SSA-style) unless
``dest=`` names an existing one (used for loop-carried accumulators, which
should also be declared ``persistent``).
"""

from __future__ import annotations

import contextlib
from typing import List, Optional, Sequence, Union

from repro.errors import IsaError
from repro.isa.instruction import Operation
from repro.isa.registers import Register, VirtualRegister, vreg
from repro.program.ir import BasicBlock, Program

RegisterLike = Union[Register, int]


class KernelBuilder:
    """Incrementally build a :class:`~repro.program.ir.Program`."""

    def __init__(self, name: str):
        self.program = Program(name)
        self._current: Optional[BasicBlock] = None
        self._materialised_consts = {}

    # -- structure ---------------------------------------------------------
    @contextlib.contextmanager
    def block(self, label: str):
        """Open a new basic block; emitted ops go into it."""
        if any(blk.label == label for blk in self.program.blocks):
            raise IsaError(f"duplicate block label {label!r}")
        new_block = BasicBlock(label)
        self.program.blocks.append(new_block)
        previous, self._current = self._current, new_block
        try:
            yield new_block
        finally:
            self._current = previous

    def param(self, name: str) -> VirtualRegister:
        """Declare a kernel parameter (initialised by the caller)."""
        reg = vreg(name)
        self.program.params.append(reg)
        self.program.persistent.add(reg)
        return reg

    def persistent_reg(self, name: str, is_branch: bool = False) -> VirtualRegister:
        """Declare a register live across blocks / loop iterations."""
        reg = vreg(name, is_branch=is_branch)
        self.program.persistent.add(reg)
        return reg

    def set_result(self, reg: VirtualRegister) -> None:
        self.program.result = reg
        self.program.persistent.add(reg)

    def finish(self) -> Program:
        self.program.validate()
        return self.program

    # -- emission ----------------------------------------------------------
    def emit(self, opcode: str, *srcs: Register,
             dest: Optional[Register] = None,
             imm: Optional[int] = None,
             label: Optional[str] = None,
             mem_tag: Optional[str] = None,
             comment: str = "",
             is_branch_dest: bool = False) -> Optional[Register]:
        """Append one operation to the current block.

        Returns the destination register (a fresh virtual unless ``dest`` is
        given), or ``None`` for ops without a destination.
        """
        if self._current is None:
            raise IsaError("emit() outside of a block() context")
        from repro.isa.opcodes import opcode_spec
        spec = opcode_spec(opcode)
        if spec.has_dest and dest is None:
            dest = vreg(opcode, is_branch=spec.writes_branch_reg or is_branch_dest)
        op = Operation(opcode=opcode, dest=dest, srcs=tuple(srcs), imm=imm,
                       label=label, mem_tag=mem_tag, comment=comment)
        self._current.append(op)
        return dest

    def const(self, value: int, comment: str = "") -> VirtualRegister:
        """Materialise an integer constant (one ``movi`` per block & value)."""
        key = (self._current.label if self._current else None, value)
        cached = self._materialised_consts.get(key)
        if cached is not None:
            return cached
        reg = self.emit("movi", imm=value, comment=comment or f"const {value}")
        self._materialised_consts[key] = reg
        return reg

    # -- common idioms -----------------------------------------------------
    def load_word(self, base: Register, offset: int = 0,
                  mem_tag: Optional[str] = None) -> VirtualRegister:
        return self.emit("ldw", base, imm=offset, mem_tag=mem_tag)

    def align_window(self, low: Register, high: Register,
                     byte_shift: int) -> Register:
        """Baseline realignment of a pixel window spanning two words.

        Uses the plain shift/or idiom available in the base ISA (three ops);
        ``byte_shift`` 0 is a no-op returning ``low``.
        """
        if byte_shift == 0:
            return low
        shifted_low = self.emit("shri", low, imm=8 * byte_shift)
        shifted_high = self.emit("shli", high, imm=32 - 8 * byte_shift)
        return self.emit("or", shifted_low, shifted_high)

    def counted_loop(self, label: str, counter: VirtualRegister):
        """Context manager emitting the decrement-test-branch loop epilogue.

        ``counter`` must be persistent and initialised before the block.
        """
        builder = self

        @contextlib.contextmanager
        def _loop():
            with builder.block(label) as blk:
                yield blk
                builder.emit("addi", counter, dest=counter, imm=-1)
                cond = builder.emit("cmpnei", counter, imm=0)
                builder.emit("br", cond, imm=0, label=label)

        return _loop()


def straightline_program(name: str, ops: Sequence[Operation]) -> Program:
    """Wrap a flat op list into a single-block program (testing helper)."""
    block = BasicBlock("entry", list(ops))
    program = Program(name, [block])
    program.validate()
    return program

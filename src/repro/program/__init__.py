"""Program representation and the VLIW 'compiler' substrate.

The paper compiles C with the Multiflow-based ST200 compiler.  Here kernels
are built programmatically as basic blocks of operations on virtual
registers; a dependence-DAG list scheduler packs them into bundles under the
cluster's resource constraints and a linear-scan allocator maps virtual to
architectural registers.  See DESIGN.md §2 for why this substitution
preserves the experiments' behaviour.
"""

from repro.program.ir import BasicBlock, Program
from repro.program.builder import KernelBuilder
from repro.program.dag import DependenceGraph, build_dependence_graph
from repro.program.scheduler import (
    SCHED_MODES,
    LivenessTracker,
    ScheduledBlock,
    ScheduledProgram,
    schedule_block,
    schedule_program,
)
from repro.program.legality import is_legal_block_schedule, verify_block_schedule
from repro.program.modulo import schedule_program_modulo, try_pipeline_block
from repro.program.priorities import (
    seeded_priority,
    sweep_schedule_block,
    sweep_stats,
)
from repro.program.regalloc import allocate_registers
from repro.program.analysis import (
    BlockAnalysis,
    analyse_block,
    analyse_program,
    occupancy_chart,
    utilisation_report,
)

__all__ = [
    "BasicBlock",
    "BlockAnalysis",
    "DependenceGraph",
    "KernelBuilder",
    "LivenessTracker",
    "Program",
    "SCHED_MODES",
    "ScheduledBlock",
    "ScheduledProgram",
    "allocate_registers",
    "analyse_block",
    "analyse_program",
    "build_dependence_graph",
    "is_legal_block_schedule",
    "occupancy_chart",
    "schedule_block",
    "schedule_program",
    "schedule_program_modulo",
    "seeded_priority",
    "sweep_schedule_block",
    "sweep_stats",
    "try_pipeline_block",
    "utilisation_report",
    "verify_block_schedule",
]

"""Cycle-by-cycle VLIW list scheduler and the scheduling-mode dispatcher.

Classic critical-path list scheduling: operations become candidates once all
predecessors have issued far enough in the past to satisfy edge distances;
among candidates the one with the greatest height (critical path to a sink)
issues first, subject to the cluster's per-cycle resource limits

* 4 issue slots in total,
* 4 ALU operations, 2 multiplies, 1 load/store/prefetch, 1 branch,
* 1 RFU operation (the RFU is a single additional functional unit).

The returned :class:`ScheduledBlock` stores the bundle list; its length is
the block's static schedule length in cycles.

:func:`schedule_program` additionally dispatches between the scheduling
tiers (``SCHED_MODES``):

* ``paper`` — the heuristic above, bit-identical to the original seed so
  every reproduction table stays byte-stable;
* ``sweep`` — seeded priority sweeps over the same list scheduler
  (:mod:`repro.program.priorities`): perturbed heights and random
  tie-breaks, N seeds, shortest legal schedule wins;
* ``modulo`` — software pipelining of counted loops
  (:mod:`repro.program.modulo`), falling back to list scheduling for
  blocks that are not pipelineable.

``schedule_block`` itself stays single-heuristic but exposes the two hooks
the sweep tier builds on: ``priority_key`` to replace the ``(-height,
index)`` sort key, and ``fill_same_cycle`` to re-scan the ready list after
distance-0 (WAR) successors are released mid-cycle, so they can fill the
remaining slots of the current bundle.  Both default to the paper
behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import ScheduleError
from repro.isa.instruction import Bundle, Operation
from repro.isa.opcodes import Resource
from repro.program.dag import build_dependence_graph
from repro.program.ir import BasicBlock, Program

#: Per-cycle resource capacities of the 1-cluster ST200 (+ RFU).
DEFAULT_CAPACITY: Dict[Resource, int] = {
    Resource.ALU: 4,
    Resource.MUL: 2,
    Resource.LSU: 1,
    Resource.BRANCH: 1,
    Resource.RFU: 1,
}
ISSUE_WIDTH = 4

#: The scheduling tiers accepted by :func:`schedule_program` and the CLI.
SCHED_MODES = ("paper", "sweep", "modulo")

LatencyFn = Callable[[Operation], int]
#: ``priority_key(index, height)`` -> sort key; lower sorts first.
PriorityKey = Callable[[int, int], object]


def default_latency(op: Operation) -> int:
    """Producer latency from the opcode table; RFU ops default to 1 cycle."""
    latency = op.spec.latency
    return 1 if latency is None else latency


@dataclass
class ScheduledBlock:
    """A basic block after scheduling: one bundle per cycle."""

    label: str
    bundles: List[Bundle] = field(default_factory=list)

    @property
    def length(self) -> int:
        """Static schedule length in cycles."""
        return len(self.bundles)

    def op_count(self) -> int:
        return sum(len(bundle) for bundle in self.bundles)


#: live-value high-water mark: beyond this many in-flight temporaries the
#: scheduler stops hoisting range-opening ops (the cluster has 63 usable
#: GPRs and kernels pin ~15 persistent values)
PRESSURE_LIMIT = 44


class LivenessTracker:
    """Live-range accounting shared by the normal and emergency issue paths.

    A register is *live* while it has been defined by an issued op and still
    has unissued readers.  Tracking the open ranges as a set (rather than a
    bare counter) keeps the count exact: consuming a live-in value that no
    issued op defined never decrements the count below zero, which the old
    inline bookkeeping got wrong.
    """

    def __init__(self, ops: List[Operation]):
        self.remaining_uses: Dict[object, int] = {}
        for op in ops:
            for src in op.srcs:
                self.remaining_uses[src] = self.remaining_uses.get(src, 0) + 1
        self._open: Set[object] = set()

    @property
    def live(self) -> int:
        """Number of currently open live ranges (never negative)."""
        return len(self._open)

    def pressure_delta(self, op: Operation) -> Tuple[int, int]:
        """``(closes, opens)`` issuing ``op`` would cause; does not mutate.

        ``closes`` counts open ranges whose last use this op consumes;
        ``opens`` is 1 when the destination starts a range with readers
        still to come (a dead def, or a redefinition of an already-open
        range, opens nothing).
        """
        closes = sum(
            1 for src in set(op.srcs)
            if src in self._open
            and self.remaining_uses.get(src, 0) == op.srcs.count(src))
        opens = 0
        if op.dest is not None and op.dest not in self._open:
            remaining_after = (self.remaining_uses.get(op.dest, 0)
                               - op.srcs.count(op.dest))
            if remaining_after > 0:
                opens = 1
        return closes, opens

    def issue(self, op: Operation) -> None:
        """Account for ``op`` issuing: consume sources, open the dest."""
        for src in op.srcs:
            self.remaining_uses[src] -= 1
            if self.remaining_uses[src] == 0:
                self._open.discard(src)
        if op.dest is not None and self.remaining_uses.get(op.dest, 0) > 0:
            self._open.add(op.dest)


def _paper_priority(index: int, height: int) -> Tuple[int, int]:
    """Highest critical path first; ties broken by program order."""
    return (-height, index)


def schedule_block(block: BasicBlock,
                   latency_of: Optional[LatencyFn] = None,
                   capacity: Optional[Dict[Resource, int]] = None,
                   issue_width: int = ISSUE_WIDTH,
                   pressure_limit: int = PRESSURE_LIMIT,
                   priority_key: Optional[PriorityKey] = None,
                   fill_same_cycle: bool = False) -> ScheduledBlock:
    """List-schedule one basic block into bundles.

    Critical-path priority with a register-pressure guard: once the number
    of live (defined, not yet fully consumed) values reaches
    ``pressure_limit``, operations that would open a new live range are
    deferred in favour of ops that close ranges, mirroring what a
    production VLIW scheduler's pressure heuristic does.

    ``priority_key`` replaces the default ``(-height, index)`` candidate
    ordering and ``fill_same_cycle`` lets distance-0 successors released
    mid-cycle fill the current bundle's remaining slots; both are reserved
    for the non-``paper`` tiers and default to the paper behaviour.
    """
    latency_of = latency_of or default_latency
    capacity = dict(capacity or DEFAULT_CAPACITY)
    priority_key = priority_key or _paper_priority
    if not block.ops:
        return ScheduledBlock(block.label, [Bundle()])

    graph = build_dependence_graph(block, latency_of)
    heights = graph.critical_path_lengths(latency_of)
    num_ops = len(graph.ops)
    remaining_preds = [len(graph.preds.get(i, ())) for i in range(num_ops)]
    earliest = [0] * num_ops
    unscheduled = set(range(num_ops))
    bundles: List[Bundle] = []
    liveness = LivenessTracker(graph.ops)

    cycle = 0
    guard = 0
    while unscheduled:
        guard += 1
        if guard > 100000:
            raise ScheduleError(
                f"scheduler failed to converge on block {block.label!r}")
        bundle = Bundle()
        used: Dict[Resource, int] = {resource: 0 for resource in capacity}
        issued_this_cycle: List[int] = []

        def issue(index: int, op: Operation) -> None:
            bundle.ops.append(op)
            liveness.issue(op)
            unscheduled.discard(index)
            issued_this_cycle.append(index)

        def attempt(index: int) -> str:
            op = graph.ops[index]
            resource = op.spec.resource
            if len(bundle.ops) >= issue_width:
                return "full"
            if resource not in capacity:
                raise ScheduleError(
                    f"block {block.label!r}: {op} needs a "
                    f"{resource.value!r} unit, but the capacity map only "
                    f"provides {sorted(r.value for r in capacity)}")
            if used[resource] >= capacity[resource]:
                return "no_unit"
            closes, opens = liveness.pressure_delta(op)
            if liveness.live >= pressure_limit and opens > closes:
                return "pressure"
            used[resource] += 1
            issue(index, op)
            return "issued"

        def release(indices: List[int]) -> None:
            for index in indices:
                for succ, distance in graph.succs.get(index, ()):
                    remaining_preds[succ] -= 1
                    earliest[succ] = max(earliest[succ], cycle + distance)

        ready = [i for i in unscheduled
                 if remaining_preds[i] == 0 and earliest[i] <= cycle]
        ready.sort(key=lambda i: priority_key(i, heights[i]))
        deferred_for_pressure = False
        for index in ready:
            outcome = attempt(index)
            if outcome == "full":
                break
            if outcome == "pressure":
                deferred_for_pressure = True
        if not bundle.ops and deferred_for_pressure and ready:
            # liveness cannot drop without issuing something: emergency
            # issue of the highest-priority ready op to guarantee progress
            index = ready[0]
            op = graph.ops[index]
            used[op.spec.resource] = used.get(op.spec.resource, 0) + 1
            issue(index, op)
        release(issued_this_cycle)
        if fill_same_cycle:
            while len(bundle.ops) < issue_width:
                extra = [i for i in unscheduled
                         if remaining_preds[i] == 0 and earliest[i] <= cycle]
                extra.sort(key=lambda i: priority_key(i, heights[i]))
                before = len(issued_this_cycle)
                for index in extra:
                    if attempt(index) == "full":
                        break
                if len(issued_this_cycle) == before:
                    break
                release(issued_this_cycle[before:])
        bundles.append(bundle)
        cycle += 1
    return ScheduledBlock(block.label, bundles)


@dataclass
class ScheduledProgram:
    """A fully scheduled program: blocks in original order.

    Under ``modulo`` scheduling a pipelined loop contributes up to three
    blocks (``<label>.pro``, ``<label>`` — the steady-state kernel, which
    keeps the original label so branches resolve to it — and
    ``<label>.epi``), so ``blocks`` may be longer than ``program.blocks``.
    """

    name: str
    blocks: List[ScheduledBlock]
    program: Program

    def block_map(self) -> Dict[str, ScheduledBlock]:
        return {blk.label: blk for blk in self.blocks}

    @property
    def static_length(self) -> int:
        """Sum of block schedule lengths (single pass, no loop trip counts)."""
        return sum(blk.length for blk in self.blocks)

    def op_count(self) -> int:
        return sum(blk.op_count() for blk in self.blocks)


def schedule_program(program: Program,
                     latency_of: Optional[LatencyFn] = None,
                     capacity: Optional[Dict[Resource, int]] = None,
                     issue_width: int = ISSUE_WIDTH,
                     pressure_limit: int = PRESSURE_LIMIT,
                     mode: str = "paper",
                     sweep_seeds: Optional[int] = None,
                     sweep_cache_dir=None) -> ScheduledProgram:
    """Schedule every block of ``program`` under the selected tier.

    ``mode`` selects the scheduling tier (see :data:`SCHED_MODES`);
    ``pressure_limit`` now reaches :func:`schedule_block` for every block
    instead of being silently pinned to the default.  ``sweep_seeds`` and
    ``sweep_cache_dir`` only apply to the ``sweep`` tier.
    """
    if mode not in SCHED_MODES:
        raise ScheduleError(
            f"unknown scheduling mode {mode!r}; expected one of "
            f"{', '.join(SCHED_MODES)}")
    program.validate()
    if mode == "modulo":
        # local import: modulo builds on this module
        from repro.program.modulo import schedule_program_modulo
        return schedule_program_modulo(
            program, latency_of, capacity, issue_width,
            pressure_limit=pressure_limit)
    if mode == "sweep":
        from repro.program.priorities import sweep_schedule_block
        blocks = [sweep_schedule_block(blk, latency_of, capacity, issue_width,
                                       pressure_limit=pressure_limit,
                                       seeds=sweep_seeds,
                                       cache_dir=sweep_cache_dir)
                  for blk in program.blocks]
    else:
        blocks = [schedule_block(blk, latency_of, capacity, issue_width,
                                 pressure_limit)
                  for blk in program.blocks]
    return ScheduledProgram(program.name, blocks, program)

"""Cycle-by-cycle VLIW list scheduler.

Classic critical-path list scheduling: operations become candidates once all
predecessors have issued far enough in the past to satisfy edge distances;
among candidates the one with the greatest height (critical path to a sink)
issues first, subject to the cluster's per-cycle resource limits

* 4 issue slots in total,
* 4 ALU operations, 2 multiplies, 1 load/store/prefetch, 1 branch,
* 1 RFU operation (the RFU is a single additional functional unit).

The returned :class:`ScheduledBlock` stores the bundle list; its length is
the block's static schedule length in cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ScheduleError
from repro.isa.instruction import Bundle, Operation
from repro.isa.opcodes import Resource
from repro.program.dag import build_dependence_graph
from repro.program.ir import BasicBlock, Program

#: Per-cycle resource capacities of the 1-cluster ST200 (+ RFU).
DEFAULT_CAPACITY: Dict[Resource, int] = {
    Resource.ALU: 4,
    Resource.MUL: 2,
    Resource.LSU: 1,
    Resource.BRANCH: 1,
    Resource.RFU: 1,
}
ISSUE_WIDTH = 4

LatencyFn = Callable[[Operation], int]


def default_latency(op: Operation) -> int:
    """Producer latency from the opcode table; RFU ops default to 1 cycle."""
    latency = op.spec.latency
    return 1 if latency is None else latency


@dataclass
class ScheduledBlock:
    """A basic block after scheduling: one bundle per cycle."""

    label: str
    bundles: List[Bundle] = field(default_factory=list)

    @property
    def length(self) -> int:
        """Static schedule length in cycles."""
        return len(self.bundles)

    def op_count(self) -> int:
        return sum(len(bundle) for bundle in self.bundles)


#: live-value high-water mark: beyond this many in-flight temporaries the
#: scheduler stops hoisting range-opening ops (the cluster has 63 usable
#: GPRs and kernels pin ~15 persistent values)
PRESSURE_LIMIT = 44


def schedule_block(block: BasicBlock,
                   latency_of: Optional[LatencyFn] = None,
                   capacity: Optional[Dict[Resource, int]] = None,
                   issue_width: int = ISSUE_WIDTH,
                   pressure_limit: int = PRESSURE_LIMIT) -> ScheduledBlock:
    """List-schedule one basic block into bundles.

    Critical-path priority with a register-pressure guard: once the number
    of live (defined, not yet fully consumed) values reaches
    ``pressure_limit``, operations that would open a new live range are
    deferred in favour of ops that close ranges, mirroring what a
    production VLIW scheduler's pressure heuristic does.
    """
    latency_of = latency_of or default_latency
    capacity = dict(capacity or DEFAULT_CAPACITY)
    if not block.ops:
        return ScheduledBlock(block.label, [Bundle()])

    graph = build_dependence_graph(block, latency_of)
    heights = graph.critical_path_lengths(latency_of)
    num_ops = len(graph.ops)
    remaining_preds = [len(graph.preds.get(i, ())) for i in range(num_ops)]
    earliest = [0] * num_ops
    issued_cycle: Dict[int, int] = {}
    unscheduled = set(range(num_ops))
    bundles: List[Bundle] = []

    remaining_uses: Dict[object, int] = {}
    for op in graph.ops:
        for src in op.srcs:
            remaining_uses[src] = remaining_uses.get(src, 0) + 1
    live = 0

    cycle = 0
    guard = 0
    while unscheduled:
        guard += 1
        if guard > 100000:
            raise ScheduleError(
                f"scheduler failed to converge on block {block.label!r}")
        bundle = Bundle()
        used: Dict[Resource, int] = {resource: 0 for resource in capacity}
        ready = [i for i in unscheduled
                 if remaining_preds[i] == 0 and earliest[i] <= cycle]
        # highest critical path first; ties broken by program order
        ready.sort(key=lambda i: (-heights[i], i))
        deferred_for_pressure = False
        for index in ready:
            op = graph.ops[index]
            resource = op.spec.resource
            if len(bundle) >= issue_width:
                break
            if used[resource] >= capacity[resource]:
                continue
            closes = sum(1 for src in set(op.srcs)
                         if remaining_uses.get(src, 0) == op.srcs.count(src))
            opens = 1 if (op.dest is not None
                          and remaining_uses.get(op.dest, 0) > 0) else 0
            if live >= pressure_limit and opens > closes:
                deferred_for_pressure = True
                continue
            bundle.ops.append(op)
            used[resource] += 1
            issued_cycle[index] = cycle
            unscheduled.discard(index)
            for src in op.srcs:
                remaining_uses[src] -= 1
                if remaining_uses[src] == 0:
                    live -= 1
            live += opens
        if not bundle.ops and deferred_for_pressure and ready:
            # liveness cannot drop without issuing something: emergency
            # issue of the highest-priority ready op to guarantee progress
            index = ready[0]
            op = graph.ops[index]
            bundle.ops.append(op)
            issued_cycle[index] = cycle
            unscheduled.discard(index)
            for src in op.srcs:
                remaining_uses[src] -= 1
                if remaining_uses[src] == 0:
                    live -= 1
            if op.dest is not None and remaining_uses.get(op.dest, 0) > 0:
                live += 1
        # release successors of everything issued this cycle
        for index in list(issued_cycle):
            if issued_cycle[index] != cycle:
                continue
            for succ, distance in graph.succs.get(index, ()):
                remaining_preds[succ] -= 1
                earliest[succ] = max(earliest[succ], cycle + distance)
        bundles.append(bundle)
        cycle += 1
    return ScheduledBlock(block.label, bundles)


@dataclass
class ScheduledProgram:
    """A fully scheduled program: blocks in original order."""

    name: str
    blocks: List[ScheduledBlock]
    program: Program

    def block_map(self) -> Dict[str, ScheduledBlock]:
        return {blk.label: blk for blk in self.blocks}

    @property
    def static_length(self) -> int:
        """Sum of block schedule lengths (single pass, no loop trip counts)."""
        return sum(blk.length for blk in self.blocks)

    def op_count(self) -> int:
        return sum(blk.op_count() for blk in self.blocks)


def schedule_program(program: Program,
                     latency_of: Optional[LatencyFn] = None,
                     capacity: Optional[Dict[Resource, int]] = None,
                     issue_width: int = ISSUE_WIDTH) -> ScheduledProgram:
    """Schedule every block of ``program`` independently."""
    program.validate()
    blocks = [schedule_block(blk, latency_of, capacity, issue_width)
              for blk in program.blocks]
    return ScheduledProgram(program.name, blocks, program)

"""Seeded priority sweeps for the list scheduler (the ``sweep`` tier).

The paper-mode list scheduler commits to one priority function —
``(-height, program index)`` — and one ready-list policy.  This module
re-runs :func:`~repro.program.scheduler.schedule_block` under ``N``
deterministic perturbations of that priority (seeded height jitter plus a
random tie-break) with same-cycle slot filling enabled, verifies every
candidate against the shared legality checker, and keeps the shortest
schedule.  Ties go to the earliest candidate, and candidate 0 is always
the unperturbed paper priority (with slot filling), so a sweep can never
be worse than the filled baseline.

Sweeps are memoised twice over:

* an in-process memo keyed by a structural fingerprint of the block (ops
  with registers renamed to first-appearance indices, latencies,
  capacities, issue width, pressure limit, seed count) plus a content hash
  of the scheduler sources, so recompiling the same kernel in one process
  re-runs only the winning seed;
* optionally the same content-addressed on-disk store the experiment sweep
  uses (:class:`repro.sweep.cache.SweepCache`), enabled by passing
  ``cache_dir`` or setting ``REPRO_SCHED_CACHE_DIR``, so re-sweeps across
  processes are free.  The payload records the winning seed and length; on
  a warm hit only that one candidate is re-run (and re-verified) instead
  of the whole sweep.  A stale hit — recorded length no longer matching —
  falls back to a full sweep.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import random
from typing import Dict, Optional, Tuple

from repro.isa.opcodes import Resource
from repro.program.ir import BasicBlock
from repro.program.legality import verify_block_schedule
from repro.program.scheduler import (
    DEFAULT_CAPACITY,
    ISSUE_WIDTH,
    PRESSURE_LIMIT,
    ScheduledBlock,
    default_latency,
    schedule_block,
)

#: default number of perturbed candidates per block (seed 0 = paper order)
DEFAULT_SWEEP_SEEDS = 16

#: paper-priority candidate index (recorded in cache payloads)
_BASELINE = -1

#: in-process memo: fingerprint -> (winner, length)
_MEMO: Dict[str, Tuple[int, int]] = {}
_STATS = {"memo_hits": 0, "disk_hits": 0, "misses": 0}

_CODE_FP: Optional[str] = None


def sweep_stats() -> Dict[str, int]:
    """Counters for memo/disk hits and full sweeps (for benches/tests)."""
    return dict(_STATS)


def reset_sweep_stats() -> None:
    for key in _STATS:
        _STATS[key] = 0


def _scheduler_fingerprint() -> str:
    """Content hash of the sources that determine a sweep's outcome."""
    global _CODE_FP
    if _CODE_FP is None:
        root = pathlib.Path(__file__).parent
        digest = hashlib.sha256()
        for name in ("dag.py", "scheduler.py", "legality.py",
                     "priorities.py"):
            digest.update(name.encode("utf-8"))
            digest.update(b"\0")
            digest.update((root / name).read_bytes())
        _CODE_FP = digest.hexdigest()[:16]
    return _CODE_FP


def _block_fingerprint(block: BasicBlock, latency_of,
                       capacity: Dict[Resource, int], issue_width: int,
                       pressure_limit: int, seeds: int) -> str:
    """Structural content address of one sweep problem.

    Virtual registers are renamed to first-appearance indices so two
    builds of the same kernel (fresh register objects each time) hash
    identically.
    """
    names: Dict[object, int] = {}

    def rid(reg) -> Optional[int]:
        if reg is None:
            return None
        if reg not in names:
            names[reg] = len(names)
        return names[reg]

    ops = [[op.opcode, rid(op.dest), [rid(src) for src in op.srcs],
            op.imm, op.label, op.mem_tag, latency_of(op)]
           for op in block.ops]
    blob = json.dumps(
        {"ops": ops,
         "capacity": sorted((r.value, c) for r, c in capacity.items()),
         "issue_width": issue_width,
         "pressure_limit": pressure_limit,
         "seeds": seeds,
         "code": _scheduler_fingerprint()},
        sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def seeded_priority(block: BasicBlock, seed: int):
    """The perturbed priority key for one sweep candidate.

    Heights get additive uniform jitter (scale chosen per seed so some
    candidates reorder only ties while others explore further from the
    critical path) and exact ties break by a per-op random draw instead of
    program order.  Fully determined by ``seed``.
    """
    rng = random.Random(seed)
    scale = rng.choice((0.75, 1.5, 3.0, 6.0))
    jitter = [rng.uniform(0.0, scale) for _ in block.ops]
    tie = [rng.random() for _ in block.ops]

    def key(index: int, height: int):
        return (-(height + jitter[index]), tie[index], index)

    return key


def _resolve_cache(cache_dir):
    if cache_dir is None:
        cache_dir = os.environ.get("REPRO_SCHED_CACHE_DIR") or None
    if cache_dir is None:
        return None
    # local import: repro.sweep pulls in the experiment orchestration
    # stack, which itself imports the kernels (and hence this package)
    from repro.sweep.cache import SweepCache
    return SweepCache(pathlib.Path(cache_dir))


def _run_candidate(block: BasicBlock, candidate: int, latency_of, capacity,
                   issue_width: int, pressure_limit: int) -> ScheduledBlock:
    """Schedule one sweep candidate and verify it is legal."""
    key = None if candidate == _BASELINE else seeded_priority(block, candidate)
    scheduled = schedule_block(block, latency_of, capacity, issue_width,
                               pressure_limit, priority_key=key,
                               fill_same_cycle=True)
    verify_block_schedule(block, scheduled.bundles, latency_of, capacity,
                          issue_width)
    return scheduled


def sweep_schedule_block(block: BasicBlock,
                         latency_of=None,
                         capacity: Optional[Dict[Resource, int]] = None,
                         issue_width: int = ISSUE_WIDTH,
                         pressure_limit: int = PRESSURE_LIMIT,
                         seeds: Optional[int] = None,
                         cache_dir=None) -> ScheduledBlock:
    """Best-of-N seeded schedule for one block (deterministic).

    Candidates are the paper priority plus ``seeds`` perturbations, all
    with same-cycle slot filling; every candidate is legality-checked and
    the shortest wins (ties to the earliest candidate).
    """
    latency_of = latency_of or default_latency
    capacity = dict(capacity or DEFAULT_CAPACITY)
    seeds = DEFAULT_SWEEP_SEEDS if seeds is None else max(0, int(seeds))
    if not block.ops:
        return schedule_block(block, latency_of, capacity, issue_width,
                              pressure_limit)

    fingerprint = _block_fingerprint(block, latency_of, capacity,
                                     issue_width, pressure_limit, seeds)
    candidates = [_BASELINE] + list(range(seeds))

    def full_sweep() -> Tuple[int, ScheduledBlock]:
        _STATS["misses"] += 1
        best_candidate, best = None, None
        for candidate in candidates:
            scheduled = _run_candidate(block, candidate, latency_of,
                                       capacity, issue_width, pressure_limit)
            if best is None or scheduled.length < best.length:
                best_candidate, best = candidate, scheduled
        return best_candidate, best

    cache = _resolve_cache(cache_dir)
    winner: Optional[int] = None
    expected_length: Optional[int] = None
    if fingerprint in _MEMO:
        winner, expected_length = _MEMO[fingerprint]
        _STATS["memo_hits"] += 1
    elif cache is not None:
        payload = cache.get(fingerprint)
        if payload is not None:
            winner = int(payload.get("winner", _BASELINE))
            expected_length = payload.get("length")
            _STATS["disk_hits"] += 1

    if winner is not None and winner in candidates:
        scheduled = _run_candidate(block, winner, latency_of, capacity,
                                   issue_width, pressure_limit)
        if scheduled.length == expected_length:
            _MEMO[fingerprint] = (winner, scheduled.length)
            return scheduled
        # stale record (scheduler changed underneath a kept fingerprint —
        # should not happen, but never trust it): fall through to a sweep

    winner, best = full_sweep()
    _MEMO[fingerprint] = (winner, best.length)
    if cache is not None:
        cache.put(fingerprint, {"winner": winner, "length": best.length,
                                "seeds": seeds, "label": block.label})
    return best


def clear_sweep_memo() -> None:
    """Drop the in-process memo (tests use this to force cold sweeps)."""
    _MEMO.clear()

"""repro — a reproduction of "A Video Compression Case Study on a
Reconfigurable VLIW Architecture" (Rizzo & Colavin, DATE 2002).

The package layers, bottom up:

* :mod:`repro.isa`, :mod:`repro.program`, :mod:`repro.machine` — an
  ST200/Lx-like 4-issue VLIW: ISA, dependence-DAG list scheduler, register
  allocator and a cycle-level in-order core;
* :mod:`repro.memory` — 128 KB I$, 32 KB 4-way D$ with prefetch buffer,
  the shared external bus, and the RFU's Line Buffers A and B;
* :mod:`repro.rfu` — the Reconfigurable Functional Unit at functional
  level: custom-instruction configurations (the paper's A1/A2/A3),
  technology scaling β, macroblock prefetch patterns, and the loop-level
  ME kernel model;
* :mod:`repro.codec` — an MPEG4-SP encoder substrate (motion estimation
  with half-sample refinement, DCT/quant/entropy, reconstruction) that
  produces the GetSad workload trace;
* :mod:`repro.kernels` — GetSad VLIW kernels per (alignment,
  interpolation) shape and variant, verified bit-exactly;
* :mod:`repro.core` — the paper's contribution: the architectural
  exploration replaying one trace under every scenario;
* :mod:`repro.experiments` — regenerates every table and figure of the
  paper's evaluation.

Quickstart::

    from repro import Exploration, ExplorationConfig, all_scenarios
    result = Exploration(ExplorationConfig(frames=10)).run(all_scenarios())
    print(result.speedup("loop_1x32+2lb_b1"))   # the paper's 8x headline
"""

from repro.core import (
    Exploration,
    ExplorationConfig,
    ExplorationResult,
    Scenario,
    all_scenarios,
    instruction_scenario,
    loop_scenario,
)
from repro.codec import (
    EncoderConfig,
    Mpeg4Encoder,
    SyntheticSequenceConfig,
    synthetic_sequence,
)
from repro.machine import Core, MachineConfig, compile_kernel
from repro.memory import MemorySystem, MemoryTimings
from repro.program import KernelBuilder
from repro.rfu import Bandwidth, RfuUnit, standard_registry

__version__ = "1.0.0"

__all__ = [
    "Bandwidth",
    "Core",
    "EncoderConfig",
    "Exploration",
    "ExplorationConfig",
    "ExplorationResult",
    "KernelBuilder",
    "MachineConfig",
    "MemorySystem",
    "MemoryTimings",
    "Mpeg4Encoder",
    "RfuUnit",
    "Scenario",
    "SyntheticSequenceConfig",
    "all_scenarios",
    "compile_kernel",
    "instruction_scenario",
    "loop_scenario",
    "standard_registry",
    "synthetic_sequence",
    "__version__",
]

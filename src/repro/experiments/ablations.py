"""Ablation experiments beyond the paper's tables.

The paper's conclusions rest on assumptions it explicitly defers to future
work — zero reconfiguration penalty, the 4x17 Line Buffer B organisation,
a particular external bus, one search strategy.  These ablations sweep
each knob and locate where the headline results bend.
"""

from __future__ import annotations

from typing import Optional

from repro.codec.motion import FullSearch, ThreeStepSearch
from repro.core.exploration import Exploration, ExplorationConfig
from repro.core.scenarios import instruction_scenario, loop_scenario
from repro.core.timing import TraceReplayer
from repro.experiments.report import ExperimentTable, fmt, pct
from repro.experiments.workload import ExperimentContext, get_context
from repro.memory import MemoryTimings
from repro.rfu.loop_model import Bandwidth


def run_reconfiguration_ablation(
        context: Optional[ExperimentContext] = None) -> ExperimentTable:
    """Sensitivity of the instruction-level scenarios to reconfiguration.

    The paper assumes zero reconfiguration penalty ("an upper-bound
    performance assessment") backed by multicontext configuration memory.
    This ablation models an application rotating K distinct kernel
    configurations through a C-context store with a penalty of P cycles
    per configuration load: each GetSad invocation pays P whenever the
    rotation exceeds the context capacity.
    """
    context = context or get_context()
    baseline = context.baseline()
    a2 = context.result(instruction_scenario("a2"))
    invocations = a2.invocations
    contexts = 4
    table = ExperimentTable(
        experiment_id="ablation-reconfig",
        title=f"Reconfiguration penalty sensitivity (A2 scenario, "
              f"{contexts}-context store)",
        columns=["penalty (cycles)", "configs in rotation", "thrashing",
                 "A2 speedup"],
        paper_reference="the paper assumes zero penalty; speedups must "
                        "survive realistic penalties only while the "
                        "working set of configurations fits the "
                        "multicontext store [12][14][15]",
    )
    for penalty in (0, 8, 32, 128, 512):
        for rotation in (1, 4, 8):
            thrashing = rotation > contexts
            extra = penalty * invocations if thrashing else 0
            speedup = baseline.total_cycles / (a2.total_cycles + extra)
            table.add_row(penalty, rotation, "yes" if thrashing else "no",
                          fmt(speedup))
    return table


def run_lbb_capacity_ablation(
        context: Optional[ExperimentContext] = None) -> ExperimentTable:
    """Where is the reuse knee of Line Buffer B's 4x17 organisation?"""
    context = context or get_context()
    baseline = context.baseline()
    table = ExperimentTable(
        experiment_id="ablation-lbb",
        title="Line Buffer B capacity sweep (1x32, b=1)",
        columns=["banks", "entries", "S.Up", "stall cycles", "reuses"],
        paper_reference="the paper sizes LB B at 4x17 entries for double "
                        "buffering plus line crossings",
    )
    for banks in (1, 2, 4, 8):
        scenario = loop_scenario(Bandwidth.B1X32, 1.0, line_buffer_b=True,
                                 lbb_banks=banks)
        result = context.result(scenario)
        table.add_row(banks, banks * 17,
                      fmt(result.speedup_over(baseline)),
                      f"{result.stall_cycles:,}", f"{result.lb_reuse:,}")
    return table


def run_bus_ablation(context: Optional[ExperimentContext] = None,
                     ) -> ExperimentTable:
    """External bus bandwidth vs the loop kernels' stall share (generalises
    Table 5: the I/O bottleneck moves with the memory system, not just the
    RFU's port width)."""
    context = context or get_context()
    trace = context.exploration.encoder_report.trace
    table = ExperimentTable(
        experiment_id="ablation-bus",
        title="External bus service interval vs 2x64 loop kernel",
        columns=["service interval", "bus latency", "S.Up", "stall %"],
        paper_reference="the paper's I/O-bound conclusion should sharpen "
                        "as the external bus slows",
    )
    for interval, latency in ((4, 40), (8, 40), (16, 40), (16, 80)):
        timings = MemoryTimings(bus_service_interval=interval,
                                bus_latency=latency)
        replayer = TraceReplayer(trace, timings=timings)
        baseline = replayer.replay(instruction_scenario("orig"))
        result = replayer.replay(loop_scenario(Bandwidth.B2X64))
        table.add_row(interval, latency,
                      fmt(result.speedup_over(baseline)),
                      pct(result.stall_fraction()))
    return table


def run_context_schedule_experiment(
        context: Optional[ExperimentContext] = None) -> ExperimentTable:
    """Reconfiguration management (future work): how much of the penalty do
    context-scheduling policies hide?

    Workload: a rotation of 8 kernel configurations through a 4-slot
    multicontext store; execution time per use is the measured A2 GetSad
    kernel mean, and the load penalty sweeps up to several kernel lengths.
    """
    from repro.rfu.context_sched import (
        BeladyPolicy,
        LruPolicy,
        rotation_trace,
        simulate_context_schedule,
    )
    context = context or get_context()
    a2 = context.result(instruction_scenario("a2"))
    execution = max(1, a2.total_cycles // a2.invocations)
    trace = rotation_trace(list(range(8)), repetitions=50,
                           execution_cycles=execution)
    table = ExperimentTable(
        experiment_id="context-sched",
        title="Reconfiguration management: 8-config rotation, 4 contexts "
              f"(execution {execution} cycles/use)",
        columns=["load penalty", "policy", "hit rate", "stall cycles",
                 "overhead"],
        paper_reference="future work: 'reconfiguration management "
                        "techniques to hide the reconfiguration penalty' "
                        "via configuration prefetch and context scheduling "
                        "[12][14][15]",
    )
    for penalty in (64, 256, 1024):
        for policy, prefetch in ((LruPolicy(), False), (BeladyPolicy(), False),
                                 (LruPolicy(), True)):
            result = simulate_context_schedule(
                trace, contexts=4, load_penalty=penalty, policy=policy,
                prefetch_next=prefetch)
            table.add_row(penalty, result.policy, pct(result.hit_rate),
                          f"{result.stall_cycles:,}",
                          pct(result.overhead_fraction))
    return table


def run_search_ablation(frames: int = 5) -> ExperimentTable:
    """Search-strategy sweep: workload shape vs architectural conclusions.

    Full search multiplies the integer SAD calls (diluting the
    interpolation fraction); the loop-level speedup band should survive
    the workload change — the paper's conclusion is not an artefact of one
    search algorithm.
    """
    table = ExperimentTable(
        experiment_id="ablation-search",
        title=f"Search strategy sweep ({frames} frames)",
        columns=["strategy", "GetSad calls", "diag %", "orig ME cycles",
                 "1x32 S.Up", "2LB S.Up"],
        paper_reference="the reference code's search algorithm is "
                        "unspecified; the loop-level win must be robust "
                        "to it",
    )
    for strategy in (ThreeStepSearch(2), ThreeStepSearch(4), FullSearch(3)):
        config = ExplorationConfig(frames=frames)
        exploration = Exploration(config)
        # override the default strategy
        exploration._report = None
        from repro.codec.encoder import EncoderConfig, Mpeg4Encoder
        from repro.codec.sequence import SyntheticSequenceConfig, \
            synthetic_sequence
        sequence = synthetic_sequence(SyntheticSequenceConfig(frames=frames))
        exploration._report = Mpeg4Encoder(
            EncoderConfig(strategy=strategy)).encode(sequence)
        result = exploration.run([
            loop_scenario(Bandwidth.B1X32),
            loop_scenario(Bandwidth.B1X32, line_buffer_b=True),
        ])
        trace = exploration.encoder_report.trace
        table.add_row(
            strategy.name,
            f"{len(trace):,}",
            pct(trace.diagonal_fraction()),
            f"{result.baseline.total_cycles:,}",
            fmt(result.speedup("loop_1x32_b1")),
            fmt(result.speedup("loop_1x32+2lb_b1")),
        )
    return table

"""Table 7: two line buffers (double-buffered, fully-associative LB B).

The paper's headline result: adding the double-buffered, fully
associative Line Buffer B for candidate predictors (tag-matched reuse of
in-flight lines, initiation interval collapsing to 1) on top of the 1x32
loop kernel.  Sweeps the two
:data:`~repro.core.scenarios.TWO_LINE_BUFFER_SCENARIOS` (β = 1 and 5) and
reports execution cycles, speedup (paper: 8.0 / 5.4), GetSad's share of
the whole application (%Rel, paper: 25.6 % → 4.14 % / 6.1 %) and the
stall reduction (paper: ≥ 60 %) against the baseline.
"""

from __future__ import annotations

from typing import Optional

from repro.core.scenarios import loop_scenario
from repro.experiments.report import ExperimentTable, fmt, pct
from repro.experiments.workload import ExperimentContext, get_context
from repro.rfu.loop_model import Bandwidth

#: the paper's Table 7: S.Up 8.0 (b=1) / 5.4 (b=5); %Rel drops from 25.6%
#: to 4.14% / 6.1%; stall reduction of at least 60%
PAPER = {1.0: {"speedup": 8.0, "rel": 4.14}, 5.0: {"speedup": 5.4, "rel": 6.1}}


def run_table7(context: Optional[ExperimentContext] = None) -> ExperimentTable:
    context = context or get_context()
    baseline = context.baseline()
    non_me = context.non_me_cycles()
    table = ExperimentTable(
        experiment_id="table7",
        title="Two line buffers: ME results",
        columns=["scenario", "Lat", "ExCycles", "S.Up", "paper S.Up",
                 "%Rel", "Stalls", "%Red"],
        paper_reference="S.Up 8.0 / 5.4; GetSad falls from 25.6% of the "
                        "application to 4.14% / 6.1%; stall reduction "
                        ">= 60% thanks to LB B reuse",
    )
    orig_rel = baseline.total_cycles / (baseline.total_cycles + non_me)
    table.add_row("Orig", "-", f"{baseline.total_cycles:,}", "1.00", "-",
                  pct(orig_rel), f"{baseline.stall_cycles:,}", "-")
    for beta in (1.0, 5.0):
        scenario = loop_scenario(Bandwidth.B1X32, beta, line_buffer_b=True)
        result = context.result(scenario)
        rel = result.total_cycles / (result.total_cycles + non_me)
        reduction = 100.0 * (baseline.stall_cycles - result.stall_cycles) \
            / baseline.stall_cycles if baseline.stall_cycles else 0.0
        table.add_row(
            f"b={beta:g}",
            result.worst_loop_latency,
            f"{result.total_cycles:,}",
            fmt(result.speedup_over(baseline)),
            fmt(PAPER[beta]["speedup"]),
            pct(rel),
            f"{result.stall_cycles:,}",
            f"{reduction:.1f}%",
        )
    return table

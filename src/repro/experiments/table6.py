"""Table 6: theoretical (no-cache) vs experimental speedups.

For each bandwidth × β loop scenario, compares the speedup a perfect
memory system would deliver (baseline cycles over the scenario's *static*
cycles alone) with the measured one (stalls included), and reports their
ratio.  Reproduced shapes: the measured speedup is always a fraction of
the theoretical one, the ratio stays above the paper's 57 % floor, and it
degrades as bandwidth grows — the same stall growth Tables 4 and 5 view
from different angles.
"""

from __future__ import annotations

from typing import Optional

from repro.core.scenarios import loop_scenario
from repro.experiments.report import ExperimentTable, fmt
from repro.experiments.workload import ExperimentContext, get_context
from repro.rfu.loop_model import Bandwidth


def run_table6(context: Optional[ExperimentContext] = None) -> ExperimentTable:
    context = context or get_context()
    baseline = context.baseline()
    table = ExperimentTable(
        experiment_id="table6",
        title="Theoretical speedup (ideal 100% hit) vs experimental",
        columns=["bandwidth", "b", "StaticCycles", "Th.S.Up", "S.Up", "Ratio"],
        paper_reference="the experimental result is always above 57% of the "
                        "theoretical one, and the ratio degrades as more "
                        "bandwidth is available (cache stalls grow)",
    )
    for beta in (1.0, 5.0):
        for bandwidth in (Bandwidth.B1X32, Bandwidth.B1X64, Bandwidth.B2X64):
            result = context.result(loop_scenario(bandwidth, beta))
            theoretical = baseline.total_cycles / result.static_cycles
            measured = result.speedup_over(baseline)
            table.add_row(
                bandwidth.value,
                f"{beta:g}",
                f"{result.static_cycles:,}",
                fmt(theoretical),
                fmt(measured),
                f"{100.0 * measured / theoretical:.1f}%",
            )
    return table

"""Table 1: instruction-level optimisation results (Orig, A1, A2, A3).

Reproduces the paper's first evaluation artefact: the GetSad kernel cycle
count under each instruction-level RFU extension — A1 (1-cycle SIMD-style
rounded averages), A2 (the DIAG4 4-pixel interpolation cluster) and A3
(DIAG16 row-level sends) — against the optimised SIMD baseline.  Sweeps
the four :data:`~repro.core.scenarios.INSTRUCTION_SCENARIOS` over the
shared trace replay; the knob is the kernel *variant* only (memory
behaviour is the baseline's for all four).  The reproduced shape is the
ordering A1 < A2 <= A3 with marginal (<2x) gains; the paper reports
14/28/31 % improvements.
"""

from __future__ import annotations

from typing import Optional

from repro.core.scenarios import INSTRUCTION_SCENARIOS
from repro.experiments.report import ExperimentTable, fmt
from repro.experiments.workload import ExperimentContext, get_context

#: the paper's Table 1 (cycles column is platform-specific)
PAPER_IMPROVEMENT = {"a1": 14.0, "a2": 28.0, "a3": 31.0}


def run_table1(context: Optional[ExperimentContext] = None) -> ExperimentTable:
    context = context or get_context()
    baseline = context.baseline()
    table = ExperimentTable(
        experiment_id="table1",
        title="Instruction-level optimizations (GetSad kernel cycles)",
        columns=["scenario", "CYCLES", "S.Up", "%Improv", "paper %Improv"],
        paper_reference="A1 +14%, A2 +28%, A3 +31% (diagonal interpolation "
                        "in 18% of the calls)",
        notes="our diagonal-call fraction and baseline interpolation cost "
              "differ from Foreman's, compressing the improvements; the "
              "ordering A1 < A2 <= A3 is the reproduced shape",
    )
    for scenario in INSTRUCTION_SCENARIOS:
        result = context.result(scenario)
        speedup = result.speedup_over(baseline)
        improvement = 100.0 * (baseline.total_cycles - result.total_cycles) \
            / baseline.total_cycles
        paper = PAPER_IMPROVEMENT.get(scenario.name)
        table.add_row(
            scenario.name.upper() if scenario.name != "orig" else "Orig",
            f"{result.total_cycles:,}",
            fmt(speedup),
            "-" if scenario.name == "orig" else f"{improvement:.1f}%",
            "-" if paper is None else f"{paper:.0f}%",
        )
    return table

"""Shared experiment workload: one encoder run + cached scenario replays.

Every table of the paper derives from the same encoding run; this module
caches the :class:`~repro.core.exploration.Exploration` and its replayed
scenarios so running all experiments (or all benchmarks) encodes once and
replays each scenario once.

The default workload is the paper's: 25 QCIF frames at Q = 10.  Pass a
smaller ``frames`` for quick runs (the tests use 3-4).
"""

from __future__ import annotations

from dataclasses import asdict
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.exploration import Exploration, ExplorationConfig, ExplorationResult
from repro.core.scenarios import Scenario, all_scenarios, instruction_scenario
from repro.core.timing import MeTimingResult

DEFAULT_FRAMES = 25


class ExperimentContext:
    """Lazily replayed scenario results over one shared encoding run."""

    def __init__(self, config: Optional[ExplorationConfig] = None):
        self.exploration = Exploration(config or ExplorationConfig())
        self._results: Dict[str, MeTimingResult] = {}

    @property
    def config(self) -> ExplorationConfig:
        return self.exploration.config

    def result(self, scenario: Scenario) -> MeTimingResult:
        if scenario.name not in self._results:
            self._results[scenario.name] = \
                self.exploration.replayer.replay(scenario)
        return self._results[scenario.name]

    def prime(self, scenarios: Optional[Iterable[Scenario]] = None,
              jobs: int = 1) -> None:
        """Replay ``scenarios`` (default: the full catalogue) into the cache.

        With ``jobs > 1`` the missing replays fan across forked worker
        processes (:meth:`Exploration.run`); results are identical to the
        lazy serial path, just computed up front.  The sweep executor
        primes the shared context before forking its cell workers so every
        worker inherits a fully warm replay cache."""
        wanted = list(scenarios) if scenarios is not None else all_scenarios()
        missing = [s for s in wanted if s.name not in self._results]
        if not missing:
            return
        replayed = self.exploration.run(missing, include_baseline=False,
                                        jobs=jobs)
        self._results.update(replayed.results)

    def baseline(self) -> MeTimingResult:
        return self.result(instruction_scenario("orig"))

    def speedup(self, scenario: Scenario) -> float:
        return self.result(scenario).speedup_over(self.baseline())

    def non_me_cycles(self) -> int:
        return self.exploration.non_me_cycles()

    def me_fraction(self, scenario: Scenario) -> float:
        me = self.result(scenario).total_cycles
        return me / (me + self.non_me_cycles())

    def replay_breakdown(self) -> Optional[Dict]:
        """Replay-engine observability: which engine ran and what each
        replay phase (compile/static/stall/loop) cost.  ``None`` until the
        first replay happens (no replayer was ever constructed).  When the
        sampled differential guard is armed (``--verify-replay``), a
        ``verify`` block reports how many replays were re-checked against
        the legacy walk and how many diverged."""
        from repro.core.timing import replay_verification
        replayer = self.exploration._replayer
        if replayer is None:
            return None
        breakdown = {
            "engine": replayer.engine_name,
            "invocations": len(replayer.trace),
            "phases": replayer.phase_breakdown(),
        }
        verification = replay_verification()
        if verification["pct"] > 0:
            breakdown["verify"] = {
                "pct": verification["pct"],
                "checked": replayer.verified_replays,
                "divergences": len(replayer.divergences),
            }
        return breakdown

    def replay_divergences(self) -> List[Dict]:
        """Field-level diagnostics recorded by the ``--verify-replay``
        guard (empty while verification is off or everything agrees)."""
        replayer = self.exploration._replayer
        if replayer is None:
            return []
        return list(replayer.divergences)

    def as_result(self) -> ExplorationResult:
        """Snapshot of everything replayed so far."""
        return ExplorationResult(
            config=self.config,
            encoder_report=self.exploration.encoder_report,
            results=dict(self._results),
            non_me_cycles=self.non_me_cycles(),
        )


def workload_fingerprint(config: ExplorationConfig) -> Dict:
    """JSON-serialisable fingerprint of everything that shapes a result.

    This is the "workload config" input of the sweep cache key
    (:func:`repro.sweep.cache.cell_key`): two runs with equal fingerprints
    replay byte-identical cells, and any knob change — frame count, seed,
    Q, search step, the fast-engine toggle, a memory-timing or cost-model
    constant — changes the fingerprint and invalidates every cached cell.
    """
    return {
        "frames": config.frames,
        "seed": config.seed,
        "qp": config.qp,
        "search_initial_step": config.search_initial_step,
        "use_fast_engine": config.use_fast_engine,
        "timings": asdict(config.timings),
        "cost_model": asdict(config.cost_model),
    }


_CONTEXTS: Dict[Tuple[int, int], ExperimentContext] = {}


def get_context(frames: int = DEFAULT_FRAMES,
                seed: int = 2002) -> ExperimentContext:
    """Process-wide context cache keyed by workload size."""
    key = (frames, seed)
    if key not in _CONTEXTS:
        _CONTEXTS[key] = ExperimentContext(
            ExplorationConfig(frames=frames, seed=seed))
    return _CONTEXTS[key]


def peek_context(frames: int = DEFAULT_FRAMES,
                 seed: int = 2002) -> Optional[ExperimentContext]:
    """The cached context for this workload, or ``None`` if none exists.

    Unlike :func:`get_context` this never materialises a workload; the
    sweep orchestrator uses it to read replay observability off whatever
    context the run actually warmed."""
    return _CONTEXTS.get((frames, seed))

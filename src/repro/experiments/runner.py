"""Run every experiment and assemble the EXPERIMENTS.md report."""

from __future__ import annotations

import time
from typing import List, Optional

from repro.experiments.figures import (
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
)
from repro.experiments.ablations import (
    run_bus_ablation,
    run_context_schedule_experiment,
    run_lbb_capacity_ablation,
    run_reconfiguration_ablation,
)
from repro.experiments.extraction_experiment import run_extraction_experiment
from repro.experiments.futurework import run_futurework
from repro.experiments.profile_experiment import run_profile
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6
from repro.experiments.table7 import run_table7
from repro.experiments.workload import ExperimentContext, get_context

TABLE_RUNNERS = [
    ("profile", run_profile),
    ("table1", run_table1),
    ("table2", run_table2),
    ("table3", run_table3),
    ("table4", run_table4),
    ("table5", run_table5),
    ("table6", run_table6),
    ("table7", run_table7),
]

EXTENSION_RUNNERS = [
    ("futurework", run_futurework),
    ("extraction", run_extraction_experiment),
    ("context-sched", run_context_schedule_experiment),
    ("ablation-reconfig", run_reconfiguration_ablation),
    ("ablation-lbb", run_lbb_capacity_ablation),
    ("ablation-bus", run_bus_ablation),
]

FIGURE_RUNNERS = [
    ("figure1", run_figure1),
    ("figure2", run_figure2),
    ("figure3", run_figure3),
    ("figure4", run_figure4),
]


def run_all(frames: int = 25, context: Optional[ExperimentContext] = None,
            verbose: bool = False, extensions: bool = True) -> str:
    """Run every table and figure; returns the full text report.

    ``extensions`` additionally runs the beyond-the-paper experiments
    (future-work stacking and the ablation sweeps)."""
    context = context or get_context(frames)
    sections: List[str] = []
    started = time.time()
    for name, runner in TABLE_RUNNERS:
        if verbose:
            print(f"running {name}...", flush=True)
        sections.append(runner(context).render())
    for name, runner in FIGURE_RUNNERS:
        if verbose:
            print(f"running {name}...", flush=True)
        sections.append(runner().render())
    if extensions:
        for name, runner in EXTENSION_RUNNERS:
            if verbose:
                print(f"running {name}...", flush=True)
            sections.append(runner(context).render())
    trace = context.exploration.encoder_report.trace
    header = (
        f"Workload: {context.config.frames} synthetic QCIF frames, "
        f"Q={context.config.qp}, three-step search (step "
        f"{context.config.search_initial_step}) + half-sample refinement; "
        f"{len(trace):,} GetSad calls, diagonal-interpolation fraction "
        f"{100 * trace.diagonal_fraction():.1f}% (paper: 18%).\n"
        f"Report generated in {time.time() - started:.1f}s of wall time "
        f"(excluding the shared encoder/replay cache)."
    )
    return header + "\n\n" + "\n\n".join(sections)

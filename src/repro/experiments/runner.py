"""Run every experiment and assemble the EXPERIMENTS.md report.

This module is the *registry* of the paper's reproduction: it names every
cell of the evaluation — the initial profile, Tables 1-7, Figures 1-4 and
the beyond-the-paper extension experiments — in report order, and knows how
to render each one (:func:`run_cell`).  Two drivers sit on top of it:

* :func:`run_all` — the serial, in-process driver used by the tests, the
  ``report`` CLI subcommand, and anything that wants the full report as one
  string;
* :mod:`repro.sweep` — the parallel, cached sweep orchestrator (``python -m
  repro sweep``), which fans the same cells across worker processes and
  memoises them on disk.  Both drivers render cells through the same
  :func:`run_cell`, so their table/figure sections are byte-identical.

A failing runner no longer aborts the whole sweep: :func:`run_all` isolates
each runner's exceptions, substitutes an error section, finishes the rest,
and raises one :class:`~repro.errors.ExperimentError` summarising every
failure at the end (pass ``raise_on_error=False`` to get the partial report
back instead).
"""

from __future__ import annotations

import time
import traceback
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ExperimentError
from repro.experiments.figures import (
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
)
from repro.experiments.ablations import (
    run_bus_ablation,
    run_context_schedule_experiment,
    run_lbb_capacity_ablation,
    run_reconfiguration_ablation,
)
from repro.experiments.extraction_experiment import run_extraction_experiment
from repro.experiments.futurework import run_futurework
from repro.experiments.profile_experiment import run_profile
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6
from repro.experiments.table7 import run_table7
from repro.experiments.workload import ExperimentContext, get_context

TABLE_RUNNERS = [
    ("profile", run_profile),
    ("table1", run_table1),
    ("table2", run_table2),
    ("table3", run_table3),
    ("table4", run_table4),
    ("table5", run_table5),
    ("table6", run_table6),
    ("table7", run_table7),
]

EXTENSION_RUNNERS = [
    ("futurework", run_futurework),
    ("extraction", run_extraction_experiment),
    ("context-sched", run_context_schedule_experiment),
    ("ablation-reconfig", run_reconfiguration_ablation),
    ("ablation-lbb", run_lbb_capacity_ablation),
    ("ablation-bus", run_bus_ablation),
]

FIGURE_RUNNERS = [
    ("figure1", run_figure1),
    ("figure2", run_figure2),
    ("figure3", run_figure3),
    ("figure4", run_figure4),
]

#: every cell the report can contain: name -> (kind, runner).  ``table``
#: and ``extension`` runners take the shared :class:`ExperimentContext`;
#: ``figure`` runners regenerate from the live platform models alone.
RUNNERS: Dict[str, Tuple[str, Callable]] = {}
for _name, _runner in TABLE_RUNNERS:
    RUNNERS[_name] = ("table", _runner)
for _name, _runner in FIGURE_RUNNERS:
    RUNNERS[_name] = ("figure", _runner)
for _name, _runner in EXTENSION_RUNNERS:
    RUNNERS[_name] = ("extension", _runner)


def cell_names(extensions: bool = True) -> List[str]:
    """Cell names in report order (tables, figures, then extensions)."""
    names = [name for name, _ in TABLE_RUNNERS]
    names += [name for name, _ in FIGURE_RUNNERS]
    if extensions:
        names += [name for name, _ in EXTENSION_RUNNERS]
    return names


def run_cell(name: str,
             context: Optional[ExperimentContext] = None) -> str:
    """Render one report cell (table, figure or extension) to text.

    Table and extension runners receive ``context`` (a default one is
    created from the process-wide cache when omitted); figure runners
    regenerate from the live models and ignore it.  This is the single
    rendering path shared by the serial runner and the parallel sweep, so
    a cell's section is byte-identical no matter which driver produced it.
    """
    try:
        kind, runner = RUNNERS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown report cell {name!r}; expected one of "
            f"{', '.join(sorted(RUNNERS))}") from None
    if kind == "figure":
        return runner().render()
    return runner(context or get_context()).render()


def workload_header(context: ExperimentContext) -> str:
    """The deterministic workload-description line of the report."""
    trace = context.exploration.encoder_report.trace
    return (
        f"Workload: {context.config.frames} synthetic QCIF frames, "
        f"Q={context.config.qp}, three-step search (step "
        f"{context.config.search_initial_step}) + half-sample refinement; "
        f"{len(trace):,} GetSad calls, diagonal-interpolation fraction "
        f"{100 * trace.diagonal_fraction():.1f}% (paper: 18%)."
    )


def error_section(name: str, error: str) -> str:
    """The section substituted for a cell whose runner raised.

    Carries the cell name, the exception summary, and the **full**
    traceback (indented) — a failed report must be diagnosable from its
    own text, without digging for the run log.
    """
    stripped = error.strip()
    summary = stripped.splitlines()[-1]
    body = "\n".join("    " + line for line in stripped.splitlines())
    return f"{name}: ERROR — {summary}\n{body}"


def run_all(frames: int = 25, context: Optional[ExperimentContext] = None,
            verbose: bool = False, extensions: bool = True,
            raise_on_error: bool = True) -> str:
    """Run every table and figure serially; returns the full text report.

    ``extensions`` additionally runs the beyond-the-paper experiments
    (future-work stacking and the ablation sweeps).  A runner that raises
    is isolated: its section is replaced by an error marker and the
    remaining runners still execute; the collected failures are raised as
    one summary :class:`ExperimentError` at the end unless
    ``raise_on_error`` is false."""
    context = context or get_context(frames)
    sections: List[str] = []
    failures: List[Tuple[str, str]] = []
    started = time.time()
    for name in cell_names(extensions):
        if verbose:
            print(f"running {name}...", flush=True)
        try:
            sections.append(run_cell(name, context))
        except (KeyboardInterrupt, SystemExit):
            # an operator interrupt or explicit exit must never be
            # absorbed into an error section
            raise
        except Exception:
            failures.append((name, traceback.format_exc()))
            sections.append(error_section(name, failures[-1][1]))
    header = (
        workload_header(context) + "\n"
        f"Report generated in {time.time() - started:.1f}s of wall time "
        f"(excluding the shared encoder/replay cache)."
    )
    breakdown = context.replay_breakdown()
    if breakdown is not None:
        phase_text = ", ".join(
            f"{name} {bucket['wall_s']:.2f}s"
            for name, bucket in breakdown["phases"].items())
        header += (f"\nReplay engine: {breakdown['engine']} "
                   f"({breakdown['invocations']:,} invocations; "
                   f"{phase_text}).")
    report = header + "\n\n" + "\n\n".join(sections)
    if failures and raise_on_error:
        summary = ", ".join(name for name, _ in failures)
        details = "\n\n".join(tb for _, tb in failures)
        raise ExperimentError(
            f"{len(failures)} runner(s) failed: {summary}\n{details}")
    return report

"""Section 4's initial profile: GetSad() share of the whole application.

The paper measures 25.6 % of execution time in GetSad() on the optimised
reference code before any RFU work; this experiment reproduces that
denominator (ME kernel cycles vs the non-ME cost model).
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.report import ExperimentTable, pct
from repro.experiments.workload import ExperimentContext, get_context

PAPER_FRACTION = 0.256


def run_profile(context: Optional[ExperimentContext] = None) -> ExperimentTable:
    context = context or get_context()
    baseline = context.baseline()
    trace = context.exploration.encoder_report.trace
    table = ExperimentTable(
        experiment_id="profile",
        title="Initial application profile (GetSad share, §4)",
        columns=["quantity", "measured", "paper"],
        paper_reference="25.6% of execution time spent in GetSad()",
    )
    table.add_row("GetSad cycles", f"{baseline.total_cycles:,}", "-")
    table.add_row("non-ME cycles", f"{context.non_me_cycles():,}", "-")
    fraction = baseline.total_cycles / (baseline.total_cycles
                                        + context.non_me_cycles())
    table.add_row("GetSad fraction", pct(fraction), pct(PAPER_FRACTION))
    table.add_row("GetSad invocations", f"{baseline.invocations:,}", "-")
    table.add_row("diagonal-interp call fraction",
                  pct(trace.diagonal_fraction()), "18.0%")
    return table

"""Future-work experiment: automated configuration extraction vs the
paper's hand-selected RFU instructions."""

from __future__ import annotations

from typing import Optional

from repro.experiments.report import ExperimentTable
from repro.experiments.workload import ExperimentContext
from repro.kernels import KernelShape, build_getsad_kernel
from repro.rfu.extraction import extract_candidates
from repro.rfu.loop_model import InterpMode


def run_extraction_experiment(context: Optional[ExperimentContext] = None
                              ) -> ExperimentTable:
    """Run the MISO extraction pass over every baseline GetSad row body."""
    del context  # the pass is purely static; kept for a uniform runner API
    table = ExperimentTable(
        experiment_id="extraction",
        title="Automatic configuration extraction on baseline GetSad "
              "(alignment 1)",
        columns=["row body", "ops", "best cluster", "inputs",
                 "occurrences", "ops saved", "share"],
        paper_reference="future work: 'the VLIW compiler support to "
                        "automate the analysis and extraction of the "
                        "configurations'; on the diagonal body the top "
                        "candidate is the 4-pixel interpolation cluster "
                        "the paper hand-designed as A2",
    )
    for mode in InterpMode:
        program = build_getsad_kernel("orig", KernelShape(1, mode))
        block = program.block("row_loop")
        candidates = extract_candidates(block)
        if not candidates:
            table.add_row(mode.name, len(block.ops), "-", "-", "-", 0, "0%")
            continue
        best = candidates[0]
        table.add_row(
            mode.name,
            len(block.ops),
            f"{best.size} ops",
            best.inputs,
            best.occurrences,
            best.saved_ops,
            f"{100.0 * best.saved_ops / len(block.ops):.0f}%",
        )
    return table

"""Table 2: loop-level results across bandwidth and technology scaling.

Reproduces the paper's central table: the whole GetSad loop mapped onto
the RFU as one long-latency instruction, swept over the RFU memory
bandwidth (1x32 / 1x64 / 2x64 accesses per cycle) crossed with the
technology-scaling factor β ∈ {1, 5} (a β = 5 fabric stretches the three
compute stages to fifteen).  Each cell is one
:func:`~repro.core.scenarios.loop_scenario` replay with a single line
buffer (the reference macroblock in LB A, candidates through the D$ +
prefetch buffer).  Paper speedups: 3.18/4.26/5.29 at β = 1 and 2.74 for
1x32 at β = 5; the reproduced shape is speedup growing with bandwidth and
shrinking under β.
"""

from __future__ import annotations

from typing import Optional

from repro.core.scenarios import loop_scenario
from repro.experiments.report import ExperimentTable, fmt
from repro.experiments.workload import ExperimentContext, get_context
from repro.rfu.loop_model import Bandwidth

#: the paper's Table 2 speedups (one line buffer)
PAPER_SPEEDUP = {
    ("1x32", 1.0): 3.18, ("1x64", 1.0): 4.26, ("2x64", 1.0): 5.29,
    ("1x32", 5.0): 2.74,
}


def run_table2(context: Optional[ExperimentContext] = None) -> ExperimentTable:
    context = context or get_context()
    baseline = context.baseline()
    table = ExperimentTable(
        experiment_id="table2",
        title="Loop-level optimizations, one line buffer",
        columns=["bandwidth", "b", "Lat", "Cycles", "S.Up", "paper S.Up"],
        paper_reference="b=1: 3.18 / 4.26 / 5.29 for 1x32 / 1x64 / 2x64; "
                        "b=5 1x32: 2.74; latency grows by a fixed +12 "
                        "cycles at b=5",
    )
    table.add_row("Orig", "-", "-", f"{baseline.total_cycles:,}", "1.00", "-")
    for beta in (1.0, 5.0):
        for bandwidth in (Bandwidth.B1X32, Bandwidth.B1X64, Bandwidth.B2X64):
            scenario = loop_scenario(bandwidth, beta)
            result = context.result(scenario)
            paper = PAPER_SPEEDUP.get((bandwidth.value, beta))
            table.add_row(
                bandwidth.value,
                f"{beta:g}",
                result.worst_loop_latency,
                f"{result.total_cycles:,}",
                fmt(result.speedup_over(baseline)),
                "-" if paper is None else fmt(paper),
            )
    return table

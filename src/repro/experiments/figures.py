"""Text reproductions of the paper's figures.

The paper's figures are structural diagrams, not data plots, so each is
regenerated from the *live* model objects: Figure 1 from the machine and
memory configuration, Figure 2 from the real predictor address arithmetic,
Figures 3 and 4 from actual line-buffer state after driving the prefetch
engine — so every figure doubles as a check that the models match the
paper's structures.
"""

from __future__ import annotations

from typing import Optional

from repro.codec.frame import FrameLayout
from repro.experiments.report import ExperimentFigure
from repro.isa.opcodes import Resource
from repro.machine import MachineConfig
from repro.memory import (
    LineBufferA,
    LineBufferB,
    MemorySystem,
    MemoryTimings,
)
from repro.memory.linebuffer import MACROBLOCK_ROWS
from repro.rfu.loop_model import InterpMode, predictor_geometry
from repro.rfu.prefetch_ops import MacroblockPrefetchEngine


def run_figure1(config: Optional[MachineConfig] = None,
                timings: Optional[MemoryTimings] = None) -> ExperimentFigure:
    """Figure 1: the modified ST200 1-cluster architecture with the RFU."""
    config = config or MachineConfig()
    timings = timings or MemoryTimings()
    fig = ExperimentFigure(
        experiment_id="figure1",
        title="Modified ST200 1-cluster architecture with RFU",
        paper_reference="4-issue VLIW cluster: 4 ALUs, 2 16x32 multipliers, "
                        "LSU, branch unit, 64 GPR + 8 BR, 128KB direct-"
                        "mapped I$, 32KB 4-way D$ with prefetch buffer, "
                        "tightly coupled RFU",
    )
    cap = config.capacity
    fig.add(f"  I$ {timings.icache_size >> 10}KB "
            f"{'direct-mapped' if timings.icache_assoc == 1 else str(timings.icache_assoc) + '-way'}"
            f" ({timings.icache_line}B lines)")
    fig.add(f"  |  issue width: {config.issue_width}")
    fig.add("  v")
    fig.add("  [ Reg. File: 64 GPR (32b) | BrRegFile: 8 BR (1b) ]")
    fig.add(f"  [ {cap[Resource.ALU]}x ALU | {cap[Resource.MUL]}x 16x32 Mult"
            f" | {cap[Resource.LSU]}x Load/Store | {cap[Resource.BRANCH]}x "
            f"Branch | {cap[Resource.RFU]}x RFU slot ]")
    fig.add("  [ Reconfigurable Functional Unit: local memory, multicontext "
            "configuration store ]")
    fig.add(f"  D$ {timings.dcache_size >> 10}KB {timings.dcache_assoc}-way "
            f"({timings.dcache_line}B lines), prefetch buffer "
            f"{timings.prefetch_entries} entries")
    fig.add(f"  external bus: {timings.bus_latency}-cycle line fill, one "
            f"fill per {timings.bus_service_interval} cycles")
    return fig


def run_figure2(alignment: int = 3,
                mode: InterpMode = InterpMode.HV) -> ExperimentFigure:
    """Figure 2: the packed-word data set of one predictor row.

    '#' marks the 16 base pixels, '+' the extra column/row required by the
    interpolation, '.' bytes that are loaded but unused.  Computed from the
    same address arithmetic the kernels use.
    """
    rows, words = predictor_geometry(alignment, mode)
    pixels = 16 + (1 if mode.needs_extra_column else 0)
    fig = ExperimentFigure(
        experiment_id="figure2",
        title=f"Predictor data set, alignment {alignment}, {mode.name} "
              f"interpolation",
        paper_reference="a predictor row with alignment 3 and diagonal "
                        "interpolation spans 5 packed 32-bit words "
                        "(17 pixels) and 17 rows",
    )
    cells = []
    for byte in range(4 * words):
        if byte < alignment or byte >= alignment + pixels:
            cells.append(".")
        elif byte >= alignment + 16:
            cells.append("+")
        else:
            cells.append("#")
    row_render = " ".join("".join(cells[4 * w:4 * w + 4])
                          for w in range(words))
    header = " ".join(f"W{w}  " for w in range(words))
    fig.add(f"  {header}")
    fig.add(f"  {row_render}   x {rows} rows"
            + (" (last row only for the vertical half-sample)"
               if mode.needs_extra_row else ""))
    fig.add(f"  words per row: {words}, rows: {rows}, "
            f"bytes loaded: {4 * words * rows}, bytes used: {pixels * rows}")
    return fig


def run_figure3() -> ExperimentFigure:
    """Figure 3: Line Buffer A mid-fill, with its Done flags.

    Drives the real prefetch engine on a fresh memory system and snapshots
    the buffer while the gather is still in flight.
    """
    memory = MemorySystem(MemoryTimings(prefetch_entries=64))
    buffer_a = LineBufferA()
    engine = MacroblockPrefetchEngine(memory, line_buffer_a=buffer_a)
    layout = FrameLayout()
    base = layout.allocate("ref")
    engine.fill_line_buffer_a(base, layout.stride, cycle=0)
    snapshot_cycle = memory.bus.latency + 8 * memory.bus.service_interval
    fig = ExperimentFigure(
        experiment_id="figure3",
        title=f"Line Buffer A state at cycle {snapshot_cycle} of a gather",
        paper_reference="16 rows of 16 pixels plus a Done flag per row, "
                        "set as each macroblock-row prefetch completes",
    )
    fig.add("  row | Done | ready at cycle")
    for row in range(MACROBLOCK_ROWS):
        ready = buffer_a.ready[row]
        done = 1 if ready is not None and ready <= snapshot_cycle else 0
        fig.add(f"  {row:3d} |  {done}   | {ready}")
    fig.add(f"  size: {MACROBLOCK_ROWS * 16} bytes + "
            f"{MACROBLOCK_ROWS} Done bits")
    return fig


def run_figure4() -> ExperimentFigure:
    """Figure 4: Line Buffer B after staging two overlapping candidates.

    Shows the double-buffering capacity and the tag-matching reuse: the
    second candidate's rows mostly adopt the first's pending entries.
    """
    memory = MemorySystem(MemoryTimings(prefetch_entries=64))
    buffer_b = LineBufferB(memory)
    engine = MacroblockPrefetchEngine(memory, line_buffer_b=buffer_b)
    layout = FrameLayout()
    base = layout.allocate("pred")
    engine.fill_line_buffer_b(base, layout.stride, rows=17, cycle=0)
    requests_first = buffer_b.stats.requests
    # second candidate: one pixel row down — 16 of its 17 rows overlap
    engine.fill_line_buffer_b(base + layout.stride, layout.stride, rows=17,
                              cycle=40)
    fig = ExperimentFigure(
        experiment_id="figure4",
        title="Line Buffer B: double-buffered candidate predictor store",
        paper_reference="4 x 17 cache-line entries (2176 bytes + tags); a "
                        "prefetch finding a pending entry with the same tag "
                        "adopts it instead of re-requesting",
    )
    fig.add(f"  organisation: {buffer_b.banks} banks x "
            f"{buffer_b.lines_per_bank} lines = {buffer_b.capacity} entries")
    fig.add(f"  candidate 1: {requests_first} line requests issued")
    fig.add(f"  candidate 2 (1 row down): "
            f"{buffer_b.stats.requests - requests_first} new requests, "
            f"{buffer_b.stats.reused} tag-matched reuses")
    fig.add(f"  entries resident/pending: {len(buffer_b._entries)}")
    return fig

"""Table 4: ME cache stalls with one line buffer, per bandwidth and β.

Dissects where the loop-level cycles of Table 2 go: the D-cache stall
cycles accumulated by the trace replay under each bandwidth × β loop
scenario, versus the baseline.  The reproduced (counter-intuitive) shape:
stalls are *greater* in the 64-bit cases than the 32-bit one, because the
shortened static loop narrows the window between a candidate's
prefetch-pattern issue and its data's use; scaling the technology (β = 5)
widens that window and slightly reduces stalls.
"""

from __future__ import annotations

from typing import Optional

from repro.core.scenarios import loop_scenario
from repro.experiments.report import ExperimentTable
from repro.experiments.workload import ExperimentContext, get_context
from repro.rfu.loop_model import Bandwidth


def run_table4(context: Optional[ExperimentContext] = None) -> ExperimentTable:
    context = context or get_context()
    baseline = context.baseline()
    table = ExperimentTable(
        experiment_id="table4",
        title="ME D$ stall cycles, one line buffer (reduction vs Orig)",
        columns=["scenario", "b", "stall cycles", "%Red"],
        paper_reference="stalls are greater in the 64-bit cases than the "
                        "32-bit one (shorter loops narrow the prefetch "
                        "window); scaling the technology reduces stalls",
    )
    table.add_row("Orig", "-", f"{baseline.stall_cycles:,}", "-")
    for beta in (1.0, 5.0):
        for bandwidth in (Bandwidth.B1X32, Bandwidth.B1X64, Bandwidth.B2X64):
            result = context.result(loop_scenario(bandwidth, beta))
            reduction = 100.0 * (baseline.stall_cycles - result.stall_cycles) \
                / baseline.stall_cycles if baseline.stall_cycles else 0.0
            table.add_row(bandwidth.value, f"{beta:g}",
                          f"{result.stall_cycles:,}", f"{reduction:.1f}%")
    return table

"""Table 5: cache stalls as a percentage of total ME execution time.

Normalises Table 4's absolute stall cycles by each scenario's total ME
time, over the same bandwidth × β sweep.  The reproduced shape: the stall
*share* grows with RFU bandwidth (the compute shrinks faster than the
stalls do — the paper's column peaks at 26.3 % for 2x64) and shrinks
under technology scaling.  Our magnitudes are milder than the paper's
because the three-step search revisits overlapping candidate windows,
giving the D$ more reuse (see the EXPERIMENTS.md caveats).
"""

from __future__ import annotations

from typing import Optional

from repro.core.scenarios import loop_scenario
from repro.experiments.report import ExperimentTable, pct
from repro.experiments.workload import ExperimentContext, get_context
from repro.rfu.loop_model import Bandwidth

#: paper values: Orig 1.96%; with the loop kernels the share grows with
#: bandwidth (up to 26.3%)
PAPER_ORIG_PERCENT = 1.96


def run_table5(context: Optional[ExperimentContext] = None) -> ExperimentTable:
    context = context or get_context()
    baseline = context.baseline()
    table = ExperimentTable(
        experiment_id="table5",
        title="Cache stalls as % of total ME execution time",
        columns=["scenario", "b=1", "b=5"],
        paper_reference="Orig 1.96%; loop kernels: the stall share grows "
                        "with bandwidth (paper column peaks at 26.3% for "
                        "2x64) and shrinks under technology scaling",
    )
    table.add_row("Orig", pct(baseline.stall_fraction()), "-")
    for bandwidth in (Bandwidth.B1X32, Bandwidth.B1X64, Bandwidth.B2X64):
        fast = context.result(loop_scenario(bandwidth, 1.0))
        slow = context.result(loop_scenario(bandwidth, 5.0))
        table.add_row(bandwidth.value, pct(fast.stall_fraction()),
                      pct(slow.stall_fraction()))
    return table

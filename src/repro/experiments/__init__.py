"""Reproduction of every table and figure in the paper's evaluation.

Each ``table*.py``/``figures.py`` module regenerates one artefact and
returns an :class:`~repro.experiments.report.ExperimentTable` carrying both
our measured values and the paper's reference values for side-by-side
comparison.  ``runner.run_all`` produces the full EXPERIMENTS.md content.
"""

from repro.experiments.report import ExperimentTable
from repro.experiments.workload import ExperimentContext, get_context
from repro.experiments.profile_experiment import run_profile
from repro.experiments.table1 import run_table1
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import run_table4
from repro.experiments.table5 import run_table5
from repro.experiments.table6 import run_table6
from repro.experiments.table7 import run_table7
from repro.experiments.figures import (
    run_figure1,
    run_figure2,
    run_figure3,
    run_figure4,
)
from repro.experiments.futurework import run_futurework
from repro.experiments.extraction_experiment import run_extraction_experiment
from repro.experiments.ablations import (
    run_bus_ablation,
    run_context_schedule_experiment,
    run_lbb_capacity_ablation,
    run_reconfiguration_ablation,
    run_search_ablation,
)
from repro.experiments.runner import run_all

__all__ = [
    "ExperimentContext",
    "ExperimentTable",
    "get_context",
    "run_all",
    "run_bus_ablation",
    "run_context_schedule_experiment",
    "run_extraction_experiment",
    "run_futurework",
    "run_lbb_capacity_ablation",
    "run_reconfiguration_ablation",
    "run_search_ablation",
    "run_figure1",
    "run_figure2",
    "run_figure3",
    "run_figure4",
    "run_profile",
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_table6",
    "run_table7",
]

"""Future-work experiment: extend the acceleration beyond GetSad.

The paper's closing section plans to "extend the analysis to other parts
of the application".  After the two-line-buffer GetSad kernel collapses
the hotspot from 25.6 % to ~4 % of the application, Amdahl's law points at
the next stage on the same datapath: half-sample **motion compensation**.
This experiment stacks the accelerations and reports the cumulative
whole-application speedup:

1. baseline application (compiled-C motion compensation, SIMD GetSad);
2. + GetSad as the two-line-buffer RFU loop kernel (the paper's Table 7);
3. + MC rewritten as a SIMD VLIW kernel (software-only optimisation,
   verified bit-exactly in :mod:`repro.kernels.mc`);
4. + MC as an RFU loop-kernel instruction (``store_words_per_row=4``).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.scenarios import loop_scenario
from repro.experiments.report import ExperimentTable, fmt, pct
from repro.experiments.workload import ExperimentContext, get_context
from repro.kernels import KernelShape
from repro.kernels.mc import McKernelLibrary
from repro.rfu.loop_model import (
    Bandwidth,
    InterpMode,
    LoopKernelModel,
    LoopKernelParams,
)


def _chosen_mode_counts(context: ExperimentContext) -> Dict[InterpMode, int]:
    counts = {mode: 0 for mode in InterpMode}
    for invocation in context.exploration.encoder_report.trace:
        if invocation.chosen:
            counts[invocation.mode] += 1
    return counts


def _mean_over_alignments(cost_fn, mode: InterpMode) -> float:
    return sum(cost_fn(alignment, mode) for alignment in range(4)) / 4.0


def run_futurework(context: Optional[ExperimentContext] = None,
                   ) -> ExperimentTable:
    context = context or get_context()
    work = context.exploration.encoder_report.work
    cost_model = context.config.cost_model
    non_me = context.non_me_cycles()
    baseline_me = context.baseline().total_cycles
    getsad_rfu = context.result(
        loop_scenario(Bandwidth.B1X32, 1.0, line_buffer_b=True)).total_cycles

    # current MC share inside the cost model (compiled C)
    mc_cost_c = work.mc_full_mbs * cost_model.mc_full_mb \
        + work.mc_halfpel_mbs * cost_model.mc_halfpel_mb

    # stage 3: the verified SIMD VLIW MC kernels, weighted by the chosen
    # motion vectors' interpolation modes
    mc_library = McKernelLibrary()
    chosen = _chosen_mode_counts(context)
    halfpel_total = sum(count for mode, count in chosen.items()
                        if mode is not InterpMode.FULL)
    mc_cost_vliw = work.mc_full_mbs * _mean_over_alignments(
        mc_library.static_cycles, InterpMode.FULL)
    if halfpel_total:
        for mode in (InterpMode.H, InterpMode.V, InterpMode.HV):
            share = chosen[mode] / halfpel_total
            mc_cost_vliw += work.mc_halfpel_mbs * share \
                * _mean_over_alignments(mc_library.static_cycles, mode)
    else:
        mc_cost_vliw += 0

    # stage 4: MC as an RFU loop kernel (loads + 4 stored words per row)
    mc_model = LoopKernelModel(LoopKernelParams(
        Bandwidth.B1X32, beta=1.0, store_words_per_row=4))
    mc_cost_rfu = work.mc_full_mbs * _mean_over_alignments(
        lambda a, m: mc_model.static_latency(a, m).total, InterpMode.FULL)
    if halfpel_total:
        for mode in (InterpMode.H, InterpMode.V, InterpMode.HV):
            share = chosen[mode] / halfpel_total
            mc_cost_rfu += work.mc_halfpel_mbs * share \
                * _mean_over_alignments(
                    lambda a, m: mc_model.static_latency(a, m).total, mode)

    stages = [
        ("baseline application", non_me, baseline_me, mc_cost_c),
        ("+ GetSad on RFU (2 line buffers)", non_me, getsad_rfu, mc_cost_c),
        ("+ MC as SIMD VLIW kernel", non_me - mc_cost_c + int(mc_cost_vliw),
         getsad_rfu, int(mc_cost_vliw)),
        ("+ MC as RFU loop kernel", non_me - mc_cost_c + int(mc_cost_rfu),
         getsad_rfu, int(mc_cost_rfu)),
    ]
    baseline_app = stages[0][1] + stages[0][2]
    table = ExperimentTable(
        experiment_id="futurework",
        title="Future work: stacking accelerations beyond GetSad",
        columns=["configuration", "MC cycles", "GetSad cycles",
                 "app cycles", "app speedup"],
        paper_reference="'future work will extend the analysis to other "
                        "parts of the application' — after Table 7 the "
                        "remaining MC stage is the next Amdahl target",
        notes="MC kernels verified bit-exactly against the half-sample "
              "interpolation golden model",
    )
    for name, other, getsad, mc in stages:
        app = other + getsad
        table.add_row(name, f"{mc:,}", f"{getsad:,}", f"{app:,}",
                      fmt(baseline_app / app))
    return table

"""Table 3: relative latency increase and speedup reduction when β 1 → 5.

Derives from the Table 2 sweep: for each RFU bandwidth it compares the
loop kernel's worst-case latency at β = 1 vs β = 5 and the corresponding
speedup loss.  The paper's key observation — reproduced exactly — is that
the latency growth is a *fixed* +12 cycles (3 compute stages → 15), so
its relative weight, and therefore the speedup reduction, grows with
bandwidth (the 2x64 case loses the most; paper −21.2 %).  Knobs swept:
bandwidth × β, over the same loop scenarios Table 2 replays.
"""

from __future__ import annotations

from typing import Optional

from repro.core.scenarios import loop_scenario
from repro.experiments.report import ExperimentTable, fmt
from repro.experiments.workload import ExperimentContext, get_context
from repro.rfu.loop_model import Bandwidth

#: the paper reports a fixed +12-cycle latency growth and a speedup
#: reduction of -21.2% in the 2x64 case
PAPER_SPEEDUP_REDUCTION_2X64 = -21.2


def run_table3(context: Optional[ExperimentContext] = None) -> ExperimentTable:
    context = context or get_context()
    baseline = context.baseline()
    table = ExperimentTable(
        experiment_id="table3",
        title="Static latency increase vs speedup reduction (b: 1 -> 5)",
        columns=["bandwidth", "Lat b=1", "Lat b=5", "%Increased Latency",
                 "%SpeedUp Reduction"],
        paper_reference="latency increase is a fixed +12 cycles, so its "
                        "relative weight (and the speedup loss) grows with "
                        "bandwidth; 2x64 loses 21.2%",
    )
    for bandwidth in (Bandwidth.B1X32, Bandwidth.B1X64, Bandwidth.B2X64):
        fast = context.result(loop_scenario(bandwidth, 1.0))
        slow = context.result(loop_scenario(bandwidth, 5.0))
        lat_fast = fast.worst_loop_latency
        lat_slow = slow.worst_loop_latency
        speedup_fast = fast.speedup_over(baseline)
        speedup_slow = slow.speedup_over(baseline)
        table.add_row(
            bandwidth.value,
            lat_fast,
            lat_slow,
            f"+{100.0 * (lat_slow - lat_fast) / lat_fast:.1f}%",
            f"{-100.0 * (speedup_fast - speedup_slow) / speedup_fast:.1f}%",
        )
    return table

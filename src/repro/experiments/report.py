"""Text rendering of reproduced tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass
class ExperimentTable:
    """One reproduced artefact: measured rows plus the paper's reference."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[List[str]] = field(default_factory=list)
    paper_reference: str = ""
    notes: str = ""

    def add_row(self, *cells) -> None:
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Sequence[str]) -> str:
            return " | ".join(cell.rjust(width)
                              for cell, width in zip(cells, widths))

        out = [f"{self.experiment_id}: {self.title}"]
        out.append(line(self.columns))
        out.append("-+-".join("-" * width for width in widths))
        out.extend(line(row) for row in self.rows)
        if self.paper_reference:
            out.append(f"paper: {self.paper_reference}")
        if self.notes:
            out.append(f"note: {self.notes}")
        return "\n".join(out)

    def cell(self, row: int, column_name: str) -> str:
        return self.rows[row][self.columns.index(column_name)]


@dataclass
class ExperimentFigure:
    """One reproduced figure, rendered as text."""

    experiment_id: str
    title: str
    lines: List[str] = field(default_factory=list)
    paper_reference: str = ""

    def add(self, line: str = "") -> None:
        self.lines.append(line)

    def render(self) -> str:
        out = [f"{self.experiment_id}: {self.title}"]
        out.extend(self.lines)
        if self.paper_reference:
            out.append(f"paper: {self.paper_reference}")
        return "\n".join(out)


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def pct(value: float, digits: int = 1) -> str:
    return f"{100.0 * value:.{digits}f}%"

"""Text rendering of reproduced artefacts and sweep provenance.

:class:`ExperimentTable` and :class:`ExperimentFigure` are the containers
every ``run_table*``/``run_figure*`` runner returns — measured rows next
to the paper's reference values, rendered to aligned plain text so the
EXPERIMENTS report diffs cleanly between runs.

The module also owns the *provenance stamp*:
:func:`render_sweep_provenance` turns a ``sweep_report.json`` dict (see
:mod:`repro.sweep.events`) into a markdown block recording when the sweep
ran, on which workload and code version, with what parallelism, and how
long each cell took (or that it was restored from cache), and
:func:`stamp_sweep_provenance` splices that block into EXPERIMENTS.md
between ``<!-- sweep:provenance -->`` markers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ExperimentTable:
    """One reproduced artefact: measured rows plus the paper's reference."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[List[str]] = field(default_factory=list)
    paper_reference: str = ""
    notes: str = ""

    def add_row(self, *cells) -> None:
        self.rows.append([str(cell) for cell in cells])

    def render(self) -> str:
        widths = [len(col) for col in self.columns]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))

        def line(cells: Sequence[str]) -> str:
            return " | ".join(cell.rjust(width)
                              for cell, width in zip(cells, widths))

        out = [f"{self.experiment_id}: {self.title}"]
        out.append(line(self.columns))
        out.append("-+-".join("-" * width for width in widths))
        out.extend(line(row) for row in self.rows)
        if self.paper_reference:
            out.append(f"paper: {self.paper_reference}")
        if self.notes:
            out.append(f"note: {self.notes}")
        return "\n".join(out)

    def cell(self, row: int, column_name: str) -> str:
        return self.rows[row][self.columns.index(column_name)]


@dataclass
class ExperimentFigure:
    """One reproduced figure, rendered as text."""

    experiment_id: str
    title: str
    lines: List[str] = field(default_factory=list)
    paper_reference: str = ""

    def add(self, line: str = "") -> None:
        self.lines.append(line)

    def render(self) -> str:
        out = [f"{self.experiment_id}: {self.title}"]
        out.extend(self.lines)
        if self.paper_reference:
            out.append(f"paper: {self.paper_reference}")
        return "\n".join(out)


def fmt(value: float, digits: int = 2) -> str:
    return f"{value:.{digits}f}"


def pct(value: float, digits: int = 1) -> str:
    return f"{100.0 * value:.{digits}f}%"


PROVENANCE_BEGIN = "<!-- sweep:provenance -->"
PROVENANCE_END = "<!-- /sweep:provenance -->"


def render_sweep_provenance(sweep_report: Dict) -> str:
    """Render a ``sweep_report.json`` dict as a markdown provenance block.

    The block records the generation timestamp, workload, code version,
    job count and per-cell timing (wall seconds, or "cache" for restored
    cells, or "FAILED"), so a stamped EXPERIMENTS.md states exactly which
    sweep produced its numbers and what that sweep cost.  Distributed
    sweeps additionally attribute each cell to the worker that executed
    it and summarise the fleet (the ``hosts`` block of
    ``sweep_timing.json``), so a number's provenance names the host it
    was measured on.
    """
    workload = sweep_report.get("workload", {})
    totals = sweep_report.get("totals", {})
    hosts = sweep_report.get("hosts") or {}
    lines = [
        "### Timing provenance",
        "",
        f"Generated {sweep_report.get('generated_at', '?')} by "
        f"`python -m repro sweep` — {workload.get('frames', '?')} frames, "
        f"seed {workload.get('seed', '?')}, code version "
        f"`{sweep_report.get('code_version', '?')}`, "
        f"jobs {sweep_report.get('jobs', '?')}: "
        f"{totals.get('cells', '?')} cells "
        f"({totals.get('cache_hits', 0)} cache hits, "
        f"{totals.get('errors', 0)} errors) in "
        f"{totals.get('wall_s', 0):.1f}s.",
        "",
    ]
    if hosts:
        fleet = ", ".join(
            f"`{worker}` ({entry.get('cells', 0)} cells)"
            for worker, entry in sorted(hosts.items()))
        lines.extend([
            f"Executed by a distributed fleet of {len(hosts)} "
            f"worker(s): {fleet}.",
            "",
            "| cell | wall s | source | worker |",
            "|---|---|---|---|",
        ])
    else:
        lines.extend([
            "| cell | wall s | source |",
            "|---|---|---|",
        ])
    for cell in sweep_report.get("cells", []):
        if cell.get("error"):
            source = "FAILED"
        elif cell.get("cached"):
            source = "cache"
        else:
            source = "executed"
        row = (f"| {cell['name']} | {cell.get('wall_s', 0):.2f} "
               f"| {source} |")
        if hosts:
            row += f" {cell.get('worker') or '-'} |"
        lines.append(row)
    return "\n".join(lines)


def stamp_sweep_provenance(text: str, sweep_report: Dict) -> str:
    """Insert/replace the provenance block of a markdown document.

    The block lives between :data:`PROVENANCE_BEGIN` and
    :data:`PROVENANCE_END`; documents without the markers get the block
    appended.  Returns the stamped text.
    """
    block = (f"{PROVENANCE_BEGIN}\n"
             f"{render_sweep_provenance(sweep_report)}\n"
             f"{PROVENANCE_END}")
    begin = text.find(PROVENANCE_BEGIN)
    end = text.find(PROVENANCE_END)
    if begin != -1 and end != -1 and end >= begin:
        return text[:begin] + block + text[end + len(PROVENANCE_END):]
    if not text.endswith("\n"):
        text += "\n"
    return text + "\n" + block + "\n"

"""Motion-compensation kernels (the paper's "future activity").

The paper ends with "future work will extend the analysis to other parts
of the application"; after GetSad, the next motion-estimation-stage
consumer of the same data path is **half-sample motion compensation** —
the same per-row load/align/interpolate structure as GetSad, but writing
the interpolated predictor row instead of folding it into a SAD.

This module builds the SIMD-optimised VLIW MC kernel per (alignment,
interpolation) shape — sharing the row helpers with the GetSad builders —
and verifies it bit-exactly against the golden
:func:`~repro.codec.interp.halfpel_predictor`.  The loop-level RFU version
is modelled with :class:`~repro.rfu.loop_model.LoopKernelModel` using
``store_words_per_row=4``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import numpy as np

from repro.codec.interp import halfpel_predictor
from repro.errors import CodecError
from repro.kernels.getsad import (
    KernelShape,
    _aligned_windows,
    _avg_words,
    _diag_words_baseline,
    _load_row_words,
    _ROUND1,
    _ROUND2,
)
from repro.machine import Core, LoadedProgram, MachineConfig, compile_kernel
from repro.memory import MemorySystem
from repro.program.builder import KernelBuilder
from repro.program.ir import Program
from repro.rfu.loop_model import InterpMode

_TEST_PLANE_SIZE = 64
_TEST_PLANE_BASE = 0x0002_0000
_TEST_DST_BASE = 0x0003_0000


def build_mc_kernel(shape: KernelShape) -> Program:
    """The baseline (SIMD subset) motion-compensation kernel for one shape.

    Parameters: predictor word base, destination base (16-byte rows, word
    aligned), plane stride.  Writes the 16x16 interpolated predictor block
    to the destination.
    """
    mode = shape.mode
    align = shape.alignment
    words = shape.words_per_row

    kb = KernelBuilder(f"mc_{shape.label}")
    pred_ptr = kb.param("pred_word_base")
    dst_ptr = kb.param("dst_base")
    stride = kb.param("stride")
    counter = kb.persistent_reg("rows")
    round_const = kb.persistent_reg("round")
    prev_aw = [kb.persistent_reg(f"prev_aw{i}") for i in range(4)] \
        if mode.needs_extra_row else []
    prev_bw = [kb.persistent_reg(f"prev_bw{i}") for i in range(4)] \
        if mode is InterpMode.HV else []

    with kb.block("prologue"):
        kb.emit("movi", dest=counter, imm=16)
        kb.emit("movi", dest=round_const,
                imm=_ROUND2 if mode is InterpMode.HV else _ROUND1)
        if mode.needs_extra_row:
            first = _load_row_words(kb, pred_ptr, words)
            for reg, window in zip(prev_aw, _aligned_windows(kb, first, align)):
                kb.emit("mov", window, dest=reg)
            if prev_bw:
                for reg, window in zip(prev_bw,
                                       _aligned_windows(kb, first, align + 1)):
                    kb.emit("mov", window, dest=reg)
            kb.emit("add", pred_ptr, stride, dest=pred_ptr)

    with kb.counted_loop("row_loop", counter):
        row_words = _load_row_words(kb, pred_ptr, words)
        if mode is InterpMode.FULL:
            pred = _aligned_windows(kb, row_words, align)
        elif mode is InterpMode.H:
            top = _aligned_windows(kb, row_words, align)
            shifted = _aligned_windows(kb, row_words, align + 1)
            pred = [_avg_words(kb, a, b, round_const)
                    for a, b in zip(top, shifted)]
        elif mode is InterpMode.V:
            new_aw = _aligned_windows(kb, row_words, align)
            pred = [_avg_words(kb, prev, new, round_const)
                    for prev, new in zip(prev_aw, new_aw)]
            for reg, window in zip(prev_aw, new_aw):
                kb.emit("mov", window, dest=reg)
        else:
            new_aw = _aligned_windows(kb, row_words, align)
            new_bw = _aligned_windows(kb, row_words, align + 1)
            pred = [_diag_words_baseline(kb, taw, tbw, baw, bbw, round_const)
                    for taw, tbw, baw, bbw
                    in zip(prev_aw, prev_bw, new_aw, new_bw)]
            for reg, window in zip(prev_aw, new_aw):
                kb.emit("mov", window, dest=reg)
            for reg, window in zip(prev_bw, new_bw):
                kb.emit("mov", window, dest=reg)
        for group, word in enumerate(pred):
            kb.emit("stw", word, dst_ptr, imm=4 * group, mem_tag="dst")
        kb.emit("add", pred_ptr, stride, dest=pred_ptr)
        kb.emit("addi", dst_ptr, dest=dst_ptr, imm=16)

    # MC produces memory side effects only; return the final dst pointer so
    # the kernel has an observable register result too
    kb.set_result(dst_ptr)
    return kb.finish()


@dataclass(frozen=True)
class McShapeTiming:
    """Measured static behaviour of one compiled MC kernel shape."""

    cycles: int
    ops: int


class McKernelLibrary:
    """Compiles, verifies and times the baseline MC kernels."""

    def __init__(self, sched_mode: str = "paper"):
        self.config = MachineConfig().with_sched_mode(sched_mode)
        self._loaded: Dict[KernelShape, LoadedProgram] = {}
        self._timing: Dict[KernelShape, McShapeTiming] = {}

    def loaded(self, shape: KernelShape) -> LoadedProgram:
        if shape not in self._loaded:
            self._loaded[shape] = compile_kernel(build_mc_kernel(shape),
                                                 config=self.config)
        return self._loaded[shape]

    def _measure(self, shape: KernelShape) -> McShapeTiming:
        rng = np.random.default_rng(42)
        plane = rng.integers(0, 256, (_TEST_PLANE_SIZE, _TEST_PLANE_SIZE),
                             dtype=np.uint8)
        memory = MemorySystem()
        memory.main.write_block(_TEST_PLANE_BASE, plane)
        pred_y = 7
        pred_x = 4 + shape.alignment
        pred_addr = _TEST_PLANE_BASE + pred_y * _TEST_PLANE_SIZE + pred_x
        args = [pred_addr - shape.alignment, _TEST_DST_BASE, _TEST_PLANE_SIZE]
        loaded = self.loaded(shape)
        core = Core(memory, config=self.config)
        core.run(loaded, args)
        measured = core.run(loaded, args)

        expected = halfpel_predictor(
            plane, pred_x, pred_y,
            1 if shape.mode.needs_extra_column else 0,
            1 if shape.mode.needs_extra_row else 0)
        produced = memory.main.read_block(_TEST_DST_BASE, 256) \
            .reshape(16, 16)
        if not np.array_equal(produced, expected):
            raise CodecError(
                f"MC kernel {shape.label}: output diverged from the golden "
                f"interpolation")
        return McShapeTiming(cycles=measured.cycles, ops=measured.ops)

    def timing(self, shape: KernelShape) -> McShapeTiming:
        if shape not in self._timing:
            self._timing[shape] = self._measure(shape)
        return self._timing[shape]

    def static_cycles(self, alignment: int, mode: InterpMode) -> int:
        return self.timing(KernelShape(alignment, mode)).cycles

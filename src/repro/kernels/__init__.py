"""GetSad() kernels for the ST200+RFU, one specialised program per shape.

A *shape* is the pair (predictor alignment 0..3, interpolation mode); the
reference C code branches on it once per call, so each shape executes a
distinct straight-line row body — exactly the situation where building one
specialised kernel per shape mirrors what the trace-scheduling compiler
sees.  Variants:

* ``orig`` — the paper's optimised baseline using the basic SIMD subset
  (absd4/sad4/add2/unpk/pack, but no single-cycle average);
* ``a1``  — diagonal interpolation via the A1 RFU instruction pair
  (stash-and-combine rounded averages), up to 4 RFU ops/cycle;
* ``a2``  — diagonal interpolation via the DIAG4 configuration (RFUSEND of
  raw words + one EXEC per 4-pixel group);
* ``a3``  — row-level DIAG16 configuration (two SENDs + four chained EXECs
  per row).

All variants share the baseline's FULL/H/V row bodies: the paper's A
scenarios modify only the diagonal interpolation.
"""

from repro.kernels.getsad import (
    VARIANTS,
    KernelShape,
    build_getsad_kernel,
    kernel_rfu_issue_width,
)
from repro.kernels.library import KernelLibrary, ShapeTiming

__all__ = [
    "KernelLibrary",
    "KernelShape",
    "ShapeTiming",
    "VARIANTS",
    "build_getsad_kernel",
    "kernel_rfu_issue_width",
]

"""Builders for the GetSad VLIW kernels (Listing 1, per shape and variant).

Every kernel takes three parameters — the word-aligned address of the
predictor's first row, the (word-aligned) address of the reference
macroblock, and the plane stride — and returns the 16x16 SAD in its result
register.  The predictor's byte alignment (0..3) and the interpolation mode
are compile-time shape parameters, as they are in the specialised paths of
the reference code.

Row structure for interpolating modes follows Listing 1: the first
predictor row is read in the prologue; each loop iteration reads the next
row, interpolates against the carried previous row, reads the reference
row, and accumulates the SAD.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import CodecError
from repro.isa.registers import VirtualRegister
from repro.program.builder import KernelBuilder
from repro.program.ir import Program
from repro.rfu import custom_ops
from repro.rfu.loop_model import InterpMode, predictor_geometry

VARIANTS = ("orig", "a1", "a2", "a3")

#: RFU issue capacity assumed per variant (paper: A1 "up to 4 instructions
#: per cycle"; the wider configurations are single-issue).
_RFU_ISSUE = {"orig": 1, "a1": 4, "a2": 1, "a3": 1}

_ROUND1 = 0x0001_0001   # +1 per 16-bit lane (half-sample rounding)
_ROUND2 = 0x0002_0002   # +2 per 16-bit lane (diagonal rounding)


@dataclass(frozen=True)
class KernelShape:
    """Compile-time specialisation of one GetSad kernel."""

    alignment: int
    mode: InterpMode

    def __post_init__(self):
        if not 0 <= self.alignment <= 3:
            raise CodecError(f"alignment must be 0..3, got {self.alignment}")

    @property
    def words_per_row(self) -> int:
        return predictor_geometry(self.alignment, self.mode)[1]

    @property
    def label(self) -> str:
        return f"align{self.alignment}_{self.mode.name.lower()}"


def kernel_rfu_issue_width(variant: str) -> int:
    """RFU slots per cycle the scheduler should assume for this variant."""
    try:
        return _RFU_ISSUE[variant]
    except KeyError:
        raise CodecError(f"unknown kernel variant {variant!r}") from None


# --------------------------------------------------------------------------
# row-body helpers (operate inside the current block of ``kb``)
# --------------------------------------------------------------------------

def _load_row_words(kb: KernelBuilder, ptr, count: int) -> List:
    """Load ``count`` consecutive predictor words; independent of stores."""
    return [kb.emit("ldw", ptr, imm=4 * offset, mem_tag=f"pred{offset}")
            for offset in range(count)]


def _aligned_windows(kb: KernelBuilder, words: Sequence, byte_shift: int,
                     count: int = 4) -> List:
    """``count`` 32-bit pixel windows at ``byte_shift`` within the row."""
    if byte_shift == 0:
        return list(words[:count])
    if byte_shift == 4:
        return list(words[1:count + 1])
    return [kb.align_window(words[i], words[i + 1], byte_shift)
            for i in range(count)]


def _avg_words(kb: KernelBuilder, a, b, round_const):
    """Bit-exact (a + b + 1) >> 1 per byte lane with the basic SIMD subset.

    Widens to 16-bit lanes (unpk), adds, rounds, shifts and repacks; the
    pack4 truncation makes the cross-lane shift bleed harmless.
    """
    low = kb.emit("add2", kb.emit("unpkl2", a), kb.emit("unpkl2", b))
    low = kb.emit("shri", kb.emit("add2", low, round_const), imm=1)
    high = kb.emit("add2", kb.emit("unpkh2", a), kb.emit("unpkh2", b))
    high = kb.emit("shri", kb.emit("add2", high, round_const), imm=1)
    return kb.emit("pack4", low, high)


def _diag_words_baseline(kb: KernelBuilder, taw, tbw, baw, bbw, round_const):
    """Bit-exact (t0 + t1 + b0 + b1 + 2) >> 2 per byte lane, baseline ISA."""
    low = kb.emit("add2", kb.emit("unpkl2", taw), kb.emit("unpkl2", tbw))
    low = kb.emit("add2", low, kb.emit("unpkl2", baw))
    low = kb.emit("add2", low, kb.emit("unpkl2", bbw))
    low = kb.emit("shri", kb.emit("add2", low, round_const), imm=2)
    high = kb.emit("add2", kb.emit("unpkh2", taw), kb.emit("unpkh2", tbw))
    high = kb.emit("add2", high, kb.emit("unpkh2", baw))
    high = kb.emit("add2", high, kb.emit("unpkh2", bbw))
    high = kb.emit("shri", kb.emit("add2", high, round_const), imm=2)
    return kb.emit("pack4", low, high)


def _sad_row(kb: KernelBuilder, ref_ptr, pred_words: Sequence, acc):
    """Reference-row loads + SAD accumulation into ``acc``."""
    partials = []
    for group in range(4):
        cur = kb.emit("ldw", ref_ptr, imm=4 * group, mem_tag=f"ref{group}")
        partials.append(kb.emit("sad4", cur, pred_words[group]))
    total = kb.emit("add", partials[0], partials[1])
    total = kb.emit("add", total, kb.emit("add", partials[2], partials[3]))
    kb.emit("add", acc, total, dest=acc)


# --------------------------------------------------------------------------
# the kernel builder
# --------------------------------------------------------------------------

def build_getsad_kernel(variant: str, shape: KernelShape) -> Program:
    """Build the GetSad program for one (variant, shape) pair."""
    if variant not in VARIANTS:
        raise CodecError(f"unknown kernel variant {variant!r}")
    mode = shape.mode
    align = shape.alignment
    words = shape.words_per_row
    diag_variant = variant if mode is InterpMode.HV else "orig"

    kb = KernelBuilder(f"getsad_{variant}_{shape.label}")
    pred_ptr = kb.param("pred_word_base")
    ref_ptr = kb.param("ref_base")
    stride = kb.param("stride")
    acc = kb.persistent_reg("acc")
    counter = kb.persistent_reg("rows")
    round_const = kb.persistent_reg("round")
    prev_aw = [kb.persistent_reg(f"prev_aw{i}") for i in range(4)] \
        if mode in (InterpMode.V, InterpMode.HV) and diag_variant in ("orig", "a1") \
        else []
    prev_bw = [kb.persistent_reg(f"prev_bw{i}") for i in range(4)] \
        if mode is InterpMode.HV and diag_variant in ("orig", "a1") else []
    prev_raw = [kb.persistent_reg(f"prev_w{i}") for i in range(words)] \
        if mode is InterpMode.HV and diag_variant in ("a2", "a3") else []

    with kb.block("prologue"):
        kb.emit("movi", dest=counter, imm=16)
        kb.emit("movi", dest=acc, imm=0)
        kb.emit("movi", dest=round_const,
                imm=_ROUND2 if mode is InterpMode.HV else _ROUND1)
        if diag_variant == "a2":
            kb.emit("rfuinit", kb.const(align), imm=custom_ops.DIAG4)
        elif diag_variant == "a3":
            kb.emit("rfuinit", kb.const(align), imm=custom_ops.DIAG16)
        if mode.needs_extra_row:
            first = _load_row_words(kb, pred_ptr, words)
            if prev_raw:
                for reg, word in zip(prev_raw, first):
                    kb.emit("mov", word, dest=reg)
            else:
                for reg, window in zip(prev_aw,
                                       _aligned_windows(kb, first, align)):
                    kb.emit("mov", window, dest=reg)
                if prev_bw:
                    for reg, window in zip(
                            prev_bw, _aligned_windows(kb, first, align + 1)):
                        kb.emit("mov", window, dest=reg)
            kb.emit("add", pred_ptr, stride, dest=pred_ptr)

    with kb.counted_loop("row_loop", counter):
        row_words = _load_row_words(kb, pred_ptr, words)
        if mode is InterpMode.FULL:
            pred = _aligned_windows(kb, row_words, align)
        elif mode is InterpMode.H:
            top = _aligned_windows(kb, row_words, align)
            shifted = _aligned_windows(kb, row_words, align + 1)
            pred = [_avg_words(kb, a, b, round_const)
                    for a, b in zip(top, shifted)]
        elif mode is InterpMode.V:
            new_aw = _aligned_windows(kb, row_words, align)
            pred = [_avg_words(kb, prev, new, round_const)
                    for prev, new in zip(prev_aw, new_aw)]
            for reg, window in zip(prev_aw, new_aw):
                kb.emit("mov", window, dest=reg)
        else:
            pred = _diag_row(kb, diag_variant, row_words, align, round_const,
                             prev_aw, prev_bw, prev_raw)
        _sad_row(kb, ref_ptr, pred, acc)
        kb.emit("add", pred_ptr, stride, dest=pred_ptr)
        kb.emit("add", ref_ptr, stride, dest=ref_ptr)

    kb.set_result(acc)
    return kb.finish()


def _diag_row(kb: KernelBuilder, diag_variant: str, row_words: Sequence,
              align: int, round_const, prev_aw, prev_bw, prev_raw) -> List:
    """One diagonal-interpolation row body; returns the 4 predictor words."""
    if diag_variant in ("orig", "a1"):
        new_aw = _aligned_windows(kb, row_words, align)
        new_bw = _aligned_windows(kb, row_words, align + 1)
        pred = []
        for taw, tbw, baw, bbw in zip(prev_aw, prev_bw, new_aw, new_bw):
            if diag_variant == "orig":
                pred.append(_diag_words_baseline(kb, taw, tbw, baw, bbw,
                                                 round_const))
            else:
                h_top = kb.emit("rfuexec", taw, tbw, imm=custom_ops.A1_HAVG)
                h_bottom = kb.emit("rfuexec", baw, bbw, imm=custom_ops.A1_HAVG)
                pred.append(kb.emit("rfuexec", h_top, h_bottom,
                                    imm=custom_ops.A1_COMBINE))
        for reg, window in zip(prev_aw, new_aw):
            kb.emit("mov", window, dest=reg)
        for reg, window in zip(prev_bw, new_bw):
            kb.emit("mov", window, dest=reg)
        return pred
    if diag_variant == "a2":
        pred = []
        for group in range(4):
            kb.emit("rfusend", prev_raw[group], prev_raw[group + 1],
                    row_words[group], row_words[group + 1],
                    imm=custom_ops.DIAG4)
            pred.append(kb.emit("rfuexec", imm=custom_ops.DIAG4))
        for reg, word in zip(prev_raw, row_words):
            kb.emit("mov", word, dest=reg)
        return pred
    # a3: two sends of five words each, then four chained drains
    kb.emit("rfusend", *prev_raw[:5], imm=custom_ops.DIAG16)
    kb.emit("rfusend", *row_words[:5], imm=custom_ops.DIAG16)
    pred = [kb.emit("rfuexec", imm=custom_ops.DIAG16) for _ in range(4)]
    for reg, word in zip(prev_raw, row_words):
        kb.emit("mov", word, dest=reg)
    return pred

"""An 8x8 integer DCT kernel for the VLIW — grounding the cost model.

The non-ME cycle cost model charges 1800 cycles per 8x8 DCT of *compiled
reference C* (IPC ~1).  To anchor that constant, this module builds the
same transform as a hand-scheduled VLIW kernel — two matrix-multiply
passes with 8.8 fixed-point cosine constants — measures it on the
cycle-level core, and verifies the output against the float reference DCT
within fixed-point tolerance.  The measured kernel runs in roughly half
the model's compiled-C budget, which is the expected gap between scheduled
VLIW code (ILP ~3) and pointer-chasing C (IPC ~1): the cost-model constant
is conservative but the right order of magnitude.

Data layout: one 32-bit word per sample (sign-extended), row-major; the
kernel reads 64 input words, writes 64 temp words after the row pass, and
64 coefficient words (8.8-scaled rounding applied per pass) after the
column pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.codec.dct import _DCT, forward_dct
from repro.errors import CodecError
from repro.machine import Core, LoadedProgram, MachineConfig, compile_kernel
from repro.memory import MemorySystem
from repro.program.builder import KernelBuilder
from repro.program.ir import Program

#: fixed-point scale of the cosine matrix (8.8)
SCALE_BITS = 8
_MATRIX_FIX = np.rint(_DCT * (1 << SCALE_BITS)).astype(np.int64)

_IN_BASE = 0x0004_0000
_TMP_BASE = 0x0004_4000
_OUT_BASE = 0x0004_8000


def _emit_1d_pass(kb: KernelBuilder, label: str, src_base, dst_base,
                  vector_stride: int, element_stride: int) -> None:
    """One 1-D DCT pass as a counted loop over the 8 vectors.

    ``vector_stride``/``element_stride`` select row-wise or column-wise
    traversal (bytes).
    """
    counter = kb.persistent_reg(f"{label}_count")
    src = kb.persistent_reg(f"{label}_src")
    dst = kb.persistent_reg(f"{label}_dst")
    with kb.block(f"{label}_init"):
        kb.emit("movi", dest=counter, imm=8)
        kb.emit("mov", src_base, dest=src)
        kb.emit("mov", dst_base, dest=dst)
    with kb.counted_loop(f"{label}_loop", counter):
        samples = [kb.emit("ldw", src, imm=element_stride * k,
                           mem_tag=f"{label}_in")
                   for k in range(8)]
        for j in range(8):
            total = None
            for k in range(8):
                coefficient = kb.const(int(_MATRIX_FIX[j, k]) & 0xFFFF)
                product = kb.emit("mul", coefficient, samples[k])
                total = product if total is None \
                    else kb.emit("add", total, product)
            rounded = kb.emit("addi", total, imm=1 << (SCALE_BITS - 1))
            scaled = kb.emit("sra", rounded, kb.const(SCALE_BITS))
            kb.emit("stw", scaled, dst, imm=element_stride * j,
                    mem_tag=f"{label}_out")
        kb.emit("addi", src, dest=src, imm=vector_stride)
        kb.emit("addi", dst, dest=dst, imm=vector_stride)


def build_dct_kernel() -> Program:
    """The two-pass 8x8 integer DCT program.

    Parameters: input base, temp base, output base (word arrays).
    """
    kb = KernelBuilder("dct8x8")
    in_base = kb.param("in_base")
    tmp_base = kb.param("tmp_base")
    out_base = kb.param("out_base")
    # row pass: vectors are rows (stride 32 bytes), elements 4 bytes apart
    _emit_1d_pass(kb, "rows", in_base, tmp_base, 32, 4)
    # column pass: vectors are columns (stride 4), elements 32 bytes apart
    _emit_1d_pass(kb, "cols", tmp_base, out_base, 4, 32)
    kb.set_result(out_base)
    return kb.finish()


@dataclass(frozen=True)
class DctKernelTiming:
    cycles: int
    ops: int
    max_error: float


def measure_dct_kernel(seed: int = 3,
                       sched_mode: str = "paper") -> DctKernelTiming:
    """Compile, run and verify the DCT kernel on a random residual block."""
    rng = np.random.default_rng(seed)
    block = rng.integers(-255, 256, (8, 8)).astype(np.float64)
    memory = MemorySystem()
    for index, value in enumerate(block.astype(np.int64).ravel()):
        memory.main.store_word(_IN_BASE + 4 * index, int(value) & 0xFFFFFFFF)

    config = MachineConfig().with_sched_mode(sched_mode)
    loaded = compile_kernel(build_dct_kernel(), config=config)
    core = Core(memory, config=config)
    args = [_IN_BASE, _TMP_BASE, _OUT_BASE]
    core.run(loaded, args)           # warm caches
    measured = core.run(loaded, args)

    produced = np.empty((8, 8), dtype=np.float64)
    for index in range(64):
        raw = memory.main.load_word(_OUT_BASE + 4 * index)
        produced[index // 8, index % 8] = raw - (1 << 32) \
            if raw & 0x80000000 else raw
    reference = forward_dct(block)
    max_error = float(np.abs(produced - reference).max())
    if max_error > 4.0:
        raise CodecError(
            f"integer DCT diverged from the float reference by {max_error}")
    return DctKernelTiming(cycles=measured.cycles, ops=measured.ops,
                           max_error=max_error)

"""Compiled-kernel cache: per (variant, shape) static timing + verification.

For every shape the library compiles the kernel, executes it twice on the
cycle-level core against a deterministic random test plane — the first run
warms the caches, the second measures the *static* execution time (schedule
plus any residual interlocks, no cache stalls) — and checks the SAD against
the golden model bit-exactly.  The trace replay then charges each GetSad
invocation its shape's static cycles and models cache stalls separately.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro.codec.sad import getsad
from repro.errors import CodecError
from repro.kernels.getsad import (
    KernelShape,
    VARIANTS,
    build_getsad_kernel,
    kernel_rfu_issue_width,
)
from repro.machine import Core, LoadedProgram, MachineConfig, compile_kernel
from repro.memory import MemorySystem
from repro.rfu import RfuUnit, standard_registry
from repro.rfu.loop_model import InterpMode

_TEST_PLANE_SIZE = 64
_TEST_PLANE_BASE = 0x0002_0000
_TEST_STRIDE = _TEST_PLANE_SIZE

#: process-wide measured timings, keyed (variant, beta, sched_mode,
#: shape).  The measurement is deterministic — fresh memory system, fixed
#: rng seed — so every KernelLibrary instance of the same configuration
#: would measure identical numbers; sharing them means a fresh
#: TraceReplayer (e.g. each side of the replay benchmark) skips
#: recompilation.
_SHARED_TIMINGS: Dict[Tuple[str, float, str, "KernelShape"],
                      "ShapeTiming"] = {}


@dataclass(frozen=True)
class ShapeTiming:
    """Measured static behaviour of one compiled kernel shape."""

    cycles: int          # warm-cache execution cycles of one call
    ops: int             # operations executed
    bundles: int         # bundles executed
    verified_sad: int    # SAD produced (matches the golden model)


def _test_environment() -> Tuple[MemorySystem, np.ndarray]:
    """A memory system holding a deterministic random test plane."""
    rng = np.random.default_rng(42)
    plane = rng.integers(0, 256, (_TEST_PLANE_SIZE, _TEST_PLANE_SIZE),
                         dtype=np.uint8)
    memory = MemorySystem()
    memory.main.write_block(_TEST_PLANE_BASE, plane)
    return memory, plane


class KernelLibrary:
    """Lazily compiles, verifies and times GetSad kernels for one variant."""

    def __init__(self, variant: str, beta: float = 1.0,
                 sched_mode: str = "paper"):
        if variant not in VARIANTS:
            raise CodecError(f"unknown kernel variant {variant!r}")
        self.variant = variant
        self.beta = beta
        self.sched_mode = sched_mode
        self.config = MachineConfig().with_rfu_issue(
            kernel_rfu_issue_width(variant)).with_sched_mode(sched_mode)
        self._loaded: Dict[KernelShape, LoadedProgram] = {}
        self._timing: Dict[KernelShape, ShapeTiming] = {}

    def _make_rfu(self) -> RfuUnit:
        return RfuUnit(standard_registry(), beta=self.beta)

    def loaded(self, shape: KernelShape) -> LoadedProgram:
        if shape not in self._loaded:
            program = build_getsad_kernel(self.variant, shape)
            self._loaded[shape] = compile_kernel(
                program, self._make_rfu(), self.config)
        return self._loaded[shape]

    # -- measurement -----------------------------------------------------------
    def _measure(self, shape: KernelShape) -> ShapeTiming:
        memory, plane = _test_environment()
        loaded = self.loaded(shape)
        # choose a predictor location with the requested byte alignment
        pred_y = 7
        pred_x = 4 + shape.alignment
        mb_x, mb_y = 32, 32
        pred_addr = _TEST_PLANE_BASE + pred_y * _TEST_STRIDE + pred_x
        if pred_addr % 4 != shape.alignment:
            raise CodecError("test plane base broke the alignment assumption")
        ref_addr = _TEST_PLANE_BASE + mb_y * _TEST_STRIDE + mb_x
        args = [pred_addr - shape.alignment, ref_addr, _TEST_STRIDE]

        expected = getsad(
            plane, plane, mb_x, mb_y, pred_x, pred_y,
            1 if shape.mode.needs_extra_column else 0,
            1 if shape.mode.needs_extra_row else 0)

        rfu = self._make_rfu()
        core = Core(memory, rfu, self.config)
        warmup = core.run(loaded, args)
        if warmup.result != expected:
            raise CodecError(
                f"{self.variant}/{shape.label}: kernel SAD {warmup.result} "
                f"!= golden {expected}")
        measured = core.run(loaded, args)
        if measured.result != expected:
            raise CodecError(
                f"{self.variant}/{shape.label}: warm rerun diverged")
        return ShapeTiming(cycles=measured.cycles, ops=measured.ops,
                           bundles=measured.bundles,
                           verified_sad=measured.result)

    def timing(self, shape: KernelShape) -> ShapeTiming:
        if shape not in self._timing:
            shared_key = (self.variant, self.beta, self.sched_mode, shape)
            if shared_key not in _SHARED_TIMINGS:
                _SHARED_TIMINGS[shared_key] = self._measure(shape)
            self._timing[shape] = _SHARED_TIMINGS[shared_key]
        return self._timing[shape]

    def static_cycles(self, alignment: int, mode: InterpMode) -> int:
        return self.timing(KernelShape(alignment, mode)).cycles

    def all_shapes(self) -> Dict[KernelShape, ShapeTiming]:
        """Compile and time every (alignment, mode) shape."""
        for alignment in range(4):
            for mode in InterpMode:
                self.timing(KernelShape(alignment, mode))
        return dict(self._timing)

"""Structured exception taxonomy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
Each class carries a stable machine-readable ``code`` and an actionable
``hint`` (what the operator should do about it); :meth:`ReproError.describe`
formats both, and the sweep's structured run-log events embed the codes so
a log consumer can classify failures without parsing prose.

The resilience layer (:mod:`repro.sweep`, :mod:`repro.faults`,
``--verify-replay``) routes its recovery events through the dedicated
subclasses below — :class:`SweepWorkerDied`, :class:`CellTimeout`,
:class:`CacheCorrupt`, :class:`ReplayDivergence` et al. — rather than
generic exceptions, so every failure mode has exactly one code.
:class:`TransientCellError` is the retry marker: a cell failing with it
(or a timeout, or a worker death) is retried with backoff; anything else
is treated as deterministic and fails fast.
"""

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    ``code`` is a stable machine-readable identifier (``REPRO-...``) and
    ``hint`` a one-line actionable suggestion; both are class attributes
    so run-log events can reference them without an instance.
    """

    code: str = "REPRO-E000"
    hint: str = "see the traceback; this is a generic library failure"

    def describe(self) -> str:
        """``[CODE] message (hint: ...)`` — the structured rendering."""
        message = super().__str__()
        return f"[{self.code}] {message} (hint: {self.hint})"


class IsaError(ReproError):
    """An instruction was malformed or used an unknown opcode/register."""

    code = "REPRO-ISA-001"
    hint = "check the kernel assembly against repro.isa.opcodes"


class ScheduleError(ReproError):
    """The VLIW scheduler could not produce a legal schedule."""

    code = "REPRO-SCHED-001"
    hint = "the kernel exceeds issue-slot or latency constraints"


class RegisterAllocationError(ReproError):
    """The register allocator ran out of physical registers."""

    code = "REPRO-REGALLOC-001"
    hint = "reduce live ranges or spill; the ISA has a fixed register file"


class MachineError(ReproError):
    """The cycle-level machine hit an illegal state (bad PC, bad operand...)."""

    code = "REPRO-MACHINE-001"
    hint = "the scheduled kernel executed outside its legal state space"


class MemoryError_(ReproError):
    """An access fell outside main memory or violated alignment rules."""

    code = "REPRO-MEMORY-001"
    hint = "check plane allocation and access alignment"


class RfuError(ReproError):
    """Illegal RFU usage: unknown configuration, bad operand count..."""

    code = "REPRO-RFU-001"
    hint = "check the configuration registry and operand arity"


class CodecError(ReproError):
    """The video codec substrate was misused (bad frame sizes, bad QP...)."""

    code = "REPRO-CODEC-001"
    hint = "frame dimensions must be macroblock-aligned and QP in range"


# -- decode taxonomy ----------------------------------------------------------
#
# Raised by the bitstream reader, the syntax parsers and the decoders.  The
# robust decode path (`repro.codec.decoder.RobustDecoder`) catches exactly
# these classes — anything else escaping a decode is a genuine bug, which is
# what the fuzz harness (`python -m repro fuzz-decode`) asserts.  Each error
# message carries the bit offset at which the stream stopped making sense,
# and each event recorded in a `DecodeHealth` report references the code.

class DecodeError(CodecError):
    """Base class for structured bitstream-decode failures."""

    code = "REPRO-DEC-000"
    hint = ("the stream is corrupt or truncated; decode with robust=True "
            "to conceal instead of failing")


class BitstreamExhausted(DecodeError):
    """A read ran past the end of the payload (truncation signature)."""

    code = "REPRO-DEC-EXHAUSTED"
    hint = ("the payload ends mid-field — classic truncation; the robust "
            "decoder conceals every macroblock after the cut")


class ExpGolombCorrupt(DecodeError):
    """An exp-Golomb zero-prefix cannot terminate inside the payload."""

    code = "REPRO-DEC-EXPGOLOMB"
    hint = ("a run of zero bits longer than any code the remaining payload "
            "could hold — bit corruption upstream of this offset")


class StreamSyntaxError(DecodeError):
    """A structural stream element (magic, marker, header, block layout)
    did not parse."""

    code = "REPRO-DEC-SYNTAX"
    hint = "the stream violates the coded-sequence grammar at this offset"


class FieldRangeError(DecodeError):
    """A decoded field is outside its legal range for the frame geometry
    (dimensions, QP, MB index, motion vector, level magnitude, run)."""

    code = "REPRO-DEC-RANGE"
    hint = ("the field decoded fine but its value is geometrically "
            "impossible — corruption that exp-Golomb framing cannot catch")


class ChecksumMismatch(DecodeError):
    """A frame payload or header failed its embedded checksum."""

    code = "REPRO-DEC-CHECKSUM"
    hint = ("the payload parses but its bits changed in flight; robust "
            "mode records the event and keeps the decoded data")


class ResyncLost(DecodeError):
    """No further valid resync marker exists in the remaining payload."""

    code = "REPRO-DEC-RESYNC"
    hint = ("concealment scanned to end of stream without re-entering; "
            "every remaining macroblock is concealed")


class ReferenceMissing(DecodeError):
    """An inter macroblock appeared where no reference frame exists."""

    code = "REPRO-DEC-NOREF"
    hint = ("the first (or an intra-refresh) frame cannot carry inter "
            "macroblocks — mode bits were likely corrupted")


class ExperimentError(ReproError):
    """An experiment was configured inconsistently."""

    code = "REPRO-EXP-001"
    hint = "check cell names, scenario names and workload knobs"


# -- serving taxonomy ---------------------------------------------------------
#
# Raised by the concurrent streaming codec service (:mod:`repro.serve`).
# Every client-visible failure of the session API — in-process or over the
# TCP/JSON-lines transport — is one of these classes, so a client can
# branch on the stable code instead of parsing prose.  Transport responses
# carry the code verbatim in their ``code`` field.

class ServiceError(ReproError):
    """Base class for the streaming codec service's failure modes."""

    code = "REPRO-SRV-000"
    hint = "see the service stats and the stream's health report"


class StreamUnknown(ServiceError):
    """A request referenced a stream id the service does not know.

    Either the id was never opened, or the stream was closed/aborted and
    its state released (ids are never reused within one service).
    """

    code = "REPRO-SRV-UNKNOWN"
    hint = ("the stream id was never opened or is already closed; open a "
            "new stream and keep its id")


class StreamClosed(ServiceError):
    """A segment was submitted to a stream that is closing or closed."""

    code = "REPRO-SRV-CLOSED"
    hint = ("close_stream was already called (or the stream was aborted "
            "after a disconnect); open a new stream to submit more")


class BackpressureReject(ServiceError):
    """A submit was shed because the stream's bounded queue is full.

    ``pending`` (submitted minus collected segments) reached the
    service's ``max_pending``.  This is load shedding, not failure: the
    segment was **not** enqueued, and the client should collect finished
    results (or back off) and resubmit the same segment.
    """

    code = "REPRO-SRV-BACKPRESSURE"
    hint = ("collect() finished segments to drain the queue, then "
            "resubmit; raise --max-pending only with the memory to back it")


class SegmentFailed(ServiceError):
    """A segment failed in its worker after exhausting transient retries.

    The stream itself stays open (later segments of other streams are
    unaffected — failures never take down the pool), but an encode
    stream's bitstream is no longer continuable, so the client should
    abort it.
    """

    code = "REPRO-SRV-SEGMENT"
    hint = ("the worker-side traceback is in the result's error field; "
            "abort the stream — its encoder state is past the failure")


class ServiceProtocolError(ServiceError):
    """A transport request was malformed (bad JSON, unknown op, missing
    field, oversized line)."""

    code = "REPRO-SRV-PROTOCOL"
    hint = ("requests are one JSON object per line with an 'op' field; "
            "see docs/SERVING.md for the request grammar")


class ServiceUnavailable(ServiceError):
    """The service (or the worker owning this stream) is shut down."""

    code = "REPRO-SRV-UNAVAILABLE"
    hint = ("the service is shutting down or a worker process died; "
            "reconnect/reopen streams against a fresh service")


class ServiceAuthError(ServiceError):
    """A transport connection failed the shared-secret handshake.

    The server is running with ``--auth-token`` (or ``REPRO_AUTH_TOKEN``)
    and the connection either skipped the challenge–response handshake or
    presented a proof computed with a different token.  Rejected with this
    structured code — never a silent drop — so a misconfigured client can
    tell auth failure apart from a network problem.
    """

    code = "REPRO-SRV-AUTH"
    hint = ("client and server must share the same --auth-token / "
            "REPRO_AUTH_TOKEN secret; the client must authenticate before "
            "any other request")


# -- resilience taxonomy ------------------------------------------------------
#
# Raised (or referenced by code) by the fault-tolerant sweep layer.  Each
# maps one-to-one onto a structured run-log event, so operators can grep a
# JSONL run log by code.

class ResilienceError(ReproError):
    """Base class for the sweep resilience layer's failure modes."""

    code = "REPRO-RES-000"
    hint = "see the sweep run log for the recovery event stream"


class SweepWorkerDied(ResilienceError):
    """A sweep worker process died mid-cell (OOM kill, SIGKILL, crash).

    The orchestrator responds by respawning the pool and requeueing the
    in-flight cells (``pool_respawn`` event); after
    ``ResiliencePolicy.max_pool_deaths`` consecutive deaths it degrades to
    serial in-process execution (``degraded_serial`` event).
    """

    code = "REPRO-RES-WORKER-DIED"
    hint = ("a worker was killed mid-cell; the pool was respawned — check "
            "memory limits if this recurs, or run with --jobs 1")


class CellTimeout(ResilienceError):
    """A cell exceeded its per-cell wall-clock budget (``--cell-timeout``).

    Raised inside the worker by a SIGALRM deadline so the worker itself
    survives; the cell is retried up to the retry budget (a genuinely
    slow cell will time out again and surface as an error section).
    """

    code = "REPRO-RES-TIMEOUT"
    hint = ("raise --cell-timeout or investigate the cell; deterministic "
            "workloads that time out once usually time out every attempt")


class TransientCellError(ResilienceError):
    """A cell failed in a way the caller declared retryable.

    Raise this (or a subclass) from experiment code to opt a failure into
    the sweep's bounded retry-with-backoff; any other exception is treated
    as deterministic and fails the cell on first occurrence.
    """

    code = "REPRO-RES-TRANSIENT"
    hint = "retried automatically with exponential backoff"


class CacheCorrupt(ResilienceError):
    """A sweep cache entry failed its checksum or could not be decoded.

    Never treated as a silent miss: the entry is quarantined (renamed into
    ``quarantine/``) and a ``cache_corrupt`` event is logged before the
    cell recomputes.
    """

    code = "REPRO-RES-CACHE-CORRUPT"
    hint = ("the entry was quarantined and the cell recomputed; inspect "
            "<cache-dir>/quarantine/ and check the disk if this recurs")


class RunLogCorrupt(ResilienceError):
    """A run-log JSONL line other than the final one failed to parse.

    A truncated *final* line is the expected signature of a crash mid-write
    and is always tolerated; corruption earlier in the stream means the
    log cannot be trusted and is raised on (``read_events(strict=False)``
    downgrades it to a skip).
    """

    code = "REPRO-RES-RUNLOG-CORRUPT"
    hint = ("mid-stream corruption: the log predates the final write, so "
            "pass strict=False only if a partial event stream is acceptable")


class ReplayDivergence(ResilienceError):
    """The columnar replay engine disagreed with the legacy reference walk.

    Detected by the sampled differential guard (``--verify-replay``); the
    scenario result falls back to the legacy value and the field-level
    diff is logged as a ``replay_divergence`` event.  Raised only when
    verification runs in strict mode.
    """

    code = "REPRO-RES-REPLAY-DIVERGENCE"
    hint = ("a columnar-engine bug: the legacy result was used; run with "
            "--legacy-replay and file the replay_divergence diagnostic")


# -- distributed-sweep taxonomy -----------------------------------------------
#
# Raised (or referenced by code) by the multi-host sweep runner
# (:mod:`repro.sweep.distributed`): the work-stealing coordinator, the
# ``python -m repro sweep-worker`` loop and the cache-service protocol
# between them.  Worker losses map onto run-log events the same way the
# single-host pool deaths do.

class DistributedSweepError(ResilienceError):
    """Base class for the distributed sweep runner's failure modes."""

    code = "REPRO-DIST-000"
    hint = "see the coordinator's run log for worker_join/worker_lost events"


class WorkerLost(DistributedSweepError):
    """A sweep worker's connection dropped with cells still leased.

    The coordinator requeues every leased cell with an incremented
    attempt (``worker_lost`` event) — the cross-host analogue of the
    pool's ``pool_respawn``.  After ``max_pool_deaths`` consecutive
    losses without progress and with no workers left, the sweep degrades
    to serial in-process execution.
    """

    code = "REPRO-DIST-WORKER-LOST"
    hint = ("the worker died or its network path broke; its cells were "
            "requeued — check the worker host if this recurs")


class CoordinatorUnreachable(DistributedSweepError):
    """A worker could not reach (or lost) its sweep coordinator."""

    code = "REPRO-DIST-UNREACHABLE"
    hint = ("check --connect HOST:PORT and that the coordinating "
            "`python -m repro sweep --distributed` is still running")


class DistProtocolError(DistributedSweepError):
    """A coordinator/worker message was malformed or out of protocol."""

    code = "REPRO-DIST-PROTOCOL"
    hint = ("coordinator and worker versions must match; requests are "
            "one JSON object per line with an 'op' field")


class LeaseExpired(DistributedSweepError):
    """A leased cell missed its heartbeat budget and was revoked.

    The worker's TCP connection may still be open — heartbeats, not
    connection liveness, are the liveness signal.  The coordinator
    requeues the cell at attempt+1 (``lease_expired`` event); if the
    original worker eventually finishes, first-result-wins dedup makes
    its straggler result harmless.
    """

    code = "REPRO-DIST-LEASE-EXPIRED"
    hint = ("the worker stopped heartbeating (hung, paused, or stalled "
            "I/O); raise --lease-timeout-s if cells legitimately block "
            "longer than the budget")


class DistAuthError(DistributedSweepError):
    """A worker failed the coordinator's shared-secret handshake.

    The coordinator is running with ``--auth-token`` (or
    ``REPRO_AUTH_TOKEN``) and the hello frame carried no proof, or a
    proof computed with a different token.  Rejected with this
    structured code — never a silent drop — and never retried: auth
    mismatch is deterministic, not transient.
    """

    code = "REPRO-DIST-AUTH"
    hint = ("worker and coordinator must share the same --auth-token / "
            "REPRO_AUTH_TOKEN secret")


# -- journal taxonomy ---------------------------------------------------------
#
# Raised by the write-ahead journal (:mod:`repro.journal`) that both
# control planes — the sweep coordinator and the codec service — commit
# their durable state through.  Recovery code catches exactly these
# classes: a journal that cannot be replayed fails structured, never with
# a bare JSON/OS error.

class JournalError(ReproError):
    """Base class for write-ahead-journal failures."""

    code = "REPRO-JRN-000"
    hint = "see the journal directory's segment files"


class JournalCorrupt(JournalError):
    """A journal record other than the final one failed to parse or
    failed its CRC.

    A truncated *final* record is the expected signature of a crash
    mid-append and is always tolerated (the record simply never
    committed); corruption earlier in the stream — or in any segment
    other than the last — means the journal cannot be trusted for
    recovery and is raised on.
    """

    code = "REPRO-JRN-CORRUPT"
    hint = ("mid-stream corruption: the journal cannot be replayed; "
            "discard the journal directory and rerun from scratch "
            "(determinism makes the rerun byte-identical)")


class JournalEmpty(JournalError):
    """A resume was requested from a journal with no usable records."""

    code = "REPRO-JRN-EMPTY"
    hint = ("the journal directory has no committed records — the "
            "previous run died before its first commit barrier; rerun "
            "without --resume-journal")


class JournalMismatch(JournalError):
    """A journal's recorded identity does not match the resuming run.

    The workload fingerprint or per-cell code-version map in the
    journal's identity record differs from what the resuming process
    computed — replaying leases and results across a code or workload
    edit would silently mix incompatible states.
    """

    code = "REPRO-JRN-MISMATCH"
    hint = ("the workload or code changed since the journal was "
            "written; resume with the original tree, or discard the "
            "journal and rerun")


class FaultSpecError(ReproError):
    """An ``--inject-faults`` specification did not parse."""

    code = "REPRO-FAULT-SPEC-001"
    hint = ("grammar: [seed=<int>;]<kind>:<target>[:times=<n>|p=<f>|"
            "delay=<s>][;...] with kind in kill|raise|hang|latency|"
            "corrupt|truncate|diverge|slowclient|disconnect|dropresult|"
            "coordkill|svckill")


def event_code(exc_type: type, default: Optional[str] = None) -> str:
    """The stable event code for an exception class (run-log plumbing)."""
    if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
        return exc_type.code
    return default or ReproError.code

"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class IsaError(ReproError):
    """An instruction was malformed or used an unknown opcode/register."""


class ScheduleError(ReproError):
    """The VLIW scheduler could not produce a legal schedule."""


class RegisterAllocationError(ReproError):
    """The register allocator ran out of physical registers."""


class MachineError(ReproError):
    """The cycle-level machine hit an illegal state (bad PC, bad operand...)."""


class MemoryError_(ReproError):
    """An access fell outside main memory or violated alignment rules."""


class RfuError(ReproError):
    """Illegal RFU usage: unknown configuration, bad operand count..."""


class CodecError(ReproError):
    """The video codec substrate was misused (bad frame sizes, bad QP...)."""


class ExperimentError(ReproError):
    """An experiment was configured inconsistently."""

"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``report``   — regenerate the paper's tables/figures (EXPERIMENTS-style);
* ``sweep``    — the same report through the parallel, cached, fault-
  tolerant sweep orchestrator (``--jobs``, ``--only``, ``--no-cache``;
  resilience knobs ``--cell-timeout``, ``--max-retries``,
  ``--retry-backoff``, ``--max-pool-deaths``; chaos/verification hooks
  ``--inject-faults``, ``--verify-replay``; ``--incremental`` re-executes
  only cells whose import-closure fingerprint changed; ``--distributed
  HOST:PORT`` runs the misses on the multi-host work-stealing fleet,
  optionally self-hosting ``--spawn-workers N``, supervised by heartbeat
  leases (``--heartbeat-s``, ``--lease-timeout-s``) and optionally
  authenticated (``--auth-token``); ``--journal DIR`` write-ahead
  journals the coordinator's control plane and ``--resume-journal DIR``
  replays it after a crash — committed results are restored and
  interrupted cells requeued, with ``sweep_report.json`` byte-identical
  to an uninterrupted run; ``--cache-max-bytes`` prunes the
  shared cell cache LRU-by-mtime; run logs, ``sweep_report.json`` and
  the ``sweep_timing.json`` sidecar land under ``--sweep-dir``, default
  ``.repro-sweep/``);
* ``sweep-worker`` — join a ``sweep --distributed`` coordinator
  (``--connect HOST:PORT``) and execute leased cells until the sweep
  drains;
* ``encode``   — run the MPEG4-SP encoder substrate and print statistics;
* ``decode``   — encode → serialize → decode round trip (on a raw YUV420
  file or the synthetic sequence), reporting stream size, per-frame PSNR
  and — with ``--robust`` — the ``DecodeHealth`` report; ``--resync-every
  N`` emits the error-resilient stream layout;
* ``fuzz-decode`` — the seeded bitstream-fuzzing harness: sweeps
  corruption rates × seeds over a serialized stream, asserts the robust
  decoder only ever fails structurally (``REPRO-DEC-*``), and emits the
  corruption-rate → concealed-PSNR degradation curve (``--json``);
* ``kernels``  — compile, verify and time every GetSad kernel shape
  (``--sched-mode {paper,sweep,modulo}`` selects the scheduling tier;
  ``paper`` pins the seed heuristic bit-identically);
* ``schedule`` — assemble a ``.s`` kernel file and print its VLIW schedule
  (also ``--sched-mode``/``--sweep-seeds``);
* ``serve``    — run the concurrent streaming codec service: many
  encode/decode streams multiplexed over a bounded fork worker pool,
  spoken to over a TCP/JSON-lines transport (``--workers``,
  ``--max-pending``; ``--migrate/--no-migrate`` and
  ``--segment-timeout-s`` control hung/dead-worker stream migration;
  ``--journal DIR`` write-ahead journals stream opens and per-segment
  checkpoints so a restarted service restores every open stream and
  clients resubmit idempotently; ``--auth-token`` requires the HMAC
  handshake; operator guide in ``docs/SERVING.md``);
* ``client``   — drive a running ``serve`` instance: stream a YUV file or
  the synthetic sequence through an encode session segment by segment and
  write the returned bitstream;
* ``cli-docs`` — regenerate ``docs/CLI.md`` from this argparse tree
  (``--check`` verifies instead, as ``tests/test_cli_docs.py`` does).

The full generated flag reference is ``docs/CLI.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__


def _apply_replay_engine(args: argparse.Namespace) -> None:
    if getattr(args, "legacy_replay", False):
        from repro.core.timing import set_default_replay_engine
        set_default_replay_engine("legacy")
    if getattr(args, "verify_replay", None):
        from repro.core.timing import set_replay_verification
        set_replay_verification(args.verify_replay)
    if getattr(args, "inject_faults", None):
        from repro import faults
        faults.install(args.inject_faults)


def _print_divergences(frames: int, seed: int = 2002) -> int:
    """Surface any --verify-replay divergences on stderr; returns count."""
    from repro.experiments.workload import peek_context
    context = peek_context(frames, seed)
    if context is None:
        return 0
    divergences = context.replay_divergences()
    for record in divergences:
        print(f"replay divergence [{record['code']}] scenario "
              f"{record['scenario']}: {record['fields']}", file=sys.stderr)
    return len(divergences)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments import run_all
    _apply_replay_engine(args)
    report = run_all(frames=args.frames, verbose=not args.quiet,
                     extensions=not args.no_extensions)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        print(f"written to {args.output}")
    else:
        print(report)
    if args.verify_replay:
        divergences = _print_divergences(args.frames)
        print(f"verify-replay: {divergences} divergence(s) "
              f"(legacy fallback applied)" if divergences else
              "verify-replay: all sampled replays matched the legacy walk",
              file=sys.stderr)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    import pathlib

    from repro.sweep import SweepConfig, run_sweep
    _apply_replay_engine(args)
    config = SweepConfig(
        frames=args.frames,
        seed=args.seed,
        jobs=args.jobs,
        extensions=not args.no_extensions,
        only=args.only or None,
        root=pathlib.Path(args.sweep_dir),
        cache_dir=pathlib.Path(args.cache_dir) if args.cache_dir else None,
        use_cache=not args.no_cache,
        cell_timeout_s=args.cell_timeout,
        max_retries=args.max_retries,
        retry_backoff_s=args.retry_backoff,
        max_pool_deaths=args.max_pool_deaths,
        verify_replay_pct=args.verify_replay or 0.0,
        fault_spec=args.inject_faults,
        incremental=args.incremental,
        distributed=args.distributed,
        spawn_workers=args.spawn_workers,
        worker_wait_s=args.worker_wait,
        heartbeat_s=args.heartbeat_s,
        lease_timeout_s=args.lease_timeout_s,
        auth_token=args.auth_token,
        cache_max_bytes=args.cache_max_bytes,
        journal_dir=pathlib.Path(args.journal) if args.journal else None,
        resume_journal=pathlib.Path(args.resume_journal)
        if args.resume_journal else None,
    )
    progress = None if args.quiet else \
        (lambda message: print(message, file=sys.stderr, flush=True))
    result = run_sweep(config, progress=progress)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(result.report + "\n")
        print(f"written to {args.output}")
    else:
        print(result.report)
    if args.stamp:
        from repro.experiments.report import stamp_sweep_provenance
        path = pathlib.Path(args.stamp)
        stamped = stamp_sweep_provenance(
            path.read_text(encoding="utf-8") if path.exists() else "",
            result.sweep_report)
        path.write_text(stamped, encoding="utf-8")
        print(f"provenance stamped into {args.stamp}")
    totals = result.sweep_report["totals"]
    print(f"sweep: {totals['cells']} cells, {totals['cache_hits']} cache "
          f"hits, {totals['executed']} executed, {totals['errors']} failed, "
          f"{totals['retries']} retries in {totals['wall_s']:.1f}s; "
          f"run log {result.run_log}", file=sys.stderr)
    if args.verify_replay:
        _print_divergences(args.frames, args.seed)
    if result.failures:
        for cell in result.failures:
            code = f" [{cell.error_code}]" if cell.error_code else ""
            print(f"FAILED {cell.name}{code}: "
                  f"{cell.error.strip().splitlines()[-1]}", file=sys.stderr)
        return 1
    return 0


def _cmd_sweep_worker(args: argparse.Namespace) -> int:
    from repro.sweep.distributed import parse_bind, run_worker
    host, port = parse_bind(args.connect)
    return run_worker(host, port, label=args.label, reconnects=args.reconnects,
                      auth_token=args.auth_token,
                      out=lambda message: print(message, file=sys.stderr,
                                                flush=True))


def _cmd_encode(args: argparse.Namespace) -> int:
    from repro.codec import EncoderConfig, Mpeg4Encoder, \
        SyntheticSequenceConfig, synthetic_sequence
    from repro.codec.motion import DiamondSearch, FullSearch, ThreeStepSearch
    if args.strategy == "three-step" and args.range is not None:
        print(f"warning: --range is ignored by --strategy {args.strategy} "
              f"(it only applies to full and diamond)", file=sys.stderr)
    if args.strategy != "three-step" and args.step is not None:
        print(f"warning: --step is ignored by --strategy {args.strategy} "
              f"(it only applies to three-step)", file=sys.stderr)
    step = 2 if args.step is None else args.step
    search_range = 4 if args.range is None else args.range
    if args.strategy == "full":
        strategy = FullSearch(search_range)
    elif args.strategy == "diamond":
        strategy = DiamondSearch(search_range)
    else:
        strategy = ThreeStepSearch(step)
    frames = synthetic_sequence(SyntheticSequenceConfig(frames=args.frames,
                                                        seed=args.seed))
    report = Mpeg4Encoder(EncoderConfig(
        qp=args.qp, strategy=strategy,
        use_fast_engine=not args.no_fast_me,
        early_terminate=args.early_terminate)).encode(frames)
    print(f"{'frame':>5s} {'type':>4s} {'bits':>8s} {'PSNR-Y':>7s} "
          f"{'SAD calls':>9s}")
    for stats in report.frame_stats:
        print(f"{stats.index:>5d} {stats.frame_type:>4s} {stats.bits:>8,} "
              f"{stats.psnr_y:>6.2f} {stats.getsad_calls:>9,}")
    trace = report.trace
    print(f"\ntotal bits {report.total_bits:,}, mean PSNR-Y "
          f"{report.mean_psnr_y:.2f} dB")
    print(f"GetSad calls {len(trace):,}, diagonal-interpolation fraction "
          f"{100 * trace.diagonal_fraction():.1f}%")
    return 0


def _load_yuv_frames(path: str, width: int, height: int):
    """Raw planar YUV420 frames from a file (trailing partials dropped)."""
    import numpy as np

    from repro.codec import YuvFrame
    from repro.errors import CodecError
    data = np.fromfile(path, dtype=np.uint8)
    frame_bytes = width * height * 3 // 2
    if frame_bytes == 0 or len(data) < frame_bytes:
        raise CodecError(
            f"{path} holds {len(data)} bytes, less than one "
            f"{width}x{height} YUV420 frame ({frame_bytes} bytes)")
    frames = []
    for start in range(0, len(data) - frame_bytes + 1, frame_bytes):
        chunk = data[start:start + frame_bytes]
        y = chunk[:width * height].reshape(height, width)
        u = chunk[width * height:width * height * 5 // 4] \
            .reshape(height // 2, width // 2)
        v = chunk[width * height * 5 // 4:].reshape(height // 2, width // 2)
        frames.append(YuvFrame(y.copy(), u.copy(), v.copy()))
    return frames


def _cmd_decode(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.codec import (
        EncoderConfig,
        Mpeg4Encoder,
        SyntheticSequenceConfig,
        decode_sequence,
        deserialize,
        robust_decode,
        synthetic_sequence,
    )
    from repro.errors import CodecError
    if args.input:
        frames = _load_yuv_frames(args.input, args.width, args.height)
        if args.frames:
            frames = frames[:args.frames]
    else:
        frames = synthetic_sequence(SyntheticSequenceConfig(
            frames=args.frames or 10, seed=args.seed))
    report = Mpeg4Encoder(EncoderConfig(
        qp=args.qp, resync_every=args.resync_every)).encode(frames)
    payload = report.serialize()
    layout = f"resilient (resync every {args.resync_every} MB rows)" \
        if args.resync_every else "legacy"
    print(f"encoded {len(frames)} frames -> {len(payload):,} bytes "
          f"({layout} layout)")
    try:
        if args.robust:
            decoded, health = robust_decode(payload)
            print(health.summary())
        else:
            decoded = decode_sequence(deserialize(payload))
    except CodecError as exc:
        print(exc.describe(), file=sys.stderr)
        return 1
    exact = all(
        np.array_equal(dec.y, rec.y) and np.array_equal(dec.u, rec.u)
        and np.array_equal(dec.v, rec.v)
        for dec, rec in zip(decoded, report.reconstructed))
    print(f"{'frame':>5s} {'type':>4s} {'PSNR-Y':>7s}")
    for stats, (source, dec) in zip(report.frame_stats,
                                    zip(frames, decoded)):
        print(f"{stats.index:>5d} {stats.frame_type:>4s} "
              f"{dec.psnr_y(source):>6.2f}")
    print(f"decode matches the encoder reconstruction bit-exactly: "
          f"{'yes' if exact else 'NO'}")
    return 0 if exact else 1


def _cmd_fuzz_decode(args: argparse.Namespace) -> int:
    import json

    from repro.codec import (
        EncoderConfig,
        Mpeg4Encoder,
        SyntheticSequenceConfig,
        decode_sequence,
        deserialize,
        robust_decode,
        serialize,
        synthetic_sequence,
    )
    from repro.codec.decoder import concealment_psnr
    from repro.errors import CodecError
    from repro.faults import BITSTREAM_KINDS, corrupt_bitstream
    kinds = tuple(k.strip() for k in args.kinds.split(",") if k.strip()) \
        if args.kinds else BITSTREAM_KINDS
    rates = [float(rate) for rate in args.rates.split(",") if rate.strip()]
    frames = synthetic_sequence(SyntheticSequenceConfig(
        frames=args.frames, seed=args.seed))
    report = Mpeg4Encoder(EncoderConfig(
        qp=args.qp, resync_every=args.resync_every)).encode(frames)
    clean_payload = serialize(report.coded)
    clean_frames = decode_sequence(report.coded)
    # differential guarantee: zero corruption => robust == strict, exactly
    robust_clean, clean_health = robust_decode(clean_payload)
    if not clean_health.ok or concealment_psnr(
            robust_clean, clean_frames) != float("inf"):
        print("FATAL: robust decode of the clean stream is not identical "
              "to the strict decode", file=sys.stderr)
        return 1
    curve = []
    unstructured = 0
    total = 0
    if not args.quiet:
        print(f"fuzzing {len(clean_payload):,}-byte stream "
              f"({args.frames} frames, resync every "
              f"{args.resync_every or 'never'}): {len(rates)} rates x "
              f"{args.seeds} seeds, kinds {','.join(kinds)}")
        print(f"{'rate':>10s} {'streams':>7s} {'hit':>5s} "
              f"{'struct-err':>10s} {'concealed%':>10s} {'PSNR dB':>9s} "
              f"{'exact':>5s}")
    for rate in rates:
        psnrs = []
        concealed = []
        exact = corrupted = strict_errors = 0
        for seed in range(args.seeds):
            total += 1
            payload, events = corrupt_bitstream(
                clean_payload, seed=seed, kinds=kinds, rate=rate)
            if events:
                corrupted += 1
            try:
                decode_sequence(deserialize(payload))
            except CodecError:
                strict_errors += 1
            except Exception as exc:  # noqa: BLE001 -- the harness's point
                unstructured += 1
                print(f"UNSTRUCTURED strict failure (rate {rate}, seed "
                      f"{seed}): {type(exc).__name__}: {exc}",
                      file=sys.stderr)
            try:
                decoded, health = robust_decode(payload)
                mb_total = max(health.mbs_decoded + health.mbs_concealed, 1)
                psnr = concealment_psnr(decoded, clean_frames)
                health.concealment_psnr = None \
                    if psnr == float("inf") else psnr
            except Exception as exc:  # noqa: BLE001 -- the harness's point
                unstructured += 1
                print(f"UNSTRUCTURED robust failure (rate {rate}, seed "
                      f"{seed}): {type(exc).__name__}: {exc}",
                      file=sys.stderr)
                continue
            concealed.append(1.0 if not decoded
                             else health.mbs_concealed / mb_total)
            if psnr == float("inf"):
                exact += 1
            else:
                psnrs.append(psnr)
        entry = {
            "rate": rate,
            "streams": args.seeds,
            "corrupted_streams": corrupted,
            "strict_structured_errors": strict_errors,
            "exact_decodes": exact,
            "mean_concealed_fraction": sum(concealed) / len(concealed)
            if concealed else 0.0,
            "mean_concealed_psnr_db": sum(psnrs) / len(psnrs)
            if psnrs else None,
            "min_concealed_psnr_db": min(psnrs) if psnrs else None,
        }
        curve.append(entry)
        if not args.quiet:
            psnr_text = f"{entry['mean_concealed_psnr_db']:>9.2f}" \
                if psnrs else f"{'--':>9s}"
            print(f"{rate:>10.2e} {args.seeds:>7d} {corrupted:>5d} "
                  f"{strict_errors:>10d} "
                  f"{100 * entry['mean_concealed_fraction']:>9.1f}% "
                  f"{psnr_text} {exact:>5d}")
    artifact = {
        "frames": args.frames,
        "seed": args.seed,
        "qp": args.qp,
        "resync_every": args.resync_every,
        "kinds": list(kinds),
        "stream_bytes": len(clean_payload),
        "seeds_per_rate": args.seeds,
        "total_streams": total,
        "unstructured_failures": unstructured,
        "degradation_curve": curve,
    }
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(artifact, handle, indent=2)
        print(f"degradation curve written to {args.json}")
    if unstructured:
        print(f"FAILED: {unstructured} unstructured failure(s) across "
              f"{total} corrupted streams", file=sys.stderr)
        return 1
    print(f"fuzz-decode: {total} corrupted streams, every failure "
          f"structured (REPRO-DEC-*), no hangs")
    return 0


def _cmd_kernels(args: argparse.Namespace) -> int:
    from repro.kernels import KernelLibrary, KernelShape, VARIANTS
    from repro.rfu.loop_model import InterpMode
    variants = [args.variant] if args.variant else list(VARIANTS)
    header = f"{'variant':>8s} {'align':>5s}" \
        + "".join(f" {mode.name:>6s}" for mode in InterpMode)
    print(header + f"   (cycles per GetSad call, verified bit-exact; "
                   f"sched-mode {args.sched_mode})")
    for variant in variants:
        library = KernelLibrary(variant, sched_mode=args.sched_mode)
        for alignment in range(4):
            cells = "".join(
                f" {library.static_cycles(alignment, mode):>6d}"
                for mode in InterpMode)
            print(f"{variant:>8s} {alignment:>5d}{cells}")
    return 0


def _cmd_schedule(args: argparse.Namespace) -> int:
    from repro.isa.asmparser import parse_program
    from repro.isa.instruction import format_schedule
    from repro.machine import MachineConfig, compile_kernel
    from repro.program.analysis import occupancy_chart, utilisation_report
    with open(args.file, encoding="utf-8") as handle:
        program = parse_program(handle.read())
    config = MachineConfig().with_sched_mode(args.sched_mode,
                                             args.sweep_seeds)
    loaded = compile_kernel(program, config=config)
    print(f"kernel {program.name}: {loaded.static_length} static cycles, "
          f"{loaded.scheduled.op_count()} ops")
    for block in loaded.scheduled.blocks:
        print(f"\nblock {block.label}:")
        print(format_schedule(block.bundles))
    if args.stats:
        print("\nutilisation:")
        print(utilisation_report(loaded.scheduled))
        print("\noccupancy (A=alu M=mul L=lsu B=branch R=rfu):")
        for block in loaded.scheduled.blocks:
            print(occupancy_chart(block))
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro import faults, supervise
    from repro.serve import CodecService, run_server
    if args.inject_faults:
        faults.install(args.inject_faults)
    service = CodecService(workers=args.workers,
                           max_pending=args.max_pending,
                           cache_capacity=args.cache_capacity,
                           migrate=args.migrate,
                           segment_timeout_s=args.segment_timeout_s,
                           journal_dir=args.journal)
    restored = service.stats()["totals"]["streams_restored"]
    if restored:
        print(f"journal {args.journal}: restored {restored} open "
              f"stream(s) from their last checkpoints", flush=True)

    def ready(bound):
        mode = f"{service.workers} worker process(es)" if service.workers \
            else "in-process execution"
        print(f"serving on {bound[0]}:{bound[1]} ({mode}, max "
              f"{service.max_pending} pending segments per stream)",
              flush=True)

    try:
        asyncio.run(run_server(
            service, args.host, args.port, ready,
            auth_token=supervise.resolve_token(args.auth_token)))
    except KeyboardInterrupt:
        print("interrupted; shutting the pool down", file=sys.stderr)
    finally:
        service.shutdown()
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.errors import ReproError
    from repro.serve import ServiceClient, StreamConfig
    if args.input:
        frames = _load_yuv_frames(args.input, args.width, args.height)
        if args.frames:
            frames = frames[:args.frames]
    else:
        from repro.codec import SyntheticSequenceConfig, synthetic_sequence
        frames = synthetic_sequence(SyntheticSequenceConfig(
            frames=args.frames or 10, seed=args.seed))
    config = StreamConfig(kind="encode", qp=args.qp,
                          gop_size=args.gop_size,
                          resync_every=args.resync_every,
                          verify_decode=args.verify_decode)
    segment = max(1, args.segment_frames)
    try:
        with ServiceClient(args.host, args.port,
                           auth_token=args.auth_token) as client:
            stream = client.open_stream(config)
            submitted = collected = 0
            results = []
            for start in range(0, len(frames), segment):
                client.submit_segment(stream, frames[start:start + segment])
                submitted += 1
                batch = client.collect(stream)
                results.extend(batch)
                collected += len(batch)
            summary = client.close_stream(stream)
    except ReproError as exc:
        print(exc.describe(), file=sys.stderr)
        return 1
    except OSError as exc:
        print(f"cannot reach service at {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 1
    results.extend(summary["uncollected"])
    print(f"stream {stream}: {submitted} segments submitted, "
          f"{len(results)} results")
    for result in sorted(results, key=lambda r: r.segment):
        psnr = f"{result.psnr_y:6.2f}" if result.psnr_y is not None \
            else "   inf"
        status = "ok" if result.ok else f"FAILED [{result.error_code}]"
        print(f"  segment {result.segment}: {status}, "
              f"{result.frames} frames, {result.bits:,} bits, "
              f"PSNR-Y {psnr}, latency {result.latency_s * 1000:.0f} ms "
              f"(worker {result.worker}, {result.attempts} attempt(s))")
    mean = summary["mean_psnr_y"]
    print(f"closed: {summary['frames']} frames, {summary['bits']:,} bits, "
          f"mean PSNR-Y "
          f"{'inf' if mean is None else f'{mean:.2f}'} dB")
    cache = summary.get("cache") or {}
    for pool in ("shared_planes", "shared_blocks"):
        stats = cache.get(pool)
        if stats:
            print(f"  {pool}: {stats['hits']}/{stats['hits'] + stats['builds']}"
                  f" hits ({100 * stats['hit_rate']:.1f}%), "
                  f"{stats['entries']}/{stats['capacity']} entries")
    if summary.get("health"):
        print(f"  verify-decode health: {summary['health']}")
    if args.output:
        with open(args.output, "wb") as handle:
            handle.write(summary["payload"])
        print(f"bitstream ({len(summary['payload']):,} bytes) written to "
              f"{args.output}")
    return 0 if all(result.ok for result in results) else 1


def _cmd_cli_docs(args: argparse.Namespace) -> int:
    from repro.clidoc import render_cli_markdown
    rendered = render_cli_markdown(build_parser())
    if args.check:
        try:
            with open(args.output, encoding="utf-8") as handle:
                committed = handle.read()
        except FileNotFoundError:
            committed = ""
        if committed != rendered:
            print(f"{args.output} is stale: regenerate it with "
                  f"'python -m repro cli-docs'", file=sys.stderr)
            return 1
        print(f"{args.output} matches the argparse tree")
        return 0
    with open(args.output, "w", encoding="utf-8") as handle:
        handle.write(rendered)
    print(f"CLI reference written to {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reconfigurable-VLIW video-compression case study "
                    "(DATE 2002 reproduction)")
    parser.add_argument("--version", action="version", version=__version__)
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser("report", help="regenerate tables and figures")
    report.add_argument("--frames", type=int, default=25)
    report.add_argument("--output", "-o", default=None)
    report.add_argument("--quiet", "-q", action="store_true")
    report.add_argument("--no-extensions", action="store_true",
                        help="skip the beyond-the-paper experiments")
    report.add_argument("--legacy-replay", action="store_true",
                        help="replay scenarios through the legacy "
                             "object-model walk instead of the columnar "
                             "engine (identical numbers, slower)")
    report.add_argument("--verify-replay", type=float, default=None,
                        metavar="PCT",
                        help="re-check this percentage of columnar replay "
                             "evaluations against the legacy walk; "
                             "divergences are diagnosed on stderr and fall "
                             "back to the legacy result")
    report.add_argument("--inject-faults", default=None, metavar="SPEC",
                        help="deterministic fault-injection spec (also via "
                             "the REPRO_FAULTS env var); see repro.faults "
                             "for the grammar")
    report.set_defaults(handler=_cmd_report)

    sweep = sub.add_parser(
        "sweep",
        help="regenerate the report via the parallel, cached sweep runner")
    sweep.add_argument("--frames", type=int, default=25)
    sweep.add_argument("--seed", type=int, default=2002)
    sweep.add_argument("--jobs", "-j", type=int, default=1,
                       help="worker processes to fan cells across "
                            "(default 1 = serial)")
    sweep.add_argument("--only", action="append", metavar="CELL",
                       help="run only this cell (repeatable), e.g. "
                            "--only table3 --only figure2")
    sweep.add_argument("--no-cache", action="store_true",
                       help="ignore and do not write the on-disk cell cache")
    sweep.add_argument("--cache-dir", default=None,
                       help="cell cache location (default "
                            "<sweep-dir>/cache)")
    sweep.add_argument("--sweep-dir", default=".repro-sweep",
                       help="root for the cache, JSONL run logs and "
                            "sweep_report.json (default .repro-sweep)")
    sweep.add_argument("--output", "-o", default=None)
    sweep.add_argument("--stamp", default=None, metavar="MARKDOWN",
                       help="stamp this markdown file (e.g. EXPERIMENTS.md) "
                            "with the sweep's timing provenance block")
    sweep.add_argument("--quiet", "-q", action="store_true")
    sweep.add_argument("--no-extensions", action="store_true",
                       help="skip the beyond-the-paper experiments")
    sweep.add_argument("--legacy-replay", action="store_true",
                       help="replay scenarios through the legacy "
                            "object-model walk instead of the columnar "
                            "engine (identical numbers, slower)")
    sweep.add_argument("--cell-timeout", type=float, default=None,
                       metavar="SECONDS",
                       help="per-cell wall-clock budget; a cell over "
                            "budget is abandoned (SIGALRM inside the "
                            "worker) and retried up to --max-retries")
    sweep.add_argument("--max-retries", type=int, default=2,
                       help="retry budget per cell for timeouts and "
                            "transient failures (default 2)")
    sweep.add_argument("--retry-backoff", type=float, default=0.05,
                       metavar="SECONDS",
                       help="base of the exponential backoff between "
                            "retries of one cell (default 0.05)")
    sweep.add_argument("--max-pool-deaths", type=int, default=3,
                       help="consecutive worker-pool deaths tolerated "
                            "before degrading to serial in-process "
                            "execution (default 3)")
    sweep.add_argument("--verify-replay", type=float, default=None,
                       metavar="PCT",
                       help="re-check this percentage of columnar replay "
                            "evaluations against the legacy walk; "
                            "divergences land in the run log as "
                            "replay_divergence events and fall back to "
                            "the legacy result")
    sweep.add_argument("--inject-faults", default=None, metavar="SPEC",
                       help="deterministic fault-injection spec, e.g. "
                            "'kill:table3;latency:table5:delay=30' (also "
                            "via the REPRO_FAULTS env var); see "
                            "repro.faults for the grammar")
    sweep.add_argument("--incremental", action="store_true",
                       help="diff per-cell code fingerprints against the "
                            "previous sweep_report.json and re-execute "
                            "only invalidated cells (requires the cache; "
                            "the full report is still written, byte-"
                            "identical to a cold sweep)")
    sweep.add_argument("--distributed", default=None, metavar="HOST:PORT",
                       help="bind the multi-host work-stealing "
                            "coordinator here and run cache misses on "
                            "joined sweep-worker processes instead of "
                            "the local pool")
    sweep.add_argument("--spawn-workers", type=int, default=0, metavar="N",
                       help="with --distributed: also spawn N local "
                            "worker subprocesses (their logs land under "
                            "<sweep-dir>/runs/)")
    sweep.add_argument("--worker-wait", type=float, default=30.0,
                       metavar="SECONDS",
                       help="with --distributed: how long the "
                            "coordinator waits for a first or "
                            "replacement worker before degrading to "
                            "serial execution (default 30)")
    sweep.add_argument("--heartbeat-s", type=float, default=5.0,
                       metavar="SECONDS",
                       help="with --distributed: interval at which "
                            "workers heartbeat their active lease "
                            "(default 5)")
    sweep.add_argument("--lease-timeout-s", type=float, default=None,
                       metavar="SECONDS",
                       help="with --distributed: a lease missing its "
                            "heartbeats this long is revoked and its "
                            "cell requeued (REPRO-DIST-LEASE-EXPIRED; "
                            "default 4x --heartbeat-s)")
    sweep.add_argument("--auth-token", default=None, metavar="TOKEN",
                       help="shared secret for the coordinator socket "
                            "(also via REPRO_AUTH_TOKEN); workers prove "
                            "it by HMAC challenge-response, a mismatch "
                            "is a structured REPRO-DIST-AUTH rejection")
    sweep.add_argument("--journal", default=None, metavar="DIR",
                       help="with --distributed: write-ahead journal the "
                            "coordinator's control plane (lease grants, "
                            "result commits) into this directory so a "
                            "killed sweep can be resumed with "
                            "--resume-journal")
    sweep.add_argument("--resume-journal", default=None, metavar="DIR",
                       help="with --distributed: replay a previous run's "
                            "journal — committed results are restored, "
                            "interrupted cells requeued at attempt+1, and "
                            "sweep_report.json comes out byte-identical "
                            "to an uninterrupted run (journaling "
                            "continues into the same directory)")
    sweep.add_argument("--cache-max-bytes", type=int, default=None,
                       metavar="BYTES",
                       help="prune the cell cache LRU-by-mtime down to "
                            "this many bytes after the sweep; entries "
                            "this run touched are never evicted")
    sweep.set_defaults(handler=_cmd_sweep)

    worker = sub.add_parser(
        "sweep-worker",
        help="join a 'sweep --distributed' coordinator and execute "
             "leased cells")
    worker.add_argument("--connect", required=True, metavar="HOST:PORT",
                        help="coordinator address to join")
    worker.add_argument("--label", default=None,
                        help="worker label (defaults to 'worker'; the "
                             "wire identity is host-pid-label)")
    worker.add_argument("--reconnects", type=int, default=3,
                        help="reconnection attempts after losing the "
                             "coordinator before giving up (default 3)")
    worker.add_argument("--auth-token", default=None, metavar="TOKEN",
                        help="shared secret matching the coordinator's "
                             "--auth-token (also via REPRO_AUTH_TOKEN)")
    worker.set_defaults(handler=_cmd_sweep_worker)

    encode = sub.add_parser("encode", help="run the encoder substrate")
    encode.add_argument("--frames", type=int, default=10)
    encode.add_argument("--qp", type=int, default=10)
    encode.add_argument("--seed", type=int, default=2002)
    encode.add_argument("--strategy",
                        choices=("three-step", "full", "diamond"),
                        default="three-step")
    encode.add_argument("--step", type=int, default=None,
                        help="initial three-step search step (default 2; "
                             "only with --strategy three-step)")
    encode.add_argument("--range", type=int, default=None,
                        help="full/diamond search range (default 4; only "
                             "with --strategy full or diamond)")
    encode.add_argument("--no-fast-me", action="store_true",
                        help="score candidates on the scalar GetSad model "
                             "instead of the vectorized half-pel SAD engine "
                             "(the trace is bit-identical either way)")
    encode.add_argument("--early-terminate", action="store_true",
                        help="stop each SAD once it exceeds the best "
                             "candidate so far (chosen vectors unchanged)")
    encode.set_defaults(handler=_cmd_encode)

    decode = sub.add_parser(
        "decode",
        help="encode -> serialize -> decode round trip with PSNR and "
             "decode-health reporting")
    decode.add_argument("--frames", type=int, default=None,
                        help="frame count (default 10 synthetic, or every "
                             "frame of --input)")
    decode.add_argument("--qp", type=int, default=10)
    decode.add_argument("--seed", type=int, default=2002)
    decode.add_argument("--input", default=None, metavar="FILE",
                        help="raw planar YUV420 file to encode instead of "
                             "the synthetic sequence")
    decode.add_argument("--width", type=int, default=176,
                        help="luma width of --input (default QCIF 176)")
    decode.add_argument("--height", type=int, default=144,
                        help="luma height of --input (default QCIF 144)")
    decode.add_argument("--resync-every", type=int, default=0,
                        metavar="ROWS",
                        help="serialize with a byte-aligned resync marker "
                             "every N macroblock rows (error-resilient "
                             "layout; 0 = legacy compact layout)")
    decode.add_argument("--robust", action="store_true",
                        help="decode through the concealing RobustDecoder "
                             "and print its DecodeHealth report instead of "
                             "the strict decoder")
    decode.set_defaults(handler=_cmd_decode)

    fuzz = sub.add_parser(
        "fuzz-decode",
        help="seeded bitstream-fuzzing harness: corrupted streams must "
             "fail structurally and conceal gracefully")
    fuzz.add_argument("--seeds", type=int, default=20,
                      help="corruption seeds per rate (default 20)")
    fuzz.add_argument("--frames", type=int, default=2)
    fuzz.add_argument("--qp", type=int, default=10)
    fuzz.add_argument("--seed", type=int, default=2002,
                      help="synthetic-sequence seed (not the fuzz seed)")
    fuzz.add_argument("--resync-every", type=int, default=1,
                      metavar="ROWS",
                      help="resync-marker period of the fuzzed stream "
                           "(0 fuzzes the legacy layout)")
    fuzz.add_argument("--rates",
                      default="1e-5,3e-5,1e-4,3e-4,1e-3,3e-3,1e-2,3e-2",
                      help="comma-separated corruption rates to sweep")
    fuzz.add_argument("--kinds", default=None,
                      help="comma-separated corruption kinds (default: "
                           "bitflip,burst,truncate,duplicate,insert)")
    fuzz.add_argument("--json", default=None, metavar="PATH",
                      help="write the degradation-curve artifact here")
    fuzz.add_argument("--quiet", "-q", action="store_true")
    fuzz.set_defaults(handler=_cmd_fuzz_decode)

    kernels = sub.add_parser("kernels", help="time every GetSad kernel")
    kernels.add_argument("--variant", choices=("orig", "a1", "a2", "a3"),
                         default=None)
    kernels.add_argument("--sched-mode",
                         choices=("paper", "sweep", "modulo"),
                         default="paper",
                         help="scheduling tier: 'paper' pins the seed "
                              "heuristic bit-identically; 'sweep' runs "
                              "seeded priority sweeps; 'modulo' software-"
                              "pipelines the inner loops")
    kernels.set_defaults(handler=_cmd_kernels)

    schedule = sub.add_parser("schedule", help="assemble and schedule a "
                                               "kernel file")
    schedule.add_argument("file")
    schedule.add_argument("--stats", action="store_true",
                          help="print utilisation and occupancy analysis")
    schedule.add_argument("--sched-mode",
                          choices=("paper", "sweep", "modulo"),
                          default="paper",
                          help="scheduling tier (see 'kernels --sched-mode')")
    schedule.add_argument("--sweep-seeds", type=int, default=None,
                          help="candidate seeds per block in sweep mode")
    schedule.set_defaults(handler=_cmd_schedule)

    serve = sub.add_parser(
        "serve",
        help="run the concurrent streaming codec service (TCP JSON-lines)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=7007,
                       help="TCP port (0 picks a free port; default 7007)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes for the pool (0 = run "
                            "segments in-process; default 2)")
    serve.add_argument("--max-pending", type=int, default=8,
                       help="per-stream bound on submitted-but-uncollected "
                            "segments before submits are shed with "
                            "REPRO-SRV-BACKPRESSURE (default 8)")
    serve.add_argument("--cache-capacity", type=int, default=16,
                       help="entries in each worker's shared cross-stream "
                            "plane/block cache (default 16)")
    serve.add_argument("--migrate", action=argparse.BooleanOptionalAction,
                       default=True,
                       help="move a dead or hung worker's streams to a "
                            "live worker and resume from checkpoints "
                            "(byte-identical bitstreams); --no-migrate "
                            "restores the poison-on-death semantics")
    serve.add_argument("--segment-timeout-s", type=float, default=None,
                       metavar="SECONDS",
                       help="declare a worker hung when its oldest "
                            "in-flight segment exceeds this age, then "
                            "terminate and recover it (default: no "
                            "deadline)")
    serve.add_argument("--journal", default=None, metavar="DIR",
                       help="write-ahead journal the control plane "
                            "(stream opens, per-segment checkpoints, "
                            "closes) into this directory; a restarted "
                            "service pointed at the same directory "
                            "restores every open stream and dedups "
                            "client resubmissions by sequence number")
    serve.add_argument("--auth-token", default=None, metavar="TOKEN",
                       help="require clients to prove this shared secret "
                            "via HMAC challenge-response (also via "
                            "REPRO_AUTH_TOKEN); a mismatch is a "
                            "structured REPRO-SRV-AUTH rejection")
    serve.add_argument("--inject-faults", default=None, metavar="SPEC",
                       help="deterministic fault-injection spec (kinds "
                            "raise/hang/latency/slowclient/disconnect/"
                            "svckill exercise the serving paths); see "
                            "repro.faults")
    serve.set_defaults(handler=_cmd_serve)

    client = sub.add_parser(
        "client",
        help="stream frames through a running 'serve' instance")
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=7007)
    client.add_argument("--frames", type=int, default=None,
                        help="frame count (default 10 synthetic, or every "
                             "frame of --input)")
    client.add_argument("--seed", type=int, default=2002)
    client.add_argument("--qp", type=int, default=10)
    client.add_argument("--gop-size", type=int, default=0,
                        help="intra-refresh period (0 = first frame only)")
    client.add_argument("--resync-every", type=int, default=0,
                        metavar="ROWS",
                        help="error-resilient stream layout period "
                             "(0 = legacy compact layout)")
    client.add_argument("--segment-frames", type=int, default=4,
                        help="frames per submitted segment (default 4)")
    client.add_argument("--input", default=None, metavar="FILE",
                        help="raw planar YUV420 file to stream instead of "
                             "the synthetic sequence")
    client.add_argument("--width", type=int, default=176,
                        help="luma width of --input (default QCIF 176)")
    client.add_argument("--height", type=int, default=144,
                        help="luma height of --input (default QCIF 144)")
    client.add_argument("--verify-decode", action="store_true",
                        help="have the service robust-decode the final "
                             "bitstream and report its DecodeHealth")
    client.add_argument("--auth-token", default=None, metavar="TOKEN",
                        help="shared secret matching the server's "
                             "--auth-token (also via REPRO_AUTH_TOKEN)")
    client.add_argument("--output", "-o", default=None, metavar="FILE",
                        help="write the returned bitstream here")
    client.set_defaults(handler=_cmd_client)

    cli_docs = sub.add_parser(
        "cli-docs",
        help="regenerate docs/CLI.md from this argparse tree")
    cli_docs.add_argument("--output", "-o", default="docs/CLI.md",
                          help="where the reference lands "
                               "(default docs/CLI.md)")
    cli_docs.add_argument("--check", action="store_true",
                          help="verify the committed file matches instead "
                               "of writing (exit 1 on drift)")
    cli_docs.set_defaults(handler=_cmd_cli_docs)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())

"""ST200/Lx-like instruction set architecture definitions.

This subpackage defines the register model (64 32-bit general-purpose
registers, 8 1-bit branch registers), the opcode table with per-opcode
latency and resource class, and the ``Operation``/``Bundle`` containers the
scheduler and the cycle-level machine share.
"""

from repro.isa.registers import (
    BranchRegister,
    GeneralRegister,
    Register,
    VirtualRegister,
    ZERO,
    gpr,
    br,
    vreg,
)
from repro.isa.opcodes import OPCODES, OpSpec, Resource, opcode_spec
from repro.isa.instruction import Bundle, Operation

__all__ = [
    "BranchRegister",
    "Bundle",
    "GeneralRegister",
    "OPCODES",
    "OpSpec",
    "Operation",
    "Register",
    "Resource",
    "VirtualRegister",
    "ZERO",
    "br",
    "gpr",
    "opcode_spec",
    "vreg",
]

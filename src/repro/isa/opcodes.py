"""Opcode table: per-opcode latency, resource class and operand signature.

The resource model matches the paper's 1-cluster ST200: a 4-issue datapath
with 4 integer ALUs, 2 multipliers (16x32), 1 load/store unit and 1 branch
unit.  The Reconfigurable Functional Unit (RFU) is an additional resource
class; RFU operation latency is configuration-dependent and resolved by the
scheduler/machine through the RFU registry, so the table stores latency
``None`` for those opcodes.

Latencies are producer-to-consumer distances in cycles (a latency-1 op's
result is available to an op issued in the next cycle), matching an
exposed-pipeline VLIW where the compiler schedules around latencies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import IsaError


class Resource(enum.Enum):
    """Functional-unit classes an operation can occupy for one cycle."""

    ALU = "alu"
    MUL = "mul"
    LSU = "lsu"
    BRANCH = "branch"
    RFU = "rfu"


@dataclass(frozen=True)
class OpSpec:
    """Static description of one opcode."""

    name: str
    resource: Resource
    latency: Optional[int]
    num_srcs: int
    has_dest: bool
    has_imm: bool = False
    is_load: bool = False
    is_store: bool = False
    is_prefetch: bool = False
    is_branch: bool = False
    writes_branch_reg: bool = False
    commutative: bool = False
    description: str = ""


#: Load-use latency on a D-cache hit (ST200-class short pipeline).
LOAD_LATENCY = 3
#: Multiplier latency.
MUL_LATENCY = 3
#: Compare-to-branch-register latency.
COMPARE_LATENCY = 2

_SPECS = [
    # --- integer ALU ------------------------------------------------------
    OpSpec("add", Resource.ALU, 1, 2, True, commutative=True,
           description="32-bit add"),
    OpSpec("sub", Resource.ALU, 1, 2, True, description="32-bit subtract"),
    OpSpec("and", Resource.ALU, 1, 2, True, commutative=True,
           description="bitwise and"),
    OpSpec("or", Resource.ALU, 1, 2, True, commutative=True,
           description="bitwise or"),
    OpSpec("xor", Resource.ALU, 1, 2, True, commutative=True,
           description="bitwise xor"),
    OpSpec("shl", Resource.ALU, 1, 2, True, description="shift left"),
    OpSpec("shr", Resource.ALU, 1, 2, True,
           description="logical shift right"),
    OpSpec("sra", Resource.ALU, 1, 2, True,
           description="arithmetic shift right"),
    OpSpec("min", Resource.ALU, 1, 2, True, commutative=True,
           description="signed minimum"),
    OpSpec("max", Resource.ALU, 1, 2, True, commutative=True,
           description="signed maximum"),
    OpSpec("mov", Resource.ALU, 1, 1, True, description="register copy"),
    OpSpec("movi", Resource.ALU, 1, 0, True, has_imm=True,
           description="load immediate"),
    OpSpec("addi", Resource.ALU, 1, 1, True, has_imm=True,
           description="add immediate"),
    OpSpec("shli", Resource.ALU, 1, 1, True, has_imm=True,
           description="shift left by immediate"),
    OpSpec("shri", Resource.ALU, 1, 1, True, has_imm=True,
           description="logical shift right by immediate"),
    OpSpec("andi", Resource.ALU, 1, 1, True, has_imm=True,
           description="and with immediate"),
    # --- compares (write a 1-bit branch register) -------------------------
    OpSpec("cmpeq", Resource.ALU, COMPARE_LATENCY, 2, True,
           writes_branch_reg=True, commutative=True,
           description="compare equal -> BR"),
    OpSpec("cmpne", Resource.ALU, COMPARE_LATENCY, 2, True,
           writes_branch_reg=True, commutative=True,
           description="compare not-equal -> BR"),
    OpSpec("cmplt", Resource.ALU, COMPARE_LATENCY, 2, True,
           writes_branch_reg=True, description="signed less-than -> BR"),
    OpSpec("cmpltu", Resource.ALU, COMPARE_LATENCY, 2, True,
           writes_branch_reg=True, description="unsigned less-than -> BR"),
    OpSpec("cmpgei", Resource.ALU, COMPARE_LATENCY, 1, True, has_imm=True,
           writes_branch_reg=True,
           description="signed greater-equal immediate -> BR"),
    OpSpec("cmpnei", Resource.ALU, COMPARE_LATENCY, 1, True, has_imm=True,
           writes_branch_reg=True,
           description="compare not-equal immediate -> BR"),
    # --- multiplier -------------------------------------------------------
    OpSpec("mul", Resource.MUL, MUL_LATENCY, 2, True, commutative=True,
           description="16x32 multiply (low 32 bits)"),
    OpSpec("mulh", Resource.MUL, MUL_LATENCY, 2, True,
           description="16x32 multiply, operand b high half"),
    # --- SIMD subword (execute on the ALUs, 4x8-bit / 2x16-bit lanes) -----
    OpSpec("add4", Resource.ALU, 1, 2, True, commutative=True,
           description="4x8-bit modular add"),
    OpSpec("addus4", Resource.ALU, 1, 2, True, commutative=True,
           description="4x8-bit unsigned saturating add"),
    OpSpec("sub4", Resource.ALU, 1, 2, True,
           description="4x8-bit modular subtract"),
    OpSpec("absd4", Resource.ALU, 1, 2, True, commutative=True,
           description="4x8-bit absolute difference"),
    OpSpec("avg4", Resource.ALU, 1, 2, True, commutative=True,
           description="4x8-bit rounded average (a+b+1)>>1"),
    OpSpec("sad4", Resource.ALU, 1, 2, True, commutative=True,
           description="sum of 4 absolute byte differences -> scalar"),
    OpSpec("add2", Resource.ALU, 1, 2, True, commutative=True,
           description="2x16-bit modular add"),
    OpSpec("unpkl2", Resource.ALU, 1, 1, True,
           description="zero-extend low 2 bytes to 2x16-bit lanes"),
    OpSpec("unpkh2", Resource.ALU, 1, 1, True,
           description="zero-extend high 2 bytes to 2x16-bit lanes"),
    OpSpec("pack4", Resource.ALU, 1, 2, True,
           description="narrow 2+2 16-bit lanes to 4x8-bit with truncation"),
    # --- memory -----------------------------------------------------------
    OpSpec("ldw", Resource.LSU, LOAD_LATENCY, 1, True, has_imm=True,
           is_load=True, description="load 32-bit word (base + imm)"),
    OpSpec("ldb", Resource.LSU, LOAD_LATENCY, 1, True, has_imm=True,
           is_load=True, description="load zero-extended byte"),
    OpSpec("stw", Resource.LSU, 1, 2, False, has_imm=True, is_store=True,
           description="store 32-bit word (srcs: value, base) + imm"),
    OpSpec("stb", Resource.LSU, 1, 2, False, has_imm=True, is_store=True,
           description="store low byte (srcs: value, base) + imm"),
    OpSpec("pft", Resource.LSU, 1, 1, True, has_imm=True, is_prefetch=True,
           description="prefetch cache line at base + imm (non-blocking); "
                       "dest unused"),
    # --- branch unit ------------------------------------------------------
    OpSpec("br", Resource.BRANCH, 1, 1, False, has_imm=True, is_branch=True,
           description="branch to label (imm) if BR source is true"),
    OpSpec("brf", Resource.BRANCH, 1, 1, False, has_imm=True, is_branch=True,
           description="branch to label (imm) if BR source is false"),
    OpSpec("goto", Resource.BRANCH, 1, 0, False, has_imm=True, is_branch=True,
           description="unconditional branch to label (imm)"),
    # --- RFU custom operations (latency from the configuration) -----------
    OpSpec("rfuinit", Resource.RFU, None, -1, False, has_imm=True,
           description="activate RFU configuration #imm; optional operands "
                       "set implicit configuration state"),
    OpSpec("rfusend", Resource.RFU, None, -1, False, has_imm=True,
           description="send explicit operands to RFU configuration #imm"),
    OpSpec("rfuexec", Resource.RFU, None, -1, True, has_imm=True,
           description="execute RFU configuration #imm, write dest"),
    OpSpec("rfupft", Resource.RFU, None, -1, False, has_imm=True,
           is_prefetch=True,
           description="RFU prefetch-pattern instruction (non-blocking)"),
]

OPCODES: Dict[str, OpSpec] = {spec.name: spec for spec in _SPECS}


def opcode_spec(name: str) -> OpSpec:
    """Look up an opcode's :class:`OpSpec`, raising :class:`IsaError`."""
    try:
        return OPCODES[name]
    except KeyError:
        raise IsaError(f"unknown opcode {name!r}") from None

"""Operation and Bundle containers shared by the scheduler and the machine."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.errors import IsaError
from repro.isa.opcodes import OpSpec, opcode_spec
from repro.isa.registers import Register

_OP_IDS = itertools.count()


@dataclass
class Operation:
    """One VLIW operation (a *syllable* in Lx terminology).

    ``srcs``/``dest`` hold :class:`Register` objects — virtual before register
    allocation, architectural after.  ``imm`` carries immediates, branch
    target labels, or the RFU configuration id depending on the opcode.
    ``mem_tag`` groups memory operations that may alias: memory operations in
    the same tag group keep their program order; differently-tagged groups may
    be reordered freely by the scheduler.
    """

    opcode: str
    dest: Optional[Register] = None
    srcs: Tuple[Register, ...] = ()
    imm: Optional[int] = None
    label: Optional[str] = None
    mem_tag: Optional[str] = None
    comment: str = ""
    uid: int = field(default_factory=lambda: next(_OP_IDS))

    def __post_init__(self) -> None:
        self.srcs = tuple(self.srcs)
        spec = self.spec  # validates the opcode
        if spec.num_srcs >= 0 and len(self.srcs) != spec.num_srcs:
            raise IsaError(
                f"{self.opcode} expects {spec.num_srcs} sources, "
                f"got {len(self.srcs)}")
        if spec.has_dest and self.dest is None:
            raise IsaError(f"{self.opcode} requires a destination register")
        if not spec.has_dest and self.dest is not None:
            raise IsaError(f"{self.opcode} does not write a destination")
        if spec.is_branch and self.label is None:
            raise IsaError(f"{self.opcode} requires a target label")

    @property
    def spec(self) -> OpSpec:
        return opcode_spec(self.opcode)

    def renamed(self, mapping) -> "Operation":
        """Return a copy with registers rewritten through ``mapping``."""
        return Operation(
            opcode=self.opcode,
            dest=mapping(self.dest) if self.dest is not None else None,
            srcs=tuple(mapping(src) for src in self.srcs),
            imm=self.imm,
            label=self.label,
            mem_tag=self.mem_tag,
            comment=self.comment,
        )

    def __repr__(self) -> str:
        parts = [self.opcode]
        if self.dest is not None:
            parts.append(f"{self.dest} =")
        parts.extend(str(src) for src in self.srcs)
        if self.imm is not None:
            parts.append(f"#{self.imm}")
        if self.label is not None:
            parts.append(f"-> {self.label}")
        return " ".join(parts)


@dataclass
class Bundle:
    """The set of operations issued in one cycle (at most ``issue_width``)."""

    ops: List[Operation] = field(default_factory=list)

    #: Encoded size in bytes: 4 syllables x 4 bytes, the fetch granule used
    #: by the instruction-cache model.
    SIZE_BYTES = 16

    def __iter__(self):
        return iter(self.ops)

    def __len__(self) -> int:
        return len(self.ops)

    def __repr__(self) -> str:
        body = " ; ".join(repr(op) for op in self.ops) or "nop"
        return f"{{ {body} }}"


def format_schedule(bundles: Sequence[Bundle]) -> str:
    """Render a bundle sequence as readable VLIW assembly, one cycle per line."""
    lines = []
    for cycle, bundle in enumerate(bundles):
        lines.append(f"{cycle:4d}: {bundle!r}")
    return "\n".join(lines)

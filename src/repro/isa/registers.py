"""Register model of the single-cluster ST200.

The paper's cluster has 64 32-bit general-purpose registers (``$r0`` is
hardwired to zero, as on Lx) and 8 1-bit branch registers holding branch
conditions, predicates and carries.

The scheduler works on :class:`VirtualRegister` names; the register allocator
rewrites them to :class:`GeneralRegister`/:class:`BranchRegister` instances.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import IsaError

NUM_GPR = 64
NUM_BR = 8


@dataclass(frozen=True)
class Register:
    """Base class for architectural and virtual registers."""

    index: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return repr(self)


@dataclass(frozen=True)
class GeneralRegister(Register):
    """A 32-bit general purpose register ``$r0 .. $r63``."""

    def __repr__(self) -> str:
        return f"$r{self.index}"


@dataclass(frozen=True)
class BranchRegister(Register):
    """A 1-bit branch/predicate register ``$b0 .. $b7``."""

    def __repr__(self) -> str:
        return f"$b{self.index}"


@dataclass(frozen=True)
class VirtualRegister(Register):
    """An unallocated register name produced by the kernel builders.

    ``is_branch`` selects the target bank (GPR vs BR) for allocation.
    """

    name: str = ""
    is_branch: bool = False

    def __repr__(self) -> str:
        prefix = "%b" if self.is_branch else "%v"
        return f"{prefix}{self.name or self.index}"


def gpr(index: int) -> GeneralRegister:
    """Return the architectural GPR ``$r<index>``, validating the range."""
    if not 0 <= index < NUM_GPR:
        raise IsaError(f"GPR index {index} out of range 0..{NUM_GPR - 1}")
    return GeneralRegister(index)


def br(index: int) -> BranchRegister:
    """Return the architectural branch register ``$b<index>``."""
    if not 0 <= index < NUM_BR:
        raise IsaError(f"BR index {index} out of range 0..{NUM_BR - 1}")
    return BranchRegister(index)


#: ``$r0`` is hardwired to zero; writes to it are discarded.
ZERO = gpr(0)

_VREG_COUNTER = [0]


def vreg(name: str = "", is_branch: bool = False) -> VirtualRegister:
    """Create a fresh virtual register with an optional debug name."""
    _VREG_COUNTER[0] += 1
    return VirtualRegister(_VREG_COUNTER[0], name, is_branch)

"""Text assembly frontend for the ST200+RFU IR.

Kernels can be written as plain text instead of through
:class:`~repro.program.builder.KernelBuilder`::

    kernel sum8
    params base
    persistent acc, n

    block init:
        movi n = #8
        movi acc = #0
    block loop:
        ldw t0 = base, #0
        add acc = acc, t0
        addi base = base, #4
        addi n = n, #-1
        cmpnei c = n, #0
        br c, loop
    result acc

Syntax:

* ``kernel <name>`` — starts a program (required, first directive);
* ``params a, b`` / ``persistent x, y`` / ``result r`` — declarations;
* ``block <label>:`` — opens a basic block;
* operations: ``op dest = src1, src2, #imm`` (destination and ``=`` only
  for value-producing opcodes; immediates prefixed ``#``);
* branches: ``br cond, <label>`` / ``brf cond, <label>`` / ``goto <label>``;
* RFU operations carry their configuration as ``cfg=<n>``:
  ``rfuexec d = a, b, cfg=3``;
* a trailing ``!tag`` attaches a memory alias tag: ``ldw t = p, #0 !frame``;
* ``;`` or ``#`` at line start / ``//`` anywhere starts a comment.

Operand names are virtual registers, created on first mention; names
listed under ``params``/``persistent`` (and the result) become pinned
registers exactly as with the builder API.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.errors import IsaError
from repro.isa.instruction import Operation
from repro.isa.opcodes import opcode_spec
from repro.isa.registers import VirtualRegister, vreg
from repro.program.ir import BasicBlock, Program

_NAME = r"[A-Za-z_][A-Za-z0-9_]*"
_NAME_RE = re.compile(rf"^{_NAME}$")


class _ParserState:
    def __init__(self, line_number: int = 0):
        self.program: Optional[Program] = None
        self.block: Optional[BasicBlock] = None
        self.registers: Dict[str, VirtualRegister] = {}
        self.line_number = line_number

    def error(self, message: str) -> IsaError:
        return IsaError(f"asm line {self.line_number}: {message}")

    def register(self, name: str, is_branch: bool = False) -> VirtualRegister:
        if not _NAME_RE.match(name):
            raise self.error(f"bad register name {name!r}")
        if name not in self.registers:
            self.registers[name] = vreg(name, is_branch=is_branch)
        return self.registers[name]


def _strip_comment(line: str) -> str:
    line = line.split("//", 1)[0]
    stripped = line.strip()
    if stripped.startswith((";", "#")):
        return ""
    return stripped


def _parse_operand_list(text: str) -> List[str]:
    return [item.strip() for item in text.split(",") if item.strip()]


def _parse_operation(state: _ParserState, line: str) -> Operation:
    mem_tag = None
    if "!" in line:
        line, _, tag = line.rpartition("!")
        mem_tag = tag.strip()
        line = line.strip()

    dest_name = None
    dest_form = re.match(rf"^({_NAME})\s+({_NAME})\s*=\s*(.*)$", line)
    if dest_form:
        opcode, dest_name, rest = dest_form.groups()
        rest = rest.strip()
    else:
        tokens = line.split(None, 1)
        opcode = tokens[0]
        rest = tokens[1].strip() if len(tokens) > 1 else ""

    spec = opcode_spec(opcode)
    items = _parse_operand_list(rest)
    label: Optional[str] = None
    if spec.is_branch:
        if not items or items[-1].startswith(("#", "cfg=")):
            raise state.error(f"{opcode} needs a target label last")
        label = items.pop()
    srcs: List[VirtualRegister] = []
    imm: Optional[int] = None
    for item in items:
        if item.startswith("#"):
            if imm is not None:
                raise state.error("more than one immediate")
            try:
                imm = int(item[1:], 0)
            except ValueError:
                raise state.error(f"bad immediate {item!r}") from None
        elif item.startswith("cfg="):
            if imm is not None:
                raise state.error("both cfg= and an immediate given")
            imm = int(item[4:], 0)
        else:
            srcs.append(state.register(
                item, is_branch=spec.is_branch and not srcs))
    dest = None
    if spec.has_dest:
        if dest_name is None:
            raise state.error(f"{opcode} needs a destination ('op d = ...')")
        dest = state.register(dest_name, is_branch=spec.writes_branch_reg)
    elif dest_name is not None:
        raise state.error(f"{opcode} does not produce a value")
    if spec.is_branch:
        # branches encode the target as a label; imm stays unused
        return Operation(opcode=opcode, dest=None, srcs=tuple(srcs),
                         imm=imm or 0, label=label, mem_tag=mem_tag)
    return Operation(opcode=opcode, dest=dest, srcs=tuple(srcs), imm=imm,
                     label=label, mem_tag=mem_tag)


def parse_program(text: str) -> Program:
    """Parse assembly text into a validated :class:`Program`."""
    state = _ParserState()
    for line_number, raw in enumerate(text.splitlines(), start=1):
        state.line_number = line_number
        line = _strip_comment(raw)
        if not line:
            continue
        directive, _, rest = line.partition(" ")
        rest = rest.strip()
        if directive == "kernel":
            if state.program is not None:
                raise state.error("duplicate 'kernel' directive")
            if not rest:
                raise state.error("kernel needs a name")
            state.program = Program(rest)
            continue
        if state.program is None:
            raise state.error("text must start with 'kernel <name>'")
        if directive == "params":
            for name in _parse_operand_list(rest):
                reg = state.register(name)
                state.program.params.append(reg)
                state.program.persistent.add(reg)
        elif directive == "persistent":
            for name in _parse_operand_list(rest):
                state.program.persistent.add(state.register(name))
        elif directive == "result":
            names = _parse_operand_list(rest)
            if len(names) != 1:
                raise state.error("result takes exactly one register")
            reg = state.register(names[0])
            state.program.result = reg
            state.program.persistent.add(reg)
        elif directive == "block":
            label = rest.rstrip(":").strip()
            if not label:
                raise state.error("block needs a label")
            if any(blk.label == label for blk in state.program.blocks):
                raise state.error(f"duplicate block label {label!r}")
            state.block = BasicBlock(label)
            state.program.blocks.append(state.block)
        else:
            if state.block is None:
                raise state.error("operation outside of a block")
            try:
                state.block.append(_parse_operation(state, line))
            except IsaError as exc:
                if str(exc).startswith("asm line"):
                    raise
                raise state.error(str(exc)) from exc
    if state.program is None:
        raise IsaError("empty assembly text")
    state.program.validate()
    return state.program

"""Shared TCP/JSON-lines plumbing for the repro network services.

One request per line, one JSON object per request, in both directions —
the lowest-dependency wire format the standard library can serve
(``asyncio.start_server``) and any language can speak.  Two services ride
on it: the streaming codec service (:mod:`repro.serve.transport`) and the
distributed sweep coordinator (:mod:`repro.sweep.distributed`).  This
module holds exactly the plumbing they share, so framing rules and
failure semantics cannot drift apart:

* :class:`JsonLinesServer` — the asyncio accept/read/respond/cleanup
  loop.  Subclasses implement :meth:`~JsonLinesServer.respond` (one
  request line → one response dict, plus a drop flag for injected
  disconnects), and may carry per-connection state via
  :meth:`~JsonLinesServer.connection_state` /
  :meth:`~JsonLinesServer.on_disconnect`;
* :class:`JsonLinesClient` — the blocking (plain socket) counterpart.
  Subclasses map ``{"ok": false, "code": ...}`` responses back onto
  :mod:`repro.errors` classes via :meth:`~JsonLinesClient.error_for`.

Shared failure semantics:

* a line over the server's line limit (:data:`MAX_LINE_BYTES` by
  default) gets a structured ``{"ok": false, "code": ...}`` rejection
  and then closes the connection — there is no way to resynchronise a
  JSON-lines stream mid-line, but the peer always hears *why*;
* client/server disconnects surface as closed connections or the
  client's structured ``unavailable_error`` — never unstructured
  exceptions escaping the loop (a truncated or garbage response line is
  mapped the same way);
* :meth:`JsonLinesClient.request` is thread-safe: a lock serialises the
  write/read cycle so a heartbeat thread can share a worker's single
  connection with the main loop without interleaving frames;
* per-connection cleanup (:meth:`~JsonLinesServer.on_disconnect`) always
  runs, whether the peer closed cleanly, vanished, or an injected
  ``disconnect`` fault dropped the connection first.
"""

from __future__ import annotations

import asyncio
import json
import socket
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ReproError, ServiceUnavailable
from repro.supervise import retry_backoff_s

#: one JSON line must fit a whole request (a QCIF frame is ~50 KB of
#: base64; 32 MiB leaves room for ~600-frame segments — and a rendered
#: sweep cell is far smaller)
MAX_LINE_BYTES = 32 * 1024 * 1024


class JsonLinesServer:
    """Asyncio JSON-lines server shell: bind, frame, dispatch, clean up.

    Subclasses implement :meth:`respond`; everything else — line framing,
    the over-limit close, peer-reset tolerance, guaranteed per-connection
    cleanup — lives here once.
    """

    #: error class whose code/hint a framing rejection (oversize line)
    #: carries; subclasses override with their protocol-error class
    frame_error = ReproError

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 max_line_bytes: int = MAX_LINE_BYTES):
        self.host = host
        self.port = port
        self.max_line_bytes = max_line_bytes
        self._server: Optional[asyncio.AbstractServer] = None

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the bound (host, port)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
            limit=self.max_line_bytes)
        bound = self._server.sockets[0].getsockname()
        self.host, self.port = bound[0], bound[1]
        return self.host, self.port

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # -- per-connection hooks --------------------------------------------------

    def connection_state(self) -> object:
        """Fresh per-connection state, handed to every :meth:`respond`
        call and to :meth:`on_disconnect` (default: None)."""
        return None

    async def respond(self, line: bytes, state: object,
                      requests: int) -> Tuple[Dict[str, object], bool]:
        """Handle one request line; returns ``(response, drop)``.

        ``requests`` counts this connection's requests (1-based).  A true
        ``drop`` closes the connection *without* writing the response —
        the injected-disconnect hook.
        """
        raise NotImplementedError

    async def on_disconnect(self, state: object) -> None:
        """Connection teardown (always runs, however the peer left)."""

    # -- the shared loop -------------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        state = self.connection_state()
        requests = 0
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # past the line limit the stream cannot be re-framed;
                    # reject with a structured code, then close
                    rejection = {
                        "ok": False,
                        "code": self.frame_error.code,
                        "error": (f"request line exceeds the "
                                  f"{self.max_line_bytes}-byte limit"),
                        "hint": self.frame_error.hint,
                    }
                    writer.write(
                        json.dumps(rejection).encode("utf-8") + b"\n")
                    await writer.drain()
                    break
                if not line:
                    break
                requests += 1
                response, drop = await self.respond(line, state, requests)
                if drop:
                    break      # injected disconnect: drop before replying
                writer.write(json.dumps(response).encode("utf-8") + b"\n")
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            await self.on_disconnect(state)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


class JsonLinesClient:
    """Blocking JSON-lines client over a plain socket.

    :meth:`request` writes one JSON object and returns the parsed
    response; responses with ``ok`` false re-raise as whatever
    :meth:`error_for` maps their wire ``code`` onto.

    Connecting retries transient ``ConnectionError``/``OSError`` with
    bounded exponential backoff plus deterministic jitter
    (:func:`repro.supervise.retry_backoff_s`) — a service mid-restart
    looks exactly like a refused connection, and giving it a couple of
    seconds is what makes journal-based recovery invisible to clients.
    An exhausted budget raises the subclass's structured
    ``unavailable_error`` (``REPRO-SRV-UNAVAILABLE`` /
    ``REPRO-DIST-UNREACHABLE``), never a raw socket error.
    """

    #: raised when the server closes the connection mid-request;
    #: subclasses override with their service's unavailability class
    unavailable_error = ServiceUnavailable

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: Optional[float] = 120.0,
                 connect_retries: int = 3,
                 backoff_base_s: float = 0.1,
                 backoff_max_s: float = 2.0,
                 sleep: Callable[[float], None] = time.sleep):
        self._host = host
        self._port = port
        self._timeout = timeout
        last_error: Optional[Exception] = None
        for attempt in range(connect_retries + 1):
            if attempt:
                sleep(retry_backoff_s(attempt - 1, base_s=backoff_base_s,
                                      max_s=backoff_max_s,
                                      key=f"{host}:{port}"))
            try:
                self._socket = socket.create_connection((host, port),
                                                        timeout=timeout)
                break
            except (ConnectionError, OSError) as exc:
                last_error = exc
        else:
            raise self.unavailable_error(
                f"could not connect to {host}:{port} after "
                f"{connect_retries + 1} attempts: {last_error}"
            ) from last_error
        self._file = self._socket.makefile("rwb")
        # serialises the write/read cycle so threads (e.g. a heartbeat
        # sender) can share this connection without interleaving frames
        self._lock = threading.Lock()

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._socket.close()

    def __enter__(self) -> "JsonLinesClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def error_for(self, response: Dict[str, object]) -> ReproError:
        """The exception a failed response re-raises as (subclass hook)."""
        return ReproError(str(response.get("error", "request failed")))

    def request(self, request: Dict[str, object]) -> Dict[str, object]:
        with self._lock:
            self._file.write(json.dumps(request).encode("utf-8") + b"\n")
            self._file.flush()
            line = self._file.readline()
        if not line:
            raise self.unavailable_error(
                "the server closed the connection mid-request")
        if not line.endswith(b"\n"):
            # EOF mid-line: the server died while writing this frame
            raise self.unavailable_error(
                "the connection closed mid-frame (truncated response)")
        try:
            response = json.loads(line)
        except ValueError:
            raise self.unavailable_error(
                "the server sent a malformed response line") from None
        if not isinstance(response, dict):
            raise self.unavailable_error(
                "the server sent a non-object response line")
        if not response.get("ok"):
            raise self.error_for(response)
        return response

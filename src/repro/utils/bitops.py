"""32-bit subword (SIMD) arithmetic helpers.

The ST200 SIMD model of the paper packs four 8-bit pixels or two 16-bit
samples into one 32-bit general-purpose register.  Every helper here operates
on plain Python ints constrained to 32 bits (``0 <= word < 2**32``) so the
machine semantics stay exact and independent of numpy dtypes.

Lane 0 is the least significant byte/halfword, matching little-endian memory
packing: the pixel at the lowest address occupies bits 7..0.
"""

from __future__ import annotations

from typing import List, Sequence

MASK8 = 0xFF
MASK16 = 0xFFFF
MASK32 = 0xFFFFFFFF


def to_u32(value: int) -> int:
    """Wrap an arbitrary int to an unsigned 32-bit value."""
    return value & MASK32


def to_s32(value: int) -> int:
    """Interpret the low 32 bits of ``value`` as a signed 32-bit integer."""
    value &= MASK32
    return value - (1 << 32) if value & 0x80000000 else value


def to_u8(value: int) -> int:
    """Wrap an arbitrary int to an unsigned 8-bit value."""
    return value & MASK8


def sat_u8(value: int) -> int:
    """Saturate an arbitrary int to the unsigned 8-bit range [0, 255]."""
    if value < 0:
        return 0
    if value > MASK8:
        return MASK8
    return value


def pack_bytes(lanes: Sequence[int]) -> int:
    """Pack four byte lanes (lane 0 = LSB) into one 32-bit word."""
    if len(lanes) != 4:
        raise ValueError(f"expected 4 byte lanes, got {len(lanes)}")
    word = 0
    for index, lane in enumerate(lanes):
        word |= (lane & MASK8) << (8 * index)
    return word


def unpack_bytes(word: int) -> List[int]:
    """Unpack a 32-bit word into its four byte lanes (lane 0 = LSB)."""
    word = to_u32(word)
    return [(word >> (8 * index)) & MASK8 for index in range(4)]


def pack_halves(lanes: Sequence[int]) -> int:
    """Pack two 16-bit lanes (lane 0 = LSB) into one 32-bit word."""
    if len(lanes) != 2:
        raise ValueError(f"expected 2 halfword lanes, got {len(lanes)}")
    return (lanes[0] & MASK16) | ((lanes[1] & MASK16) << 16)


def unpack_halves(word: int) -> List[int]:
    """Unpack a 32-bit word into two 16-bit lanes (lane 0 = LSB)."""
    word = to_u32(word)
    return [word & MASK16, (word >> 16) & MASK16]


def add_bytes(a: int, b: int) -> int:
    """Lane-wise modular addition of four unsigned bytes."""
    return pack_bytes([(x + y) & MASK8
                       for x, y in zip(unpack_bytes(a), unpack_bytes(b))])


def addus_bytes(a: int, b: int) -> int:
    """Lane-wise unsigned saturating addition of four bytes."""
    return pack_bytes([sat_u8(x + y)
                       for x, y in zip(unpack_bytes(a), unpack_bytes(b))])


def sub_bytes(a: int, b: int) -> int:
    """Lane-wise modular subtraction of four unsigned bytes."""
    return pack_bytes([(x - y) & MASK8
                       for x, y in zip(unpack_bytes(a), unpack_bytes(b))])


def absdif_bytes(a: int, b: int) -> int:
    """Lane-wise absolute difference of four unsigned bytes."""
    return pack_bytes([abs(x - y)
                       for x, y in zip(unpack_bytes(a), unpack_bytes(b))])


def avg_bytes(a: int, b: int) -> int:
    """Lane-wise rounded average ((x + y + 1) >> 1) of four unsigned bytes."""
    return pack_bytes([(x + y + 1) >> 1
                       for x, y in zip(unpack_bytes(a), unpack_bytes(b))])


def avg4_round_bytes(a: int, b: int, c: int, d: int) -> int:
    """Lane-wise rounded 4-way average ((w+x+y+z+2) >> 2) of unsigned bytes.

    This is the MPEG4 half-sample *diagonal* interpolation formula (with
    ``rounding_control`` 0, i.e. the +2 rounding term).
    """
    lanes_a = unpack_bytes(a)
    lanes_b = unpack_bytes(b)
    lanes_c = unpack_bytes(c)
    lanes_d = unpack_bytes(d)
    return pack_bytes([(w + x + y + z + 2) >> 2
                       for w, x, y, z in zip(lanes_a, lanes_b, lanes_c, lanes_d)])


def sad_bytes(a: int, b: int) -> int:
    """Sum of absolute byte differences between two packed words (0..1020)."""
    return sum(abs(x - y) for x, y in zip(unpack_bytes(a), unpack_bytes(b)))


def funnel_shift_right(low: int, high: int, byte_shift: int) -> int:
    """Extract a 32-bit window from the 64-bit pair (high:low).

    ``byte_shift`` counts bytes (0..3).  With little-endian pixel packing this
    realigns a run of pixels that straddles two consecutive memory words:
    lane i of the result is the pixel at ``address + byte_shift + i``.
    """
    if not 0 <= byte_shift <= 3:
        raise ValueError(f"byte_shift must be in 0..3, got {byte_shift}")
    combined = (to_u32(high) << 32) | to_u32(low)
    return (combined >> (8 * byte_shift)) & MASK32


def bytes_to_words(raw: Sequence[int]) -> List[int]:
    """Pack a byte sequence (length multiple of 4) into 32-bit words."""
    if len(raw) % 4 != 0:
        raise ValueError(f"byte length {len(raw)} is not a multiple of 4")
    return [pack_bytes(raw[offset:offset + 4]) for offset in range(0, len(raw), 4)]


def words_to_bytes(words: Sequence[int]) -> List[int]:
    """Flatten 32-bit words back into their byte lanes."""
    out: List[int] = []
    for word in words:
        out.extend(unpack_bytes(word))
    return out

"""Shared low-level helpers (subword bit manipulation, table rendering)."""

from repro.utils import bitops

__all__ = ["bitops"]

"""Generate ``docs/CLI.md`` from the live argparse tree.

The CLI reference is *derived*, never hand-maintained: this module walks
:func:`repro.__main__.build_parser`'s subparser tree and renders one
markdown section per subcommand — every flag, its default, its choices,
its help string.  ``python -m repro cli-docs`` writes the file;
``python -m repro cli-docs --check`` (and ``tests/test_cli_docs.py``)
diff the rendering against the committed file, so a flag added without
regenerating the doc fails CI rather than silently drifting.

The rendering is deliberately independent of terminal width and argparse
formatter internals: it reads ``option_strings`` / ``default`` /
``choices`` / ``help`` off each action directly, so the output is
byte-stable across environments.
"""

from __future__ import annotations

import argparse
from typing import List

_HEADER = """\
# `python -m repro` — CLI reference

<!-- GENERATED FILE - do not edit by hand.
     Regenerate with:  PYTHONPATH=src python -m repro cli-docs
     tests/test_cli_docs.py fails when this file drifts from the
     argparse tree in src/repro/__main__.py. -->
"""


def _escape(text: str) -> str:
    return text.replace("|", "\\|").replace("\n", " ")


def _default_cell(action: argparse.Action) -> str:
    if isinstance(action, (argparse._StoreTrueAction,
                           argparse._StoreFalseAction)):
        return "off" if not action.default else "on"
    if action.default is None or action.default is argparse.SUPPRESS:
        return "—"
    return f"`{action.default}`"


def _flag_cell(action: argparse.Action) -> str:
    if not action.option_strings:          # positional argument
        name = action.metavar or action.dest
        return f"`{name}`"
    flags = ", ".join(f"`{flag}`" for flag in action.option_strings)
    if action.choices is not None:
        values = "\\|".join(str(choice) for choice in action.choices)
        return f"{flags} `{{{values}}}`"
    if action.metavar and not isinstance(
            action, (argparse._StoreTrueAction, argparse._StoreFalseAction,
                     argparse._VersionAction, argparse._HelpAction)):
        return f"{flags} `{action.metavar}`"
    return flags


def _action_rows(parser: argparse.ArgumentParser) -> List[str]:
    rows = []
    for action in parser._actions:
        if isinstance(action, (argparse._HelpAction,
                               argparse._SubParsersAction)):
            continue
        rows.append(f"| {_flag_cell(action)} | {_default_cell(action)} | "
                    f"{_escape(action.help or '')} |")
    return rows


def _subparsers_action(parser: argparse.ArgumentParser
                       ) -> argparse._SubParsersAction:
    for action in parser._actions:
        if isinstance(action, argparse._SubParsersAction):
            return action
    raise ValueError("the parser has no subcommands")


def render_cli_markdown(parser: argparse.ArgumentParser) -> str:
    """The full, deterministic markdown reference for ``parser``."""
    sub = _subparsers_action(parser)
    lines = [_HEADER]
    if parser.description:
        lines.append(parser.description)
        lines.append("")
    lines.append("## Commands")
    lines.append("")
    lines.append("| command | summary |")
    lines.append("| --- | --- |")
    for name, choice in sub.choices.items():
        help_text = next((item.help for item in sub._choices_actions
                          if item.dest == name), "") or ""
        lines.append(f"| [`repro {name}`](#repro-{name}) | "
                     f"{_escape(help_text)} |")
    lines.append("")
    global_rows = _action_rows(parser)
    if global_rows:
        lines.append("## Global options")
        lines.append("")
        lines.append("| flag | default | description |")
        lines.append("| --- | --- | --- |")
        lines.extend(global_rows)
        lines.append("")
    for name, choice in sub.choices.items():
        lines.append(f"## `repro {name}`")
        lines.append("")
        help_text = next((item.help for item in sub._choices_actions
                          if item.dest == name), None)
        description = choice.description or help_text
        if description:
            lines.append(f"{description.rstrip('.')}." if not
                         description.rstrip().endswith(".") else description)
            lines.append("")
        lines.append(f"```\npython -m repro {name} [options]\n```")
        lines.append("")
        rows = _action_rows(choice)
        if rows:
            lines.append("| flag | default | description |")
            lines.append("| --- | --- | --- |")
            lines.extend(rows)
        else:
            lines.append("*(no options)*")
        lines.append("")
    return "\n".join(lines).rstrip() + "\n"

"""External memory bus: serialises cache-line fills.

Every structure that brings lines on chip (demand misses, the prefetch
buffer, Line Buffer B's autonomous prefetches) shares one bus.  The bus
serves at most one line fill every ``service_interval`` cycles with a fixed
``latency`` from service start to data arrival, so prefetch storms from the
RFU's macroblock-pattern instructions naturally push each other (and demand
misses) back in time — the effect behind the paper's Table 4/5 stall
discussion.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MemoryBus:
    """A single-channel line-fill pipe with limited issue bandwidth."""

    latency: int = 25
    service_interval: int = 4
    next_free: int = 0
    fills: int = 0
    busy_cycles: int = 0

    def request(self, cycle: int, urgent: bool = False) -> int:
        """Schedule one line fill requested at ``cycle``; return arrival cycle.

        ``urgent`` requests (demand misses) do not queue behind earlier
        prefetches more than physically necessary — they still respect the
        single channel, which is the point of the model.
        """
        start = max(cycle, self.next_free)
        self.next_free = start + self.service_interval
        self.fills += 1
        self.busy_cycles += self.service_interval
        return start + self.latency

    def reset(self) -> None:
        self.next_free = 0
        self.fills = 0
        self.busy_cycles = 0

"""Memory hierarchy: main memory, I$/D$ models, prefetch buffer, line buffers.

Caches are *timing-only*: functional data always comes from
:class:`~repro.memory.main_memory.MainMemory` (stores are write-through,
no-allocate), while the cache/prefetch structures decide how many stall
cycles each access costs.  This matches the paper's functional-level
methodology, where the simulator "embeds I and D cache models" purely to
account for stalls, and keeps the RFU's autonomous accesses trivially
coherent.
"""

from repro.memory.main_memory import MainMemory
from repro.memory.bus import MemoryBus
from repro.memory.cache import Cache, CacheStats
from repro.memory.prefetch import PrefetchArrayState, PrefetchBuffer
from repro.memory.linebuffer import LineBufferA, LineBufferB
from repro.memory.hierarchy import MemorySystem, MemoryTimings

__all__ = [
    "Cache",
    "CacheStats",
    "LineBufferA",
    "LineBufferB",
    "MainMemory",
    "MemoryBus",
    "MemorySystem",
    "MemoryTimings",
    "PrefetchArrayState",
    "PrefetchBuffer",
]

"""Byte-addressable main memory backed by a numpy array (little endian)."""

from __future__ import annotations

import numpy as np

from repro.errors import MemoryError_
from repro.utils.bitops import MASK32, to_u32


class MainMemory:
    """Flat physical memory.

    Words are little-endian: the byte at the lowest address is the least
    significant lane, matching :mod:`repro.utils.bitops` packing so that the
    pixel at the lowest address is SIMD lane 0.
    """

    def __init__(self, size: int = 1 << 22):
        if size <= 0 or size % 4 != 0:
            raise MemoryError_(f"memory size must be a positive multiple of 4,"
                               f" got {size}")
        self.size = size
        self.data = np.zeros(size, dtype=np.uint8)

    def _check(self, addr: int, width: int) -> None:
        if not 0 <= addr <= self.size - width:
            raise MemoryError_(
                f"access at 0x{addr:x} (width {width}) outside memory of "
                f"size 0x{self.size:x}")

    def load_byte(self, addr: int) -> int:
        self._check(addr, 1)
        return int(self.data[addr])

    def store_byte(self, addr: int, value: int) -> None:
        self._check(addr, 1)
        self.data[addr] = value & 0xFF

    def load_word(self, addr: int) -> int:
        """Load a 32-bit little-endian word (4-byte aligned)."""
        if addr % 4 != 0:
            raise MemoryError_(f"unaligned word load at 0x{addr:x}")
        self._check(addr, 4)
        chunk = self.data[addr:addr + 4]
        return int(chunk[0]) | (int(chunk[1]) << 8) | (int(chunk[2]) << 16) \
            | (int(chunk[3]) << 24)

    def store_word(self, addr: int, value: int) -> None:
        if addr % 4 != 0:
            raise MemoryError_(f"unaligned word store at 0x{addr:x}")
        self._check(addr, 4)
        value = to_u32(value)
        self.data[addr] = value & 0xFF
        self.data[addr + 1] = (value >> 8) & 0xFF
        self.data[addr + 2] = (value >> 16) & 0xFF
        self.data[addr + 3] = (value >> 24) & 0xFF

    def write_block(self, addr: int, payload) -> None:
        """Bulk byte copy (used to place frames in memory)."""
        payload = np.asarray(payload, dtype=np.uint8).ravel()
        self._check(addr, len(payload))
        self.data[addr:addr + len(payload)] = payload

    def read_block(self, addr: int, length: int) -> np.ndarray:
        self._check(addr, length)
        return self.data[addr:addr + length].copy()

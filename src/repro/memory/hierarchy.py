"""The complete memory system of the modified ST200 (Figure 1).

Combines main memory, the 128 KB direct-mapped I-cache, the 32 KB 4-way
D-cache with its prefetch buffer, and the shared external bus.  All demand
misses stall the whole machine, per the paper ("on data cache misses, the
whole machine stalls as usual").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.memory.bus import MemoryBus
from repro.memory.cache import Cache
from repro.memory.main_memory import MainMemory
from repro.memory.prefetch import PrefetchBuffer


@dataclass
class MemoryTimings:
    """Timing/geometry knobs of the memory hierarchy (paper defaults)."""

    icache_size: int = 128 * 1024
    icache_line: int = 64
    icache_assoc: int = 1          # direct mapped
    dcache_size: int = 32 * 1024
    dcache_line: int = 32
    dcache_assoc: int = 4
    prefetch_entries: int = 8      # 64 in the loop-level experiments
    bus_latency: int = 40          # line fill latency (cycles)
    bus_service_interval: int = 8  # min cycles between line fills
    #: the baseline prefetch buffer's hardware next-line prefetch on a miss
    hardware_next_line_prefetch: bool = True
    main_memory_size: int = 1 << 22

    def dcache_geometry(self) -> Tuple[int, int, int]:
        """``(line_bytes, num_sets, associativity)`` of the D-cache.

        The columnar replay engine classifies every access against raw
        per-set LRU state; deriving the geometry here keeps it in exact
        agreement with what :class:`~repro.memory.cache.Cache` builds."""
        num_sets = self.dcache_size // (self.dcache_line * self.dcache_assoc)
        return self.dcache_line, num_sets, self.dcache_assoc

    def memory_key(self) -> Tuple:
        """Hashable key of every field that can change data-side replay
        timing.  Replay caches (the instruction-level stall memo) key on
        this so two scenarios differing in, say, ``prefetch_entries`` never
        share a cached stall count."""
        return (self.dcache_size, self.dcache_line, self.dcache_assoc,
                self.prefetch_entries, self.bus_latency,
                self.bus_service_interval, self.hardware_next_line_prefetch)


@dataclass
class MemoryStats:
    load_count: int = 0
    store_count: int = 0
    dcache_stall_cycles: int = 0
    demand_miss_stalls: int = 0
    partial_miss_stalls: int = 0
    icache_stall_cycles: int = 0

    def reset(self) -> None:
        self.load_count = self.store_count = 0
        self.dcache_stall_cycles = 0
        self.demand_miss_stalls = self.partial_miss_stalls = 0
        self.icache_stall_cycles = 0


class MemorySystem:
    """Functional + timing memory model shared by the core and the RFU."""

    def __init__(self, timings: Optional[MemoryTimings] = None):
        self.timings = timings or MemoryTimings()
        self.main = MainMemory(self.timings.main_memory_size)
        self.bus = MemoryBus(self.timings.bus_latency,
                             self.timings.bus_service_interval)
        self.icache = Cache(self.timings.icache_size, self.timings.icache_line,
                            self.timings.icache_assoc, name="I$")
        self.dcache = Cache(self.timings.dcache_size, self.timings.dcache_line,
                            self.timings.dcache_assoc, name="D$")
        self.prefetch_buffer = PrefetchBuffer(self.timings.prefetch_entries,
                                              self.bus)
        self.stats = MemoryStats()

    # -- data side -----------------------------------------------------------
    def _dcache_stall(self, addr: int, cycle: int) -> int:
        """Timing of one data access: 0 on hit, residual or full miss stall."""
        if self.dcache.access(addr):
            return 0
        line = self.dcache.line_address(addr)
        if self.timings.hardware_next_line_prefetch:
            next_line = line + self.dcache.line_bytes
            if not self.dcache.contains(next_line):
                self.prefetch_buffer.issue(next_line, cycle)
        ready = self.prefetch_buffer.lookup(line, cycle)
        if ready is not None:
            self.dcache.fill(addr)
            stall = max(0, ready - cycle)
            if stall:
                self.stats.partial_miss_stalls += 1
            return stall
        arrival = self.bus.request(cycle, urgent=True)
        self.dcache.fill(addr)
        self.stats.demand_miss_stalls += 1
        return arrival - cycle

    def load_word(self, addr: int, cycle: int) -> Tuple[int, int]:
        """Functional + timing word load: returns ``(value, stall_cycles)``."""
        stall = self._dcache_stall(addr, cycle)
        self.stats.load_count += 1
        self.stats.dcache_stall_cycles += stall
        return self.main.load_word(addr), stall

    def load_byte(self, addr: int, cycle: int) -> Tuple[int, int]:
        stall = self._dcache_stall(addr, cycle)
        self.stats.load_count += 1
        self.stats.dcache_stall_cycles += stall
        return self.main.load_byte(addr), stall

    def load_timing(self, addr: int, cycle: int) -> int:
        """Timing-only load (trace replay fast path): returns stall cycles."""
        stall = self._dcache_stall(addr, cycle)
        self.stats.load_count += 1
        self.stats.dcache_stall_cycles += stall
        return stall

    def store_word(self, addr: int, value: int, cycle: int) -> int:
        """Write-through, no-allocate store; the write buffer hides latency."""
        self.main.store_word(addr, value)
        self.stats.store_count += 1
        if self.dcache.contains(addr):
            self.dcache.access(addr)  # update line + LRU on a write hit
        return 0

    def store_byte(self, addr: int, value: int, cycle: int) -> int:
        self.main.store_byte(addr, value)
        self.stats.store_count += 1
        if self.dcache.contains(addr):
            self.dcache.access(addr)
        return 0

    def prefetch_line(self, addr: int, cycle: int) -> bool:
        """Software/RFU prefetch of one line into the prefetch buffer."""
        line = self.dcache.line_address(addr)
        if self.dcache.contains(line):
            return False
        return self.prefetch_buffer.issue(line, cycle)

    def prefetch_range(self, addr: int, length: int, cycle: int) -> int:
        """Prefetch all lines covering ``[addr, addr+length)``; returns count
        of prefetches actually issued (a row crossing a line boundary issues
        the extra prefetch the paper describes)."""
        issued = 0
        for line in self.dcache.lines_for_range(addr, length):
            if self.prefetch_line(line, cycle):
                issued += 1
        return issued

    # -- instruction side ------------------------------------------------------
    def ifetch(self, addr: int, cycle: int) -> int:
        """Instruction fetch timing for one bundle; returns stall cycles."""
        if self.icache.access(addr):
            return 0
        arrival = self.bus.request(cycle, urgent=True)
        self.icache.fill(addr)
        stall = arrival - cycle
        self.stats.icache_stall_cycles += stall
        return stall

    def reset_timing(self) -> None:
        """Clear all timing state (caches, bus, stats) but keep memory data."""
        self.icache.flush()
        self.dcache.flush()
        self.icache.stats.reset()
        self.dcache.stats.reset()
        self.prefetch_buffer.flush()
        self.prefetch_buffer.stats.reset()
        self.bus.reset()
        self.stats.reset()

"""The data-cache prefetch buffer.

The paper's baseline D-cache has an 8-entry prefetch buffer, extended to 64
entries for the loop-level RFU experiments so the macroblock prefetch-pattern
instructions have room for their 16/17-line bursts.

An entry tracks one in-flight line and the cycle its data arrives (scheduled
on the shared :class:`~repro.memory.bus.MemoryBus`).  A demand load finding
its line pending stalls only for the residual cycles (a *partial* miss); a
prefetch arriving for a full buffer is dropped, as hardware would.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.memory.bus import MemoryBus


@dataclass
class PrefetchStats:
    issued: int = 0
    duplicates: int = 0
    dropped: int = 0
    useful: int = 0
    late: int = 0

    def reset(self) -> None:
        self.issued = self.duplicates = 0
        self.dropped = self.useful = self.late = 0


class PrefetchBuffer:
    """Fixed-capacity buffer of in-flight prefetched lines."""

    def __init__(self, entries: int, bus: MemoryBus):
        self.capacity = entries
        self.bus = bus
        self._pending: Dict[int, int] = {}  # line addr -> arrival cycle
        self.stats = PrefetchStats()

    def _reap(self, cycle: int) -> None:
        """Drop bookkeeping for arrivals so far in the past they cannot
        matter; keeps the dict bounded across long traces."""
        if len(self._pending) <= 4 * self.capacity:
            return
        horizon = cycle - 8 * self.bus.latency
        self._pending = {line: ready for line, ready in self._pending.items()
                         if ready >= horizon}

    def in_flight(self, cycle: int) -> int:
        return sum(1 for ready in self._pending.values() if ready > cycle)

    def issue(self, line_addr: int, cycle: int) -> bool:
        """Issue a prefetch for ``line_addr`` at ``cycle``.

        Returns False when dropped (buffer full) or deduplicated.
        """
        if line_addr in self._pending:
            self.stats.duplicates += 1
            return False
        if self.in_flight(cycle) >= self.capacity:
            self.stats.dropped += 1
            return False
        self._pending[line_addr] = self.bus.request(cycle)
        self.stats.issued += 1
        self._reap(cycle)
        return True

    def issue_tracked(self, line_addr: int, cycle: int) -> Optional[int]:
        """Like :meth:`issue` but returns the arrival cycle (reusing a
        pending entry's arrival on deduplication), or None when dropped.
        Used by Line Buffer B, whose tag-matching adopts pending fills."""
        pending = self._pending.get(line_addr)
        if pending is not None:
            self.stats.duplicates += 1
            return pending
        if self.in_flight(cycle) >= self.capacity:
            self.stats.dropped += 1
            return None
        arrival = self.bus.request(cycle)
        self._pending[line_addr] = arrival
        self.stats.issued += 1
        self._reap(cycle)
        return arrival

    def lookup(self, line_addr: int, cycle: int) -> Optional[int]:
        """If the line is (or will be) in the buffer, pop it and return the
        arrival cycle; otherwise None.  The caller moves it into the cache."""
        ready = self._pending.pop(line_addr, None)
        if ready is None:
            return None
        if ready <= cycle:
            self.stats.useful += 1
        else:
            self.stats.late += 1
        return ready

    def flush(self) -> None:
        self._pending.clear()


class PrefetchArrayState:
    """Flattened prefetch-buffer **and** bus state for the columnar replay.

    A per-scenario replay needs exactly one prefetch buffer and one bus;
    this class keeps both in plain scalars plus one dict so the replay's
    hot loop pays no object-graph indirection.  Semantics mirror
    :class:`PrefetchBuffer` over :class:`~repro.memory.bus.MemoryBus`
    operation for operation (issue/issue_tracked/lookup ordering, the
    ``in_flight`` capacity rule, and the ``_reap`` bound) — the columnar
    engine's cycle-exactness contract depends on it, and the differential
    tests replay both models over identical streams.
    """

    __slots__ = ("capacity", "latency", "interval", "next_free", "pending",
                 "issued", "duplicates", "dropped", "useful", "late",
                 "_reap_limit", "_horizon")

    def __init__(self, entries: int, latency: int, service_interval: int):
        self.capacity = entries
        self.latency = latency
        self.interval = service_interval
        self.next_free = 0
        self.pending: Dict[int, int] = {}  # line addr -> arrival cycle
        self.issued = 0
        self.duplicates = 0
        self.dropped = 0
        self.useful = 0
        self.late = 0
        self._reap_limit = 4 * entries
        self._horizon = 8 * latency

    def bus_request(self, cycle: int) -> int:
        """Schedule one line fill; same arithmetic as ``MemoryBus.request``."""
        start = cycle if cycle > self.next_free else self.next_free
        self.next_free = start + self.interval
        return start + self.latency

    def in_flight(self, cycle: int) -> int:
        return sum(1 for ready in self.pending.values() if ready > cycle)

    def reap(self, cycle: int) -> None:
        # prune in place: the LBB evaluator keeps a direct reference to
        # ``pending``, so the dict object must never be replaced
        if len(self.pending) <= self._reap_limit:
            return
        horizon = cycle - self._horizon
        stale = [line for line, ready in self.pending.items()
                 if ready < horizon]
        for line in stale:
            del self.pending[line]

    def issue(self, line_addr: int, cycle: int) -> bool:
        if line_addr in self.pending:
            self.duplicates += 1
            return False
        if self.in_flight(cycle) >= self.capacity:
            self.dropped += 1
            return False
        self.pending[line_addr] = self.bus_request(cycle)
        self.issued += 1
        self.reap(cycle)
        return True

    def issue_tracked(self, line_addr: int, cycle: int) -> Optional[int]:
        pending = self.pending.get(line_addr)
        if pending is not None:
            self.duplicates += 1
            return pending
        if self.in_flight(cycle) >= self.capacity:
            self.dropped += 1
            return None
        arrival = self.bus_request(cycle)
        self.pending[line_addr] = arrival
        self.issued += 1
        self.reap(cycle)
        return arrival

    def lookup(self, line_addr: int, cycle: int) -> Optional[int]:
        ready = self.pending.pop(line_addr, None)
        if ready is None:
            return None
        if ready <= cycle:
            self.useful += 1
        else:
            self.late += 1
        return ready

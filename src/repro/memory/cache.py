"""Set-associative timing cache with true-LRU replacement.

Used for both caches of the paper's machine:

* 128 KB direct-mapped instruction cache (associativity 1, 64-byte lines);
* 32 KB 4-way data cache (32-byte lines).

The cache tracks only line presence (timing); data lives in main memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import MemoryError_


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    fills: int = 0
    evictions: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def reset(self) -> None:
        self.hits = self.misses = self.fills = self.evictions = 0


def new_lru_sets(num_sets: int) -> List[List[int]]:
    """Bare per-set true-LRU state: one MRU-last list of line addresses per
    set, exactly the structure :class:`Cache` keeps internally.

    The columnar replay engine's classification passes run the LRU update
    rules inline over this raw array state (hit → move to back; miss →
    evict front when full, append) instead of through :class:`Cache`
    method calls; sharing the structure here keeps the two in lockstep.
    """
    return [[] for _ in range(num_sets)]


class Cache:
    """Timing-only set-associative cache."""

    def __init__(self, size_bytes: int, line_bytes: int, associativity: int,
                 name: str = "cache"):
        if size_bytes % (line_bytes * associativity) != 0:
            raise MemoryError_(
                f"{name}: size {size_bytes} is not a multiple of "
                f"line {line_bytes} x assoc {associativity}")
        if line_bytes & (line_bytes - 1):
            raise MemoryError_(f"{name}: line size must be a power of two")
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = size_bytes // (line_bytes * associativity)
        # per-set list of line addresses, most recently used last
        self._sets: List[List[int]] = [[] for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def line_address(self, addr: int) -> int:
        return addr - (addr % self.line_bytes)

    def _set_index(self, line_addr: int) -> int:
        return (line_addr // self.line_bytes) % self.num_sets

    def contains(self, addr: int) -> bool:
        """Presence check with no statistics side effects."""
        line = self.line_address(addr)
        return line in self._sets[self._set_index(line)]

    def access(self, addr: int) -> bool:
        """Look up ``addr``; on hit, refresh LRU.  Returns hit/miss.

        A miss does *not* fill the line: the caller decides (demand fill vs
        prefetch completion) via :meth:`fill`, so that prefetch timing can be
        modelled separately.
        """
        line = self.line_address(addr)
        ways = self._sets[self._set_index(line)]
        if line in ways:
            ways.remove(line)
            ways.append(line)
            self.stats.hits += 1
            return True
        self.stats.misses += 1
        return False

    def fill(self, addr: int) -> None:
        """Install the line containing ``addr`` (evicting LRU if needed)."""
        line = self.line_address(addr)
        ways = self._sets[self._set_index(line)]
        if line in ways:
            ways.remove(line)
        elif len(ways) >= self.associativity:
            ways.pop(0)
            self.stats.evictions += 1
        ways.append(line)
        self.stats.fills += 1

    def lines_for_range(self, addr: int, length: int) -> List[int]:
        """Distinct line addresses covering ``[addr, addr + length)``."""
        first = self.line_address(addr)
        last = self.line_address(addr + length - 1)
        return list(range(first, last + self.line_bytes, self.line_bytes))

    def flush(self) -> None:
        self._sets = [[] for _ in range(self.num_sets)]

    def __repr__(self) -> str:
        return (f"Cache({self.name}: {self.size_bytes >> 10}KB, "
                f"{self.associativity}-way, {self.line_bytes}B lines)")

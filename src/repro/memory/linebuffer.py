"""The RFU's local storage: Line Buffers A and B (paper §5b, Figs. 3 and 4).

* **Line Buffer A** stores one *reference* macroblock: 16 rows of 16 pixels
  (256 bytes) plus a ``Done`` flag per row.  The RFU macroblock-prefetch
  instruction gathers the rows as their memory fills complete; a read of a
  row whose flag is still 0 stalls the processor until the data lands.
  Replacement is the natural circular row indexing.

* **Line Buffer B** stores *candidate predictor* macroblocks: 4 x 17 cache
  lines (double buffering x potential line crossings), fully associative
  with tags derived from the row addresses.  Before issuing a line fill the
  RFU checks for an already-present or pending entry with the same tag and
  reuses it — the mechanism that exploits the overlap between consecutive
  candidate predictors and cuts external traffic in Table 7.

Both buffers have a 2-cycle access latency with throughput 1 (one whole row
or line per access), exposed as ``ACCESS_LATENCY`` for the loop pipeline
model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import MemoryError_
from repro.memory.bus import MemoryBus

#: Row/line access latency of both buffers (cycles); throughput is 1.
ACCESS_LATENCY = 2

MACROBLOCK_ROWS = 16
MACROBLOCK_COLS = 16


@dataclass
class LineBufferStats:
    row_reads: int = 0
    stalled_reads: int = 0
    stall_cycles: int = 0
    fills: int = 0
    reused: int = 0
    requests: int = 0

    def reset(self) -> None:
        self.row_reads = self.stalled_reads = self.stall_cycles = 0
        self.fills = self.reused = self.requests = 0


class LineBufferA:
    """Reference-macroblock store: 16 rows x 16 pixels + Done flags."""

    def __init__(self):
        self.base_addr: Optional[int] = None
        self.ready: List[Optional[int]] = [None] * MACROBLOCK_ROWS
        self.stats = LineBufferStats()

    def begin_fill(self, base_addr: int, row_ready_cycles: Sequence[int]) -> None:
        """Start gathering a reference macroblock.

        ``row_ready_cycles[i]`` is the cycle at which row ``i``'s memory fill
        completes (scheduled by the prefetch engine on the shared bus); the
        Done flag for the row turns 1 at that cycle.
        """
        if len(row_ready_cycles) != MACROBLOCK_ROWS:
            raise MemoryError_(
                f"LineBufferA fill needs {MACROBLOCK_ROWS} row completion "
                f"times, got {len(row_ready_cycles)}")
        self.base_addr = base_addr
        self.ready = list(row_ready_cycles)
        self.stats.fills += 1

    def holds(self, base_addr: int) -> bool:
        return self.base_addr == base_addr

    def read_row(self, row: int, cycle: int) -> int:
        """Read one 16-pixel row; returns the stall in cycles.

        If the row's Done flag is still 0 the RFU stalls the processor until
        the corresponding cache access completes (paper §5b).
        """
        if not 0 <= row < MACROBLOCK_ROWS:
            raise MemoryError_(f"LineBufferA row {row} out of range")
        ready = self.ready[row]
        if ready is None:
            raise MemoryError_("LineBufferA read before any fill was started")
        self.stats.row_reads += 1
        stall = max(0, ready - cycle)
        if stall:
            self.stats.stalled_reads += 1
            self.stats.stall_cycles += stall
        return stall


class LineBufferB:
    """Fully-associative, double-buffered predictor-line store.

    Capacity: ``banks`` x ``lines_per_bank`` cache-line entries
    (4 x 17 = 68 in the paper, 2176 data bytes + 240 tag/flag bits).

    Entries are filled *through* the data-cache path (Figure 4: "Completed
    from Data Cache (Prefetch buffer)"): a prefetch whose line already sits
    in the D-cache completes at the buffer's access latency, anything else
    goes through the prefetch buffer and shared bus.  A read whose tag
    misses falls back to a normal data-cache access at the 1x32 bandwidth,
    as the paper specifies for cache misses.
    """

    def __init__(self, memory, banks: int = 4, lines_per_bank: int = 17):
        self.memory = memory
        self.capacity = banks * lines_per_bank
        self.banks = banks
        self.lines_per_bank = lines_per_bank
        # line address -> arrival cycle, insertion order = LRU order
        self._entries: Dict[int, int] = {}
        self.stats = LineBufferStats()

    def __contains__(self, line_addr: int) -> bool:
        return line_addr in self._entries

    def prefetch_lines(self, line_addrs: Sequence[int], cycle: int) -> List[Optional[int]]:
        """Stage the prefetch-pattern of one candidate macroblock.

        For every line: if an entry with the same tag is already present or
        pending, the new request adopts its status and **no bus request is
        issued** (the associative-reuse optimisation).  Returns the arrival
        cycle per line (None when the prefetch was dropped).
        """
        arrivals: List[Optional[int]] = []
        for line in line_addrs:
            existing = self._entries.get(line)
            if existing is not None:
                # refresh LRU position, keep the (possibly earlier) arrival
                del self._entries[line]
                self._entries[line] = existing
                self.stats.reused += 1
                arrivals.append(existing)
                continue
            if self.memory.dcache.contains(line):
                arrival = cycle + ACCESS_LATENCY
            else:
                arrival = self.memory.prefetch_buffer.issue_tracked(line, cycle)
                if arrival is None:
                    arrivals.append(None)  # dropped: demand access at read
                    continue
                self.stats.requests += 1
            while len(self._entries) >= self.capacity:
                oldest = next(iter(self._entries))
                del self._entries[oldest]
            self._entries[line] = arrival
            self.stats.fills += 1
            arrivals.append(arrival)
        return arrivals

    def read_line(self, line_addr: int, cycle: int) -> int:
        """Read one line; returns stall cycles.

        Tag hit: wait for the entry's arrival.  Tag miss: a normal D-cache
        access (which may itself hit, partially hit the prefetch buffer, or
        demand-miss to the bus)."""
        self.stats.row_reads += 1
        ready = self._entries.get(line_addr)
        if ready is None:
            stall = self.memory.load_timing(line_addr, cycle)
        else:
            stall = max(0, ready - cycle)
            # the data moved on chip through the D$ controller; keep the
            # line warm there for future tag misses
            self.memory.dcache.fill(line_addr)
        if stall:
            self.stats.stalled_reads += 1
            self.stats.stall_cycles += stall
        return stall

    def flush(self) -> None:
        self._entries.clear()

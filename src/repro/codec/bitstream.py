"""Bit-granular stream writer/reader with exponential-Golomb codes.

Backs the serializable coded-sequence syntax (:mod:`repro.codec.syntax`).
The codes are unsigned (``ue``) and signed (``se``) exp-Golomb — simpler
than the normative MPEG4 VLC tables but real, decodable entropy codes, so
the encoder/decoder round trip exercises genuine bitstream machinery.
"""

from __future__ import annotations

from typing import List

from repro.errors import CodecError


class BitWriter:
    """Append-only MSB-first bit sink."""

    def __init__(self):
        self._bytes = bytearray()
        self._bit_count = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._bit_count

    def write_bit(self, bit: int) -> None:
        if self._bit_count % 8 == 0:
            self._bytes.append(0)
        if bit & 1:
            self._bytes[-1] |= 0x80 >> (self._bit_count % 8)
        self._bit_count += 1

    def write_bits(self, value: int, width: int) -> None:
        if width < 0 or (width and value >> width):
            raise CodecError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_ue(self, value: int) -> None:
        """Unsigned exp-Golomb: value >= 0."""
        if value < 0:
            raise CodecError(f"ue() needs a non-negative value, got {value}")
        code = value + 1
        width = code.bit_length()
        for _ in range(width - 1):
            self.write_bit(0)
        self.write_bits(code, width)

    def write_se(self, value: int) -> None:
        """Signed exp-Golomb: 0, 1, -1, 2, -2 ... -> 0, 1, 2, 3, 4 ..."""
        mapped = 2 * value - 1 if value > 0 else -2 * value
        self.write_ue(mapped)

    def getvalue(self) -> bytes:
        return bytes(self._bytes)


class BitReader:
    """MSB-first bit source over a byte string."""

    def __init__(self, payload: bytes):
        self._payload = payload
        self._position = 0

    @property
    def position(self) -> int:
        return self._position

    def bits_remaining(self) -> int:
        return 8 * len(self._payload) - self._position

    def read_bit(self) -> int:
        if self._position >= 8 * len(self._payload):
            raise CodecError("bitstream exhausted")
        byte = self._payload[self._position // 8]
        bit = (byte >> (7 - self._position % 8)) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_ue(self) -> int:
        zeros = 0
        while self.read_bit() == 0:
            zeros += 1
            if zeros > 64:
                raise CodecError("corrupt exp-Golomb code")
        return (1 << zeros | self.read_bits(zeros)) - 1

    def read_se(self) -> int:
        mapped = self.read_ue()
        if mapped % 2:
            return (mapped + 1) // 2
        return -(mapped // 2)

"""Bit-granular stream writer/reader with exponential-Golomb codes.

Backs the serializable coded-sequence syntax (:mod:`repro.codec.syntax`).
The codes are unsigned (``ue``) and signed (``se``) exp-Golomb — simpler
than the normative MPEG4 VLC tables but real, decodable entropy codes, so
the encoder/decoder round trip exercises genuine bitstream machinery.

The reader is hardened for hostile input: every failure is a structured
:class:`repro.errors.DecodeError` subclass carrying the bit offset, reads
past the payload raise :class:`~repro.errors.BitstreamExhausted`, and the
exp-Golomb zero-prefix bound derives from :meth:`BitReader.bits_remaining`
(a prefix no completable code could have fails immediately instead of
walking a magic 64 zeros).  The byte-aligned helpers (:meth:`BitWriter.
align`, :meth:`BitReader.align`, CRC-8/16) support the resilient stream
format's resync markers and payload checksums.
"""

from __future__ import annotations

from repro.errors import (
    BitstreamExhausted,
    CodecError,
    ExpGolombCorrupt,
)

#: hard ceiling on one exp-Golomb zero-prefix even in huge payloads — a
#: 64-zero prefix encodes values >= 2**64 - 1, far beyond any field the
#: syntax carries, so longer prefixes are corruption regardless of size
MAX_UE_PREFIX = 64


def crc8(data: bytes) -> int:
    """CRC-8 (poly 0x07, init 0) — guards resilient slice/frame headers."""
    crc = 0
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = ((crc << 1) ^ 0x07) & 0xFF if crc & 0x80 else (crc << 1) & 0xFF
    return crc


def crc16(data: bytes) -> int:
    """CRC-16/CCITT (poly 0x1021, init 0xFFFF) — frame payload checksums."""
    crc = 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            crc = ((crc << 1) ^ 0x1021) & 0xFFFF if crc & 0x8000 \
                else (crc << 1) & 0xFFFF
    return crc


class BitWriter:
    """Append-only MSB-first bit sink."""

    def __init__(self):
        self._bytes = bytearray()
        self._bit_count = 0

    def __len__(self) -> int:
        """Number of bits written so far."""
        return self._bit_count

    def write_bit(self, bit: int) -> None:
        if self._bit_count % 8 == 0:
            self._bytes.append(0)
        if bit & 1:
            self._bytes[-1] |= 0x80 >> (self._bit_count % 8)
        self._bit_count += 1

    def write_bits(self, value: int, width: int) -> None:
        if width < 0:
            raise CodecError(f"cannot write a negative bit width ({width})")
        if width and value >> width:
            raise CodecError(f"value {value} does not fit in {width} bits")
        for shift in range(width - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def write_ue(self, value: int) -> None:
        """Unsigned exp-Golomb: value >= 0."""
        if value < 0:
            raise CodecError(f"ue() needs a non-negative value, got {value}")
        code = value + 1
        width = code.bit_length()
        for _ in range(width - 1):
            self.write_bit(0)
        self.write_bits(code, width)

    def write_se(self, value: int) -> None:
        """Signed exp-Golomb: 0, 1, -1, 2, -2 ... -> 0, 1, 2, 3, 4 ..."""
        mapped = 2 * value - 1 if value > 0 else -2 * value
        self.write_ue(mapped)

    def align(self) -> None:
        """Zero-pad to the next byte boundary (no-op when aligned)."""
        while self._bit_count % 8:
            self.write_bit(0)

    def write_bytes(self, data: bytes) -> None:
        """Append whole bytes (the writer must be byte-aligned)."""
        if self._bit_count % 8:
            raise CodecError(
                f"write_bytes needs byte alignment, at bit {self._bit_count}")
        self._bytes.extend(data)
        self._bit_count += 8 * len(data)

    def getvalue(self) -> bytes:
        return bytes(self._bytes)


class BitReader:
    """MSB-first bit source over a byte string."""

    def __init__(self, payload: bytes):
        self._payload = payload
        self._position = 0

    @property
    def position(self) -> int:
        return self._position

    def bits_remaining(self) -> int:
        return 8 * len(self._payload) - self._position

    def seek_bit(self, position: int) -> None:
        """Jump to an absolute bit offset (resync re-entry)."""
        if not 0 <= position <= 8 * len(self._payload):
            raise CodecError(
                f"seek to bit {position} outside the "
                f"{8 * len(self._payload)}-bit payload")
        self._position = position

    def read_bit(self) -> int:
        if self._position >= 8 * len(self._payload):
            raise BitstreamExhausted(
                f"bitstream exhausted at bit {self._position} of "
                f"{8 * len(self._payload)}")
        byte = self._payload[self._position // 8]
        bit = (byte >> (7 - self._position % 8)) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        if width < 0:
            raise CodecError(f"cannot read a negative bit width ({width})")
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_ue(self) -> int:
        start = self._position
        # a completable code with Z leading zeros needs 2Z+1 bits in total,
        # so the prefix bound derives from what is actually left to read
        limit = min((self.bits_remaining() - 1) // 2, MAX_UE_PREFIX)
        zeros = 0
        while self.read_bit() == 0:
            zeros += 1
            if zeros > limit:
                raise ExpGolombCorrupt(
                    f"corrupt exp-Golomb code at bit {start}: {zeros} "
                    f"leading zeros cannot terminate in the "
                    f"{8 * len(self._payload) - start} bits remaining")
        return (1 << zeros | self.read_bits(zeros)) - 1

    def read_se(self) -> int:
        mapped = self.read_ue()
        if mapped % 2:
            return (mapped + 1) // 2
        return -(mapped // 2)

    def align(self) -> None:
        """Skip to the next byte boundary (no-op when aligned)."""
        self._position = min((self._position + 7) // 8 * 8,
                             8 * len(self._payload))

    def read_bytes(self, count: int) -> bytes:
        """Read whole bytes (the reader must be byte-aligned)."""
        if self._position % 8:
            raise CodecError(
                f"read_bytes needs byte alignment, at bit {self._position}")
        if count < 0:
            raise CodecError(f"cannot read a negative byte count ({count})")
        start = self._position // 8
        if start + count > len(self._payload):
            raise BitstreamExhausted(
                f"bitstream exhausted at bit {self._position}: {count} bytes "
                f"requested, {len(self._payload) - start} available")
        self._position += 8 * count
        return self._payload[start:start + count]

"""Golden Sum-of-Absolute-Differences models (the GetSad() semantics).

``getsad_reference`` follows the paper's Listing 1 literally, pixel by
pixel, including the per-row structure (read predictor words, align,
interpolate, read reference row, accumulate); ``getsad`` is the fast numpy
equivalent used by the encoder.  Tests assert the two agree bit-exactly,
and every VLIW/RFU kernel is verified against them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.codec.interp import halfpel_predictor, mode_from_halfpel
from repro.errors import CodecError
from repro.rfu.loop_model import InterpMode


#: Rows accumulated between early-termination checks.  Shared with the
#: fast engine so the partial sums (and therefore the returned values) of
#: both implementations are bit-identical when the flag is on.
EARLY_EXIT_ROW_CHUNK = 4


def block_sad(a: np.ndarray, b: np.ndarray) -> int:
    """SAD between two equal-shape uint8 blocks."""
    if a.shape != b.shape:
        raise CodecError(f"SAD shapes differ: {a.shape} vs {b.shape}")
    return int(np.abs(a.astype(np.int32) - b.astype(np.int32)).sum())


def sad_early_exit(block: np.ndarray, predictor: np.ndarray,
                   best_so_far: int) -> int:
    """Row-chunked SAD that stops once the candidate can no longer win.

    Accumulates :data:`EARLY_EXIT_ROW_CHUNK` rows at a time and returns the
    partial sum as soon as it exceeds ``best_so_far``.  Because partial sums
    only grow, a candidate whose true SAD improves on ``best_so_far`` is
    never cut short — so motion search picks the same winner, only losers
    get truncated (their reported SAD is a lower bound >= the running best,
    which loses the strict ``<`` comparison exactly like their true SAD).
    """
    if block.shape != predictor.shape:
        raise CodecError(
            f"SAD shapes differ: {block.shape} vs {predictor.shape}")
    a = block.astype(np.int32)
    b = predictor.astype(np.int32)
    total = 0
    for row in range(0, a.shape[0], EARLY_EXIT_ROW_CHUNK):
        chunk = row + EARLY_EXIT_ROW_CHUNK
        total += int(np.abs(a[row:chunk] - b[row:chunk]).sum())
        if total > best_so_far:
            return total
    return total


def getsad(current: np.ndarray, reference: np.ndarray, mb_x: int, mb_y: int,
           pred_x: int, pred_y: int, half_x: int = 0, half_y: int = 0,
           best_so_far: Optional[int] = None,
           early_terminate: bool = False) -> int:
    """SAD between the current frame's macroblock at ``(mb_x, mb_y)`` (pixel
    units) and the predictor at integer corner ``(pred_x, pred_y)`` with
    half-sample flags, in the reference plane.

    ``best_so_far`` only takes effect when ``early_terminate`` is set (the
    default path stays deterministic and exact): the call then may return
    early with a partial SAD once the candidate provably loses to
    ``best_so_far`` — see :func:`sad_early_exit` for why the chosen motion
    vector is unchanged.
    """
    block = current[mb_y:mb_y + 16, mb_x:mb_x + 16]
    predictor = halfpel_predictor(reference, pred_x, pred_y, half_x, half_y)
    if early_terminate and best_so_far is not None:
        return sad_early_exit(block, predictor, best_so_far)
    return block_sad(block, predictor)


def getsad_reference(current: np.ndarray, reference: np.ndarray, mb_x: int,
                     mb_y: int, pred_x: int, pred_y: int, half_x: int = 0,
                     half_y: int = 0) -> int:
    """Listing-1-faithful scalar GetSad (slow; for verification only)."""
    mode = mode_from_halfpel(half_x, half_y)
    sad_value = 0
    rows = 16 + (1 if mode.needs_extra_row else 0)
    cols = 16 + (1 if mode.needs_extra_column else 0)
    predictor_rows = [
        [int(reference[pred_y + r, pred_x + c]) for c in range(cols)]
        for r in range(rows)
    ]
    for row in range(16):
        top = predictor_rows[row]
        if mode is InterpMode.FULL:
            pixels = top[:16]
        elif mode is InterpMode.H:
            pixels = [(top[c] + top[c + 1] + 1) >> 1 for c in range(16)]
        elif mode is InterpMode.V:
            bottom = predictor_rows[row + 1]
            pixels = [(top[c] + bottom[c] + 1) >> 1 for c in range(16)]
        else:
            bottom = predictor_rows[row + 1]
            pixels = [(top[c] + top[c + 1] + bottom[c] + bottom[c + 1] + 2) >> 2
                      for c in range(16)]
        for col in range(16):
            sad_value += abs(int(current[mb_y + row, mb_x + col]) - pixels[col])
    return sad_value

"""Run-level entropy coding *size* model.

The experiments never need an actual bitstream, only a realistic bit count
per block/vector (for encoder statistics and the non-ME cycle cost model,
whose entropy-stage cost scales with coded symbols).  The model follows the
shape of the MPEG4 VLC tables: short codes for small levels after short
runs, escape-length codes otherwise.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.codec.zigzag import zigzag_scan
from repro.errors import CodecError


def run_level_pairs(levels_zigzag: np.ndarray) -> List[Tuple[int, int, bool]]:
    """(run, level, last) triples of one zigzag-scanned level block."""
    pairs: List[Tuple[int, int, bool]] = []
    run = 0
    for value in levels_zigzag:
        if value == 0:
            run += 1
            continue
        pairs.append((run, int(value), False))
        run = 0
    if pairs:
        run, level, _ = pairs[-1]
        pairs[-1] = (run, level, True)
    return pairs


def _vlc_bits(run: int, level: int) -> int:
    """Approximate MPEG4 TCOEF code length for one (run, level) event."""
    magnitude = abs(level)
    if magnitude == 0:
        raise CodecError("zero level has no VLC code")
    if run <= 1 and magnitude <= 6:
        return 3 + magnitude + run
    if run <= 8 and magnitude <= 2:
        return 6 + run // 2 + magnitude
    return 22  # fixed-length escape: ESC + last + 6-bit run + 8-bit level


def block_bits(levels: np.ndarray) -> int:
    """Bits to code one quantised 8x8 block (plus the CBP-ish overhead)."""
    scanned = zigzag_scan(levels)
    pairs = run_level_pairs(scanned)
    if not pairs:
        return 1  # not-coded flag
    return 2 + sum(_vlc_bits(run, level) for run, level, _ in pairs)


def mv_bits(dx_half: int, dy_half: int) -> int:
    """Bits for a motion vector difference, exp-Golomb-shaped."""
    total = 0
    for component in (dx_half, dy_half):
        magnitude = abs(int(component))
        total += 1 if magnitude == 0 else 2 * int(np.log2(magnitude + 1)) + 2
    return total


def coded_symbols(levels: np.ndarray) -> int:
    """Number of (run, level) events — the entropy stage's work unit."""
    return len(run_level_pairs(zigzag_scan(levels)))

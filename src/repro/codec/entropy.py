"""Run-level entropy coding *size* model.

The experiments never need an actual bitstream, only a realistic bit count
per block/vector (for encoder statistics and the non-ME cycle cost model,
whose entropy-stage cost scales with coded symbols).  The model follows the
shape of the MPEG4 VLC tables: short codes for small levels after short
runs, escape-length codes otherwise.

The hot entry points (:func:`run_level_pairs`, :func:`block_bits`,
:func:`coded_symbols`) are vectorized over ``np.nonzero`` of the scanned
block; the scalar reference implementations are kept alongside and the
test suite asserts the two agree on every block shape.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.codec.zigzag import zigzag_scan
from repro.errors import CodecError


def _runs_and_levels(levels_zigzag: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Zero-run lengths and values of the nonzero coefficients, in order."""
    values = np.asarray(levels_zigzag).ravel()
    nonzero = np.flatnonzero(values)
    runs = np.diff(np.concatenate((np.full(1, -1, dtype=np.int64), nonzero))) - 1
    return runs, values[nonzero]


def run_level_pairs(levels_zigzag: np.ndarray) -> List[Tuple[int, int, bool]]:
    """(run, level, last) triples of one zigzag-scanned level block."""
    runs, levels = _runs_and_levels(levels_zigzag)
    if not len(runs):
        return []
    pairs = [(run, level, False)
             for run, level in zip(runs.tolist(), levels.tolist())]
    run, level, _ = pairs[-1]
    pairs[-1] = (run, level, True)
    return pairs


def run_level_pairs_scalar(levels_zigzag: np.ndarray) \
        -> List[Tuple[int, int, bool]]:
    """Scalar reference for :func:`run_level_pairs` (kept for the
    equivalence tests)."""
    pairs: List[Tuple[int, int, bool]] = []
    run = 0
    for value in levels_zigzag:
        if value == 0:
            run += 1
            continue
        pairs.append((run, int(value), False))
        run = 0
    if pairs:
        run, level, _ = pairs[-1]
        pairs[-1] = (run, level, True)
    return pairs


def _vlc_bits(run: int, level: int) -> int:
    """Approximate MPEG4 TCOEF code length for one (run, level) event."""
    magnitude = abs(level)
    if magnitude == 0:
        raise CodecError("zero level has no VLC code")
    if run <= 1 and magnitude <= 6:
        return 3 + magnitude + run
    if run <= 8 and magnitude <= 2:
        return 6 + run // 2 + magnitude
    return 22  # fixed-length escape: ESC + last + 6-bit run + 8-bit level


def block_bits(levels: np.ndarray) -> int:
    """Bits to code one quantised 8x8 block (plus the CBP-ish overhead)."""
    runs, values = _runs_and_levels(zigzag_scan(levels))
    if not len(runs):
        return 1  # not-coded flag
    magnitudes = np.abs(values)
    short = (runs <= 1) & (magnitudes <= 6)
    mid = (runs <= 8) & (magnitudes <= 2) & ~short
    bits = np.where(short, 3 + magnitudes + runs,
                    np.where(mid, 6 + runs // 2 + magnitudes, 22))
    return 2 + int(bits.sum())


def block_bits_scalar(levels: np.ndarray) -> int:
    """Scalar reference for :func:`block_bits` (kept for the equivalence
    tests)."""
    pairs = run_level_pairs_scalar(zigzag_scan(levels))
    if not pairs:
        return 1
    return 2 + sum(_vlc_bits(run, level) for run, level, _ in pairs)


def mv_bits(dx_half: int, dy_half: int) -> int:
    """Bits for a motion vector difference, exp-Golomb-shaped."""
    total = 0
    for component in (dx_half, dy_half):
        magnitude = abs(int(component))
        total += 1 if magnitude == 0 else 2 * int(np.log2(magnitude + 1)) + 2
    return total


def coded_symbols(levels: np.ndarray) -> int:
    """Number of (run, level) events — the entropy stage's work unit."""
    return int(np.count_nonzero(zigzag_scan(levels)))

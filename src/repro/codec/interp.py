"""Half-sample interpolation (MPEG4 simple profile, rounding control 0).

Predictor pixels at half-sample positions are built from the integer grid:

* horizontal:  ``(a + b + 1) >> 1``
* vertical:    ``(a + c + 1) >> 1``
* diagonal:    ``(a + b + c + d + 2) >> 2``

where ``a`` is the top-left integer pixel of the 2x2 neighbourhood.  These
are the golden semantics every VLIW/RFU kernel must match bit-exactly.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.errors import CodecError
from repro.rfu.loop_model import InterpMode


def halfpel_predictor(plane: np.ndarray, x: int, y: int, half_x: int,
                      half_y: int, size: int = 16) -> np.ndarray:
    """The ``size x size`` predictor block at integer corner ``(x, y)`` with
    half-sample flags ``(half_x, half_y)`` in {0, 1}."""
    if half_x not in (0, 1) or half_y not in (0, 1):
        raise CodecError(f"half-sample flags must be 0/1, got ({half_x},{half_y})")
    height, width = plane.shape
    if not (0 <= x and 0 <= y and x + size + half_x <= width
            and y + size + half_y <= height):
        raise CodecError(
            f"predictor at ({x},{y}) half=({half_x},{half_y}) exceeds the "
            f"{width}x{height} plane")
    region = plane[y:y + size + half_y, x:x + size + half_x].astype(np.int32)
    if half_x and half_y:
        return ((region[:-1, :-1] + region[:-1, 1:] + region[1:, :-1]
                 + region[1:, 1:] + 2) >> 2).astype(np.uint8)
    if half_x:
        return ((region[:, :-1] + region[:, 1:] + 1) >> 1).astype(np.uint8)
    if half_y:
        return ((region[:-1, :] + region[1:, :] + 1) >> 1).astype(np.uint8)
    return region.astype(np.uint8)


def interpolate_halfpel_region(plane: np.ndarray, x: int, y: int,
                               mode: InterpMode, size: int = 16) -> np.ndarray:
    """Same as :func:`halfpel_predictor` but keyed by :class:`InterpMode`."""
    return halfpel_predictor(plane, x, y,
                             1 if mode.needs_extra_column else 0,
                             1 if mode.needs_extra_row else 0, size)


def halfpel_planes(plane: np.ndarray) -> Dict[InterpMode, np.ndarray]:
    """Interpolate a whole reference plane once per half-sample mode.

    Returns int16 planes (values fit: the diagonal sum peaks at 1022):

    * ``FULL`` — the plane itself, ``(H, W)``;
    * ``H``    — ``(H, W-1)``, pixel ``[y, x]`` is the half-sample between
      columns ``x`` and ``x+1``;
    * ``V``    — ``(H-1, W)``;
    * ``HV``   — ``(H-1, W-1)``.

    A 16x16 slice at ``[y:y+16, x:x+16]`` of the mode's plane is bit-exact
    with :func:`halfpel_predictor` at integer corner ``(x, y)`` — that
    equivalence is what :class:`repro.codec.fastme.FastSadEngine` builds on.
    """
    if plane.ndim != 2:
        raise CodecError(f"reference plane must be 2-D, got {plane.ndim}-D")
    p = plane.astype(np.int16)
    return {
        InterpMode.FULL: p,
        InterpMode.H: (p[:, :-1] + p[:, 1:] + 1) >> 1,
        InterpMode.V: (p[:-1, :] + p[1:, :] + 1) >> 1,
        InterpMode.HV: (p[:-1, :-1] + p[:-1, 1:] + p[1:, :-1]
                        + p[1:, 1:] + 2) >> 2,
    }


def mode_from_halfpel(half_x: int, half_y: int) -> InterpMode:
    """Map half-sample flags to the kernel interpolation mode."""
    if half_x and half_y:
        return InterpMode.HV
    if half_x:
        return InterpMode.H
    if half_y:
        return InterpMode.V
    return InterpMode.FULL

"""MPEG4 simple-profile encoder substrate.

A functional (numpy) implementation of every encoder stage the paper's
benchmark exercises: motion estimation with half-sample refinement (the
GetSad hot spot), motion compensation, 8x8 DCT/IDCT, H.263-style
quantisation, zigzag + run-level entropy size estimation, and the
reconstruction loop.  The encoder also emits the per-invocation GetSad
trace that drives the architectural timing models, and a cycle cost model
for the non-ME stages (the other ~74 % of the paper's profile).
"""

from repro.codec.frame import (
    FrameLayout,
    YuvFrame,
    QCIF_WIDTH,
    QCIF_HEIGHT,
    plane_psnr,
    sequence_psnr_y,
)
from repro.codec.sequence import SyntheticSequenceConfig, synthetic_sequence
from repro.codec.interp import (
    halfpel_planes,
    halfpel_predictor,
    interpolate_halfpel_region,
)
from repro.codec.sad import block_sad, getsad, getsad_reference
from repro.codec.fastme import FastSadEngine, ReferencePlanes
from repro.codec.motion import (
    DiamondSearch,
    FullSearch,
    MotionEstimator,
    SearchStrategy,
    ThreeStepSearch,
)
from repro.codec.dct import forward_dct, inverse_dct
from repro.codec.quant import dequantise, quantise
from repro.codec.zigzag import ZIGZAG_ORDER, zigzag_scan
from repro.codec.entropy import block_bits, mv_bits
from repro.codec.tracer import MeInvocation, MeTrace
from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.syntax import (
    CodedBlock,
    CodedFrame,
    CodedMacroblock,
    CodedSequence,
    FRAME_MARKER,
    RESILIENT_MAGIC,
    RESYNC_MARKER,
    RobustParse,
    StreamEvent,
    deserialize,
    parse_robust,
    serialize,
)
from repro.codec.encoder import (
    EncoderConfig,
    EncoderReport,
    Mpeg4Encoder,
    chroma_motion_block,
)
from repro.codec.decoder import (
    DecodeHealth,
    Mpeg4Decoder,
    RobustDecoder,
    concealment_psnr,
    decode_sequence,
    robust_decode,
)
from repro.codec.costmodel import CycleCostModel

__all__ = [
    "BitReader",
    "BitWriter",
    "CodedBlock",
    "CodedFrame",
    "CodedMacroblock",
    "CodedSequence",
    "CycleCostModel",
    "DecodeHealth",
    "DiamondSearch",
    "EncoderConfig",
    "EncoderReport",
    "FastSadEngine",
    "FrameLayout",
    "FRAME_MARKER",
    "FullSearch",
    "MeInvocation",
    "MeTrace",
    "MotionEstimator",
    "Mpeg4Encoder",
    "QCIF_HEIGHT",
    "QCIF_WIDTH",
    "RESILIENT_MAGIC",
    "RESYNC_MARKER",
    "ReferencePlanes",
    "RobustDecoder",
    "RobustParse",
    "SearchStrategy",
    "StreamEvent",
    "SyntheticSequenceConfig",
    "ThreeStepSearch",
    "YuvFrame",
    "ZIGZAG_ORDER",
    "Mpeg4Decoder",
    "block_bits",
    "block_sad",
    "chroma_motion_block",
    "concealment_psnr",
    "decode_sequence",
    "dequantise",
    "deserialize",
    "parse_robust",
    "plane_psnr",
    "robust_decode",
    "sequence_psnr_y",
    "serialize",
    "forward_dct",
    "getsad",
    "getsad_reference",
    "halfpel_planes",
    "halfpel_predictor",
    "interpolate_halfpel_region",
    "inverse_dct",
    "mv_bits",
    "quantise",
    "synthetic_sequence",
    "zigzag_scan",
]

"""Motion estimation: integer search strategies + half-sample refinement.

GetSad() is called once per candidate; every call is recorded in the
:class:`~repro.codec.tracer.MeTrace`.  Two integer strategies are provided:

* :class:`FullSearch` — exhaustive over a square window (the classic
  reference-code approach; expensive);
* :class:`ThreeStepSearch` — logarithmic 3-step pattern (the experiments'
  default; its integer/half-sample call mix puts the diagonal
  interpolation fraction near the paper's measured 18 %).

After the integer winner, the 8 surrounding half-sample candidates are
evaluated (4 of them diagonal), exactly the sub-task Listing 1 describes.
Motion vectors are in half-sample units.

Candidate scoring goes through a :class:`FastSadEngine` by default (half-pel
planes interpolated once per reference frame, batched reductions); the
recorded trace is call-for-call identical to the scalar
:func:`~repro.codec.sad.getsad` path, which remains available with
``use_fast_engine=False`` and is what the differential tests compare
against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.codec.fastme import FastSadEngine
from repro.codec.interp import mode_from_halfpel
from repro.codec.sad import getsad
from repro.codec.tracer import MeInvocation, MeTrace
from repro.errors import CodecError
from repro.rfu.loop_model import InterpMode

Offset = Tuple[int, int]


@dataclass
class MotionVector:
    """Half-sample motion vector with its SAD."""

    dx: int  # half-sample units relative to the macroblock position
    dy: int
    sad: int

    @property
    def integer(self) -> Tuple[int, int]:
        return self.dx >> 1, self.dy >> 1  # floor division toward -inf

    @property
    def halfpel(self) -> Tuple[int, int]:
        return self.dx & 1, self.dy & 1


class SearchStrategy:
    """Interface: produce integer candidate offsets to evaluate."""

    name = "abstract"

    def integer_candidates(self, mb_x: int, mb_y: int, width: int,
                           height: int, evaluate) -> Tuple[Offset, int]:
        """Run the integer search; ``evaluate(dx, dy) -> sad`` scores one
        integer offset (and records the trace).  Returns the best offset
        together with its SAD."""
        raise NotImplementedError

    @staticmethod
    def evaluate_many(offsets: Sequence[Offset],
                      evaluate) -> List[Tuple[Offset, int]]:
        """Score ``offsets`` in order, preferring the evaluator's vectorized
        batch hook (``evaluate.many``) when it exposes one.  Trace records
        and SAD values are identical either way; only the number of numpy
        dispatches changes."""
        many = getattr(evaluate, "many", None)
        if many is not None:
            return list(zip(offsets, many(offsets)))
        return [(offset, evaluate(*offset)) for offset in offsets]


def _clamp_offset(mb_x: int, mb_y: int, dx: int, dy: int, width: int,
                  height: int) -> bool:
    """Is the 16x16 integer predictor at this offset inside the plane?

    Integer candidates only ever read a 16x16 block; the extra row/column
    that half-sample interpolation needs is bounds-checked per refinement
    candidate in :meth:`MotionEstimator.estimate` (an out-of-plane
    half-sample neighbour is skipped there without constraining the integer
    search).  Demanding 17x17 here — as the code once did — silently
    shrank the search window for macroblocks in the last row/column."""
    x = mb_x + dx
    y = mb_y + dy
    return 0 <= x and 0 <= y and x + 16 <= width and y + 16 <= height


class FullSearch(SearchStrategy):
    """Exhaustive integer search over ``[-range, +range]²``."""

    def __init__(self, search_range: int = 8):
        if search_range < 1:
            raise CodecError("search range must be >= 1")
        self.search_range = search_range
        self.name = f"full±{search_range}"

    def integer_candidates(self, mb_x, mb_y, width, height, evaluate):
        # the admissible offsets are the window clamped to the plane — a
        # rectangle, computed directly instead of per-candidate checks
        dx_lo, dx_hi = max(-self.search_range, -mb_x), \
            min(self.search_range, width - 16 - mb_x)
        dy_lo, dy_hi = max(-self.search_range, -mb_y), \
            min(self.search_range, height - 16 - mb_y)
        offsets: List[Offset] = [(0, 0)]
        for dy in range(dy_lo, dy_hi + 1):
            for dx in range(dx_lo, dx_hi + 1):
                if (dx, dy) != (0, 0):
                    offsets.append((dx, dy))
        scored = self.evaluate_many(offsets, evaluate)
        best, best_sad = scored[0]
        for offset, sad in scored[1:]:
            if sad < best_sad:
                best, best_sad = offset, sad
        return best, best_sad


class ThreeStepSearch(SearchStrategy):
    """Classic three-step (logarithmic) search starting at step 4."""

    def __init__(self, initial_step: int = 4):
        if initial_step < 1:
            raise CodecError("initial step must be >= 1")
        self.initial_step = initial_step
        self.name = f"3step/{initial_step}"

    def integer_candidates(self, mb_x, mb_y, width, height, evaluate):
        center = (0, 0)
        best_sad = evaluate(0, 0)
        step = self.initial_step
        while step >= 1:
            ring: List[Offset] = []
            for dy in (-step, 0, step):
                for dx in (-step, 0, step):
                    if (dx, dy) == (0, 0):
                        continue
                    cand = (center[0] + dx, center[1] + dy)
                    if not _clamp_offset(mb_x, mb_y, cand[0], cand[1],
                                         width, height):
                        continue
                    ring.append(cand)
            best = center
            for cand, sad in self.evaluate_many(ring, evaluate):
                if sad < best_sad:
                    best, best_sad = cand, sad
            center = best
            step //= 2
        return center, best_sad


class DiamondSearch(SearchStrategy):
    """Large/small diamond pattern search (EPZS-style, simplified).

    Repeats the large diamond (distance-2 cross + diagonals) until the
    centre wins, then one small diamond (distance-1 cross) refinement.
    """

    LARGE = [(0, -2), (1, -1), (2, 0), (1, 1), (0, 2), (-1, 1), (-2, 0),
             (-1, -1)]
    SMALL = [(0, -1), (1, 0), (0, 1), (-1, 0)]

    def __init__(self, max_rounds: int = 8):
        if max_rounds < 1:
            raise CodecError("diamond search needs at least one round")
        self.max_rounds = max_rounds
        self.name = f"diamond/{max_rounds}"

    def integer_candidates(self, mb_x, mb_y, width, height, evaluate):
        seen = {(0, 0)}
        center = (0, 0)
        best_sad = evaluate(0, 0)
        for _ in range(self.max_rounds):
            ring: List[Offset] = []
            for dx, dy in self.LARGE:
                cand = (center[0] + dx, center[1] + dy)
                if cand in seen:
                    continue
                if not _clamp_offset(mb_x, mb_y, cand[0], cand[1],
                                     width, height):
                    continue
                seen.add(cand)
                ring.append(cand)
            best = center
            for cand, sad in self.evaluate_many(ring, evaluate):
                if sad < best_sad:
                    best, best_sad = cand, sad
            if best == center:
                break
            center = best
        # the small diamond recentres between candidates, so it stays scalar
        for dx, dy in self.SMALL:
            cand = (center[0] + dx, center[1] + dy)
            if cand in seen:
                continue
            if not _clamp_offset(mb_x, mb_y, cand[0], cand[1], width, height):
                continue
            seen.add(cand)
            sad = evaluate(cand[0], cand[1])
            if sad < best_sad:
                center, best_sad = cand, sad
        return center, best_sad


class _CandidateEvaluator:
    """Scores integer candidates, records trace calls, tracks the best SAD.

    Callable (one offset at a time) for the scalar strategies, with a
    ``many`` batch hook the :meth:`SearchStrategy.evaluate_many` helper
    picks up: a dense rectangle of offsets (the full-search window)
    collapses into one :meth:`FastSadEngine.sad_map`, any other batch into
    one :meth:`FastSadEngine.sad_many`.  Trace records are appended in
    offset order, so scalar and batched evaluation produce identical
    traces."""

    def __init__(self, engine: Optional[FastSadEngine], current: np.ndarray,
                 reference: np.ndarray, mb_x: int, mb_y: int,
                 frame_index: int, calls: List[MeInvocation],
                 early_terminate: bool):
        self.engine = engine
        self.current = current
        self.reference = reference
        self.mb_x = mb_x
        self.mb_y = mb_y
        self.frame_index = frame_index
        self.calls = calls
        self.early_terminate = early_terminate
        self.best: Optional[int] = None
        #: index into ``calls`` of the first call achieving ``best`` — the
        #: candidate the trace will mark ``chosen`` (unless half-sample
        #: refinement improves on it)
        self.best_index: int = -1
        if engine is not None:
            self.planes = engine.planes(reference)
            self.block = engine.block(current, mb_x, mb_y)
        else:
            self.planes = None
            self.block = None

    def _record(self, dx: int, dy: int, sad: int) -> None:
        self.calls.append(MeInvocation(
            self.frame_index, self.mb_x, self.mb_y,
            self.mb_x + dx, self.mb_y + dy, InterpMode.FULL, sad, False))
        if self.best is None or sad < self.best:
            self.best = sad
            self.best_index = len(self.calls) - 1

    def __call__(self, dx: int, dy: int) -> int:
        best_so_far = self.best if self.early_terminate else None
        if self.planes is not None:
            sad = self.planes.sad(
                self.block, self.mb_x + dx, self.mb_y + dy, 0, 0,
                best_so_far=best_so_far,
                early_terminate=self.early_terminate)
        else:
            sad = getsad(
                self.current, self.reference, self.mb_x, self.mb_y,
                self.mb_x + dx, self.mb_y + dy, 0, 0,
                best_so_far=best_so_far,
                early_terminate=self.early_terminate)
        self._record(dx, dy, sad)
        return sad

    def many(self, offsets: Sequence[Offset]) -> List[int]:
        # early termination depends on call-by-call state; keep it scalar
        if self.planes is None or self.early_terminate or not offsets:
            return [self(dx, dy) for dx, dy in offsets]
        sads = self._batch(offsets)
        calls, mb_x, mb_y = self.calls, self.mb_x, self.mb_y
        frame, best, best_index = self.frame_index, self.best, self.best_index
        base = len(calls)
        for position, ((dx, dy), sad) in enumerate(zip(offsets, sads)):
            calls.append(MeInvocation(frame, mb_x, mb_y, mb_x + dx,
                                      mb_y + dy, InterpMode.FULL, sad, False))
            if best is None or sad < best:
                best = sad
                best_index = base + position
        self.best, self.best_index = best, best_index
        return sads

    def _batch(self, offsets: Sequence[Offset]) -> List[int]:
        xs = [self.mb_x + dx for dx, _ in offsets]
        ys = [self.mb_y + dy for _, dy in offsets]
        x_lo, x_hi = min(xs), max(xs)
        y_lo, y_hi = min(ys), max(ys)
        area = (x_hi - x_lo + 1) * (y_hi - y_lo + 1)
        if area == len(set(offsets)) == len(offsets):
            rows = self.planes.sad_map(self.block, x_lo, x_hi,
                                       y_lo, y_hi).tolist()
            return [rows[y - y_lo][x - x_lo] for x, y in zip(xs, ys)]
        return self.planes.sad_many(
            self.block, [(x, y, 0, 0) for x, y in zip(xs, ys)])


class MotionEstimator:
    """Per-macroblock ME driver: integer strategy + half-sample refinement.

    ``use_fast_engine`` (default on) scores candidates on a
    :class:`FastSadEngine` — same SADs, same trace, a fraction of the
    wall time.  ``early_terminate`` (default off) additionally lets losing
    candidates abort their SAD accumulation early; the chosen motion
    vectors are provably unchanged, but losing candidates' recorded SADs
    become lower bounds, so the flag is opt-in."""

    def __init__(self, strategy: Optional[SearchStrategy] = None,
                 refine_halfpel: bool = True,
                 engine: Optional[FastSadEngine] = None,
                 use_fast_engine: bool = True,
                 early_terminate: bool = False):
        self.strategy = strategy or ThreeStepSearch()
        self.refine_halfpel = refine_halfpel
        if engine is None and use_fast_engine:
            engine = FastSadEngine()
        self.engine = engine
        self.early_terminate = early_terminate

    def _refinement_sad(self, evaluator: _CandidateEvaluator, px: int,
                        py: int, half_x: int, half_y: int,
                        best_so_far: int) -> int:
        best = best_so_far if self.early_terminate else None
        if evaluator.planes is not None:
            return evaluator.planes.sad(evaluator.block, px, py,
                                        half_x, half_y, best_so_far=best,
                                        early_terminate=self.early_terminate)
        return getsad(evaluator.current, evaluator.reference,
                      evaluator.mb_x, evaluator.mb_y, px, py, half_x, half_y,
                      best_so_far=best, early_terminate=self.early_terminate)

    def estimate(self, current: np.ndarray, reference: np.ndarray,
                 mb_x: int, mb_y: int, frame_index: int,
                 trace: Optional[MeTrace] = None) -> MotionVector:
        """Find the best half-sample MV for the macroblock at (mb_x, mb_y)."""
        height, width = reference.shape
        calls: List[MeInvocation] = []
        evaluator = _CandidateEvaluator(self.engine, current, reference,
                                        mb_x, mb_y, frame_index, calls,
                                        self.early_terminate)

        (best_dx, best_dy), best_sad = self.strategy.integer_candidates(
            mb_x, mb_y, width, height, evaluator)
        best = MotionVector(2 * best_dx, 2 * best_dy, best_sad)
        # index into ``calls`` of the winning candidate: the integer
        # search's first best so far, displaced by any refinement win below
        chosen_index = evaluator.best_index

        if self.refine_halfpel:
            candidates = []
            for hdy in (-1, 0, 1):
                for hdx in (-1, 0, 1):
                    if (hdx, hdy) == (0, 0):
                        continue
                    mv_x = 2 * best_dx + hdx
                    mv_y = 2 * best_dy + hdy
                    px = mb_x + (mv_x >> 1)
                    py = mb_y + (mv_y >> 1)
                    half_x, half_y = mv_x & 1, mv_y & 1
                    if not (0 <= px and 0 <= py
                            and px + 16 + half_x <= width
                            and py + 16 + half_y <= height):
                        continue
                    candidates.append((mv_x, mv_y, px, py, half_x, half_y))
            batched: Optional[List[int]] = None
            if evaluator.planes is not None and not self.early_terminate \
                    and candidates:
                batched = evaluator.planes.sad_many(
                    evaluator.block, [cand[2:] for cand in candidates])
            for i, (mv_x, mv_y, px, py, half_x, half_y) \
                    in enumerate(candidates):
                if batched is not None:
                    sad = batched[i]
                else:
                    sad = self._refinement_sad(evaluator, px, py,
                                               half_x, half_y, best.sad)
                calls.append(MeInvocation(
                    frame_index, mb_x, mb_y, px, py,
                    mode_from_halfpel(half_x, half_y), sad, True))
                if sad < best.sad:
                    best = MotionVector(mv_x, mv_y, sad)
                    chosen_index = len(calls) - 1

        if trace is not None:
            calls[chosen_index] = calls[chosen_index]._replace(chosen=True)
            trace.extend(calls)
        return best

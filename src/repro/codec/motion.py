"""Motion estimation: integer search strategies + half-sample refinement.

GetSad() is called once per candidate; every call is recorded in the
:class:`~repro.codec.tracer.MeTrace`.  Two integer strategies are provided:

* :class:`FullSearch` — exhaustive over a square window (the classic
  reference-code approach; expensive);
* :class:`ThreeStepSearch` — logarithmic 3-step pattern (the experiments'
  default; its integer/half-sample call mix puts the diagonal
  interpolation fraction near the paper's measured 18 %).

After the integer winner, the 8 surrounding half-sample candidates are
evaluated (4 of them diagonal), exactly the sub-task Listing 1 describes.
Motion vectors are in half-sample units.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.codec.interp import mode_from_halfpel
from repro.codec.sad import getsad
from repro.codec.tracer import MeInvocation, MeTrace
from repro.errors import CodecError


@dataclass
class MotionVector:
    """Half-sample motion vector with its SAD."""

    dx: int  # half-sample units relative to the macroblock position
    dy: int
    sad: int

    @property
    def integer(self) -> Tuple[int, int]:
        return self.dx >> 1, self.dy >> 1  # floor division toward -inf

    @property
    def halfpel(self) -> Tuple[int, int]:
        return self.dx & 1, self.dy & 1


class SearchStrategy:
    """Interface: produce integer candidate offsets to evaluate."""

    name = "abstract"

    def integer_candidates(self, mb_x: int, mb_y: int, width: int,
                           height: int, evaluate) -> Tuple[int, int]:
        """Run the integer search; ``evaluate(dx, dy) -> sad`` scores one
        integer offset (and records the trace).  Returns the best offset."""
        raise NotImplementedError


def _clamp_offset(mb_x: int, mb_y: int, dx: int, dy: int, width: int,
                  height: int) -> bool:
    """Is the 17x17 worst-case predictor at this offset inside the plane?"""
    x = mb_x + dx
    y = mb_y + dy
    return 0 <= x and 0 <= y and x + 17 <= width and y + 17 <= height


class FullSearch(SearchStrategy):
    """Exhaustive integer search over ``[-range, +range]²``."""

    def __init__(self, search_range: int = 8):
        if search_range < 1:
            raise CodecError("search range must be >= 1")
        self.search_range = search_range
        self.name = f"full±{search_range}"

    def integer_candidates(self, mb_x, mb_y, width, height, evaluate):
        best = (0, 0)
        best_sad = evaluate(0, 0)
        for dy in range(-self.search_range, self.search_range + 1):
            for dx in range(-self.search_range, self.search_range + 1):
                if (dx, dy) == (0, 0):
                    continue
                if not _clamp_offset(mb_x, mb_y, dx, dy, width, height):
                    continue
                sad = evaluate(dx, dy)
                if sad < best_sad:
                    best, best_sad = (dx, dy), sad
        return best


class ThreeStepSearch(SearchStrategy):
    """Classic three-step (logarithmic) search starting at step 4."""

    def __init__(self, initial_step: int = 4):
        if initial_step < 1:
            raise CodecError("initial step must be >= 1")
        self.initial_step = initial_step
        self.name = f"3step/{initial_step}"

    def integer_candidates(self, mb_x, mb_y, width, height, evaluate):
        center = (0, 0)
        best_sad = evaluate(0, 0)
        step = self.initial_step
        while step >= 1:
            best = center
            for dy in (-step, 0, step):
                for dx in (-step, 0, step):
                    if (dx, dy) == (0, 0):
                        continue
                    cand = (center[0] + dx, center[1] + dy)
                    if not _clamp_offset(mb_x, mb_y, cand[0], cand[1],
                                         width, height):
                        continue
                    sad = evaluate(cand[0], cand[1])
                    if sad < best_sad:
                        best, best_sad = cand, sad
            center = best
            step //= 2
        return center


class DiamondSearch(SearchStrategy):
    """Large/small diamond pattern search (EPZS-style, simplified).

    Repeats the large diamond (distance-2 cross + diagonals) until the
    centre wins, then one small diamond (distance-1 cross) refinement.
    """

    LARGE = [(0, -2), (1, -1), (2, 0), (1, 1), (0, 2), (-1, 1), (-2, 0),
             (-1, -1)]
    SMALL = [(0, -1), (1, 0), (0, 1), (-1, 0)]

    def __init__(self, max_rounds: int = 8):
        if max_rounds < 1:
            raise CodecError("diamond search needs at least one round")
        self.max_rounds = max_rounds
        self.name = f"diamond/{max_rounds}"

    def integer_candidates(self, mb_x, mb_y, width, height, evaluate):
        seen = {(0, 0)}
        center = (0, 0)
        best_sad = evaluate(0, 0)
        for _ in range(self.max_rounds):
            best = center
            for dx, dy in self.LARGE:
                cand = (center[0] + dx, center[1] + dy)
                if cand in seen:
                    continue
                if not _clamp_offset(mb_x, mb_y, cand[0], cand[1],
                                     width, height):
                    continue
                seen.add(cand)
                sad = evaluate(cand[0], cand[1])
                if sad < best_sad:
                    best, best_sad = cand, sad
            if best == center:
                break
            center = best
        for dx, dy in self.SMALL:
            cand = (center[0] + dx, center[1] + dy)
            if cand in seen:
                continue
            if not _clamp_offset(mb_x, mb_y, cand[0], cand[1], width, height):
                continue
            seen.add(cand)
            sad = evaluate(cand[0], cand[1])
            if sad < best_sad:
                center, best_sad = cand, sad
        return center


class MotionEstimator:
    """Per-macroblock ME driver: integer strategy + half-sample refinement."""

    def __init__(self, strategy: Optional[SearchStrategy] = None,
                 refine_halfpel: bool = True):
        self.strategy = strategy or ThreeStepSearch()
        self.refine_halfpel = refine_halfpel

    def estimate(self, current: np.ndarray, reference: np.ndarray,
                 mb_x: int, mb_y: int, frame_index: int,
                 trace: Optional[MeTrace] = None) -> MotionVector:
        """Find the best half-sample MV for the macroblock at (mb_x, mb_y)."""
        height, width = reference.shape
        calls: List[MeInvocation] = []

        def evaluate_integer(dx: int, dy: int) -> int:
            sad = getsad(current, reference, mb_x, mb_y,
                         mb_x + dx, mb_y + dy, 0, 0)
            calls.append(MeInvocation(
                frame=frame_index, mb_x=mb_x, mb_y=mb_y,
                pred_x=mb_x + dx, pred_y=mb_y + dy,
                mode=mode_from_halfpel(0, 0), sad=sad, is_refinement=False))
            return sad

        best_dx, best_dy = self.strategy.integer_candidates(
            mb_x, mb_y, width, height, evaluate_integer)
        best_sad = min(call.sad for call in calls
                       if (call.pred_x, call.pred_y)
                       == (mb_x + best_dx, mb_y + best_dy))
        best = MotionVector(2 * best_dx, 2 * best_dy, best_sad)

        if self.refine_halfpel:
            for hdy in (-1, 0, 1):
                for hdx in (-1, 0, 1):
                    if (hdx, hdy) == (0, 0):
                        continue
                    mv_x = 2 * best_dx + hdx
                    mv_y = 2 * best_dy + hdy
                    px = mb_x + (mv_x >> 1)
                    py = mb_y + (mv_y >> 1)
                    half_x, half_y = mv_x & 1, mv_y & 1
                    if not (0 <= px and 0 <= py
                            and px + 16 + half_x <= width
                            and py + 16 + half_y <= height):
                        continue
                    sad = getsad(current, reference, mb_x, mb_y, px, py,
                                 half_x, half_y)
                    calls.append(MeInvocation(
                        frame=frame_index, mb_x=mb_x, mb_y=mb_y,
                        pred_x=px, pred_y=py,
                        mode=mode_from_halfpel(half_x, half_y), sad=sad,
                        is_refinement=True))
                    if sad < best.sad:
                        best = MotionVector(mv_x, mv_y, sad)

        if trace is not None:
            chosen_key = (mb_x + (best.dx >> 1), mb_y + (best.dy >> 1),
                          mode_from_halfpel(*best.halfpel))
            marked = False
            for call in calls:
                is_chosen = (not marked
                             and (call.pred_x, call.pred_y, call.mode)
                             == chosen_key
                             and call.sad == best.sad)
                if is_chosen:
                    marked = True
                    trace.append(MeInvocation(
                        frame=call.frame, mb_x=call.mb_x, mb_y=call.mb_y,
                        pred_x=call.pred_x, pred_y=call.pred_y,
                        mode=call.mode, sad=call.sad,
                        is_refinement=call.is_refinement, chosen=True))
                else:
                    trace.append(call)
        return best

"""GetSad invocation traces.

The encoder records one :class:`MeInvocation` per GetSad call.  The
architectural timing models replay these records: the per-shape static
kernel cycles come from the scheduled VLIW kernels, the stalls from the
cache/prefetch/line-buffer replay.  The record keeps pixel coordinates
(plane-relative); addresses are derived through a
:class:`~repro.codec.frame.FrameLayout` at replay time so the same trace
can be replayed under different memory layouts.
"""

from __future__ import annotations

import hashlib
import pathlib
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, NamedTuple, Tuple, Union

import numpy as np

from repro.rfu.loop_model import InterpMode

#: (column name, dtype) of the on-disk columnar trace format; the order
#: matches the MeInvocation fields
_NPZ_COLUMNS = (
    ("frame", np.int32), ("mb_x", np.int32), ("mb_y", np.int32),
    ("pred_x", np.int32), ("pred_y", np.int32), ("mode", np.int8),
    ("sad", np.int64), ("is_refinement", np.bool_), ("chosen", np.bool_),
)


class MeInvocation(NamedTuple):
    """One GetSad call.

    A NamedTuple rather than a dataclass: motion estimation creates one of
    these per candidate (tens of thousands per encode), and tuple
    construction is several times cheaper than a frozen dataclass'
    ``object.__setattr__`` loop — it shows up directly in GetSad
    candidate-evaluation throughput."""

    frame: int           # index of the *current* frame being encoded
    mb_x: int            # macroblock origin, pixels
    mb_y: int
    pred_x: int          # predictor integer corner in the reference plane
    pred_y: int
    mode: InterpMode
    sad: int             # golden SAD value
    is_refinement: bool  # half-sample refinement phase vs integer search
    chosen: bool = False  # this candidate became the macroblock's MV


@dataclass
class MeTrace:
    """All GetSad invocations of one encoding run."""

    invocations: List[MeInvocation] = field(default_factory=list)

    def append(self, invocation: MeInvocation) -> None:
        self.invocations.append(invocation)

    def extend(self, invocations: Iterable[MeInvocation]) -> None:
        self.invocations.extend(invocations)

    def __len__(self) -> int:
        return len(self.invocations)

    def __iter__(self) -> Iterator[MeInvocation]:
        return iter(self.invocations)

    def signature(self) -> str:
        """Stable digest of the full invocation stream.

        Two traces have equal signatures iff they are call-for-call
        identical (order, coordinates, mode, SAD, flags) — the byte-identity
        check the fast-ME engine is held to against the scalar path."""
        digest = hashlib.sha256()
        for inv in self.invocations:
            digest.update(
                f"{inv.frame},{inv.mb_x},{inv.mb_y},{inv.pred_x},"
                f"{inv.pred_y},{inv.mode.name},{inv.sad},"
                f"{int(inv.is_refinement)},{int(inv.chosen)};"
                .encode("ascii"))
        return digest.hexdigest()

    # -- columnar persistence -------------------------------------------------
    def save_npz(self, path: Union[str, pathlib.Path]) -> None:
        """Persist the trace as compressed numpy columns.

        One array per :class:`MeInvocation` field; round-trips exactly
        through :meth:`load_npz` (equal :meth:`signature`).  A 3-frame
        trace is a few kilobytes, so sweep artifacts can ship the exact
        replayed workload."""
        columns = {
            name: np.fromiter((getattr(inv, name) for inv in self.invocations),
                              dtype=dtype, count=len(self.invocations))
            for name, dtype in _NPZ_COLUMNS
        }
        np.savez_compressed(path, **columns)

    @classmethod
    def load_npz(cls, path: Union[str, pathlib.Path]) -> "MeTrace":
        """Load a trace previously written by :meth:`save_npz`."""
        with np.load(path) as data:
            columns = [data[name].tolist() for name, _ in _NPZ_COLUMNS]
        trace = cls()
        for frame, mb_x, mb_y, pred_x, pred_y, mode, sad, refine, chosen \
                in zip(*columns):
            trace.append(MeInvocation(
                frame=frame, mb_x=mb_x, mb_y=mb_y, pred_x=pred_x,
                pred_y=pred_y, mode=InterpMode(mode), sad=sad,
                is_refinement=refine, chosen=chosen))
        return trace

    # -- workload statistics (reported in EXPERIMENTS.md) ---------------------
    def mode_histogram(self) -> Dict[InterpMode, int]:
        histogram = {mode: 0 for mode in InterpMode}
        for invocation in self.invocations:
            histogram[invocation.mode] += 1
        return histogram

    def diagonal_fraction(self) -> float:
        """Fraction of GetSad calls doing diagonal interpolation (the paper
        measures 18 % on Foreman)."""
        if not self.invocations:
            return 0.0
        diagonal = sum(1 for inv in self.invocations
                       if inv.mode is InterpMode.HV)
        return diagonal / len(self.invocations)

    def alignment_histogram(self, stride: int) -> Dict[int, int]:
        """Distribution of predictor word alignments (Figure 2's parameter).

        Alignment here is relative to the plane origin; the replay adds the
        plane base (32-byte aligned, so congruent mod 4)."""
        histogram = {0: 0, 1: 0, 2: 0, 3: 0}
        for invocation in self.invocations:
            histogram[(invocation.pred_y * stride + invocation.pred_x) % 4] += 1
        return histogram

    def frames(self) -> List[int]:
        return sorted({inv.frame for inv in self.invocations})

    def split_by_frame(self) -> Dict[int, List[MeInvocation]]:
        by_frame: Dict[int, List[MeInvocation]] = {}
        for invocation in self.invocations:
            by_frame.setdefault(invocation.frame, []).append(invocation)
        return by_frame

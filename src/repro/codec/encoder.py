"""The MPEG4 simple-profile encoder driver.

Functionally encodes a sequence (I frame followed by P frames) with the
paper's settings — constant quantiser Q = 10, half-sample motion
estimation on luma — while recording:

* the GetSad invocation trace (the architectural workload),
* per-frame statistics (bits, PSNR, interpolation mix),
* non-ME work counts for the cycle cost model,
* every reconstructed frame (the ME reference planes the timing replay
  places into simulated memory).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.codec.costmodel import WorkCounts
from repro.codec.dct import forward_dct, inverse_dct
from repro.codec.entropy import block_bits, coded_symbols, mv_bits
from repro.codec.frame import MB_SIZE, YuvFrame
from repro.codec.interp import halfpel_predictor
from repro.codec.motion import MotionEstimator, MotionVector, SearchStrategy
from repro.codec.quant import dequantise, quantise
from repro.codec.syntax import (
    CodedBlock,
    CodedFrame,
    CodedMacroblock,
    CodedSequence,
    INTER,
    INTRA,
)
from repro.codec.tracer import MeTrace
from repro.errors import CodecError


@dataclass
class EncoderConfig:
    """Encoder settings (paper defaults: QCIF, 25 frames, Q = 10)."""

    qp: int = 10
    strategy: Optional[SearchStrategy] = None   # default: three-step search
    refine_halfpel: bool = True
    #: SAD above which a P macroblock falls back to intra coding
    intra_sad_threshold: int = 16 * 16 * 24
    #: intra-frame period (GOP size); 0 = only the first frame is intra
    gop_size: int = 0
    #: score ME candidates on the vectorized half-pel plane engine
    #: (bit-exact with the scalar getsad path, same MeTrace)
    use_fast_engine: bool = True
    #: let losing SAD candidates terminate early (opt-in: chosen MVs are
    #: unchanged but losers' recorded SADs become lower bounds)
    early_terminate: bool = False
    #: emit a byte-aligned resync marker + slice header every N macroblock
    #: rows when the coded sequence is serialized (0 = legacy compact
    #: layout); see :mod:`repro.codec.syntax` for the resilient format
    resync_every: int = 0


@dataclass
class FrameStats:
    """Per-frame encoding statistics."""

    index: int
    frame_type: str            # "I" or "P"
    bits: int
    psnr_y: float
    intra_mbs: int
    inter_mbs: int
    getsad_calls: int


@dataclass
class EncoderReport:
    """Everything one encoding run produced."""

    frame_stats: List[FrameStats] = field(default_factory=list)
    trace: MeTrace = field(default_factory=MeTrace)
    work: WorkCounts = field(default_factory=WorkCounts)
    reconstructed: List[YuvFrame] = field(default_factory=list)
    motion_vectors: List[List[MotionVector]] = field(default_factory=list)
    #: decoder-side syntax of the whole run (serializable, see
    #: :mod:`repro.codec.syntax`)
    coded: Optional[CodedSequence] = None

    @property
    def total_bits(self) -> int:
        return sum(stats.bits for stats in self.frame_stats)

    @property
    def mean_psnr_y(self) -> float:
        values = [stats.psnr_y for stats in self.frame_stats
                  if stats.psnr_y != float("inf")]
        return float(np.mean(values)) if values else float("inf")

    def serialize(self) -> bytes:
        """The run's bitstream (resilient when the encoder was configured
        with ``resync_every >= 1``, legacy otherwise)."""
        from repro.codec.syntax import serialize
        if self.coded is None:
            raise CodecError("no coded sequence: encode() was never run")
        return serialize(self.coded)


class Mpeg4Encoder:
    """MPEG4-SP encoder over YUV 4:2:0 frames.

    ``engine`` optionally injects a pre-built
    :class:`~repro.codec.fastme.FastSadEngine` (the serving layer passes
    one wired to its shared cross-stream caches); by default the
    estimator builds a private engine per
    ``EncoderConfig.use_fast_engine``.
    """

    def __init__(self, config: Optional[EncoderConfig] = None, engine=None):
        self.config = config or EncoderConfig()
        self.estimator = MotionEstimator(
            self.config.strategy, self.config.refine_halfpel,
            engine=engine,
            use_fast_engine=self.config.use_fast_engine,
            early_terminate=self.config.early_terminate)

    # -- block helpers -------------------------------------------------------
    def _code_block(self, spatial: np.ndarray, intra: bool,
                    work: WorkCounts):
        """DCT/quant/dequant/IDCT round trip of one 8x8 block.

        Returns (reconstructed residual or texture, bits, levels)."""
        coefficients = forward_dct(spatial)
        levels = quantise(coefficients, self.config.qp, intra=intra)
        bits = block_bits(levels)
        rec = inverse_dct(dequantise(levels, self.config.qp, intra=intra))
        work.dct_blocks += 1
        work.quant_blocks += 1
        work.zigzag_blocks += 1
        work.coded_symbols += coded_symbols(levels)
        if np.any(levels):
            work.dequant_blocks += 1
            work.idct_blocks += 1
        work.recon_blocks += 1
        return rec, bits, levels

    def _code_plane_mb(self, plane_cur: np.ndarray, plane_rec: np.ndarray,
                       x: int, y: int, size: int, predictor: Optional[np.ndarray],
                       work: WorkCounts,
                       collect: Optional[List[CodedBlock]] = None) -> int:
        """Code one ``size x size`` region (luma MB quarter or chroma block)."""
        bits = 0
        for by in range(0, size, 8):
            for bx in range(0, size, 8):
                cur = plane_cur[y + by:y + by + 8, x + bx:x + bx + 8] \
                    .astype(np.float64)
                if predictor is None:
                    rec, block_cost, levels = self._code_block(cur - 128.0,
                                                               True, work)
                    rebuilt = rec + 128.0
                else:
                    pred = predictor[by:by + 8, bx:bx + 8].astype(np.float64)
                    rec, block_cost, levels = self._code_block(cur - pred,
                                                               False, work)
                    rebuilt = pred + rec
                plane_rec[y + by:y + by + 8, x + bx:x + bx + 8] = \
                    np.clip(rebuilt, 0, 255).astype(np.uint8)
                bits += block_cost
                if collect is not None:
                    collect.append(CodedBlock(levels, predictor is None))
        return bits

    # -- frame coding -----------------------------------------------------------
    def _encode_intra_frame(self, frame: YuvFrame, index: int,
                            report: EncoderReport) -> FrameStats:
        rec = YuvFrame.blank(frame.width, frame.height)
        coded_frame = CodedFrame("I")
        bits = 0
        for mb_y in range(0, frame.height, MB_SIZE):
            for mb_x in range(0, frame.width, MB_SIZE):
                blocks: List[CodedBlock] = []
                bits += self._code_plane_mb(frame.y, rec.y, mb_x, mb_y,
                                            MB_SIZE, None, report.work,
                                            blocks)
                cx, cy = mb_x // 2, mb_y // 2
                bits += self._code_plane_mb(frame.u, rec.u, cx, cy, 8, None,
                                            report.work, blocks)
                bits += self._code_plane_mb(frame.v, rec.v, cx, cy, 8, None,
                                            report.work, blocks)
                coded_frame.macroblocks.append(
                    CodedMacroblock(mb_x, mb_y, INTRA, (0, 0), blocks))
                report.work.macroblocks += 1
        report.reconstructed.append(rec)
        report.motion_vectors.append([])
        report.coded.frames.append(coded_frame)
        return FrameStats(index, "I", bits, rec.psnr_y(frame),
                          intra_mbs=frame.mb_cols * frame.mb_rows,
                          inter_mbs=0, getsad_calls=0)

    def _chroma_mc(self, plane_ref: np.ndarray, cx: int, cy: int,
                   mv: MotionVector) -> np.ndarray:
        """Integer-rounded chroma motion compensation (8x8 block)."""
        return chroma_motion_block(plane_ref, cx, cy, mv.dx, mv.dy)

    def _encode_inter_frame(self, frame: YuvFrame, reference: YuvFrame,
                            index: int, report: EncoderReport) -> FrameStats:
        rec = YuvFrame.blank(frame.width, frame.height)
        coded_frame = CodedFrame("P")
        bits = 0
        intra_mbs = inter_mbs = 0
        calls_before = len(report.trace)
        frame_mvs: List[MotionVector] = []
        for mb_y in range(0, frame.height, MB_SIZE):
            for mb_x in range(0, frame.width, MB_SIZE):
                mv = self.estimator.estimate(frame.y, reference.y, mb_x, mb_y,
                                             index, report.trace)
                frame_mvs.append(mv)
                report.work.macroblocks += 1
                blocks: List[CodedBlock] = []
                if mv.sad > self.config.intra_sad_threshold:
                    bits += self._code_plane_mb(frame.y, rec.y, mb_x, mb_y,
                                                MB_SIZE, None, report.work,
                                                blocks)
                    cx, cy = mb_x // 2, mb_y // 2
                    bits += self._code_plane_mb(frame.u, rec.u, cx, cy, 8,
                                                None, report.work, blocks)
                    bits += self._code_plane_mb(frame.v, rec.v, cx, cy, 8,
                                                None, report.work, blocks)
                    coded_frame.macroblocks.append(
                        CodedMacroblock(mb_x, mb_y, INTRA, (0, 0), blocks))
                    intra_mbs += 1
                    continue
                half_x, half_y = mv.halfpel
                predictor = halfpel_predictor(
                    reference.y, mb_x + (mv.dx >> 1), mb_y + (mv.dy >> 1),
                    half_x, half_y)
                if half_x or half_y:
                    report.work.mc_halfpel_mbs += 1
                else:
                    report.work.mc_full_mbs += 1
                bits += mv_bits(mv.dx, mv.dy)
                bits += self._code_plane_mb(frame.y, rec.y, mb_x, mb_y,
                                            MB_SIZE, predictor, report.work,
                                            blocks)
                cx, cy = mb_x // 2, mb_y // 2
                bits += self._code_plane_mb(
                    frame.u, rec.u, cx, cy, 8,
                    self._chroma_mc(reference.u, cx, cy, mv), report.work,
                    blocks)
                bits += self._code_plane_mb(
                    frame.v, rec.v, cx, cy, 8,
                    self._chroma_mc(reference.v, cx, cy, mv), report.work,
                    blocks)
                coded_frame.macroblocks.append(
                    CodedMacroblock(mb_x, mb_y, INTER, (mv.dx, mv.dy),
                                    blocks))
                inter_mbs += 1
        report.reconstructed.append(rec)
        report.motion_vectors.append(frame_mvs)
        report.coded.frames.append(coded_frame)
        return FrameStats(index, "P", bits, rec.psnr_y(frame), intra_mbs,
                          inter_mbs, len(report.trace) - calls_before)

    # -- public API -----------------------------------------------------------
    def encode(self, frames: List[YuvFrame]) -> EncoderReport:
        """Encode a sequence; the first frame is intra, the rest are P."""
        if not frames:
            raise CodecError("cannot encode an empty sequence")
        return self.encode_segment(frames)

    def encode_segment(self, frames: List[YuvFrame],
                       report: Optional[EncoderReport] = None
                       ) -> EncoderReport:
        """Encode a chunk of frames, continuing an earlier report.

        The streaming form of :meth:`encode`: with ``report=None`` a fresh
        run starts (frame 0 is intra); passing back the returned report
        continues the same run, so splitting a sequence into arbitrary
        segments yields a :class:`~repro.codec.syntax.CodedSequence` —
        and therefore a serialized bitstream — **byte-identical** to one
        :meth:`encode` call over the concatenation.  Each frame's global
        index drives the GOP logic, and each P frame predicts from the
        last reconstructed frame, which is all the state a continuation
        needs: a caller bounding memory may trim
        ``report.reconstructed`` down to its final entry (and reset the
        trace) between segments, exactly what the serving layer does.
        """
        if report is None:
            report = EncoderReport()
        if report.coded is None:
            if not frames:
                raise CodecError("cannot start a run from an empty segment")
            report.coded = CodedSequence(frames[0].width, frames[0].height,
                                         self.config.qp,
                                         resync_every=self.config.resync_every)
        start = report.work.frames
        for offset, frame in enumerate(frames):
            index = start + offset
            if index == 0 or (self.config.gop_size
                              and index % self.config.gop_size == 0):
                report.frame_stats.append(
                    self._encode_intra_frame(frame, index, report))
            else:
                if not report.reconstructed:
                    raise CodecError(
                        f"cannot continue at frame {index}: the previous "
                        f"reconstructed frame was trimmed from the report")
                report.frame_stats.append(
                    self._encode_inter_frame(frame, report.reconstructed[-1],
                                             index, report))
            report.work.frames += 1
        return report


def chroma_motion_block(plane_ref: np.ndarray, cx: int, cy: int,
                        dx_half: int, dy_half: int) -> np.ndarray:
    """Integer-rounded chroma motion compensation (shared with the decoder).

    Luma half-sample units map to chroma full-sample offsets with
    round-to-nearest; positions clamp to the plane.
    """
    height, width = plane_ref.shape
    dx = int(np.rint(dx_half / 4.0))
    dy = int(np.rint(dy_half / 4.0))
    px = min(max(cx + dx, 0), width - 8)
    py = min(max(cy + dy, 0), height - 8)
    return plane_ref[py:py + 8, px:px + 8]

"""8x8 forward/inverse DCT (type II/III, orthonormal).

The encoder substrate uses the float reference DCT with rounding, which is
what MPEG4 normatively specifies for the decoder-side IDCT accuracy; the
cost model accounts for its cycle cost on the VLIW separately.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError

BLOCK = 8


def _dct_matrix() -> np.ndarray:
    matrix = np.zeros((BLOCK, BLOCK), dtype=np.float64)
    for k in range(BLOCK):
        for n in range(BLOCK):
            matrix[k, n] = np.cos(np.pi * (2 * n + 1) * k / (2 * BLOCK))
    matrix *= np.sqrt(2.0 / BLOCK)
    matrix[0, :] *= 1.0 / np.sqrt(2.0)
    return matrix


_DCT = _dct_matrix()
_IDCT = _DCT.T


def forward_dct(block: np.ndarray) -> np.ndarray:
    """2-D DCT of one 8x8 spatial block (int16-ish input, float64 output)."""
    if block.shape != (BLOCK, BLOCK):
        raise CodecError(f"DCT expects 8x8 blocks, got {block.shape}")
    return _DCT @ block.astype(np.float64) @ _DCT.T


def inverse_dct(coefficients: np.ndarray) -> np.ndarray:
    """2-D inverse DCT, rounded to integers."""
    if coefficients.shape != (BLOCK, BLOCK):
        raise CodecError(f"IDCT expects 8x8 blocks, got {coefficients.shape}")
    return np.rint(_IDCT @ coefficients.astype(np.float64) @ _IDCT.T)

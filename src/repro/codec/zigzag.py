"""Zigzag coefficient ordering for 8x8 blocks."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.errors import CodecError


def _zigzag_order(size: int = 8) -> List[Tuple[int, int]]:
    order = []
    for diagonal in range(2 * size - 1):
        # even diagonals run top-right -> bottom-left, odd ones the reverse
        cells = [(diagonal - col, col) for col in range(size)
                 if 0 <= diagonal - col < size]
        if diagonal % 2 == 1:
            cells.reverse()
        order.extend(cells)
    return order


#: (row, col) visiting order of the standard zigzag scan
ZIGZAG_ORDER: List[Tuple[int, int]] = _zigzag_order()


def zigzag_scan(block: np.ndarray) -> np.ndarray:
    """Flatten an 8x8 block into zigzag order."""
    if block.shape != (8, 8):
        raise CodecError(f"zigzag expects 8x8 blocks, got {block.shape}")
    return np.array([block[r, c] for r, c in ZIGZAG_ORDER], dtype=block.dtype)


def inverse_zigzag(scanned: np.ndarray) -> np.ndarray:
    """Rebuild the 8x8 block from its zigzag-ordered coefficients."""
    if scanned.shape != (64,):
        raise CodecError(f"inverse zigzag expects 64 values, got {scanned.shape}")
    block = np.zeros((8, 8), dtype=scanned.dtype)
    for value, (r, c) in zip(scanned, ZIGZAG_ORDER):
        block[r, c] = value
    return block

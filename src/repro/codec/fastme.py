"""Vectorized half-pel SAD engine (the host-side GetSad fast path).

The paper's hotspot — GetSad() at ~60 % of encoder cycles — is evaluated
once per candidate per macroblock per frame.  The scalar host model
(:func:`repro.codec.sad.getsad`) re-interpolates the half-pel predictor
from scratch on every call; this module removes that redundancy the same
way data-parallel SAD engines do in hardware:

* per reference frame, the four half-sample planes (FULL/H/V/HV) are
  interpolated **once** (:func:`repro.codec.interp.halfpel_planes`) and
  cached keyed on reference identity, turning every subsequent GetSad into
  a 16x16 slice plus an ``abs``-difference reduction;
* candidate batches (a search ring, the 8 half-pel refinements) are
  gathered out of a precomputed ``sliding_window_view`` by fancy indexing
  and reduced in one pass (:meth:`ReferencePlanes.sad_many`);
* dense full-search windows collapse into a single SAD map over the same
  view (:meth:`ReferencePlanes.sad_map`).

Every path is bit-exact with ``getsad``/``getsad_reference`` (Listing 1):
the planes hold exactly the values ``halfpel_predictor`` would compute, so
slicing them is the same pixel arithmetic — only the loop structure is
vectorized.  ``tests/test_fastme.py`` pins this down differentially.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
from numpy.lib.stride_tricks import sliding_window_view

from repro.codec.interp import halfpel_planes, mode_from_halfpel
from repro.codec.sad import sad_early_exit
from repro.errors import CodecError
from repro.rfu.loop_model import InterpMode

#: (pred_x, pred_y, half_x, half_y) — one GetSad candidate.
Candidate = Tuple[int, int, int, int]

#: candidates per vectorized pass of :meth:`ReferencePlanes.sad_stream`
STREAM_CHUNK = 256


@dataclass(frozen=True)
class ReferencePlanes:
    """Precomputed half-sample planes of one reference frame.

    ``planes[mode]`` is the int16 interpolated plane; ``windows[mode]`` is
    its ``sliding_window_view`` of every 16x16 block (a free strided view)
    for the dense full-search SAD map.  For sparse candidate batches the
    four planes are additionally laid out back-to-back in one flat buffer
    (``flat``), so a batch — even one mixing interpolation modes, like the
    8 half-pel refinements — is a single ``np.take`` gather: candidate
    ``(x, y, mode)`` starts at ``starts[mode] + y * strides[mode] + x`` and
    covers the 256 offsets of ``row_offsets`` for its plane stride."""

    planes: Dict[InterpMode, np.ndarray]
    windows: Dict[InterpMode, np.ndarray]
    flat: np.ndarray
    #: (half_x, half_y) -> (flat plane start, plane stride, offset row)
    lookup: Dict[Tuple[int, int], Tuple[int, int, int]]
    #: ``lookup`` as nested lists, ``grid[half_y][half_x]`` — list indexing
    #: beats tuple-key hashing on the per-candidate hot path
    grid: List[List[Tuple[int, int, int]]]
    #: row ``v`` holds the 256 flat offsets of a 16x16 block for the plane
    #: stride of offset-table row ``v`` (strides differ between the
    #: full-width and the horizontally-shrunk H/HV planes)
    offset_table: np.ndarray
    #: ``lookup`` as a (3, 4) array indexed by ``half_x + 2 * half_y``:
    #: row 0 = flat plane starts, row 1 = plane strides, row 2 = offset rows
    key_table: np.ndarray
    width: int
    height: int
    #: reusable gather buffers (keyed by name), grown on demand
    scratch: Dict[str, np.ndarray] = field(default_factory=dict, repr=False,
                                           compare=False)

    @classmethod
    def build(cls, reference: np.ndarray) -> "ReferencePlanes":
        planes = halfpel_planes(reference)
        windows = {mode: sliding_window_view(plane, (16, 16))
                   for mode, plane in planes.items()}
        flat = np.concatenate([np.ascontiguousarray(planes[mode]).ravel()
                               for mode in InterpMode])
        stride_rows = {
            stride: row for row, stride in enumerate(
                sorted({plane.shape[1] for plane in planes.values()}))}
        offset_table = np.stack([
            (np.arange(16)[:, None] * stride + np.arange(16)).ravel()
            for stride in sorted(stride_rows)])
        lookup: Dict[Tuple[int, int], Tuple[int, int, int]] = {}
        position = 0
        for mode in InterpMode:
            plane = planes[mode]
            stride = plane.shape[1]
            lookup[(mode.value & 1, mode.value >> 1)] = \
                (position, stride, stride_rows[stride])
            position += plane.size
        grid = [[lookup[(hx, hy)] for hx in (0, 1)] for hy in (0, 1)]
        key_table = np.array(
            [[lookup[(key & 1, key >> 1)][part] for key in range(4)]
             for part in range(3)], dtype=np.intp)
        height, width = reference.shape
        return cls(planes, windows, flat, lookup, grid, offset_table,
                   key_table, width, height)

    def check_bounds(self, pred_x: int, pred_y: int, half_x: int,
                     half_y: int, size: int = 16) -> None:
        if half_x not in (0, 1) or half_y not in (0, 1):
            raise CodecError(
                f"half-sample flags must be 0/1, got ({half_x},{half_y})")
        if not (0 <= pred_x and 0 <= pred_y
                and pred_x + size + half_x <= self.width
                and pred_y + size + half_y <= self.height):
            raise CodecError(
                f"predictor at ({pred_x},{pred_y}) half=({half_x},{half_y}) "
                f"exceeds the {self.width}x{self.height} plane")

    def predictor(self, pred_x: int, pred_y: int, half_x: int, half_y: int,
                  size: int = 16) -> np.ndarray:
        """The int16 predictor block — bit-exact with ``halfpel_predictor``."""
        self.check_bounds(pred_x, pred_y, half_x, half_y, size)
        plane = self.planes[mode_from_halfpel(half_x, half_y)]
        return plane[pred_y:pred_y + size, pred_x:pred_x + size]

    # -- SAD reductions (block is the int16 current macroblock) --------------
    def sad(self, block: np.ndarray, pred_x: int, pred_y: int, half_x: int,
            half_y: int, best_so_far: Optional[int] = None,
            early_terminate: bool = False) -> int:
        """SAD of one candidate against a pre-cast int16 macroblock."""
        predictor = self.predictor(pred_x, pred_y, half_x, half_y)
        if early_terminate and best_so_far is not None:
            return sad_early_exit(block, predictor, best_so_far)
        diff = block - predictor
        return int(np.abs(diff, out=diff).sum(dtype=np.int64))

    def sad_many(self, block: np.ndarray,
                 candidates: Sequence[Candidate]) -> List[int]:
        """SADs of many candidates against one macroblock, in input order.

        One flat-buffer ``take`` gathers all predictors — even across mixed
        interpolation modes, as in a half-pel refinement batch — followed by
        one ``abs``-difference reduction."""
        count = len(candidates)
        if count == 0:
            return []
        grid = self.grid
        width = self.width
        height = self.height
        bases: List[int] = []
        rows: List[int] = []
        for pred_x, pred_y, half_x, half_y in candidates:
            if (half_x | half_y) >> 1 or pred_x < 0 or pred_y < 0 \
                    or pred_x + 16 + half_x > width \
                    or pred_y + 16 + half_y > height:
                self.check_bounds(pred_x, pred_y, half_x, half_y)
            start, stride, row = grid[half_y][half_x]
            bases.append(start + pred_y * stride + pred_x)
            rows.append(row)
        base = np.asarray(bases, dtype=np.intp)[:, None]
        first = rows[0]
        if all(row == first for row in rows):
            indices = base + self.offset_table[first]
        else:
            indices = base + self.offset_table[rows]
        buffer = self.scratch.get("gather")
        if buffer is None or buffer.shape[0] < count:
            buffer = np.empty((max(count, 64), 256), np.int16)
            self.scratch["gather"] = buffer
        diff = self.flat.take(indices, out=buffer[:count], mode="clip")
        diff -= block.reshape(1, 256)
        totals = np.abs(diff, out=diff).sum(axis=1, dtype=np.int64)
        return totals.tolist()

    def sad_stream(self, blocks: np.ndarray, pred_x: np.ndarray,
                   pred_y: np.ndarray, half_x: np.ndarray,
                   half_y: np.ndarray) -> np.ndarray:
        """Fully vectorized SAD of N independent (block, candidate) pairs.

        Unlike :meth:`sad_many` (one macroblock, many candidates, per-call
        Python decode), this is the columnar streaming form: ``blocks`` is an
        ``(n, 256)`` int16 matrix with one current-macroblock row per
        candidate (see :meth:`FastSadEngine.block_rows`) and the four
        coordinate arguments are ``(n,)`` integer arrays.  Candidate decode,
        bounds validation, predictor gather and reduction are all array
        operations, so throughput approaches the memory-bandwidth floor of
        the SAD arithmetic itself.  Returns the ``(n,)`` int64 SAD vector,
        bit-exact with per-call ``getsad``."""
        xs = np.asarray(pred_x, dtype=np.intp)
        ys = np.asarray(pred_y, dtype=np.intp)
        hxs = np.asarray(half_x, dtype=np.intp)
        hys = np.asarray(half_y, dtype=np.intp)
        count = xs.shape[0]
        blocks = np.asarray(blocks)
        if blocks.shape != (count, 256):
            raise CodecError(
                f"blocks must be ({count}, 256), got {blocks.shape}")
        bad = (((hxs | hys) >> 1) != 0) | (xs < 0) | (ys < 0) \
            | (xs + 16 + hxs > self.width) | (ys + 16 + hys > self.height)
        if bad.any():
            index = int(np.argmax(bad))
            self.check_bounds(int(xs[index]), int(ys[index]),
                              int(hxs[index]), int(hys[index]))
        keys = hxs + (hys << 1)
        key_table = self.key_table
        bases = key_table[0][keys] + ys * key_table[1][keys] + xs
        offset_rows = key_table[2][keys]
        # chunk so the (chunk, 256) index and gather matrices stay
        # cache-resident — one monolithic pass is ~2x slower on long streams
        out = np.empty(count, dtype=np.int64)
        for lo in range(0, count, STREAM_CHUNK):
            hi = min(lo + STREAM_CHUNK, count)
            indices = bases[lo:hi, None] + self.offset_table[offset_rows[lo:hi]]
            diff = self.flat.take(indices, mode="clip")
            diff -= blocks[lo:hi]
            np.abs(diff, out=diff).sum(axis=1, dtype=np.int64, out=out[lo:hi])
        return out

    def sad_map(self, block: np.ndarray, x_lo: int, x_hi: int, y_lo: int,
                y_hi: int) -> np.ndarray:
        """Full-pel SAD at **every** integer corner of a dense window.

        Returns an int64 array of shape ``(y_hi - y_lo + 1, x_hi - x_lo + 1)``
        where ``[j, i]`` is the SAD at corner ``(x_lo + i, y_lo + j)`` —
        the whole ``[-range, +range]²`` full-search window as one
        vectorized reduction."""
        if not (0 <= x_lo <= x_hi and 0 <= y_lo <= y_hi
                and x_hi + 16 <= self.width and y_hi + 16 <= self.height):
            raise CodecError(
                f"SAD-map window x[{x_lo},{x_hi}] y[{y_lo},{y_hi}] exceeds "
                f"the {self.width}x{self.height} plane")
        region = self.windows[InterpMode.FULL][y_lo:y_hi + 1, x_lo:x_hi + 1]
        return np.abs(region - block).sum(axis=(2, 3), dtype=np.int64)


class FastSadEngine:
    """GetSad over cached, precomputed half-sample planes.

    The cache is keyed on reference-plane *identity* (the encoder hands the
    same reconstructed-frame array to every macroblock of a P frame, and a
    fresh array per frame), holding a strong reference so ids cannot be
    recycled while cached.  Mutating a cached reference array in place is
    not supported — replace the array instead (the encoder always does).

    By default both LRUs (half-sample planes, current-macroblock matrices)
    are private to the engine.  The serving layer instead passes shared
    ``plane_cache``/``block_cache`` backends (any object with
    ``get_or_build(array, build) -> value`` — see
    :class:`repro.serve.shared_cache.SharedArrayCache`) so many streams
    draw from one capacity pool with fleet-wide hit/miss counters; the
    engine's own hit/build counters keep counting either way, and
    :meth:`cache_stats` reports both views.
    """

    def __init__(self, max_cached_references: int = 4,
                 plane_cache=None, block_cache=None):
        if max_cached_references < 1:
            raise CodecError("the plane cache needs at least one slot")
        self.max_cached_references = max_cached_references
        self.plane_cache = plane_cache
        self.block_cache = block_cache
        #: id(plane) -> (plane, ReferencePlanes); insertion order = LRU
        self._cache: "OrderedDict[int, Tuple[np.ndarray, ReferencePlanes]]" \
            = OrderedDict()
        #: id(current plane) -> (plane, per-macroblock int16 matrix)
        self._blocks: "OrderedDict[int, Tuple[np.ndarray, np.ndarray]]" \
            = OrderedDict()
        self.plane_builds = 0   # cache misses (interpolations performed)
        self.plane_hits = 0
        self.block_builds = 0
        self.block_hits = 0

    def planes(self, reference: np.ndarray) -> ReferencePlanes:
        """The (cached) half-sample planes of ``reference``."""
        if self.plane_cache is not None:
            built, hit = self.plane_cache.get_or_build(
                reference, ReferencePlanes.build)
            if hit:
                self.plane_hits += 1
            else:
                self.plane_builds += 1
            return built
        key = id(reference)
        entry = self._cache.get(key)
        if entry is not None and entry[0] is reference:
            self._cache.move_to_end(key)
            self.plane_hits += 1
            return entry[1]
        built = ReferencePlanes.build(reference)
        self.plane_builds += 1
        self._cache[key] = (reference, built)
        self._cache.move_to_end(key)
        while len(self._cache) > self.max_cached_references:
            self._cache.popitem(last=False)
        return built

    # -- cache observability -------------------------------------------------
    @staticmethod
    def _rate(hits: int, builds: int) -> float:
        total = hits + builds
        return hits / total if total else 0.0

    def cache_stats(self) -> Dict[str, object]:
        """Hit/build counters and entry counts of both LRUs.

        ``plane_*``/``block_*`` count this engine's lookups (hits + builds
        = lookups); ``*_entries`` are the private LRUs' current sizes
        (zero when a shared backend is attached — the entries live
        there, under ``shared_planes``/``shared_blocks``, which carry the
        backend's own :meth:`~repro.serve.shared_cache.SharedArrayCache.stats`
        across every engine sharing it)."""
        stats: Dict[str, object] = {
            "plane_hits": self.plane_hits,
            "plane_builds": self.plane_builds,
            "plane_hit_rate": self._rate(self.plane_hits, self.plane_builds),
            "plane_entries": len(self._cache),
            "block_hits": self.block_hits,
            "block_builds": self.block_builds,
            "block_hit_rate": self._rate(self.block_hits, self.block_builds),
            "block_entries": len(self._blocks),
        }
        if self.plane_cache is not None:
            stats["shared_planes"] = self.plane_cache.stats()
        if self.block_cache is not None:
            stats["shared_blocks"] = self.block_cache.stats()
        return stats

    def clear(self) -> None:
        """Drop the private LRUs' entries and zero this engine's counters.

        Shared backends are left untouched — they serve other engines;
        clear those via their own ``clear()``."""
        self._cache.clear()
        self._blocks.clear()
        self.plane_builds = self.plane_hits = 0
        self.block_builds = self.block_hits = 0

    def block(self, current: np.ndarray, mb_x: int, mb_y: int) -> np.ndarray:
        """The current macroblock pre-cast for the SAD reductions.

        Grid-aligned macroblocks (the encoder's only case) come out of a
        per-frame int16 matrix holding every macroblock as one contiguous
        256-pixel row — the whole frame is cast once, and each request is a
        free reshaped view.  Unaligned coordinates fall back to a per-call
        slice-and-cast."""
        if mb_x % 16 or mb_y % 16:
            return current[mb_y:mb_y + 16, mb_x:mb_x + 16].astype(np.int16)
        height, width = current.shape
        if mb_x + 16 > width - width % 16 or mb_y + 16 > height - height % 16 \
                or mb_x < 0 or mb_y < 0:
            return current[mb_y:mb_y + 16, mb_x:mb_x + 16].astype(np.int16)
        matrix = self.block_matrix(current)
        return matrix[mb_y // 16, mb_x // 16].reshape(16, 16)

    @staticmethod
    def _build_block_matrix(current: np.ndarray) -> np.ndarray:
        height, width = current.shape
        grid_h, grid_w = height // 16, width // 16
        return (current[:grid_h * 16, :grid_w * 16]
                .astype(np.int16)
                .reshape(grid_h, 16, grid_w, 16)
                .swapaxes(1, 2)
                .reshape(grid_h, grid_w, 256))

    def block_matrix(self, current: np.ndarray) -> np.ndarray:
        """The cached ``(rows, cols, 256)`` int16 macroblock matrix of a
        frame: every grid-aligned macroblock flattened to one contiguous
        row, cast once per frame."""
        if self.block_cache is not None:
            matrix, hit = self.block_cache.get_or_build(
                current, self._build_block_matrix)
            if hit:
                self.block_hits += 1
            else:
                self.block_builds += 1
            return matrix
        key = id(current)
        entry = self._blocks.get(key)
        if entry is not None and entry[0] is current:
            self._blocks.move_to_end(key)
            self.block_hits += 1
            return entry[1]
        matrix = self._build_block_matrix(current)
        self.block_builds += 1
        self._blocks[key] = (current, matrix)
        while len(self._blocks) > self.max_cached_references:
            self._blocks.popitem(last=False)
        return matrix

    def block_rows(self, current: np.ndarray, mb_x: np.ndarray,
                   mb_y: np.ndarray) -> np.ndarray:
        """Gather ``(n, 256)`` current-macroblock rows for grid-aligned
        macroblock coordinate arrays — the ``blocks`` input of
        :meth:`ReferencePlanes.sad_stream`."""
        mb_x = np.asarray(mb_x, dtype=np.intp)
        mb_y = np.asarray(mb_y, dtype=np.intp)
        matrix = self.block_matrix(current)
        grid_h, grid_w = matrix.shape[:2]
        cols, col_rem = np.divmod(mb_x, 16)
        rows, row_rem = np.divmod(mb_y, 16)
        if col_rem.any() or row_rem.any() or (cols < 0).any() \
                or (rows < 0).any() or (cols >= grid_w).any() \
                or (rows >= grid_h).any():
            raise CodecError(
                "block_rows needs grid-aligned in-bounds macroblock "
                "coordinates")
        return matrix[rows, cols]

    # -- convenience wrappers (slice + dispatch per call) --------------------
    def getsad(self, current: np.ndarray, reference: np.ndarray, mb_x: int,
               mb_y: int, pred_x: int, pred_y: int, half_x: int = 0,
               half_y: int = 0, best_so_far: Optional[int] = None,
               early_terminate: bool = False) -> int:
        """Drop-in replacement for :func:`repro.codec.sad.getsad`."""
        return self.planes(reference).sad(
            self.block(current, mb_x, mb_y), pred_x, pred_y, half_x, half_y,
            best_so_far=best_so_far, early_terminate=early_terminate)

    def sad_many(self, current: np.ndarray, reference: np.ndarray,
                 mb_x: int, mb_y: int,
                 candidates: Sequence[Candidate]) -> List[int]:
        """SADs of many candidates against one macroblock, in input order."""
        return self.planes(reference).sad_many(
            self.block(current, mb_x, mb_y), candidates)

    def sad_map(self, current: np.ndarray, reference: np.ndarray, mb_x: int,
                mb_y: int, x_lo: int, x_hi: int, y_lo: int,
                y_hi: int) -> np.ndarray:
        """Dense full-pel SAD map; see :meth:`ReferencePlanes.sad_map`."""
        return self.planes(reference).sad_map(
            self.block(current, mb_x, mb_y), x_lo, x_hi, y_lo, y_hi)

    def sad_stream(self, current: np.ndarray, reference: np.ndarray,
                   mb_x: np.ndarray, mb_y: np.ndarray, pred_x: np.ndarray,
                   pred_y: np.ndarray, half_x: np.ndarray,
                   half_y: np.ndarray) -> np.ndarray:
        """Columnar SAD of N independent candidates, each with its own
        macroblock; see :meth:`ReferencePlanes.sad_stream`."""
        blocks = self.block_rows(current, mb_x, mb_y)
        return self.planes(reference).sad_stream(
            blocks, pred_x, pred_y, half_x, half_y)

"""Deterministic synthetic QCIF test sequence ("synthetic foreman").

The paper uses 25 frames of the Foreman QCIF sequence, which is not
redistributable here; this generator produces a sequence with the workload
properties the experiments depend on:

* a textured background panning at sub-pixel speed, so motion vectors are
  non-zero and frequently land on half-sample positions (driving the
  horizontal/vertical/diagonal interpolation mix of Table 1);
* several foreground blobs with independent, slowly varying velocities, so
  different macroblocks get different motion vectors (exercising predictor
  alignments 0..3, Figure 2);
* mild per-frame noise, so SADs are realistic and residual coding does real
  work.

Everything derives from ``numpy.random.default_rng(seed)``, so a given
configuration always produces the same sequence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.codec.frame import QCIF_HEIGHT, QCIF_WIDTH, YuvFrame
from repro.errors import CodecError


@dataclass(frozen=True)
class SyntheticSequenceConfig:
    """Parameters of the synthetic sequence generator."""

    width: int = QCIF_WIDTH
    height: int = QCIF_HEIGHT
    frames: int = 25
    seed: int = 2002          # the paper's year, why not
    pan_speed: Tuple[float, float] = (0.6, 0.35)  # pixels/frame (sub-pel!)
    num_blobs: int = 4
    blob_radius: int = 14
    noise_sigma: float = 1.5
    texture_scale: float = 24.0


def _background(config: SyntheticSequenceConfig, rng: np.random.Generator) -> np.ndarray:
    """A large textured canvas the camera pans across."""
    margin = int(abs(config.pan_speed[0]) * config.frames
                 + abs(config.pan_speed[1]) * config.frames) + 32
    height = config.height + 2 * margin
    width = config.width + 2 * margin
    yy, xx = np.mgrid[0:height, 0:width].astype(np.float64)
    canvas = (
        128.0
        + config.texture_scale * np.sin(xx / 7.3) * np.cos(yy / 9.1)
        + 0.5 * config.texture_scale * np.sin((xx + 2 * yy) / 13.7)
        + 18.0 * np.sin(xx / 41.0 + yy / 23.0)
    )
    canvas += rng.normal(0.0, 2.0, canvas.shape)
    return np.clip(canvas, 0, 255), margin


def _sample_shifted(canvas: np.ndarray, margin: int, dx: float, dy: float,
                    width: int, height: int) -> np.ndarray:
    """Bilinear sample of the canvas at a sub-pixel pan offset."""
    x0 = margin + dx
    y0 = margin + dy
    ix, iy = int(np.floor(x0)), int(np.floor(y0))
    fx, fy = x0 - ix, y0 - iy
    window = canvas[iy:iy + height + 1, ix:ix + width + 1]
    top = window[:-1, :-1] * (1 - fx) + window[:-1, 1:] * fx
    bottom = window[1:, :-1] * (1 - fx) + window[1:, 1:] * fx
    return top * (1 - fy) + bottom * fy


def synthetic_sequence(config: SyntheticSequenceConfig = SyntheticSequenceConfig()
                       ) -> List[YuvFrame]:
    """Generate the deterministic synthetic test sequence."""
    if config.frames < 1:
        raise CodecError("sequence needs at least one frame")
    rng = np.random.default_rng(config.seed)
    canvas, margin = _background(config, rng)

    blob_pos = rng.uniform([20, 20], [config.width - 20, config.height - 20],
                           size=(config.num_blobs, 2))
    blob_vel = rng.uniform(-2.5, 2.5, size=(config.num_blobs, 2))
    blob_luma = rng.uniform(40, 220, size=config.num_blobs)

    yy, xx = np.mgrid[0:config.height, 0:config.width].astype(np.float64)
    frames: List[YuvFrame] = []
    for frame_index in range(config.frames):
        dx = config.pan_speed[0] * frame_index
        dy = config.pan_speed[1] * frame_index
        luma = _sample_shifted(canvas, margin, dx, dy,
                               config.width, config.height)
        for blob in range(config.num_blobs):
            cx, cy = blob_pos[blob]
            dist2 = (xx - cx) ** 2 + (yy - cy) ** 2
            mask = np.exp(-dist2 / (2.0 * config.blob_radius ** 2))
            luma = luma * (1 - 0.85 * mask) + blob_luma[blob] * 0.85 * mask
        luma += rng.normal(0.0, config.noise_sigma, luma.shape)
        luma_u8 = np.clip(np.rint(luma), 0, 255).astype(np.uint8)
        chroma_shape = (config.height // 2, config.width // 2)
        u_plane = np.clip(
            128 + 0.25 * (luma_u8[::2, ::2].astype(np.int16) - 128),
            0, 255).astype(np.uint8)
        v_plane = np.full(chroma_shape, 128, dtype=np.uint8)
        frames.append(YuvFrame(luma_u8, u_plane, v_plane))

        blob_pos += blob_vel
        blob_vel += rng.uniform(-0.3, 0.3, blob_vel.shape)
        blob_vel = np.clip(blob_vel, -3.5, 3.5)
        low = np.array([config.blob_radius, config.blob_radius])
        high = np.array([config.width - config.blob_radius,
                         config.height - config.blob_radius])
        bounce = (blob_pos < low) | (blob_pos > high)
        blob_vel[bounce] *= -1
        blob_pos = np.clip(blob_pos, low, high)
    return frames

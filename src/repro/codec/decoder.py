"""MPEG4-SP decoder for the coded-sequence syntax.

Mirrors the encoder's reconstruction loop exactly — the decoded frames
must equal the encoder's ``report.reconstructed`` frames bit for bit,
which is the codec substrate's end-to-end consistency property (tested in
``tests/test_decoder.py``).
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.codec.dct import inverse_dct
from repro.codec.encoder import chroma_motion_block
from repro.codec.frame import MB_SIZE, YuvFrame
from repro.codec.interp import halfpel_predictor
from repro.codec.quant import dequantise
from repro.codec.syntax import (
    CodedFrame,
    CodedMacroblock,
    CodedSequence,
    INTER,
    INTRA,
)
from repro.errors import CodecError


class Mpeg4Decoder:
    """Decodes a :class:`CodedSequence` back to YUV frames."""

    def __init__(self, sequence: CodedSequence):
        self.sequence = sequence

    def _decode_block(self, block, qp: int) -> np.ndarray:
        return inverse_dct(dequantise(block.levels, qp, intra=block.intra))

    def _place_plane_mb(self, plane: np.ndarray, x: int, y: int, size: int,
                        predictor, blocks, qp: int) -> int:
        """Rebuild one region from its 8x8 blocks; returns blocks consumed."""
        consumed = 0
        for by in range(0, size, 8):
            for bx in range(0, size, 8):
                residual = self._decode_block(blocks[consumed], qp)
                if predictor is None:
                    rebuilt = residual + 128.0
                else:
                    rebuilt = predictor[by:by + 8, bx:bx + 8] \
                        .astype(np.float64) + residual
                plane[y + by:y + by + 8, x + bx:x + bx + 8] = \
                    np.clip(rebuilt, 0, 255).astype(np.uint8)
                consumed += 1
        return consumed

    def _decode_macroblock(self, macroblock: CodedMacroblock,
                           frame: YuvFrame, reference: YuvFrame) -> None:
        qp = self.sequence.qp
        mb_x, mb_y = macroblock.mb_x, macroblock.mb_y
        cx, cy = mb_x // 2, mb_y // 2
        if macroblock.mode == INTRA:
            luma_pred = chroma_u_pred = chroma_v_pred = None
        else:
            if reference is None:
                raise CodecError("inter macroblock in the first frame")
            dx, dy = macroblock.mv
            luma_pred = halfpel_predictor(
                reference.y, mb_x + (dx >> 1), mb_y + (dy >> 1),
                dx & 1, dy & 1)
            chroma_u_pred = chroma_motion_block(reference.u, cx, cy, dx, dy)
            chroma_v_pred = chroma_motion_block(reference.v, cx, cy, dx, dy)
        blocks = macroblock.blocks
        if len(blocks) != 6:
            raise CodecError(
                f"macroblock at ({mb_x},{mb_y}) carries {len(blocks)} "
                f"blocks, expected 6")
        self._place_plane_mb(frame.y, mb_x, mb_y, MB_SIZE, luma_pred,
                             blocks[0:4], qp)
        self._place_plane_mb(frame.u, cx, cy, 8, chroma_u_pred,
                             blocks[4:5], qp)
        self._place_plane_mb(frame.v, cx, cy, 8, chroma_v_pred,
                             blocks[5:6], qp)

    def decode(self) -> List[YuvFrame]:
        """Decode every frame of the sequence."""
        decoded: List[YuvFrame] = []
        for index, coded in enumerate(self.sequence.frames):
            frame = YuvFrame.blank(self.sequence.width, self.sequence.height)
            reference = decoded[index - 1] if index else None
            if coded.frame_type == "I" and index != 0:
                reference = None
            for macroblock in coded.macroblocks:
                self._decode_macroblock(macroblock, frame, reference)
            decoded.append(frame)
        return decoded


def decode_sequence(sequence: CodedSequence) -> List[YuvFrame]:
    """Convenience wrapper."""
    return Mpeg4Decoder(sequence).decode()

"""MPEG4-SP decoder for the coded-sequence syntax.

Mirrors the encoder's reconstruction loop exactly — the decoded frames
must equal the encoder's ``report.reconstructed`` frames bit for bit,
which is the codec substrate's end-to-end consistency property (tested in
``tests/test_decoder.py``).

Two decode disciplines share the reconstruction math:

* :class:`Mpeg4Decoder` — the strict path: a malformed sequence raises a
  structured :class:`repro.errors.DecodeError` subclass (``REPRO-DEC-*``)
  with frame/macroblock context and never anything unstructured.
* :class:`RobustDecoder` (via :func:`robust_decode`) — the concealing
  path over :func:`repro.codec.syntax.parse_robust`: macroblocks the
  parser flagged ``lost`` (and any macroblock whose decode still fails)
  are **concealed** — copied from the reference frame at zero motion for
  P frames, left at mid-grey for I frames — and every event lands in a
  :class:`DecodeHealth` report (bits consumed, decoded/concealed counts,
  structured error events with bit offsets, checksum failures, optional
  concealment PSNR against a clean decode).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codec.dct import inverse_dct
from repro.codec.encoder import chroma_motion_block
from repro.codec.frame import MB_SIZE, YuvFrame, sequence_psnr_y
from repro.codec.interp import halfpel_predictor
from repro.codec.quant import dequantise
from repro.codec.syntax import (
    CodedFrame,
    CodedMacroblock,
    CodedSequence,
    INTER,
    INTRA,
    StreamEvent,
    parse_robust,
)
from repro.errors import CodecError, ReferenceMissing, StreamSyntaxError


class Mpeg4Decoder:
    """Decodes a :class:`CodedSequence` back to YUV frames."""

    def __init__(self, sequence: CodedSequence):
        self.sequence = sequence

    def _decode_block(self, block, qp: int) -> np.ndarray:
        return inverse_dct(dequantise(block.levels, qp, intra=block.intra))

    def _place_plane_mb(self, plane: np.ndarray, x: int, y: int, size: int,
                        predictor, blocks, qp: int) -> int:
        """Rebuild one region from its 8x8 blocks; returns blocks consumed."""
        consumed = 0
        for by in range(0, size, 8):
            for bx in range(0, size, 8):
                residual = self._decode_block(blocks[consumed], qp)
                if predictor is None:
                    rebuilt = residual + 128.0
                else:
                    rebuilt = predictor[by:by + 8, bx:bx + 8] \
                        .astype(np.float64) + residual
                plane[y + by:y + by + 8, x + bx:x + bx + 8] = \
                    np.clip(rebuilt, 0, 255).astype(np.uint8)
                consumed += 1
        return consumed

    def _decode_macroblock(self, macroblock: CodedMacroblock,
                           frame: YuvFrame, reference: YuvFrame,
                           frame_index: int = 0) -> None:
        qp = self.sequence.qp
        mb_x, mb_y = macroblock.mb_x, macroblock.mb_y
        cx, cy = mb_x // 2, mb_y // 2
        if macroblock.mode == INTRA:
            luma_pred = chroma_u_pred = chroma_v_pred = None
        else:
            if reference is None:
                raise ReferenceMissing(
                    f"inter macroblock at ({mb_x},{mb_y}) in frame "
                    f"{frame_index}, which has no reference frame")
            dx, dy = macroblock.mv
            luma_pred = halfpel_predictor(
                reference.y, mb_x + (dx >> 1), mb_y + (dy >> 1),
                dx & 1, dy & 1)
            chroma_u_pred = chroma_motion_block(reference.u, cx, cy, dx, dy)
            chroma_v_pred = chroma_motion_block(reference.v, cx, cy, dx, dy)
        blocks = macroblock.blocks
        if len(blocks) != 6:
            raise StreamSyntaxError(
                f"macroblock at ({mb_x},{mb_y}) in frame {frame_index} "
                f"carries {len(blocks)} blocks, expected 6")
        self._place_plane_mb(frame.y, mb_x, mb_y, MB_SIZE, luma_pred,
                             blocks[0:4], qp)
        self._place_plane_mb(frame.u, cx, cy, 8, chroma_u_pred,
                             blocks[4:5], qp)
        self._place_plane_mb(frame.v, cx, cy, 8, chroma_v_pred,
                             blocks[5:6], qp)

    def decode(self) -> List[YuvFrame]:
        """Decode every frame of the sequence."""
        decoded: List[YuvFrame] = []
        for index, coded in enumerate(self.sequence.frames):
            frame = YuvFrame.blank(self.sequence.width, self.sequence.height)
            reference = decoded[index - 1] if index else None
            if coded.frame_type == "I" and index != 0:
                reference = None
            for macroblock in coded.macroblocks:
                self._decode_macroblock(macroblock, frame, reference, index)
            decoded.append(frame)
        return decoded


def decode_sequence(sequence: CodedSequence) -> List[YuvFrame]:
    """Convenience wrapper."""
    return Mpeg4Decoder(sequence).decode()


# -- robust decoding ----------------------------------------------------------

@dataclass
class DecodeHealth:
    """Everything one robust decode observed about its stream.

    ``events`` are the structured corruption events (``REPRO-DEC-*`` code,
    bit offset, frame index, message) from both the parser and the decode
    stage; ``mbs_concealed`` counts macroblocks filled from the reference
    frame (or mid-grey); ``concealment_psnr`` is set by callers that hold
    a clean decode to compare against (the fuzz harness does)."""

    bits_total: int = 0
    bits_consumed: int = 0
    frames_decoded: int = 0
    mbs_decoded: int = 0
    mbs_concealed: int = 0
    checksum_failures: int = 0
    resilient: bool = False
    events: List[StreamEvent] = field(default_factory=list)
    concealment_psnr: Optional[float] = None

    @property
    def ok(self) -> bool:
        """True when the stream decoded with no corruption of any kind."""
        return not self.events and not self.checksum_failures \
            and not self.mbs_concealed

    def summary(self) -> str:
        psnr = "" if self.concealment_psnr is None \
            else f", concealment PSNR {self.concealment_psnr:.2f} dB"
        return (f"decoded {self.frames_decoded} frames: {self.mbs_decoded} "
                f"MBs decoded, {self.mbs_concealed} concealed, "
                f"{self.checksum_failures} checksum failures, "
                f"{len(self.events)} error events{psnr}")

    def to_dict(self) -> Dict[str, object]:
        return {
            "bits_total": self.bits_total,
            "bits_consumed": self.bits_consumed,
            "frames_decoded": self.frames_decoded,
            "mbs_decoded": self.mbs_decoded,
            "mbs_concealed": self.mbs_concealed,
            "checksum_failures": self.checksum_failures,
            "resilient": self.resilient,
            "events": [event.to_dict() for event in self.events],
            "concealment_psnr": self.concealment_psnr,
        }


class RobustDecoder(Mpeg4Decoder):
    """Decodes a robust-parsed sequence, concealing what cannot decode.

    Lost macroblocks — and any macroblock whose decode raises a
    :class:`~repro.errors.CodecError` despite parsing (belt and braces;
    the parser's field validation should catch everything first) — are
    filled from the reference frame at zero motion, or left at the blank
    frame's mid-grey for I frames, and accounted in :attr:`health`.
    """

    def __init__(self, sequence: CodedSequence,
                 health: Optional[DecodeHealth] = None):
        super().__init__(sequence)
        self.health = health if health is not None else DecodeHealth()

    def _conceal(self, macroblock: CodedMacroblock, frame: YuvFrame,
                 reference: Optional[YuvFrame]) -> None:
        self.health.mbs_concealed += 1
        if reference is None:
            return  # the blank frame's mid-grey is the I-frame concealment
        mb_x, mb_y = macroblock.mb_x, macroblock.mb_y
        cx, cy = mb_x // 2, mb_y // 2
        frame.y[mb_y:mb_y + MB_SIZE, mb_x:mb_x + MB_SIZE] = \
            reference.y[mb_y:mb_y + MB_SIZE, mb_x:mb_x + MB_SIZE]
        frame.u[cy:cy + 8, cx:cx + 8] = reference.u[cy:cy + 8, cx:cx + 8]
        frame.v[cy:cy + 8, cx:cx + 8] = reference.v[cy:cy + 8, cx:cx + 8]

    def decode(self) -> List[YuvFrame]:
        decoded: List[YuvFrame] = []
        for index, coded in enumerate(self.sequence.frames):
            frame = YuvFrame.blank(self.sequence.width, self.sequence.height)
            reference = decoded[index - 1] if index else None
            conceal_reference = reference
            if coded.frame_type == "I" and index != 0:
                reference = conceal_reference = None
            for macroblock in coded.macroblocks:
                if macroblock.lost:
                    self._conceal(macroblock, frame, conceal_reference)
                    continue
                try:
                    self._decode_macroblock(macroblock, frame, reference,
                                            index)
                except CodecError as exc:
                    code = getattr(exc, "code", CodecError.code)
                    self.health.events.append(StreamEvent(
                        code, -1, index, str(exc)))
                    self._conceal(macroblock, frame, conceal_reference)
                else:
                    self.health.mbs_decoded += 1
            decoded.append(frame)
        self.health.frames_decoded = len(decoded)
        return decoded


def robust_decode(payload: bytes) -> Tuple[List[YuvFrame], DecodeHealth]:
    """Decode a (possibly corrupt) serialized payload, concealing damage.

    Never raises on corruption: returns the decoded frames (empty only
    when the stream header itself is unrecoverable) and the
    :class:`DecodeHealth` report.  With zero corruption the frames are
    bit-identical to ``decode_sequence(deserialize(payload))``.
    """
    parse = parse_robust(payload)
    health = DecodeHealth(
        bits_total=8 * len(payload),
        bits_consumed=parse.bits_consumed,
        checksum_failures=parse.checksum_failures,
        resilient=parse.resilient,
        events=list(parse.events),
    )
    if parse.sequence is None:
        return [], health
    frames = RobustDecoder(parse.sequence, health).decode()
    return frames, health


def concealment_psnr(decoded: List[YuvFrame],
                     clean: List[YuvFrame]) -> float:
    """Mean luma PSNR of a (possibly concealed) decode against the clean
    decode — the fuzz harness's degradation metric.  A short decode is
    padded with mid-grey frames so total loss is scored, not skipped."""
    padded = list(decoded)
    while len(padded) < len(clean):
        padded.append(YuvFrame.blank(clean[0].width, clean[0].height))
    return sequence_psnr_y(padded[:len(clean)], clean)

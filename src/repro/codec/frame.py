"""Video frames and their placement in simulated main memory.

The paper encodes a QCIF sequence with frames "allocated, aligning on 32
bytes boundaries"; :class:`FrameLayout` reproduces that allocation so the
predictor alignment distribution (Figure 2) emerges from real addresses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np

from repro.errors import CodecError

QCIF_WIDTH = 176
QCIF_HEIGHT = 144
MB_SIZE = 16


def plane_psnr(plane: np.ndarray, other: np.ndarray) -> float:
    """PSNR between two same-shape uint8 planes (dB; inf when identical)."""
    if plane.shape != other.shape:
        raise CodecError(
            f"PSNR needs same-shape planes, got {plane.shape} vs "
            f"{other.shape}")
    diff = plane.astype(np.float64) - other.astype(np.float64)
    mse = float(np.mean(diff * diff))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0 * 255.0 / mse)


def sequence_psnr_y(frames: "list[YuvFrame]",
                    references: "list[YuvFrame]") -> float:
    """Mean finite luma PSNR across two aligned frame lists (dB).

    Frame pairs that match exactly contribute nothing to the mean (their
    PSNR is infinite); if every pair matches the result is inf.  Used by
    the decode-health/fuzz tooling to score concealment quality.
    """
    if len(frames) != len(references):
        raise CodecError(
            f"PSNR needs aligned sequences, got {len(frames)} vs "
            f"{len(references)} frames")
    values = [frame.psnr_y(reference)
              for frame, reference in zip(frames, references)]
    finite = [value for value in values if value != float("inf")]
    return float(np.mean(finite)) if finite else float("inf")


@dataclass
class YuvFrame:
    """One 4:2:0 frame: full-resolution luma, half-resolution chroma."""

    y: np.ndarray
    u: np.ndarray
    v: np.ndarray

    def __post_init__(self):
        height, width = self.y.shape
        if width % MB_SIZE or height % MB_SIZE:
            raise CodecError(
                f"frame {width}x{height} is not a multiple of the "
                f"{MB_SIZE}-pixel macroblock size")
        if self.u.shape != (height // 2, width // 2) \
                or self.v.shape != (height // 2, width // 2):
            raise CodecError("chroma planes must be half resolution (4:2:0)")
        for plane in (self.y, self.u, self.v):
            if plane.dtype != np.uint8:
                raise CodecError("planes must be uint8")

    @property
    def width(self) -> int:
        return self.y.shape[1]

    @property
    def height(self) -> int:
        return self.y.shape[0]

    @property
    def mb_cols(self) -> int:
        return self.width // MB_SIZE

    @property
    def mb_rows(self) -> int:
        return self.height // MB_SIZE

    @classmethod
    def blank(cls, width: int = QCIF_WIDTH, height: int = QCIF_HEIGHT,
              luma: int = 128) -> "YuvFrame":
        return cls(
            y=np.full((height, width), luma, dtype=np.uint8),
            u=np.full((height // 2, width // 2), 128, dtype=np.uint8),
            v=np.full((height // 2, width // 2), 128, dtype=np.uint8),
        )

    def copy(self) -> "YuvFrame":
        return YuvFrame(self.y.copy(), self.u.copy(), self.v.copy())

    def psnr_y(self, other: "YuvFrame") -> float:
        """Luma PSNR against another frame (dB)."""
        return plane_psnr(self.y, other.y)


@dataclass
class FrameLayout:
    """Addresses of luma planes placed in simulated main memory.

    Strides equal the plane width (176 bytes for QCIF luma, divisible by
    the 32-byte cache line), and every plane base is 32-byte aligned, as in
    the paper.  Only luma planes are placed: the ME kernel reads luma only.
    """

    width: int = QCIF_WIDTH
    height: int = QCIF_HEIGHT
    base: int = 0x0004_0000
    alignment: int = 32
    _bases: Dict[str, int] = field(default_factory=dict)
    _next: int = 0

    def __post_init__(self):
        if self.width % 4:
            raise CodecError("luma stride must be a multiple of 4")
        self._next = self.base

    @property
    def stride(self) -> int:
        return self.width

    def plane_bytes(self) -> int:
        return self.width * self.height

    def allocate(self, name: str) -> int:
        """Reserve a 32-byte aligned luma plane; returns its base address."""
        if name in self._bases:
            raise CodecError(f"plane {name!r} already allocated")
        address = self._next
        self._bases[name] = address
        size = self.plane_bytes()
        self._next = address + ((size + self.alignment - 1)
                                // self.alignment) * self.alignment
        return address

    def plane_base(self, name: str) -> int:
        try:
            return self._bases[name]
        except KeyError:
            raise CodecError(f"plane {name!r} was never allocated") from None

    def pixel_address(self, name: str, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise CodecError(f"pixel ({x},{y}) outside {self.width}x{self.height}")
        return self.plane_base(name) + y * self.stride + x

    def store_plane(self, memory, name: str, plane: np.ndarray) -> int:
        """Copy a luma plane into simulated main memory; returns the base."""
        if name not in self._bases:
            self.allocate(name)
        base = self._bases[name]
        memory.write_block(base, np.ascontiguousarray(plane, dtype=np.uint8))
        return base

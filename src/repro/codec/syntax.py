"""Coded-sequence syntax: what the encoder emits, what the decoder needs.

A :class:`CodedSequence` is the complete decoder-side description of one
encoding run — quantised coefficient levels, macroblock modes and motion
vectors — plus a real bit serialization via exp-Golomb codes
(:mod:`repro.codec.bitstream`), so the whole pipeline round-trips through
actual bits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Tuple

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.zigzag import inverse_zigzag, zigzag_scan
from repro.errors import CodecError

INTRA = "intra"
INTER = "inter"


@dataclass
class CodedBlock:
    """One quantised 8x8 block."""

    levels: np.ndarray  # int32 8x8
    intra: bool

    def __post_init__(self):
        self.levels = np.asarray(self.levels, dtype=np.int32)
        if self.levels.shape != (8, 8):
            raise CodecError(f"coded block must be 8x8, got {self.levels.shape}")


@dataclass
class CodedMacroblock:
    """One macroblock: mode, motion vector (half-sample units), 6 blocks
    (4 luma + Cb + Cr)."""

    mb_x: int
    mb_y: int
    mode: str
    mv: Tuple[int, int] = (0, 0)
    blocks: List[CodedBlock] = field(default_factory=list)

    def __post_init__(self):
        if self.mode not in (INTRA, INTER):
            raise CodecError(f"unknown macroblock mode {self.mode!r}")


@dataclass
class CodedFrame:
    frame_type: str  # "I" or "P"
    macroblocks: List[CodedMacroblock] = field(default_factory=list)


@dataclass
class CodedSequence:
    width: int
    height: int
    qp: int
    frames: List[CodedFrame] = field(default_factory=list)


# -- serialization -------------------------------------------------------------

def _write_block(writer: BitWriter, block: CodedBlock) -> None:
    scanned = zigzag_scan(block.levels)
    nonzero = [(index, int(level)) for index, level in enumerate(scanned)
               if level]
    writer.write_ue(len(nonzero))
    previous = -1
    for index, level in nonzero:
        writer.write_ue(index - previous - 1)  # zero run
        writer.write_se(level)
        previous = index


def _read_block(reader: BitReader, intra: bool) -> CodedBlock:
    count = reader.read_ue()
    scanned = np.zeros(64, dtype=np.int32)
    position = -1
    for _ in range(count):
        position += reader.read_ue() + 1
        if position >= 64:
            raise CodecError("run-level data overruns the block")
        scanned[position] = reader.read_se()
    return CodedBlock(inverse_zigzag(scanned), intra)


def serialize(sequence: CodedSequence) -> bytes:
    """Serialize a coded sequence to a byte string."""
    writer = BitWriter()
    writer.write_ue(sequence.width)
    writer.write_ue(sequence.height)
    writer.write_ue(sequence.qp)
    writer.write_ue(len(sequence.frames))
    for frame in sequence.frames:
        writer.write_bit(1 if frame.frame_type == "I" else 0)
        for macroblock in frame.macroblocks:
            if frame.frame_type == "P":
                writer.write_bit(1 if macroblock.mode == INTRA else 0)
            if macroblock.mode == INTER:
                writer.write_se(macroblock.mv[0])
                writer.write_se(macroblock.mv[1])
            if len(macroblock.blocks) != 6:
                raise CodecError(
                    f"macroblock at ({macroblock.mb_x},{macroblock.mb_y}) "
                    f"has {len(macroblock.blocks)} blocks, expected 6")
            for block in macroblock.blocks:
                _write_block(writer, block)
    return writer.getvalue()


def deserialize(payload: bytes) -> CodedSequence:
    """Parse a byte string produced by :func:`serialize`."""
    reader = BitReader(payload)
    width = reader.read_ue()
    height = reader.read_ue()
    qp = reader.read_ue()
    frame_count = reader.read_ue()
    if width % 16 or height % 16:
        raise CodecError(f"bad dimensions {width}x{height} in stream")
    mb_count = (width // 16) * (height // 16)
    sequence = CodedSequence(width, height, qp)
    for _ in range(frame_count):
        frame_type = "I" if reader.read_bit() else "P"
        frame = CodedFrame(frame_type)
        for index in range(mb_count):
            mb_x = 16 * (index % (width // 16))
            mb_y = 16 * (index // (width // 16))
            if frame_type == "I":
                mode = INTRA
            else:
                mode = INTRA if reader.read_bit() else INTER
            mv = (0, 0)
            if mode == INTER:
                mv = (reader.read_se(), reader.read_se())
            blocks = [_read_block(reader, mode == INTRA) for _ in range(6)]
            frame.macroblocks.append(
                CodedMacroblock(mb_x, mb_y, mode, mv, blocks))
        sequence.frames.append(frame)
    return sequence

"""Coded-sequence syntax: what the encoder emits, what the decoder needs.

A :class:`CodedSequence` is the complete decoder-side description of one
encoding run — quantised coefficient levels, macroblock modes and motion
vectors — plus a real bit serialization via exp-Golomb codes
(:mod:`repro.codec.bitstream`), so the whole pipeline round-trips through
actual bits.

Two wire formats share the macroblock-level syntax:

* **legacy** (``resync_every == 0``, the default) — the original compact
  layout: one header, then every frame's macroblocks back to back.  Byte
  identical to what earlier revisions produced.
* **resilient** (``resync_every >= 1``) — an error-resilient layout in
  the spirit of MPEG4's video-packet resync: the stream opens with a
  2-byte magic (:data:`RESILIENT_MAGIC`, whose MSB no legacy stream can
  set), every frame gets a byte-aligned :data:`FRAME_MARKER` section with
  a CRC-8-guarded header and a CRC-16 payload checksum, and every
  ``resync_every`` macroblock rows start a byte-aligned
  :data:`RESYNC_MARKER` slice whose header (frame index, first MB index,
  MB count, CRC-8) makes the stream independently re-enterable mid-way::

      A5 4D | seq header ue(w) ue(h) ue(qp) ue(frames) ue(resync) | crc8
      00 00 B0 | frame hdr ue(f) bit(I) ue(len) crc16 | crc8 | payload
        payload := slice+
        slice   := 00 00 B7 | ue(f) bit(I) ue(first_mb) ue(mbs) | crc8
                   | macroblock bits ... | byte-align

Three parsers consume the formats.  :func:`deserialize` is the strict
path: it auto-detects the format and raises only structured
:class:`repro.errors.DecodeError` subclasses (``REPRO-DEC-*``), with every
decoded field validated against the frame geometry (dimension/QP ranges,
MB coordinates, motion-vector windows, level magnitudes, run positions).
:func:`parse_robust` is the concealing path: on corruption it records a
:class:`StreamEvent` and scans forward to the next valid marker, marking
unrecovered macroblocks ``lost`` for the decoder to conceal
(:class:`repro.codec.decoder.RobustDecoder`).  Legacy streams have no
markers, so their robust parse conceals everything after the first error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter, crc8, crc16
from repro.codec.zigzag import inverse_zigzag, zigzag_scan
from repro.errors import (
    BitstreamExhausted,
    ChecksumMismatch,
    CodecError,
    DecodeError,
    FieldRangeError,
    ResyncLost,
    StreamSyntaxError,
)

INTRA = "intra"
INTER = "inter"

#: first two bytes of a resilient stream; a legacy stream always starts
#: with the zero-prefix of ue(width >= 16), so its first bit is 0 and the
#: 0xA5 MSB is unambiguous
RESILIENT_MAGIC = b"\xa5\x4d"
#: byte-aligned start of one frame section (resilient format)
FRAME_MARKER = b"\x00\x00\xb0"
#: byte-aligned start of one slice (resilient format)
RESYNC_MARKER = b"\x00\x00\xb7"

#: geometry/field bounds the parsers enforce (REPRO-DEC-RANGE beyond them)
MAX_DIMENSION = 4096
MAX_FRAMES = 1 << 16
MV_LIMIT_HALFPEL = 128
LEVEL_LIMIT = 2048

#: cheapest legal macroblock on the wire: an all-empty intra macroblock
#: is six ue(0) codes = 6 bits (P-frame mode bits and MVs only add more)
MIN_MB_BITS = 6
#: concealment backfill allowed beyond what the payload itself could
#: carry — one maximum-size frame's worth of macroblocks, so truncated
#: streams still conceal in full without a forged header being able to
#: demand unbounded work
MAX_BACKFILL_MBS = (MAX_DIMENSION // 16) ** 2


@dataclass
class CodedBlock:
    """One quantised 8x8 block."""

    levels: np.ndarray  # int32 8x8
    intra: bool

    def __post_init__(self):
        self.levels = np.asarray(self.levels, dtype=np.int32)
        if self.levels.shape != (8, 8):
            raise CodecError(f"coded block must be 8x8, got {self.levels.shape}")


@dataclass
class CodedMacroblock:
    """One macroblock: mode, motion vector (half-sample units), 6 blocks
    (4 luma + Cb + Cr).  ``lost`` marks a macroblock the robust parser
    could not recover — it carries no blocks and must be concealed."""

    mb_x: int
    mb_y: int
    mode: str
    mv: Tuple[int, int] = (0, 0)
    blocks: List[CodedBlock] = field(default_factory=list)
    lost: bool = False

    def __post_init__(self):
        if self.mode not in (INTRA, INTER):
            raise CodecError(f"unknown macroblock mode {self.mode!r}")


@dataclass
class CodedFrame:
    frame_type: str  # "I" or "P"
    macroblocks: List[CodedMacroblock] = field(default_factory=list)


@dataclass
class CodedSequence:
    width: int
    height: int
    qp: int
    frames: List[CodedFrame] = field(default_factory=list)
    #: resync-marker period in macroblock rows; 0 = legacy layout
    resync_every: int = 0


@dataclass
class StreamEvent:
    """One structured corruption event recorded by the robust parser or
    decoder: the stable ``REPRO-DEC-*`` code, the bit offset at which the
    stream stopped making sense, and the frame it affects (when known)."""

    code: str
    bit_offset: int
    frame_index: Optional[int]
    message: str

    def to_dict(self) -> Dict[str, object]:
        return {"code": self.code, "bit_offset": self.bit_offset,
                "frame_index": self.frame_index, "message": self.message}


@dataclass
class RobustParse:
    """What :func:`parse_robust` recovered from a (possibly corrupt)
    payload.  ``sequence`` is None only when the stream header itself is
    unrecoverable; otherwise every frame has its full macroblock count,
    with unrecovered macroblocks flagged ``lost``."""

    sequence: Optional[CodedSequence]
    events: List[StreamEvent]
    bits_consumed: int
    mbs_parsed: int
    mbs_lost: int
    checksum_failures: int
    resilient: bool


# -- field validation ---------------------------------------------------------

def _check_sequence_header(width: int, height: int, qp: int,
                           frame_count: int, position: int) -> None:
    if width % 16 or height % 16 \
            or not 16 <= width <= MAX_DIMENSION \
            or not 16 <= height <= MAX_DIMENSION:
        raise FieldRangeError(
            f"bad dimensions {width}x{height} in stream header "
            f"(need multiples of 16 in 16..{MAX_DIMENSION}, bit {position})")
    if not 1 <= qp <= 31:
        raise FieldRangeError(
            f"quantiser {qp} outside 1..31 in stream header (bit {position})")
    if frame_count > MAX_FRAMES:
        raise FieldRangeError(
            f"implausible frame count {frame_count} in stream header "
            f"(bit {position})")


def _check_stream_budget(frame_count: int, mb_count: int, payload_len: int,
                         position: int) -> None:
    """Reject headers whose claimed decode work cannot come from the
    payload.  Every coded macroblock costs at least :data:`MIN_MB_BITS`
    on the wire, so a tiny payload claiming billions of macroblocks is
    corruption — and without this bound the robust backfill would build
    ``frame_count * mb_count`` lost-macroblock objects (and the decoder a
    frame per claim), a decode-of-hostile-input DoS."""
    total = frame_count * mb_count
    budget = MAX_BACKFILL_MBS + 8 * payload_len // MIN_MB_BITS
    if total > budget:
        raise FieldRangeError(
            f"header claims {frame_count} frames x {mb_count} macroblocks "
            f"({total} total), beyond the {budget} a {payload_len}-byte "
            f"payload could carry at {MIN_MB_BITS} bits/macroblock "
            f"(bit {position})")


def _check_mv(dx: int, dy: int, mb_x: int, mb_y: int, width: int,
              height: int, position: int) -> None:
    if abs(dx) > MV_LIMIT_HALFPEL or abs(dy) > MV_LIMIT_HALFPEL:
        raise FieldRangeError(
            f"motion vector ({dx},{dy}) at macroblock ({mb_x},{mb_y}) "
            f"exceeds +/-{MV_LIMIT_HALFPEL} half-pels (bit {position})")
    x, y = mb_x + (dx >> 1), mb_y + (dy >> 1)
    if not (0 <= x and x + 16 + (dx & 1) <= width
            and 0 <= y and y + 16 + (dy & 1) <= height):
        raise FieldRangeError(
            f"motion vector ({dx},{dy}) at macroblock ({mb_x},{mb_y}) "
            f"reads outside the {width}x{height} frame (bit {position})")


def _lost_macroblock(index: int, mb_cols: int) -> CodedMacroblock:
    return CodedMacroblock(16 * (index % mb_cols), 16 * (index // mb_cols),
                           INTRA, (0, 0), [], lost=True)


# -- block / macroblock serialization ----------------------------------------

def _write_block(writer: BitWriter, block: CodedBlock) -> None:
    scanned = zigzag_scan(block.levels)
    nonzero = [(index, int(level)) for index, level in enumerate(scanned)
               if level]
    writer.write_ue(len(nonzero))
    previous = -1
    for index, level in nonzero:
        writer.write_ue(index - previous - 1)  # zero run
        writer.write_se(level)
        previous = index


def _read_block(reader: BitReader, intra: bool) -> CodedBlock:
    start = reader.position
    count = reader.read_ue()
    if count > 64:
        raise FieldRangeError(
            f"{count} run-level pairs in one 64-coefficient block "
            f"(bit {start})")
    scanned = np.zeros(64, dtype=np.int32)
    position = -1
    for _ in range(count):
        position += reader.read_ue() + 1
        if position >= 64:
            raise FieldRangeError(
                f"run-level data overruns the block (bit {reader.position})")
        level = reader.read_se()
        if abs(level) > LEVEL_LIMIT:
            raise FieldRangeError(
                f"coefficient level {level} exceeds +/-{LEVEL_LIMIT} "
                f"(bit {reader.position})")
        scanned[position] = level
    return CodedBlock(inverse_zigzag(scanned), intra)


def _write_macroblock(writer: BitWriter, macroblock: CodedMacroblock,
                      frame_type: str) -> None:
    if macroblock.lost:
        raise StreamSyntaxError(
            f"cannot serialize the concealed macroblock at "
            f"({macroblock.mb_x},{macroblock.mb_y})")
    if frame_type == "P":
        writer.write_bit(1 if macroblock.mode == INTRA else 0)
    if macroblock.mode == INTER:
        writer.write_se(macroblock.mv[0])
        writer.write_se(macroblock.mv[1])
    if len(macroblock.blocks) != 6:
        raise CodecError(
            f"macroblock at ({macroblock.mb_x},{macroblock.mb_y}) "
            f"has {len(macroblock.blocks)} blocks, expected 6")
    for block in macroblock.blocks:
        _write_block(writer, block)


def _read_macroblock(reader: BitReader, frame_type: str, mb_x: int,
                     mb_y: int, width: int, height: int) -> CodedMacroblock:
    if frame_type == "I":
        mode = INTRA
    else:
        mode = INTRA if reader.read_bit() else INTER
    mv = (0, 0)
    if mode == INTER:
        start = reader.position
        dx, dy = reader.read_se(), reader.read_se()
        _check_mv(dx, dy, mb_x, mb_y, width, height, start)
        mv = (dx, dy)
    blocks = [_read_block(reader, mode == INTRA) for _ in range(6)]
    return CodedMacroblock(mb_x, mb_y, mode, mv, blocks)


# -- checked byte-aligned headers (resilient format) --------------------------

def _emit_checked(writer: BitWriter, header: BitWriter) -> None:
    """Byte-align a header sub-writer and append it plus its CRC-8."""
    header.align()
    data = header.getvalue()
    writer.write_bytes(data)
    writer.write_bytes(bytes([crc8(data)]))


def _verify_header_crc(reader: BitReader, rebuild: BitWriter,
                       what: str, start: int) -> None:
    """Align, read the CRC-8 byte, and compare against the canonical
    re-encoding of the parsed fields (exp-Golomb codes are canonical, so
    re-serializing the fields reproduces the original header bytes).
    The alignment padding must be zero: the rebuild reproduces canonical
    zero padding, so a flipped padding bit would otherwise slip past the
    CRC unnoticed."""
    while reader.position % 8:
        if reader.read_bit():
            raise ChecksumMismatch(
                f"{what} header padding corrupt (bit {reader.position - 1})")
    stored = reader.read_bytes(1)[0]
    rebuild.align()
    if crc8(rebuild.getvalue()) != stored:
        raise ChecksumMismatch(f"{what} header CRC mismatch (bit {start})")


def _read_sequence_header(reader: BitReader) -> Tuple[int, int, int, int, int]:
    start = reader.position
    width = reader.read_ue()
    height = reader.read_ue()
    qp = reader.read_ue()
    frame_count = reader.read_ue()
    resync_every = reader.read_ue()
    rebuild = BitWriter()
    for value in (width, height, qp, frame_count, resync_every):
        rebuild.write_ue(value)
    _verify_header_crc(reader, rebuild, "sequence", start)
    _check_sequence_header(width, height, qp, frame_count, start)
    if not 1 <= resync_every <= height // 16:
        raise FieldRangeError(
            f"resync period {resync_every} outside 1..{height // 16} "
            f"macroblock rows (bit {start})")
    return width, height, qp, frame_count, resync_every


def _read_frame_header(reader: BitReader) -> Tuple[int, bool, int, int]:
    start = reader.position
    frame_index = reader.read_ue()
    is_intra = bool(reader.read_bit())
    payload_len = reader.read_ue()
    checksum = reader.read_bits(16)
    rebuild = BitWriter()
    rebuild.write_ue(frame_index)
    rebuild.write_bit(1 if is_intra else 0)
    rebuild.write_ue(payload_len)
    rebuild.write_bits(checksum, 16)
    _verify_header_crc(reader, rebuild, "frame", start)
    return frame_index, is_intra, payload_len, checksum


def _read_slice_header(reader: BitReader) -> Tuple[int, bool, int, int]:
    start = reader.position
    frame_index = reader.read_ue()
    is_intra = bool(reader.read_bit())
    first_mb = reader.read_ue()
    mb_count = reader.read_ue()
    rebuild = BitWriter()
    rebuild.write_ue(frame_index)
    rebuild.write_bit(1 if is_intra else 0)
    rebuild.write_ue(first_mb)
    rebuild.write_ue(mb_count)
    _verify_header_crc(reader, rebuild, "slice", start)
    return frame_index, is_intra, first_mb, mb_count


# -- serialization ------------------------------------------------------------

def serialize(sequence: CodedSequence,
              resync_every: Optional[int] = None) -> bytes:
    """Serialize a coded sequence to a byte string.

    ``resync_every`` overrides ``sequence.resync_every``; 0 produces the
    legacy layout (byte identical to earlier revisions), ``N >= 1`` the
    resilient layout with a resync marker every N macroblock rows.
    """
    if resync_every is None:
        resync_every = sequence.resync_every
    if resync_every:
        return _serialize_resilient(sequence, resync_every)
    writer = BitWriter()
    writer.write_ue(sequence.width)
    writer.write_ue(sequence.height)
    writer.write_ue(sequence.qp)
    writer.write_ue(len(sequence.frames))
    for frame in sequence.frames:
        writer.write_bit(1 if frame.frame_type == "I" else 0)
        for macroblock in frame.macroblocks:
            _write_macroblock(writer, macroblock, frame.frame_type)
    return writer.getvalue()


def _serialize_resilient(sequence: CodedSequence, resync_every: int) -> bytes:
    mb_rows = sequence.height // 16
    mb_cols = sequence.width // 16
    if not 1 <= resync_every <= mb_rows:
        raise CodecError(
            f"resync_every must be 1..{mb_rows} macroblock rows, "
            f"got {resync_every}")
    writer = BitWriter()
    writer.write_bytes(RESILIENT_MAGIC)
    header = BitWriter()
    for value in (sequence.width, sequence.height, sequence.qp,
                  len(sequence.frames), resync_every):
        header.write_ue(value)
    _emit_checked(writer, header)
    for frame_index, frame in enumerate(sequence.frames):
        payload = _serialize_frame_payload(frame, frame_index, resync_every,
                                           mb_cols, mb_rows)
        writer.write_bytes(FRAME_MARKER)
        frame_header = BitWriter()
        frame_header.write_ue(frame_index)
        frame_header.write_bit(1 if frame.frame_type == "I" else 0)
        frame_header.write_ue(len(payload))
        frame_header.write_bits(crc16(payload), 16)
        _emit_checked(writer, frame_header)
        writer.write_bytes(payload)
    return writer.getvalue()


def _serialize_frame_payload(frame: CodedFrame, frame_index: int,
                             resync_every: int, mb_cols: int,
                             mb_rows: int) -> bytes:
    if len(frame.macroblocks) != mb_cols * mb_rows:
        raise StreamSyntaxError(
            f"frame {frame_index} carries {len(frame.macroblocks)} "
            f"macroblocks, expected {mb_cols * mb_rows}")
    writer = BitWriter()
    for row_start in range(0, mb_rows, resync_every):
        rows = min(resync_every, mb_rows - row_start)
        first_mb = row_start * mb_cols
        count = rows * mb_cols
        writer.write_bytes(RESYNC_MARKER)
        slice_header = BitWriter()
        slice_header.write_ue(frame_index)
        slice_header.write_bit(1 if frame.frame_type == "I" else 0)
        slice_header.write_ue(first_mb)
        slice_header.write_ue(count)
        _emit_checked(writer, slice_header)
        for macroblock in frame.macroblocks[first_mb:first_mb + count]:
            _write_macroblock(writer, macroblock, frame.frame_type)
        writer.align()
    return writer.getvalue()


# -- strict deserialization ---------------------------------------------------

def deserialize(payload: bytes) -> CodedSequence:
    """Parse a byte string produced by :func:`serialize` (either layout).

    Strict: any corruption raises a structured
    :class:`repro.errors.DecodeError` subclass carrying the bit offset.
    """
    if payload[:2] == RESILIENT_MAGIC:
        return _deserialize_resilient(payload)
    parse = _parse_legacy(payload, robust=False)
    return parse.sequence


def _deserialize_resilient(payload: bytes) -> CodedSequence:
    reader = BitReader(payload)
    reader.read_bytes(2)  # magic
    width, height, qp, frame_count, resync_every = \
        _read_sequence_header(reader)
    mb_cols = width // 16
    mb_count = mb_cols * (height // 16)
    _check_stream_budget(frame_count, mb_count, len(payload),
                         reader.position)
    sequence = CodedSequence(width, height, qp, resync_every=resync_every)
    for expected_index in range(frame_count):
        start = reader.position
        if reader.read_bytes(3) != FRAME_MARKER:
            raise StreamSyntaxError(
                f"frame marker missing for frame {expected_index} "
                f"(bit {start})")
        frame_index, is_intra, payload_len, checksum = \
            _read_frame_header(reader)
        if frame_index != expected_index:
            raise FieldRangeError(
                f"frame header claims index {frame_index}, expected "
                f"{expected_index} (bit {start})")
        frame_payload = reader.read_bytes(payload_len)
        if crc16(frame_payload) != checksum:
            raise ChecksumMismatch(
                f"frame {frame_index} payload checksum mismatch "
                f"(bit {start})")
        frame = _parse_frame_payload_strict(
            frame_payload, frame_index, is_intra, width, height, mb_count,
            mb_cols)
        sequence.frames.append(frame)
    if reader.bits_remaining():
        raise StreamSyntaxError(
            f"{reader.bits_remaining()} trailing bits after the final "
            f"frame (bit {reader.position})")
    return sequence


def _parse_frame_payload_strict(payload: bytes, frame_index: int,
                                is_intra: bool, width: int, height: int,
                                mb_count: int, mb_cols: int) -> CodedFrame:
    frame_type = "I" if is_intra else "P"
    frame = CodedFrame(frame_type)
    reader = BitReader(payload)
    expected_mb = 0
    while expected_mb < mb_count:
        start = reader.position
        if reader.read_bytes(3) != RESYNC_MARKER:
            raise StreamSyntaxError(
                f"resync marker missing at macroblock {expected_mb} of "
                f"frame {frame_index} (payload bit {start})")
        slice_frame, slice_intra, first_mb, count = _read_slice_header(reader)
        if slice_frame != frame_index or slice_intra != is_intra:
            raise FieldRangeError(
                f"slice header belongs to frame {slice_frame} "
                f"(intra={slice_intra}), inside frame {frame_index} "
                f"(payload bit {start})")
        if first_mb != expected_mb or not 1 <= count <= mb_count - first_mb:
            raise FieldRangeError(
                f"slice covers macroblocks {first_mb}..{first_mb + count - 1},"
                f" expected to start at {expected_mb} of {mb_count} "
                f"(payload bit {start})")
        for index in range(first_mb, first_mb + count):
            frame.macroblocks.append(_read_macroblock(
                reader, frame_type, 16 * (index % mb_cols),
                16 * (index // mb_cols), width, height))
        reader.align()
        expected_mb += count
    if reader.bits_remaining():
        raise StreamSyntaxError(
            f"{reader.bits_remaining()} trailing bits in frame "
            f"{frame_index}'s payload")
    return frame


# -- legacy parse (strict and robust) ----------------------------------------

def _parse_legacy(payload: bytes, robust: bool) -> RobustParse:
    reader = BitReader(payload)
    events: List[StreamEvent] = []
    try:
        start = reader.position
        width = reader.read_ue()
        height = reader.read_ue()
        qp = reader.read_ue()
        frame_count = reader.read_ue()
        _check_sequence_header(width, height, qp, frame_count, start)
        _check_stream_budget(frame_count, (width // 16) * (height // 16),
                             len(payload), start)
    except DecodeError as exc:
        if not robust:
            raise
        events.append(StreamEvent(exc.code, reader.position, None, str(exc)))
        return RobustParse(None, events, reader.position, 0, 0, 0,
                           resilient=False)
    mb_cols = width // 16
    mb_count = mb_cols * (height // 16)
    sequence = CodedSequence(width, height, qp)
    mbs_parsed = 0
    complete = False
    try:
        for _ in range(frame_count):
            frame = CodedFrame("I" if reader.read_bit() else "P")
            sequence.frames.append(frame)
            for index in range(mb_count):
                frame.macroblocks.append(_read_macroblock(
                    reader, frame.frame_type, 16 * (index % mb_cols),
                    16 * (index // mb_cols), width, height))
                mbs_parsed += 1
        complete = True
    except DecodeError as exc:
        if not robust:
            raise
        frame_index = len(sequence.frames) - 1 if sequence.frames else None
        events.append(StreamEvent(exc.code, reader.position, frame_index,
                                  str(exc)))
    if complete and reader.bits_remaining() > 7:
        # only the final byte's zero padding may follow the last frame,
        # mirroring the resilient strict path
        message = (f"{reader.bits_remaining()} trailing bits after the "
                   f"final frame (bit {reader.position})")
        if not robust:
            raise StreamSyntaxError(message)
        events.append(StreamEvent(StreamSyntaxError.code, reader.position,
                                  None, message))
    mbs_lost = 0
    while len(sequence.frames) < frame_count:
        sequence.frames.append(
            CodedFrame("I" if not sequence.frames else "P"))
    for frame in sequence.frames:
        while len(frame.macroblocks) < mb_count:
            frame.macroblocks.append(
                _lost_macroblock(len(frame.macroblocks), mb_cols))
            mbs_lost += 1
    return RobustParse(sequence, events, reader.position, mbs_parsed,
                       mbs_lost, 0, resilient=False)


# -- robust parse -------------------------------------------------------------

def parse_robust(payload: bytes) -> RobustParse:
    """Parse a possibly corrupt payload, concealing instead of raising.

    Resilient streams re-enter at the next valid marker after an error;
    legacy streams (no markers) lose everything after the first error.
    Never raises on corruption — every anomaly becomes a
    :class:`StreamEvent` in the result.
    """
    if payload[:2] == RESILIENT_MAGIC:
        return _parse_resilient_robust(payload)
    return _parse_legacy(payload, robust=True)


@dataclass
class _Unit:
    """One marker-introduced element found by the robust scanner."""

    kind: str                 # "frame" | "slice"
    offset: int               # byte offset of the marker
    data_start: int           # byte offset just past the header's CRC-8
    frame_index: int
    is_intra: bool
    # frame: (payload_len, crc16); slice: (first_mb, mb_count)
    a: int = 0
    b: int = 0


def _scan_unit(payload: bytes, start: int, frame_count: int,
               mb_count: int) -> Optional[_Unit]:
    """The first marker at byte offset >= ``start`` whose header parses,
    CRC-checks and satisfies the geometry — CRC-8 plus the range checks
    make accidental marker emulation inside entropy data overwhelmingly
    unlikely to be accepted."""
    position = start
    while True:
        frame_at = payload.find(FRAME_MARKER, position)
        slice_at = payload.find(RESYNC_MARKER, position)
        candidates = [at for at in (frame_at, slice_at) if at >= 0]
        if not candidates:
            return None
        offset = min(candidates)
        kind = "frame" if offset == frame_at else "slice"
        reader = BitReader(payload)
        reader.seek_bit(8 * (offset + 3))
        try:
            if kind == "frame":
                frame_index, is_intra, payload_len, checksum = \
                    _read_frame_header(reader)
                if frame_index < frame_count \
                        and payload_len <= len(payload):
                    return _Unit("frame", offset, reader.position // 8,
                                 frame_index, is_intra, payload_len, checksum)
            else:
                frame_index, is_intra, first_mb, count = \
                    _read_slice_header(reader)
                if frame_index < frame_count and first_mb < mb_count \
                        and 1 <= count <= mb_count - first_mb:
                    return _Unit("slice", offset, reader.position // 8,
                                 frame_index, is_intra, first_mb, count)
        except DecodeError:
            pass
        position = offset + 1


def _parse_resilient_robust(payload: bytes) -> RobustParse:
    events: List[StreamEvent] = []
    reader = BitReader(payload)
    try:
        reader.read_bytes(2)  # magic
        width, height, qp, frame_count, resync_every = \
            _read_sequence_header(reader)
        _check_stream_budget(frame_count, (width // 16) * (height // 16),
                             len(payload), reader.position)
    except DecodeError as exc:
        events.append(StreamEvent(exc.code, reader.position, None, str(exc)))
        return RobustParse(None, events, reader.position, 0, 0, 0,
                           resilient=True)
    mb_cols = width // 16
    mb_count = mb_cols * (height // 16)
    filled: List[Dict[int, CodedMacroblock]] = \
        [dict() for _ in range(frame_count)]
    frame_types: List[Optional[str]] = [None] * frame_count
    checksum_failures = 0
    mbs_parsed = 0
    bits_consumed = reader.position
    position = reader.position // 8
    end = len(payload)
    while position < end:
        unit = _scan_unit(payload, position, frame_count, mb_count)
        if unit is None:
            if any(len(fills) < mb_count for fills in filled):
                events.append(StreamEvent(
                    ResyncLost.code, 8 * position, None,
                    f"no further valid marker after byte {position}; "
                    f"remaining macroblocks concealed"))
            bits_consumed = 8 * end
            break
        if unit.offset > position:
            events.append(StreamEvent(
                StreamSyntaxError.code, 8 * position, unit.frame_index,
                f"skipped {unit.offset - position} unparseable bytes "
                f"before the {unit.kind} marker at byte {unit.offset}"))
        claimed = "I" if unit.is_intra else "P"
        if frame_types[unit.frame_index] is None:
            frame_types[unit.frame_index] = claimed
        elif frame_types[unit.frame_index] != claimed:
            events.append(StreamEvent(
                FieldRangeError.code, 8 * unit.offset, unit.frame_index,
                f"{unit.kind} header claims frame {unit.frame_index} is "
                f"{claimed}, previously seen as "
                f"{frame_types[unit.frame_index]}; ignored"))
            position = unit.offset + 3
            continue
        if unit.kind == "frame":
            payload_len, checksum = unit.a, unit.b
            available = end - unit.data_start
            if payload_len > available:
                events.append(StreamEvent(
                    BitstreamExhausted.code, 8 * unit.data_start,
                    unit.frame_index,
                    f"frame {unit.frame_index} payload truncated: "
                    f"{payload_len} bytes declared, {available} present"))
            elif crc16(payload[unit.data_start:unit.data_start
                               + payload_len]) != checksum:
                checksum_failures += 1
                events.append(StreamEvent(
                    ChecksumMismatch.code, 8 * unit.data_start,
                    unit.frame_index,
                    f"frame {unit.frame_index} payload checksum mismatch"))
            position = unit.data_start
            bits_consumed = max(bits_consumed, 8 * unit.data_start)
            continue
        # slice: decode its macroblocks until the count or an error
        first_mb, count = unit.a, unit.b
        frame_type = frame_types[unit.frame_index]
        mb_reader = BitReader(payload)
        mb_reader.seek_bit(8 * unit.data_start)
        try:
            for index in range(first_mb, first_mb + count):
                macroblock = _read_macroblock(
                    mb_reader, frame_type, 16 * (index % mb_cols),
                    16 * (index // mb_cols), width, height)
                if index not in filled[unit.frame_index]:
                    filled[unit.frame_index][index] = macroblock
                    mbs_parsed += 1
        except DecodeError as exc:
            events.append(StreamEvent(exc.code, mb_reader.position,
                                      unit.frame_index, str(exc)))
            position = max(mb_reader.position // 8, unit.offset + 3)
        else:
            mb_reader.align()
            position = mb_reader.position // 8
        bits_consumed = max(bits_consumed, mb_reader.position)
    sequence = CodedSequence(width, height, qp, resync_every=resync_every)
    mbs_lost = 0
    for frame_index in range(frame_count):
        frame_type = frame_types[frame_index] \
            or ("I" if frame_index == 0 else "P")
        frame = CodedFrame(frame_type)
        for index in range(mb_count):
            macroblock = filled[frame_index].get(index)
            if macroblock is None:
                macroblock = _lost_macroblock(index, mb_cols)
                mbs_lost += 1
            frame.macroblocks.append(macroblock)
        sequence.frames.append(frame)
    return RobustParse(sequence, events, bits_consumed, mbs_parsed,
                       mbs_lost, checksum_failures, resilient=True)

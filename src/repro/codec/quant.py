"""H.263-style quantisation (MPEG4 SP second quantisation method).

The paper encodes with a constant quantisation parameter Q = 10.

* inter / intra AC:  ``level = sign(c) * (|c| - QP/2) // (2 * QP)``
* intra DC:          ``level = round(c / 8)``
* dequant:           ``|c'| = QP * (2*|level| + 1) - (QP+1)%2`` for level != 0
"""

from __future__ import annotations

import numpy as np

from repro.errors import CodecError

DEFAULT_QP = 10


def _check_qp(qp: int) -> None:
    if not 1 <= qp <= 31:
        raise CodecError(f"quantisation parameter must be 1..31, got {qp}")


def quantise(coefficients: np.ndarray, qp: int = DEFAULT_QP,
             intra: bool = False) -> np.ndarray:
    """Quantise one 8x8 coefficient block to integer levels."""
    _check_qp(qp)
    coefficients = np.asarray(coefficients, dtype=np.float64)
    sign = np.sign(coefficients)
    magnitude = np.abs(coefficients)
    if intra:
        levels = sign * (magnitude // (2 * qp))
        levels[0, 0] = np.rint(coefficients[0, 0] / 8.0)
    else:
        levels = sign * ((magnitude - qp / 2.0) // (2 * qp))
        levels[magnitude < qp / 2.0] = 0
    return levels.astype(np.int32)


def dequantise(levels: np.ndarray, qp: int = DEFAULT_QP,
               intra: bool = False) -> np.ndarray:
    """Reconstruct coefficients from quantised levels."""
    _check_qp(qp)
    levels = np.asarray(levels, dtype=np.int64)
    odd_adjust = 0 if qp % 2 else 1
    magnitude = qp * (2 * np.abs(levels) + 1) - odd_adjust
    rec = np.sign(levels) * magnitude
    rec[levels == 0] = 0
    rec = rec.astype(np.float64)
    if intra:
        rec[0, 0] = float(levels[0, 0]) * 8.0
    return rec

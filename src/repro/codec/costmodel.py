"""Cycle cost model for the non-ME encoder stages.

The paper profiles the *whole* compiled application on the ST200 simulator
and reports GetSad() at 25.6 % of execution time.  We execute every stage
functionally (numpy) and charge VLIW cycles through this operation-count
model, which is the standard decoupling for trace-driven studies.

Calibration philosophy: the paper's setup hand-optimises the hotspot with
the SIMD subset but leaves everything else as compiled reference C, which
on a 4-issue VLIW sustains roughly IPC 1 (control-heavy, pointer-chasing
MoMuSys-style code).  The constants therefore reflect *scalar compiled C*
operation counts:

* 8x8 DCT/IDCT: two 1-D passes of a scalar fast DCT — ~80 ops per row/
  column pass including loads/stores and descaling, 16 passes -> ~1300 ops,
  plus prologue/epilogue, at IPC ~0.8 -> ~1800 cycles;
* quantisation: 64 coefficients x (abs, compare, multiply-shift, clip,
  store) with a branchy zero check -> ~350 cycles (dequant similar minus
  the clip);
* zigzag + run-level scan: 64-entry indirect scan with a branch per
  coefficient -> ~300 cycles, plus ~30 per emitted (run, level) symbol;
* scalar half-sample motion compensation: 256 pixels x (2-4 loads, adds,
  shift, store) -> ~1400 cycles (integer-pel about half);
* macroblock overhead: mode decision, MV prediction/median, AC/DC
  prediction, header and bitstream assembly -> ~2000 cycles;
* frame overhead: padding the reference frame borders, rate bookkeeping,
  frame copies -> ~200k cycles per QCIF frame (~8 cycles/pixel).

Only the hotspot *ratio* matters downstream; with these constants the
default 25-frame workload puts GetSad at ~25 % of the application, matching
the paper's 25.6 % initial profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WorkCounts:
    """Non-ME work performed by one encoding run (unit: events)."""

    dct_blocks: int = 0
    idct_blocks: int = 0
    quant_blocks: int = 0
    dequant_blocks: int = 0
    zigzag_blocks: int = 0
    coded_symbols: int = 0
    mc_full_mbs: int = 0
    mc_halfpel_mbs: int = 0
    recon_blocks: int = 0
    macroblocks: int = 0
    frames: int = 0

    def merge(self, other: "WorkCounts") -> None:
        for name in self.__dataclass_fields__:
            setattr(self, name, getattr(self, name) + getattr(other, name))


@dataclass(frozen=True)
class CycleCostModel:
    """Per-event VLIW cycle costs of the non-ME stages (compiled C)."""

    dct_block: int = 1800
    idct_block: int = 1800
    quant_block: int = 350
    dequant_block: int = 280
    zigzag_block: int = 300
    coded_symbol: int = 30
    mc_full_mb: int = 700
    mc_halfpel_mb: int = 1400
    recon_block: int = 120
    mb_overhead: int = 2000
    frame_overhead: int = 200_000

    def non_me_cycles(self, work: WorkCounts) -> int:
        """Total cycles of everything except the GetSad kernel."""
        return (
            work.dct_blocks * self.dct_block
            + work.idct_blocks * self.idct_block
            + work.quant_blocks * self.quant_block
            + work.dequant_blocks * self.dequant_block
            + work.zigzag_blocks * self.zigzag_block
            + work.coded_symbols * self.coded_symbol
            + work.mc_full_mbs * self.mc_full_mb
            + work.mc_halfpel_mbs * self.mc_halfpel_mb
            + work.recon_blocks * self.recon_block
            + work.macroblocks * self.mb_overhead
            + work.frames * self.frame_overhead
        )

"""Technology scaling of the RFU (paper §5b).

The RFU is built from programmable logic and interconnect, hence presumably
slower than the custom-logic CPU datapath.  The paper models this with a
scaling factor β applied *only to the computational pipeline stages* of an
RFU instruction — the read/write stages are constrained by the external
architecture and stay unchanged — while assuming the scaled computation can
still be pipelined at the CPU clock (the interconnect provides pipelining
support).  β = 5 is the worst-case FPGA-vs-standard-cell speed ratio quoted
by the paper.
"""

from __future__ import annotations

from repro.errors import RfuError

WORST_CASE_BETA = 5


def scaled_compute_depth(compute_depth: int, beta: float) -> int:
    """Number of compute pipeline stages after technology scaling.

    With the paper's loop kernel (3 computational stages) this yields
    3 -> 15 when β goes 1 -> 5, i.e. the fixed "+12 cycles" latency growth
    it reports across all bandwidth scenarios.
    """
    if beta < 1:
        raise RfuError(f"technology scaling factor must be >= 1, got {beta}")
    return int(round(compute_depth * beta))


def scaled_latency(read_stages: int, compute_depth: int, write_stages: int,
                   beta: float) -> int:
    """Total pipeline depth of an RFU instruction under scaling."""
    return read_stages + scaled_compute_depth(compute_depth, beta) + write_stages

"""Automatic custom-instruction extraction (the paper's final future-work
item: "the VLIW compiler support to automate the analysis and extraction
of the configurations").

The pass enumerates **MISOs** — single-output connected dataflow subgraphs,
the classic shape for custom-instruction identification — in a kernel
block: for every root operation it grows the subgraph producer-by-producer
while the region keeps exactly one external output, recording every
intermediate (all of which are themselves legal candidates).  Candidates
are grouped by a structural signature (isomorphic occurrences count
together, commutative operands canonicalised), filtered by the paper's
interface limits (at most 8 external inputs, 1 output, pure register ops
only), and ranked by the operations removed if each occurrence collapses
into one single-cycle RFU instruction.

Run on the baseline GetSad diagonal kernel this rediscovers the
interpolation cluster the paper selected by hand for A1/A2 (see
``tests/test_extraction.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.isa.instruction import Operation
from repro.isa.opcodes import Resource
from repro.program.ir import BasicBlock, Program

#: the paper's custom-instruction interface limits
MAX_INPUTS = 8
MAX_OUTPUTS = 1
#: enumeration bound: subgraphs up to this many operations
MAX_SUBGRAPH_OPS = 24


def _is_collapsible(op: Operation) -> bool:
    """Only pure register-to-register compute may enter a configuration."""
    spec = op.spec
    return (not spec.is_load and not spec.is_store and not spec.is_branch
            and not spec.is_prefetch and spec.resource is not Resource.RFU
            and spec.has_dest)


@dataclass(frozen=True)
class CandidateConfiguration:
    """One extracted custom-instruction candidate."""

    signature: Tuple
    size: int             # operations collapsed per occurrence
    inputs: int           # external operands
    occurrences: int
    #: static operations removed per block execution assuming the whole
    #: cluster executes as one RFU instruction: (size - 1) per occurrence
    saved_ops: int

    @property
    def opcodes(self) -> Tuple[str, ...]:
        return tuple(sorted({entry[0] for entry in self.signature}))

    @property
    def description(self) -> str:
        return (f"{self.size}-op cluster ({' '.join(self.opcodes)}), "
                f"{self.inputs} inputs, x{self.occurrences}")


class _BlockGraph:
    """Dataflow indices over one block's operations."""

    def __init__(self, block: BasicBlock):
        self.ops: List[Operation] = list(block.ops)
        self.producer_of: Dict[int, int] = {}
        for index, op in enumerate(self.ops):
            if op.dest is not None and _is_collapsible(op):
                self.producer_of[id(op.dest)] = index
        self.consumers: Dict[int, List[int]] = {}
        for index, op in enumerate(self.ops):
            for src in op.srcs:
                producer = self.producer_of.get(id(src))
                if producer is not None:
                    self.consumers.setdefault(producer, []).append(index)
        self.collapsible: Set[int] = {
            index for index, op in enumerate(self.ops)
            if _is_collapsible(op)}

    def external_inputs(self, members: FrozenSet[int]) -> int:
        inputs = set()
        for op_index in members:
            for src in self.ops[op_index].srcs:
                producer = self.producer_of.get(id(src))
                if producer is None or producer not in members:
                    inputs.add(id(src))
        return len(inputs)

    def single_output(self, members: FrozenSet[int]) -> bool:
        outputs = 0
        for op_index in members:
            consumer_list = self.consumers.get(op_index, ())
            if not consumer_list or any(consumer not in members
                                        for consumer in consumer_list):
                outputs += 1
        return outputs == MAX_OUTPUTS

    def signature(self, members: FrozenSet[int]) -> Tuple:
        """Structure-only signature: identical computation shapes anywhere
        in the block produce equal signatures."""
        ordered = sorted(members)
        rank = {op_index: position
                for position, op_index in enumerate(ordered)}
        entries = []
        for op_index in ordered:
            op = self.ops[op_index]
            links = []
            for src in op.srcs:
                producer = self.producer_of.get(id(src))
                if producer is not None and producer in members:
                    links.append(rank[producer])
                else:
                    links.append(-1)  # external input
            if op.spec.commutative:
                links.sort()
            entries.append((op.opcode, op.imm, tuple(links)))
        return tuple(entries)


def _miso_growth(graph: _BlockGraph, root: int,
                 max_size: int) -> List[FrozenSet[int]]:
    """All intermediate subgraphs of the MISO growth rooted at ``root``.

    Producers join one at a time; a producer is eligible once *all* its
    consumers are already members (so the region keeps a single output,
    the root's).  Every intermediate is itself a single-output subgraph.
    """
    members: Set[int] = {root}
    stages: List[FrozenSet[int]] = []
    grown = True
    while grown and len(members) < max_size:
        grown = False
        for op_index in sorted(members):
            for src in graph.ops[op_index].srcs:
                producer = graph.producer_of.get(id(src))
                if producer is None or producer in members \
                        or producer not in graph.collapsible:
                    continue
                if all(consumer in members
                       for consumer in graph.consumers.get(producer, ())):
                    members.add(producer)
                    stages.append(frozenset(members))
                    grown = True
        # loop again: newly added members may make more producers eligible
    return stages


def extract_candidates(block: BasicBlock,
                       min_size: int = 2,
                       min_occurrences: int = 2,
                       max_size: int = MAX_SUBGRAPH_OPS
                       ) -> List[CandidateConfiguration]:
    """Enumerate and rank custom-instruction candidates in one block."""
    graph = _BlockGraph(block)
    by_signature: Dict[Tuple, List[FrozenSet[int]]] = {}
    for root in graph.collapsible:
        for members in _miso_growth(graph, root, max_size):
            if len(members) < min_size:
                continue
            if graph.external_inputs(members) > MAX_INPUTS:
                continue
            if not graph.single_output(members):
                continue
            signature = graph.signature(members)
            by_signature.setdefault(signature, []).append(members)

    candidates = []
    for signature, instances in by_signature.items():
        used: Set[int] = set()
        occurrences = 0
        inputs = 0
        for members in sorted(instances, key=min):
            if members & used:
                continue
            used |= members
            occurrences += 1
            inputs = graph.external_inputs(members)
        if occurrences < min_occurrences:
            continue
        size = len(signature)
        candidates.append(CandidateConfiguration(
            signature=signature,
            size=size,
            inputs=inputs,
            occurrences=occurrences,
            saved_ops=occurrences * (size - 1),
        ))
    candidates.sort(key=lambda c: (-c.saved_ops, -c.size))
    return candidates


def extract_from_program(program: Program, **kwargs
                         ) -> Dict[str, List[CandidateConfiguration]]:
    """Run extraction over every block of a program."""
    return {block.label: extract_candidates(block, **kwargs)
            for block in program.blocks}

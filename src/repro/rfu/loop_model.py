"""Loop-level RFU kernels: the whole ME SAD loop as one long-latency
instruction (paper §5b).

The kernel loop is pipelined over load, computation and write stages with
initiation interval II.  Enough operators are instantiated that computation
never limits II; the bandwidth available to the RFU does:

* ``1x32`` — one 32-bit access per cycle: II = predictor words per row;
* ``1x64`` — one 64-bit access per cycle: II = ceil(words / 2);
* ``2x64`` — two 64-bit accesses per cycle: II = ceil(ceil(words / 2) / 2).

The reference macroblock always comes from Line Buffer A on its own port
(2-cycle latency, throughput 1) so it never consumes predictor bandwidth.
With Line Buffer B (Table 7) the predictor rows also come from local
storage — one buffer access reads a row's cache line and its potential
crossing at once — so II collapses to 1 and the memory ports fall quiet.

Technology scaling multiplies only the computational stage depth
(3 stages at β = 1), reproducing the paper's fixed "+12 cycles" when β = 5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import RfuError
from repro.memory.hierarchy import MemorySystem
from repro.memory.linebuffer import ACCESS_LATENCY, LineBufferA, LineBufferB
from repro.rfu.prefetch_ops import MacroblockPrefetchEngine
from repro.rfu.scaling import scaled_compute_depth

MB = 16  # macroblock dimension in pixels


class Bandwidth(enum.Enum):
    """Data bandwidth available to the RFU (paper's three scenarios)."""

    B1X32 = "1x32"
    B1X64 = "1x64"
    B2X64 = "2x64"

    @property
    def bytes_per_access(self) -> int:
        return 4 if self is Bandwidth.B1X32 else 8

    @property
    def accesses_per_cycle(self) -> int:
        return 2 if self is Bandwidth.B2X64 else 1


class InterpMode(enum.IntEnum):
    """Half-sample interpolation required by the motion vector."""

    FULL = 0   # integer-pel, no interpolation
    H = 1      # horizontal half-sample
    V = 2      # vertical half-sample
    HV = 3     # diagonal half-sample

    @property
    def needs_extra_column(self) -> bool:
        return self in (InterpMode.H, InterpMode.HV)

    @property
    def needs_extra_row(self) -> bool:
        return self in (InterpMode.V, InterpMode.HV)


def predictor_geometry_tables() -> Tuple[np.ndarray, np.ndarray]:
    """Batched :func:`predictor_geometry`: ``(rows, words)`` lookup tables.

    Both tables have shape ``(4, 4)`` indexed ``[alignment, mode]``, so a
    trace compiler can derive every invocation's geometry with two fancy
    index operations instead of one Python call per invocation.
    """
    rows = np.empty((4, 4), dtype=np.int64)
    words = np.empty((4, 4), dtype=np.int64)
    for alignment in range(4):
        for mode in InterpMode:
            rows[alignment, mode], words[alignment, mode] = \
                predictor_geometry(alignment, mode)
    return rows, words


def predictor_geometry(alignment: int, mode: InterpMode) -> Tuple[int, int]:
    """(rows, words_per_row) of the predictor data set.

    ``alignment`` is the predictor base address modulo 4 (Figure 2); the
    row needs 16 or 17 pixels starting at that byte offset inside the first
    packed word.
    """
    if not 0 <= alignment <= 3:
        raise RfuError(f"alignment must be 0..3, got {alignment}")
    pixels = MB + (1 if mode.needs_extra_column else 0)
    words = (alignment + pixels + 3) // 4
    rows = MB + (1 if mode.needs_extra_row else 0)
    return rows, words


@dataclass(frozen=True)
class LoopKernelParams:
    """Architectural parameters of one loop-level scenario."""

    bandwidth: Bandwidth
    beta: float = 1.0
    use_line_buffer_b: bool = False
    compute_depth: int = 3    # computational pipeline stages at beta = 1
    write_stages: int = 1
    issue_overhead: int = 2   # operand transfer + instruction issue
    cache_read_depth: int = 3  # load-stage depth through the D-cache
    #: per-row result words written back to memory (0 for GetSad, whose
    #: only output is the scalar SAD; 4 for a motion-compensation kernel
    #: storing the interpolated row).  Stores share the RFU's data port.
    store_words_per_row: int = 0

    @property
    def label(self) -> str:
        suffix = "+LBB" if self.use_line_buffer_b else ""
        return f"{self.bandwidth.value}{suffix} (b={self.beta:g})"


@dataclass(frozen=True)
class LoopLatency:
    """Static latency decomposition of one kernel invocation."""

    initiation_interval: int
    rows: int
    fill: int
    drain: int
    overhead: int

    @property
    def total(self) -> int:
        return self.overhead + self.fill + self.rows * self.initiation_interval \
            + self.drain


class LoopKernelModel:
    """Static and trace-driven timing of the ME kernel loop on the RFU."""

    def __init__(self, params: LoopKernelParams,
                 memory: Optional[MemorySystem] = None,
                 line_buffer_a: Optional[LineBufferA] = None,
                 line_buffer_b: Optional[LineBufferB] = None,
                 engine: Optional[MacroblockPrefetchEngine] = None):
        self.params = params
        self.memory = memory
        self.line_buffer_a = line_buffer_a
        self.line_buffer_b = line_buffer_b
        self.engine = engine
        if params.use_line_buffer_b and line_buffer_b is None and memory is not None:
            raise RfuError("use_line_buffer_b requires a LineBufferB instance")

    # -- static latency -------------------------------------------------------
    def initiation_interval(self, alignment: int, mode: InterpMode) -> int:
        rows, words = predictor_geometry(alignment, mode)
        del rows
        bandwidth = self.params.bandwidth
        words_per_access = bandwidth.bytes_per_access // 4
        store_accesses = (self.params.store_words_per_row
                          + words_per_access - 1) // words_per_access
        store_cycles = (store_accesses + bandwidth.accesses_per_cycle - 1) \
            // bandwidth.accesses_per_cycle
        if self.params.use_line_buffer_b:
            # one LB-B access reads the row (+ crossing) at once; stores
            # still occupy the external data port
            return max(1, store_cycles)
        accesses = (words + words_per_access - 1) // words_per_access
        cycles = (accesses + store_accesses
                  + bandwidth.accesses_per_cycle - 1) \
            // bandwidth.accesses_per_cycle
        return max(1, cycles)

    def static_latency(self, alignment: int, mode: InterpMode) -> LoopLatency:
        """Compiler-visible latency of one kernel invocation (no stalls)."""
        rows, _ = predictor_geometry(alignment, mode)
        read_depth = ACCESS_LATENCY if self.params.use_line_buffer_b \
            else self.params.cache_read_depth
        drain = scaled_compute_depth(self.params.compute_depth,
                                     self.params.beta) + self.params.write_stages
        return LoopLatency(
            initiation_interval=self.initiation_interval(alignment, mode),
            rows=rows,
            fill=read_depth,
            drain=drain,
            overhead=self.params.issue_overhead,
        )

    def latency_table(self) -> List[LoopLatency]:
        """Static latency for every shape, indexed ``alignment * 4 + mode``.

        The batched companion of :meth:`static_latency`: the columnar
        replay engine computes the 16 possible latencies once per scenario
        and replays invocations against the table.
        """
        return [self.static_latency(alignment, mode)
                for alignment in range(4) for mode in InterpMode]

    def worst_case_latency(self) -> int:
        """Static latency the compiler must assume (alignment 3, diagonal)."""
        return self.static_latency(3, InterpMode.HV).total

    # -- trace-driven timing ----------------------------------------------------
    def run_invocation(self, pred_base: int, stride: int, alignment: int,
                       mode: InterpMode, cycle: int) -> Tuple[int, int]:
        """Execute one kernel invocation's timing starting at ``cycle``.

        Returns ``(total_cycles, stall_cycles)``; the invocation's SAD value
        itself comes from the golden functional model (the RFU is modelled
        at functional level).  Requires a memory system.
        """
        if self.memory is None:
            raise RfuError("run_invocation requires a memory system")
        latency = self.static_latency(alignment, mode)
        now = cycle + latency.overhead + latency.fill
        stalls = 0
        word_base = pred_base - alignment
        rows, words = predictor_geometry(alignment, mode)
        if self.params.use_line_buffer_b:
            for row in range(rows):
                addr = word_base + row * stride
                for line in self.memory.dcache.lines_for_range(
                        addr, 4 * words):
                    stall = self.line_buffer_b.read_line(line, now)
                    stalls += stall
                    now += stall
                if self.line_buffer_a is not None and row < MB:
                    stall = self.line_buffer_a.read_row(row, now)
                    stalls += stall
                    now += stall
                now += latency.initiation_interval
        else:
            # the II already reflects the word-by-word bandwidth cost; cache
            # stalls are per distinct line, so replay at line granularity
            for row in range(rows):
                row_addr = word_base + row * stride
                for line in self.memory.dcache.lines_for_range(
                        row_addr, 4 * words):
                    stall = self.memory.load_timing(line, now)
                    stalls += stall
                    now += stall
                if self.line_buffer_a is not None and row < MB:
                    stall = self.line_buffer_a.read_row(row, now)
                    stalls += stall
                    now += stall
                now += latency.initiation_interval
        now += latency.drain
        return now - cycle, stalls

    # -- functional execution -----------------------------------------------------
    def compute_sad(self, ref_base: int, pred_base: int, stride: int,
                    mode: InterpMode) -> int:
        """Golden-equivalent SAD computed from main memory (for testing the
        functional path of the long-latency instruction)."""
        if self.memory is None:
            raise RfuError("compute_sad requires a memory system")
        data = self.memory.main.data
        rows = MB + (1 if mode.needs_extra_row else 0)
        cols = MB + (1 if mode.needs_extra_column else 0)
        pred = np.empty((rows, cols), dtype=np.int32)
        for row in range(rows):
            start = pred_base + row * stride
            pred[row] = data[start:start + cols]
        if mode is InterpMode.FULL:
            interpolated = pred
        elif mode is InterpMode.H:
            interpolated = (pred[:, :MB] + pred[:, 1:MB + 1] + 1) >> 1
        elif mode is InterpMode.V:
            interpolated = (pred[:MB, :] + pred[1:MB + 1, :] + 1) >> 1
        else:
            interpolated = (pred[:MB, :MB] + pred[:MB, 1:MB + 1]
                            + pred[1:MB + 1, :MB] + pred[1:MB + 1, 1:MB + 1]
                            + 2) >> 2
        ref = np.empty((MB, MB), dtype=np.int32)
        for row in range(MB):
            start = ref_base + row * stride
            ref[row] = data[start:start + MB]
        return int(np.abs(ref - interpolated[:MB, :MB]).sum())

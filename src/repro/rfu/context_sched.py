"""Reconfiguration management: context scheduling for the multicontext RFU.

The paper assumes zero reconfiguration penalty and defers the mechanisms —
configuration caching [14] and context scheduling [15] — to future work.
This module implements that future work at the same functional level as
the rest of the RFU: given the *sequence* of configuration uses an
application produces (each use separated by the kernel's execution time),
it simulates a C-slot multicontext store under several policies and
reports how much of the reconfiguration penalty each hides:

* ``LruPolicy``     — replace the least recently used context (what the
  runtime can do with no future knowledge);
* ``BeladyPolicy``  — replace the context whose next use is farthest in
  the future (the offline optimum; an upper bound on any caching scheme);
* ``PrefetchPolicy``— LRU replacement plus *configuration prefetch*: while
  configuration ``i`` executes, the (known or predicted) configuration of
  use ``i+1`` loads in the background, so a switch stalls only for the
  part of the load the execution gap did not cover — the paper's "smart
  reconfiguration strategies, based on configuration prefetch".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import RfuError


@dataclass(frozen=True)
class ConfigurationUse:
    """One kernel launch: which configuration, and for how many cycles."""

    config_id: int
    execution_cycles: int


@dataclass
class ContextScheduleResult:
    """Outcome of one simulated schedule."""

    policy: str
    uses: int
    hits: int
    loads: int
    stall_cycles: int
    execution_cycles: int

    @property
    def hit_rate(self) -> float:
        return self.hits / self.uses if self.uses else 0.0

    @property
    def overhead_fraction(self) -> float:
        total = self.execution_cycles + self.stall_cycles
        return self.stall_cycles / total if total else 0.0


class ReplacementPolicy:
    """Interface: pick a victim slot among resident configuration ids."""

    name = "abstract"

    def victim(self, resident: List[int], position: int,
               trace: Sequence[ConfigurationUse]) -> int:
        raise NotImplementedError


class LruPolicy(ReplacementPolicy):
    """``resident`` is maintained in LRU order (oldest first)."""

    name = "lru"

    def victim(self, resident, position, trace):
        return resident[0]


class BeladyPolicy(ReplacementPolicy):
    """Evict the configuration reused farthest in the future (offline)."""

    name = "belady"

    def victim(self, resident, position, trace):
        best_config = resident[0]
        best_distance = -1
        for config in resident:
            distance = None
            for later in range(position, len(trace)):
                if trace[later].config_id == config:
                    distance = later - position
                    break
            if distance is None:
                return config  # never used again: perfect victim
            if distance > best_distance:
                best_distance = distance
                best_config = config
        return best_config


def simulate_context_schedule(trace: Sequence[ConfigurationUse],
                              contexts: int,
                              load_penalty: int,
                              policy: Optional[ReplacementPolicy] = None,
                              prefetch_next: bool = False
                              ) -> ContextScheduleResult:
    """Simulate the multicontext store over a configuration-use trace.

    With ``prefetch_next`` the loader starts fetching use ``i+1``'s
    configuration as soon as use ``i`` begins executing (if it is not
    resident); the visible stall at the switch is the residual
    ``max(0, load_penalty - execution_cycles_i)``.  Without it, every miss
    stalls for the full ``load_penalty``.
    """
    if contexts < 1:
        raise RfuError("the context store needs at least one slot")
    if load_penalty < 0:
        raise RfuError("load penalty cannot be negative")
    policy = policy or LruPolicy()
    resident: List[int] = []          # LRU order, oldest first
    in_flight: Dict[int, int] = {}    # config -> residual load cycles
    hits = loads = stalls = executed = 0

    for position, use in enumerate(trace):
        executed += use.execution_cycles
        if use.config_id in resident:
            resident.remove(use.config_id)
            resident.append(use.config_id)
            residual = in_flight.pop(use.config_id, 0)
            if residual:
                stalls += residual  # prefetch started but did not finish
            else:
                hits += 1
        else:
            loads += 1
            stalls += load_penalty
            if len(resident) >= contexts:
                victim = policy.victim(resident, position, trace)
                resident.remove(victim)
                in_flight.pop(victim, None)
            resident.append(use.config_id)
        # configuration prefetch of the next use, overlapped with this
        # use's execution
        if prefetch_next and position + 1 < len(trace):
            upcoming = trace[position + 1].config_id
            if upcoming not in resident:
                loads += 1
                if len(resident) >= contexts:
                    victim = policy.victim(resident, position + 1, trace)
                    if victim == use.config_id and contexts > 1:
                        # never evict the currently executing context
                        others = [c for c in resident if c != use.config_id]
                        victim = others[0]
                    elif victim == use.config_id:
                        loads -= 1
                        continue  # single slot: cannot prefetch at all
                    resident.remove(victim)
                    in_flight.pop(victim, None)
                resident.insert(0, upcoming)  # cold until first use
                in_flight[upcoming] = max(
                    0, load_penalty - use.execution_cycles)

    return ContextScheduleResult(
        policy=policy.name + ("+prefetch" if prefetch_next else ""),
        uses=len(trace),
        hits=hits,
        loads=loads,
        stall_cycles=stalls,
        execution_cycles=executed,
    )


def rotation_trace(config_ids: Sequence[int], repetitions: int,
                   execution_cycles: int) -> List[ConfigurationUse]:
    """A round-robin rotation workload (the worst case for LRU when the
    rotation exceeds the context capacity)."""
    return [ConfigurationUse(config_id, execution_cycles)
            for _ in range(repetitions) for config_id in config_ids]

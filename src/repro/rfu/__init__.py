"""The Reconfigurable Functional Unit (RFU), modelled at functional level.

Exactly as in the paper, the RFU is characterised only by functionality,
throughput and latency — no fabric microarchitecture.  A *configuration* is
a named custom instruction (semantics callable + latency + resource needs);
the unit executes the paper's three-step protocol

* ``RFUINIT(#x)``   — activate configuration ``x`` (zero reconfiguration
  penalty by default; a penalty knob exists for ablations),
* ``RFUSEND(#x, ...)`` — load implicit operands into the configuration's
  local registers,
* ``dest = RFUEXEC(#x, ...)`` — execute and write one destination register,

plus ``RFUPFT`` prefetch-pattern instructions that run as a separate
non-blocking thread against the memory system.
"""

from repro.rfu.config import ConfigRegistry, RfuConfiguration
from repro.rfu.scaling import scaled_compute_depth, scaled_latency
from repro.rfu.unit import RfuUnit
from repro.rfu.custom_ops import (
    A1_COMBINE,
    A1_HAVG,
    DIAG4,
    DIAG16,
    standard_registry,
)
from repro.rfu.prefetch_ops import MacroblockPrefetchEngine
from repro.rfu.loop_model import (
    Bandwidth,
    InterpMode,
    LoopKernelModel,
    LoopKernelParams,
    LoopLatency,
)
from repro.rfu.context_sched import (
    BeladyPolicy,
    ConfigurationUse,
    LruPolicy,
    simulate_context_schedule,
)
from repro.rfu.extraction import CandidateConfiguration, extract_candidates

__all__ = [
    "A1_COMBINE",
    "A1_HAVG",
    "Bandwidth",
    "BeladyPolicy",
    "CandidateConfiguration",
    "ConfigRegistry",
    "ConfigurationUse",
    "DIAG4",
    "DIAG16",
    "InterpMode",
    "LoopKernelModel",
    "LoopKernelParams",
    "LoopLatency",
    "LruPolicy",
    "MacroblockPrefetchEngine",
    "RfuConfiguration",
    "RfuUnit",
    "extract_candidates",
    "scaled_compute_depth",
    "scaled_latency",
    "simulate_context_schedule",
    "standard_registry",
]

"""The paper's instruction-level RFU configurations (scenarios A1/A2/A3).

All three accelerate the *diagonal* half-sample interpolation of the
predictor macroblock, ``out = (p00 + p01 + p10 + p11 + 2) >> 2`` per pixel:

* **A1** — two new 1-cycle SIMD-style instructions usable like extra ALU
  ops (up to 4 issued per cycle): ``A1_HAVG`` computes the rounded
  horizontal average of two packed words and stashes the sum LSBs in RFU
  state; ``A1_COMBINE`` merges two horizontal averages, consuming the
  stashed LSBs to reconstruct the bit-exact 4-way rounded average.  This is
  the paper's "intermediate horizontal and vertical interpolations with
  some extra rounding adjustments".
* **A2** — ``DIAG4``: an RFUSEND loads the raw 2x2 words covering a 4-pixel
  group (alignment handled inside the fabric, set per-configuration by
  RFUINIT); one single-cycle RFUEXEC returns the 4 interpolated pixels.
* **A3** — ``DIAG16``: two RFUSENDs load the 10 words covering a whole
  macroblock row pair; four chained RFUEXECs drain the 16 interpolated
  pixels (one 32-bit destination per instruction).

Configuration state keys used: ``lsb_fifo`` (A1), ``operands`` (A2/A3 send
buffers), ``results`` (A3 drain queue), ``align``/``shift`` (implicit
alignment operands set via RFUINIT immediates, paper §3's "mixed approach
with explicit and implicit operands").
"""

from __future__ import annotations

from collections import deque
from typing import List

from repro.errors import RfuError
from repro.rfu.config import ConfigRegistry, RfuConfiguration
from repro.utils.bitops import (
    pack_bytes,
    unpack_bytes,
    words_to_bytes,
)

#: Configuration identifiers (the #x of RFUINIT/RFUSEND/RFUEXEC).
A1_HAVG = 1
A1_COMBINE = 2
DIAG4 = 3
DIAG16 = 4
ME_LOOP_BASE = 16  # loop-level kernels use ids >= 16 (see loop_model)


def diag_interpolate(top: List[int], bottom: List[int]) -> List[int]:
    """Bit-exact MPEG4 diagonal half-sample interpolation.

    ``top``/``bottom`` are byte sequences of length n+1; the result has n
    pixels: ``(top[i] + top[i+1] + bottom[i] + bottom[i+1] + 2) >> 2``.
    """
    count = len(top) - 1
    return [(top[i] + top[i + 1] + bottom[i] + bottom[i + 1] + 2) >> 2
            for i in range(count)]


# --- A1 -----------------------------------------------------------------------

def _a1_havg_execute(state: dict, operands: tuple) -> int:
    if len(operands) != 2:
        raise RfuError(f"A1_HAVG expects 2 operands, got {len(operands)}")
    a, b = operands
    lanes_a, lanes_b = unpack_bytes(a), unpack_bytes(b)
    state.setdefault("lsb_fifo", deque()).append(
        [(x + y) & 1 for x, y in zip(lanes_a, lanes_b)])
    return pack_bytes([(x + y + 1) >> 1 for x, y in zip(lanes_a, lanes_b)])


def _a1_combine_execute(state: dict, operands: tuple) -> int:
    if len(operands) != 2:
        raise RfuError(f"A1_COMBINE expects 2 operands, got {len(operands)}")
    fifo = state.get("lsb_fifo")
    if not fifo or len(fifo) < 2:
        raise RfuError("A1_COMBINE without two preceding A1_HAVG results")
    lsb_top = fifo.popleft()
    lsb_bottom = fifo.popleft()
    h_top, h_bottom = unpack_bytes(operands[0]), unpack_bytes(operands[1])
    lanes = []
    for ht, hb, lt, lb in zip(h_top, h_bottom, lsb_top, lsb_bottom):
        # invert the rounded averages: a+b = 2*ht - lt ... then exact 4-way
        total = (2 * ht - lt) + (2 * hb - lb)
        lanes.append((total + 2) >> 2)
    return pack_bytes(lanes)


# --- A2 -----------------------------------------------------------------------

def _buffered_send(state: dict, operands: tuple) -> None:
    state.setdefault("operands", []).extend(operands)


def _diag4_execute(state: dict, operands: tuple) -> int:
    """Diagonal interpolation of one 4-pixel group.

    Expects 4 raw words in the send buffer: two consecutive words of the
    top row and two of the bottom row; the group's byte offset within the
    first word comes from the implicit ``shift`` state (set by RFUINIT).
    """
    words = state.pop("operands", [])
    words.extend(operands)
    if len(words) != 4:
        raise RfuError(f"DIAG4 needs 4 loaded words, got {len(words)}")
    shift = state.get("shift", 0)
    top = words_to_bytes(words[0:2])[shift:shift + 5]
    bottom = words_to_bytes(words[2:4])[shift:shift + 5]
    return pack_bytes(diag_interpolate(top, bottom))


# --- A3 -----------------------------------------------------------------------

def _diag16_execute(state: dict, operands: tuple) -> int:
    """Row-level diagonal interpolation with chained result drains.

    The first EXEC after a send phase consumes the 10 buffered words
    (5 top-row + 5 bottom-row), computes all 16 pixels, returns the first
    word and queues the other three; the next three EXECs drain the queue.
    """
    results = state.setdefault("results", deque())
    if results:
        return results.popleft()
    words = state.pop("operands", [])
    words.extend(operands)
    if len(words) != 10:
        raise RfuError(f"DIAG16 needs 10 loaded words, got {len(words)}")
    shift = state.get("shift", 0)
    top = words_to_bytes(words[0:5])[shift:shift + 17]
    bottom = words_to_bytes(words[5:10])[shift:shift + 17]
    pixels = diag_interpolate(top, bottom)
    for group in range(1, 4):
        results.append(pack_bytes(pixels[4 * group:4 * group + 4]))
    return pack_bytes(pixels[0:4])


def _set_shift(state: dict, operands: tuple) -> None:
    """RFUINIT handler: record the implicit alignment shift (0..3 bytes)."""
    if len(operands) != 1:
        raise RfuError(f"alignment init expects 1 operand, got {len(operands)}")
    shift = operands[0]
    if not 0 <= shift <= 3:
        raise RfuError(f"alignment shift must be 0..3, got {shift}")
    state["shift"] = shift


def standard_registry() -> ConfigRegistry:
    """Registry with the paper's instruction-level configurations."""
    registry = ConfigRegistry()
    registry.register(RfuConfiguration(
        config_id=A1_HAVG, name="a1_havg", execute=_a1_havg_execute,
        base_latency=1, issue_per_cycle=4, state_key=A1_HAVG,
        description="A1: rounded horizontal average, LSBs stashed"))
    registry.register(RfuConfiguration(
        config_id=A1_COMBINE, name="a1_combine", execute=_a1_combine_execute,
        base_latency=1, issue_per_cycle=4, state_key=A1_HAVG,
        description="A1: exact diagonal combine with rounding adjustment"))
    registry.register(RfuConfiguration(
        config_id=DIAG4, name="diag4", execute=_diag4_execute,
        send=_buffered_send, init=_set_shift, base_latency=1,
        description="A2: diagonal interpolation of a 4-pixel group"))
    registry.register(RfuConfiguration(
        config_id=DIAG16, name="diag16", execute=_diag16_execute,
        send=_buffered_send, init=_set_shift, base_latency=1,
        description="A3: diagonal interpolation of a 16-pixel row"))
    return registry

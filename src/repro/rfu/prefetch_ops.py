"""Custom prefetch-pattern instructions (paper §5b).

An RFU prefetch instruction hardwires a complex access pattern — here the
macroblock — in its configuration.  After issue it runs as a separate,
non-blocking thread: it sequences one cache-line request per macroblock row
(16 rows for the reference, 17 for a predictor), plus the extra request
when a row crosses a cache-line boundary.

Three destinations are supported, matching the experiment generations:

* ``prefetch_macroblock`` — fill the D-cache prefetch buffer (loop-level
  scenarios with no local storage for the predictor);
* ``fill_line_buffer_a`` — additionally gather the reference macroblock
  into Line Buffer A as each row access completes, setting its Done flags;
* ``fill_line_buffer_b`` — stage a candidate predictor macroblock into the
  double-buffered, fully-associative Line Buffer B, reusing pending entries
  with matching tags instead of re-requesting them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import RfuError
from repro.memory.hierarchy import MemorySystem
from repro.memory.linebuffer import LineBufferA, LineBufferB, MACROBLOCK_ROWS


def macroblock_row_addresses(base: int, stride: int, rows: int,
                             row_bytes: int = 16) -> List[Tuple[int, int]]:
    """(address, length) of each macroblock row in raster memory."""
    return [(base + row * stride, row_bytes) for row in range(rows)]


def macroblock_row_line_bounds(base, stride: int, rows: int, row_bytes,
                               line_bytes: int = 32
                               ) -> Tuple[np.ndarray, np.ndarray]:
    """Batched row-address generation: the first/last cache-line address of
    every macroblock row.

    ``base`` (and ``row_bytes``) may be scalars or arrays of macroblock
    bases, so one call covers a whole trace column; the returned arrays
    have shape ``base.shape + (rows,)``.  Each row covers at most two
    lines for this machine (a row is at most 24 bytes against 32-byte
    lines), so ``(first, last)`` fully enumerates its line stream —
    equal entries mean the row stays inside one line.
    """
    base = np.asarray(base, dtype=np.int64)
    row_bytes = np.broadcast_to(np.asarray(row_bytes, dtype=np.int64),
                                base.shape)
    addr = base[..., None] + np.arange(rows, dtype=np.int64) * stride
    end = addr + row_bytes[..., None] - 1
    first = addr - addr % line_bytes
    last = end - end % line_bytes
    return first, last


class MacroblockPrefetchEngine:
    """Sequencer backing the ``rfupft`` instruction."""

    #: cycles the engine needs to sequence one row request
    SEQUENCE_INTERVAL = 1

    def __init__(self, memory: MemorySystem,
                 line_buffer_a: Optional[LineBufferA] = None,
                 line_buffer_b: Optional[LineBufferB] = None):
        self.memory = memory
        self.line_buffer_a = line_buffer_a
        self.line_buffer_b = line_buffer_b
        self.issued_patterns = 0

    # -- generic pattern -> prefetch buffer ---------------------------------
    def prefetch_macroblock(self, base: int, stride: int, rows: int,
                            cycle: int, row_bytes: int = 17) -> int:
        """Prefetch one macroblock's lines into the D$ prefetch buffer.

        ``row_bytes`` 17 covers the predictor's worst case (16 pixels + one
        for half-sample interpolation); a row crossing a cache line issues
        the extra prefetch the paper describes.  Returns prefetches issued.
        """
        issued = 0
        when = cycle
        for addr, length in macroblock_row_addresses(base, stride, rows,
                                                     row_bytes):
            issued += self.memory.prefetch_range(addr, length, when)
            when += self.SEQUENCE_INTERVAL
        self.issued_patterns += 1
        return issued

    # -- reference macroblock -> Line Buffer A ------------------------------
    def fill_line_buffer_a(self, base: int, stride: int, cycle: int) -> None:
        """Gather the reference macroblock into Line Buffer A.

        Each row's Done flag turns 1 when its line fill(s) complete on the
        shared bus; rows already resident in the D-cache complete at the
        2-cycle buffer write latency.
        """
        if self.line_buffer_a is None:
            raise RfuError("no Line Buffer A attached to the prefetch engine")
        ready: List[int] = []
        when = cycle
        for row in range(MACROBLOCK_ROWS):
            addr = base + row * stride
            lines = self.memory.dcache.lines_for_range(addr, 16)
            row_ready = when + 2
            for line in lines:
                if self.memory.dcache.contains(line):
                    continue
                row_ready = max(row_ready, self.memory.bus.request(when))
            ready.append(row_ready)
            when += self.SEQUENCE_INTERVAL
        self.line_buffer_a.begin_fill(base, ready)
        self.issued_patterns += 1

    # -- predictor macroblock -> Line Buffer B ------------------------------
    def fill_line_buffer_b(self, base: int, stride: int, rows: int,
                           cycle: int, row_bytes: int = 17) -> List[List[int]]:
        """Stage a candidate predictor macroblock into Line Buffer B.

        Returns the per-row line-address lists so the loop model can later
        read the exact entries.  Tag-matching reuse happens inside
        :class:`LineBufferB`.
        """
        if self.line_buffer_b is None:
            raise RfuError("no Line Buffer B attached to the prefetch engine")
        per_row: List[List[int]] = []
        when = cycle
        for addr, length in macroblock_row_addresses(base, stride, rows,
                                                     row_bytes):
            lines = self.memory.dcache.lines_for_range(addr, length)
            self.line_buffer_b.prefetch_lines(lines, when)
            per_row.append(lines)
            when += self.SEQUENCE_INTERVAL
        self.issued_patterns += 1
        return per_row

    # -- rfupft dispatch -----------------------------------------------------
    #: pattern selector values for the rfupft operation's immediate
    PATTERN_PREDICTOR = 0
    PATTERN_REFERENCE_LB_A = 1
    PATTERN_PREDICTOR_LB_B = 2

    def issue(self, operands: Sequence[int], cycle: int) -> None:
        """Dispatch an ``rfupft`` whose operands are (pattern, base, stride,
        rows)."""
        if len(operands) != 4:
            raise RfuError(
                f"rfupft expects (pattern, base, stride, rows), "
                f"got {len(operands)} operands")
        pattern, base, stride, rows = operands
        if pattern == self.PATTERN_PREDICTOR:
            self.prefetch_macroblock(base, stride, rows, cycle)
        elif pattern == self.PATTERN_REFERENCE_LB_A:
            self.fill_line_buffer_a(base, stride, cycle)
        elif pattern == self.PATTERN_PREDICTOR_LB_B:
            self.fill_line_buffer_b(base, stride, rows, cycle)
        else:
            raise RfuError(f"unknown prefetch pattern {pattern}")

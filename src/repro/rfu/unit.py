"""Runtime state of the Reconfigurable Functional Unit.

The unit owns per-configuration private state (operand registers, stashed
carries, drain queues), applies technology scaling β to instruction
latencies, tracks reconfiguration events (with an optional penalty for
ablation studies — the paper assumes zero), and dispatches the prefetch-
pattern instructions to the :class:`MacroblockPrefetchEngine`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import RfuError
from repro.rfu.config import ConfigRegistry, RfuConfiguration


@dataclass
class RfuStats:
    inits: int = 0
    sends: int = 0
    execs: int = 0
    prefetches: int = 0
    reconfigurations: int = 0
    reconfiguration_stall_cycles: int = 0

    def reset(self) -> None:
        self.inits = self.sends = self.execs = self.prefetches = 0
        self.reconfigurations = self.reconfiguration_stall_cycles = 0


class RfuUnit:
    """One RFU instance attached to the core.

    ``active_contexts`` models multicontext configuration memory: switching
    among the most recently used ``active_contexts`` configurations is free;
    activating a configuration outside that set costs
    ``reconfiguration_penalty`` cycles (0 by default, the paper's
    upper-bound assumption backed by configuration prefetch/caching
    [12][14][15]).
    """

    def __init__(self, registry: ConfigRegistry, beta: float = 1.0,
                 reconfiguration_penalty: int = 0, active_contexts: int = 8,
                 prefetch_engine=None):
        self.registry = registry
        self.beta = beta
        self.reconfiguration_penalty = reconfiguration_penalty
        self.active_contexts = active_contexts
        self.prefetch_engine = prefetch_engine
        self._state: Dict[int, dict] = {}
        self._loaded: list = []  # LRU list of config ids in context memory
        self.stats = RfuStats()

    # -- configuration/state helpers ----------------------------------------
    def _config(self, config_id: int) -> RfuConfiguration:
        return self.registry.get(config_id)

    def state_of(self, config: RfuConfiguration) -> dict:
        return self._state.setdefault(config.effective_state_key, {})

    def latency(self, config_id: int) -> int:
        return self._config(config_id).latency(self.beta)

    def _touch_context(self, config_id: int) -> int:
        """LRU context-memory bookkeeping; returns the stall cost."""
        if config_id in self._loaded:
            self._loaded.remove(config_id)
            self._loaded.append(config_id)
            return 0
        self._loaded.append(config_id)
        if len(self._loaded) > self.active_contexts:
            self._loaded.pop(0)
        self.stats.reconfigurations += 1
        self.stats.reconfiguration_stall_cycles += self.reconfiguration_penalty
        return self.reconfiguration_penalty

    # -- the three-step protocol --------------------------------------------
    def init(self, config_id: int, operands: Tuple[int, ...] = ()) -> int:
        """RFUINIT: activate a configuration; returns stall cycles."""
        config = self._config(config_id)
        stall = self._touch_context(config_id)
        state = self.state_of(config)
        if config.init is not None:
            config.init(state, operands)
        self.stats.inits += 1
        return stall

    def send(self, config_id: int, operands: Tuple[int, ...]) -> None:
        """RFUSEND: load explicit operands into configuration registers."""
        config = self._config(config_id)
        if config.send is None:
            raise RfuError(
                f"configuration {config.name!r} does not accept RFUSEND")
        config.send(self.state_of(config), operands)
        self.stats.sends += 1

    def execute(self, config_id: int, operands: Tuple[int, ...]) -> Tuple[int, int]:
        """RFUEXEC: run the configuration; returns ``(result, latency)``."""
        config = self._config(config_id)
        result = config.execute(self.state_of(config), operands)
        self.stats.execs += 1
        if result is None:
            raise RfuError(
                f"configuration {config.name!r} produced no result on EXEC")
        return result & 0xFFFFFFFF, config.latency(self.beta)

    def prefetch(self, operands: Tuple[int, ...], cycle: int) -> None:
        """RFUPFT: launch a prefetch-pattern as a non-blocking thread."""
        if self.prefetch_engine is None:
            raise RfuError("no prefetch engine attached to the RFU")
        self.prefetch_engine.issue(operands, cycle)
        self.stats.prefetches += 1

    def reset(self) -> None:
        self._state.clear()
        self._loaded.clear()
        self.stats.reset()

"""RFU configuration objects and the configuration registry.

A configuration is one custom instruction the fabric currently implements.
Its ``execute`` callable receives the configuration's private state dict,
the explicit operand values, and returns the 32-bit result (or ``None`` for
send-only configurations).  ``issue_per_cycle`` models how many instances
the fabric can accept per cycle: the paper's A1 scenario assumes up to 4
(the new ops behave like extra SIMD ALUs), while A2/A3 and the loop kernels
are single-issue.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.errors import RfuError

ExecuteFn = Callable[[dict, tuple], Optional[int]]
SendFn = Callable[[dict, tuple], None]


@dataclass
class RfuConfiguration:
    """Static description of one RFU custom instruction."""

    config_id: int
    name: str
    execute: ExecuteFn
    send: Optional[SendFn] = None
    #: called by RFUINIT with the configuration state and the INIT operand
    #: values (implicit-operand setup, e.g. the alignment shift)
    init: Optional[SendFn] = None
    #: configurations sharing a ``state_key`` share one state dict (e.g. the
    #: A1 pair, whose combine step consumes LSBs stashed by the average step)
    state_key: Optional[int] = None
    #: producer-to-consumer latency of RFUEXEC at β = 1 (cycles)
    base_latency: int = 1
    #: computational pipeline depth subject to technology scaling;
    #: 0 means the instruction is unaffected by β (pure wiring/mux)
    compute_depth: int = 0
    read_stages: int = 0
    write_stages: int = 0
    #: how many instances the fabric accepts per cycle
    issue_per_cycle: int = 1
    description: str = ""

    @property
    def effective_state_key(self) -> int:
        return self.config_id if self.state_key is None else self.state_key

    def latency(self, beta: float) -> int:
        """Latency under technology scaling factor β.

        Only the compute stages scale; any residual (base latency minus the
        unscaled pipeline) is kept so 1-cycle instructions stay 1 cycle at
        β = 1.
        """
        from repro.rfu.scaling import scaled_compute_depth
        unscaled = self.read_stages + self.compute_depth + self.write_stages
        residual = self.base_latency - unscaled
        scaled = (self.read_stages + scaled_compute_depth(self.compute_depth, beta)
                  + self.write_stages)
        return max(1, scaled + residual)


class ConfigRegistry:
    """Mutable map of configuration id -> :class:`RfuConfiguration`."""

    def __init__(self):
        self._configs: Dict[int, RfuConfiguration] = {}

    def register(self, config: RfuConfiguration) -> RfuConfiguration:
        if config.config_id in self._configs:
            raise RfuError(
                f"configuration id {config.config_id} already registered "
                f"({self._configs[config.config_id].name!r})")
        self._configs[config.config_id] = config
        return config

    def get(self, config_id: int) -> RfuConfiguration:
        try:
            return self._configs[config_id]
        except KeyError:
            raise RfuError(f"unknown RFU configuration #{config_id}") from None

    def __contains__(self, config_id: int) -> bool:
        return config_id in self._configs

    def __len__(self) -> int:
        return len(self._configs)

    def ids(self):
        return sorted(self._configs)

"""Write-ahead journal: durable control-plane state for both fabrics.

The data plane of this repo is already fault-tolerant — cell retries,
worker respawn, heartbeat leases, hung-worker migration — but the
control-plane processes (the sweep coordinator, the codec service) kept
all of *their* state in memory: kill one mid-run and every lease, open
stream, and committed result was gone.  This module gives both fabrics
one durable substrate: an append-only journal of JSON records that a
restarted process can replay to reconstruct exactly the state it had
committed before dying.

Format
------
A journal is a directory of numbered segment files
(``journal-00000000.jsonl``, ``journal-00000001.jsonl``, ...).  Each
line is one record: a JSON object carrying a monotonically increasing
``seq``, a ``type`` tag, the writer's payload fields, and a ``crc`` —
CRC32 over the canonical (sorted-key, compact) JSON encoding of the
record *without* the crc field.  Records are appended buffered;
:meth:`JournalWriter.commit` is the durability barrier: flush +
``os.fsync``.  A record is *committed* only once a barrier has covered
it — the writer's contract mirrors a database WAL, and both fabrics
call ``commit()`` before acting on the state the record describes.
Segment rotation (:meth:`JournalWriter.rotate`) fsyncs and closes the
current segment, then opens the next numbered one, so a long-running
service can bound per-file size without ever leaving a gap.

Reading (:func:`read_journal`) walks the segments in order and applies
the same tolerance policy as the run log (:mod:`repro.sweep.events`): a
truncated or garbled *final* record of the *final* segment is the
expected signature of a crash mid-append and is skipped silently — that
record never committed.  Anything else — garbage mid-stream, a CRC
mismatch, an out-of-order ``seq``, a malformed non-final segment —
raises :class:`repro.errors.JournalCorrupt`: a journal that lies about
the past must not be replayed into a live lease table.  An empty or
absent journal raises :class:`repro.errors.JournalEmpty` so resume
paths fail structured instead of silently starting fresh.

Consumers
---------
The sweep coordinator journals its identity (workload fingerprint,
per-cell code versions), lease grants/releases, and result commits so
``--resume-journal`` can rebuild the queue; the codec service journals
stream opens, per-segment checkpoints, and closes so ``--journal`` can
restore every open stream after a restart.  Neither fabric stores
payload *data* here — results live in the sweep checkpoint cache and
bitstream checkpoints ride the records in pickled form — the journal is
the control plane's source of truth, not a second data store.
"""

from __future__ import annotations

import json
import os
import pathlib
import zlib
from typing import Dict, Iterator, List, Union

from .errors import JournalCorrupt, JournalEmpty

#: journal on-disk format; bumped on incompatible record changes
JOURNAL_FORMAT = 1

SEGMENT_PREFIX = "journal-"
SEGMENT_SUFFIX = ".jsonl"


def _canonical(record: Dict) -> str:
    """The byte-stable encoding the CRC covers (no crc field)."""
    body = {key: value for key, value in record.items() if key != "crc"}
    return json.dumps(body, sort_keys=True, separators=(",", ":"))


def record_crc(record: Dict) -> int:
    """CRC32 of a record's canonical encoding (crc field excluded)."""
    return zlib.crc32(_canonical(record).encode("utf-8")) & 0xFFFFFFFF


def segment_name(index: int) -> str:
    return f"{SEGMENT_PREFIX}{index:08d}{SEGMENT_SUFFIX}"


def segment_paths(root: pathlib.Path) -> List[pathlib.Path]:
    """The journal's segment files in replay order."""
    if not root.is_dir():
        return []
    return sorted(root.glob(f"{SEGMENT_PREFIX}*{SEGMENT_SUFFIX}"))


class JournalWriter:
    """Append-only journal writer with explicit commit barriers.

    ``append()`` buffers; ``commit()`` makes everything appended so far
    durable (flush + fsync).  The distinction matters: a record that was
    appended but never committed may or may not survive a crash, and the
    reader treats a torn final record as "never happened" — so callers
    must call :meth:`commit` *before* acting on the state a record
    describes (granting the lease, replying to the client).
    """

    def __init__(self, root: Union[str, pathlib.Path],
                 max_segment_bytes: int = 4 * 1024 * 1024):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.max_segment_bytes = max_segment_bytes
        existing = segment_paths(self.root)
        if existing:
            last = existing[-1]
            self._segment_index = int(
                last.name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])
            # validate the whole journal (raises JournalCorrupt on
            # mid-stream damage) and count the committed records, then
            # truncate the torn tail — appending after a half-written
            # record would weld two records onto one line
            self._seq = sum(1 for _ in read_journal(self.root,
                                                    missing_ok=True))
            _truncate_torn_tail(last)
        else:
            self._segment_index = 0
            self._seq = 0
        self._handle = open(self.root / segment_name(self._segment_index),
                            "a", encoding="utf-8")
        self._dirty = False

    @property
    def seq(self) -> int:
        """The next record's sequence number."""
        return self._seq

    @property
    def closed(self) -> bool:
        return self._handle.closed

    def append(self, type_: str, **fields) -> Dict:
        """Buffer one record; returns it (with seq and crc filled in).

        Not durable until the next :meth:`commit`.
        """
        record = {"seq": self._seq, "type": type_}
        record.update(fields)
        record["crc"] = record_crc(record)
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._seq += 1
        self._dirty = True
        if self._handle.tell() >= self.max_segment_bytes:
            self.rotate()
        return record

    def commit(self) -> None:
        """The durability barrier: flush buffered records and fsync."""
        if not self._dirty:
            return
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._dirty = False

    def rotate(self) -> pathlib.Path:
        """Fsync + close the current segment, open the next numbered one.

        Atomic in the only sense that matters for replay: the old
        segment is complete and durable before the new one exists, and
        the reader walks segments in index order, so a crash between the
        two steps loses nothing.
        """
        self.commit()
        self._handle.close()
        self._segment_index += 1
        path = self.root / segment_name(self._segment_index)
        self._handle = open(path, "a", encoding="utf-8")
        return path

    def close(self) -> None:
        """Commit and close; the journal stays replayable on disk."""
        if self._handle.closed:
            return
        self.commit()
        self._handle.close()

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def _validate_line(raw: bytes, expected_seq: int) -> Dict:
    """Parse + CRC + seq-check one journal line; ValueError on any defect."""
    record = json.loads(raw.decode("utf-8"))
    if not isinstance(record, dict):
        raise ValueError("record is not a JSON object")
    stored = record.get("crc")
    if stored != record_crc(record):
        raise ValueError(
            f"CRC mismatch (stored {stored!r}, computed "
            f"{record_crc(record)})")
    if record.get("seq") != expected_seq:
        raise ValueError(
            f"sequence break: expected seq {expected_seq}, "
            f"found {record.get('seq')!r}")
    return record


def _truncate_torn_tail(path: pathlib.Path) -> None:
    """Chop a half-written final record off a segment before appending.

    Only the byte-level tail is inspected — the caller has already
    validated the journal as a whole.  A final line that is not
    newline-terminated, or does not parse/CRC-check standalone, never
    committed; appending after it would weld two records onto one line,
    so the file is truncated back to the last good record boundary.
    """
    raw = path.read_bytes()
    if not raw:
        return
    good = 0
    start = 0
    while start < len(raw):
        end = raw.find(b"\n", start)
        if end == -1:
            break   # unterminated tail: torn by definition
        line = raw[start:end]
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict) \
                    or record.get("crc") != record_crc(record):
                raise ValueError("bad record")
        except (ValueError, UnicodeDecodeError):
            break
        good = end + 1
        start = end + 1
    if good < len(raw):
        with open(path, "r+b") as handle:
            handle.truncate(good)
            handle.flush()
            os.fsync(handle.fileno())


def read_journal(root: Union[str, pathlib.Path], *,
                 missing_ok: bool = False) -> Iterator[Dict]:
    """Replay a journal's records in commit order.

    Tolerates exactly one defect: a truncated/garbled *final* record of
    the *final* segment (the crash-mid-append signature) is skipped, as
    is a final record missing its newline terminator (same signature,
    one byte earlier).  Everything else raises :class:`JournalCorrupt`
    with the segment and line position; a journal with no records raises
    :class:`JournalEmpty` unless ``missing_ok`` (used by the writer when
    re-opening its own possibly-empty directory).
    """
    root = pathlib.Path(root)
    segments = segment_paths(root)
    if not segments:
        if missing_ok:
            return
        raise JournalEmpty(f"no journal segments under {root}")
    expected_seq = 0
    yielded = False
    for seg_pos, path in enumerate(segments):
        final_segment = seg_pos == len(segments) - 1
        raw = path.read_bytes()
        terminated = raw.endswith(b"\n")
        lines = raw.split(b"\n")
        if lines and lines[-1] == b"":
            lines.pop()
        for line_pos, line in enumerate(lines):
            final_record = final_segment and line_pos == len(lines) - 1
            where = f"{path.name}:{line_pos + 1}"
            try:
                if final_record and not terminated:
                    raise ValueError("record is not newline-terminated")
                record = _validate_line(line, expected_seq)
            except (ValueError, UnicodeDecodeError) as exc:
                if final_record:
                    # torn final append: the record never committed
                    return
                raise JournalCorrupt(
                    f"journal record {where} is corrupt mid-stream: "
                    f"{exc}") from None
            expected_seq += 1
            yielded = True
            yield record
    if not yielded and not missing_ok:
        raise JournalEmpty(
            f"journal under {root} holds no committed records")


def load_journal(root: Union[str, pathlib.Path]) -> List[Dict]:
    """All committed records, eagerly (the common recovery entry)."""
    return list(read_journal(root))


def latest_by_key(records: List[Dict], type_: str,
                  key_field: str) -> Dict[object, Dict]:
    """Last-wins index of ``type_`` records by ``key_field``.

    Duplicate commits for one key are legitimate after a
    resume-of-a-resume (the second run re-commits what it re-executed);
    recovery takes the newest and counts the rest, it never fails.
    """
    index: Dict[object, Dict] = {}
    for record in records:
        if record.get("type") == type_ and key_field in record:
            index[record[key_field]] = record
    return index


def journal_stats(records: List[Dict]) -> Dict[str, int]:
    """Record counts by type plus duplicate-commit totals (transcripts)."""
    by_type: Dict[str, int] = {}
    for record in records:
        kind = str(record.get("type"))
        by_type[kind] = by_type.get(kind, 0) + 1
    return by_type


class Journal:
    """Convenience facade: a writer plus typed append-and-commit.

    Most call sites want "journal this fact durably, now" — one record,
    one barrier.  :meth:`write` does exactly that; callers needing to
    batch several records under one barrier use :meth:`append` +
    :meth:`commit` directly.
    """

    def __init__(self, root: Union[str, pathlib.Path],
                 max_segment_bytes: int = 4 * 1024 * 1024):
        self.writer = JournalWriter(root,
                                    max_segment_bytes=max_segment_bytes)
        self.root = self.writer.root

    def write(self, type_: str, **fields) -> Dict:
        """Append one record and commit it (one durability barrier)."""
        record = self.writer.append(type_, **fields)
        self.writer.commit()
        return record

    def append(self, type_: str, **fields) -> Dict:
        return self.writer.append(type_, **fields)

    def commit(self) -> None:
        self.writer.commit()

    @property
    def closed(self) -> bool:
        return self.writer.closed

    def close(self) -> None:
        self.writer.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

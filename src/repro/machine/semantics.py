"""Functional semantics of the pure (register-to-register) operations.

Each entry maps an opcode to ``fn(values, imm) -> result`` where ``values``
are the unsigned 32-bit source register values.  Memory, branch and RFU
opcodes are handled directly by the core because they touch machine state.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.errors import MachineError
from repro.utils.bitops import (
    MASK16,
    MASK32,
    absdif_bytes,
    add_bytes,
    addus_bytes,
    avg_bytes,
    pack_halves,
    sad_bytes,
    sub_bytes,
    to_s32,
    to_u32,
    unpack_halves,
)


def _shift_amount(value: int) -> int:
    return value & 31


def _add2(a: int, b: int) -> int:
    return pack_halves([(x + y) & MASK16
                        for x, y in zip(unpack_halves(a), unpack_halves(b))])


def _unpkl2(a: int) -> int:
    return pack_halves([a & 0xFF, (a >> 8) & 0xFF])


def _unpkh2(a: int) -> int:
    return pack_halves([(a >> 16) & 0xFF, (a >> 24) & 0xFF])


def _pack4(lo: int, hi: int) -> int:
    lanes_lo = unpack_halves(lo)
    lanes_hi = unpack_halves(hi)
    return (lanes_lo[0] & 0xFF) | ((lanes_lo[1] & 0xFF) << 8) \
        | ((lanes_hi[0] & 0xFF) << 16) | ((lanes_hi[1] & 0xFF) << 24)


def _mul(a: int, b: int) -> int:
    # 16x32 multiplier: low 16 bits of a (signed) times full signed b
    lhs = to_s32(a & MASK16 | (0xFFFF0000 if a & 0x8000 else 0))
    return to_u32(lhs * to_s32(b))


def _mulh(a: int, b: int) -> int:
    lhs_bits = (a >> 16) & MASK16
    lhs = to_s32(lhs_bits | (0xFFFF0000 if lhs_bits & 0x8000 else 0))
    return to_u32(lhs * to_s32(b))


PURE_OPS: Dict[str, Callable[[Sequence[int], Optional[int]], int]] = {
    "add": lambda v, imm: to_u32(v[0] + v[1]),
    "sub": lambda v, imm: to_u32(v[0] - v[1]),
    "and": lambda v, imm: v[0] & v[1],
    "or": lambda v, imm: v[0] | v[1],
    "xor": lambda v, imm: v[0] ^ v[1],
    "shl": lambda v, imm: to_u32(v[0] << _shift_amount(v[1])),
    "shr": lambda v, imm: v[0] >> _shift_amount(v[1]),
    "sra": lambda v, imm: to_u32(to_s32(v[0]) >> _shift_amount(v[1])),
    "min": lambda v, imm: to_u32(min(to_s32(v[0]), to_s32(v[1]))),
    "max": lambda v, imm: to_u32(max(to_s32(v[0]), to_s32(v[1]))),
    "mov": lambda v, imm: v[0],
    "movi": lambda v, imm: to_u32(imm),
    "addi": lambda v, imm: to_u32(v[0] + imm),
    "shli": lambda v, imm: to_u32(v[0] << _shift_amount(imm)),
    "shri": lambda v, imm: v[0] >> _shift_amount(imm),
    "andi": lambda v, imm: v[0] & to_u32(imm),
    "cmpeq": lambda v, imm: int(v[0] == v[1]),
    "cmpne": lambda v, imm: int(v[0] != v[1]),
    "cmplt": lambda v, imm: int(to_s32(v[0]) < to_s32(v[1])),
    "cmpltu": lambda v, imm: int(v[0] < v[1]),
    "cmpgei": lambda v, imm: int(to_s32(v[0]) >= imm),
    "cmpnei": lambda v, imm: int(to_s32(v[0]) != imm),
    "mul": lambda v, imm: _mul(v[0], v[1]),
    "mulh": lambda v, imm: _mulh(v[0], v[1]),
    "add4": lambda v, imm: add_bytes(v[0], v[1]),
    "addus4": lambda v, imm: addus_bytes(v[0], v[1]),
    "sub4": lambda v, imm: sub_bytes(v[0], v[1]),
    "absd4": lambda v, imm: absdif_bytes(v[0], v[1]),
    "avg4": lambda v, imm: avg_bytes(v[0], v[1]),
    "sad4": lambda v, imm: sad_bytes(v[0], v[1]),
    "add2": lambda v, imm: _add2(v[0], v[1]),
    "unpkl2": lambda v, imm: _unpkl2(v[0]),
    "unpkh2": lambda v, imm: _unpkh2(v[0]),
    "pack4": lambda v, imm: _pack4(v[0], v[1]),
}


def evaluate(opcode: str, values: Sequence[int], imm: Optional[int]) -> int:
    """Evaluate one pure operation; raises :class:`MachineError` for opcodes
    that need machine state (memory/branch/RFU)."""
    try:
        fn = PURE_OPS[opcode]
    except KeyError:
        raise MachineError(
            f"{opcode!r} is not a pure register operation") from None
    return fn(values, imm)

"""Cycle-level model of the 1-cluster ST200 with attached RFU (Figure 1).

The machine is in-order and interlocked: the scheduler is expected to cover
operation latencies, and any residual read-before-ready (e.g. across a loop
back edge) stalls the pipeline, as do D-cache demand misses ("the whole
machine stalls as usual").
"""

from repro.machine.config import MachineConfig
from repro.machine.core import Core, LoadedProgram, RunResult, compile_kernel

__all__ = ["Core", "LoadedProgram", "MachineConfig", "RunResult",
           "compile_kernel"]

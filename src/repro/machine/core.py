"""The in-order, interlocked VLIW core executor.

A :class:`LoadedProgram` bundles a scheduled, register-allocated kernel;
:class:`Core` executes it bundle-by-bundle against a
:class:`~repro.memory.hierarchy.MemorySystem` and an optional
:class:`~repro.rfu.unit.RfuUnit`, producing both functional results and the
cycle/stall accounting the experiments consume.

Timing rules:

* one bundle issues per cycle;
* a source read whose producer has not completed stalls the machine until
  the value lands (interlock, e.g. a load consumed too early across a loop
  back edge);
* D-cache demand misses stall the whole machine (paper §5b);
* taken branches cost ``taken_branch_penalty`` bubble cycles;
* instruction fetch goes through the 128 KB direct-mapped I-cache — large
  enough to hold the whole application, so after cold start its stall
  contribution is negligible, exactly as the paper argues.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import MachineError, RegisterAllocationError
from repro.isa.instruction import Bundle, Operation
from repro.isa.registers import (
    NUM_BR,
    NUM_GPR,
    BranchRegister,
    GeneralRegister,
    Register,
    VirtualRegister,
)
from repro.machine.config import MachineConfig
from repro.machine.semantics import PURE_OPS
from repro.memory.hierarchy import MemorySystem
from repro.program.ir import Program
from repro.program.regalloc import allocate_registers
from repro.program.scheduler import ScheduledProgram, schedule_program
from repro.rfu.unit import RfuUnit


@dataclass
class LoadedProgram:
    """A kernel ready to run: scheduled bundles + register mapping."""

    scheduled: ScheduledProgram
    mapping: Dict[VirtualRegister, Register]

    @property
    def program(self) -> Program:
        return self.scheduled.program

    @property
    def name(self) -> str:
        return self.scheduled.name

    def physical_params(self) -> List[Register]:
        return [self.mapping[param] for param in self.program.params]

    def physical_result(self) -> Optional[Register]:
        if self.program.result is None:
            return None
        return self.mapping[self.program.result]

    @property
    def static_length(self) -> int:
        return self.scheduled.static_length


def compile_kernel(program: Program, rfu: Optional[RfuUnit] = None,
                   config: Optional[MachineConfig] = None) -> LoadedProgram:
    """Schedule and register-allocate a kernel for the given machine.

    RFU operation latencies are resolved through the RFU registry (with its
    technology scaling), so the compiler sees the configuration's static
    latency exactly as the paper's methodology requires.
    """
    config = config or MachineConfig()

    def latency_of(op: Operation) -> int:
        if op.spec.latency is not None:
            return op.spec.latency
        if op.opcode in ("rfuinit", "rfusend", "rfupft"):
            return 1
        if rfu is None:
            return 1
        return rfu.latency(op.imm)

    scheduled = schedule_program(program, latency_of, config.capacity,
                                 config.issue_width,
                                 pressure_limit=config.pressure_limit,
                                 mode=config.sched_mode,
                                 sweep_seeds=config.sweep_seeds)
    try:
        mapping = allocate_registers(scheduled)
    except RegisterAllocationError:
        if config.sched_mode != "modulo":
            raise
        # pipelined overlap can stretch temporaries past the register
        # file; fall back to the flat list schedule for this kernel
        scheduled = schedule_program(program, latency_of, config.capacity,
                                     config.issue_width,
                                     pressure_limit=config.pressure_limit,
                                     mode="paper")
        mapping = allocate_registers(scheduled)
    return LoadedProgram(scheduled, mapping)


@dataclass
class RunResult:
    """Counters and functional outcome of one kernel run."""

    result: Optional[int]
    cycles: int
    bundles: int
    ops: int
    interlock_stalls: int
    dcache_stalls: int
    icache_stalls: int
    branch_stalls: int
    taken_branches: int

    @property
    def stall_cycles(self) -> int:
        return (self.interlock_stalls + self.dcache_stalls
                + self.icache_stalls + self.branch_stalls)


class Core:
    """Cycle-level executor for loaded programs."""

    def __init__(self, memory: MemorySystem, rfu: Optional[RfuUnit] = None,
                 config: Optional[MachineConfig] = None):
        self.memory = memory
        self.rfu = rfu
        self.config = config or MachineConfig()
        self.gpr = [0] * NUM_GPR
        self.br = [0] * NUM_BR
        self._pending_gpr: Dict[int, Tuple[int, int]] = {}
        self._pending_br: Dict[int, Tuple[int, int]] = {}

    # -- register plumbing ---------------------------------------------------
    def _commit(self, cycle: int) -> None:
        for index in [i for i, (ready, _) in self._pending_gpr.items()
                      if ready <= cycle]:
            _, value = self._pending_gpr.pop(index)
            if index != 0:
                self.gpr[index] = value
        for index in [i for i, (ready, _) in self._pending_br.items()
                      if ready <= cycle]:
            _, value = self._pending_br.pop(index)
            self.br[index] = value

    def _read(self, reg: Register, cycle: int) -> Tuple[int, int]:
        """Read a register; returns (value, interlock stall cycles)."""
        if isinstance(reg, GeneralRegister):
            pending = self._pending_gpr.get(reg.index)
            bank, index = self.gpr, reg.index
        elif isinstance(reg, BranchRegister):
            pending = self._pending_br.get(reg.index)
            bank, index = self.br, reg.index
        else:
            raise MachineError(f"unallocated register {reg!r} reached the core")
        if pending is None:
            return bank[index], 0
        ready, _ = pending
        if ready <= cycle:
            self._commit(cycle)
            return bank[index], 0
        stall = ready - cycle
        self._commit(ready)
        return bank[index], stall

    def _write(self, reg: Register, value: int, ready_cycle: int) -> None:
        if isinstance(reg, GeneralRegister):
            self._pending_gpr[reg.index] = (ready_cycle, value)
        elif isinstance(reg, BranchRegister):
            self._pending_br[reg.index] = (ready_cycle, value)
        else:
            raise MachineError(f"unallocated register {reg!r} reached the core")

    def write_register(self, reg: Register, value: int) -> None:
        """Set a register immediately (used to pass kernel arguments)."""
        if isinstance(reg, GeneralRegister):
            if reg.index != 0:
                self.gpr[reg.index] = value & 0xFFFFFFFF
        elif isinstance(reg, BranchRegister):
            self.br[reg.index] = value & 1
        else:
            raise MachineError(f"cannot write unallocated register {reg!r}")

    def read_register(self, reg: Register) -> int:
        if isinstance(reg, GeneralRegister):
            return self.gpr[reg.index]
        if isinstance(reg, BranchRegister):
            return self.br[reg.index]
        raise MachineError(f"cannot read unallocated register {reg!r}")

    # -- execution --------------------------------------------------------------
    def run(self, loaded: LoadedProgram, args: Sequence[int] = (),
            start_cycle: int = 0) -> RunResult:
        """Execute a loaded kernel to completion."""
        program = loaded.program
        params = loaded.physical_params()
        if len(args) != len(params):
            raise MachineError(
                f"kernel {loaded.name!r} expects {len(params)} arguments, "
                f"got {len(args)}")
        for reg, value in zip(params, args):
            self.write_register(reg, value)
        self._pending_gpr.clear()
        self._pending_br.clear()

        blocks = loaded.scheduled.blocks
        index_of = {blk.label: i for i, blk in enumerate(blocks)}
        # text layout: blocks placed back to back from text_base
        block_base: Dict[int, int] = {}
        address = self.config.text_base
        for i, blk in enumerate(blocks):
            block_base[i] = address
            address += len(blk.bundles) * Bundle.SIZE_BYTES

        cycle = start_cycle
        bundles = ops = 0
        interlock = dstalls = istalls = bstalls = 0
        taken = 0
        block_index = 0

        while block_index < len(blocks):
            block = blocks[block_index]
            next_block = block_index + 1
            bundle_index = 0
            while bundle_index < len(block.bundles):
                bundle = block.bundles[bundle_index]
                if cycle - start_cycle > self.config.max_cycles:
                    raise MachineError(
                        f"kernel {loaded.name!r} exceeded "
                        f"{self.config.max_cycles} cycles")
                if self.config.model_icache:
                    fetch_addr = block_base[block_index] \
                        + bundle_index * Bundle.SIZE_BYTES
                    stall = self.memory.ifetch(fetch_addr, cycle)
                    istalls += stall
                    cycle += stall
                self._commit(cycle)
                branch_taken_to: Optional[int] = None
                for op in bundle:
                    ops += 1
                    values = []
                    for src in op.srcs:
                        value, stall = self._read(src, cycle)
                        if stall:
                            interlock += stall
                            cycle += stall
                        values.append(value)
                    spec = op.spec
                    if op.opcode in PURE_OPS:
                        result = PURE_OPS[op.opcode](values, op.imm)
                        self._write(op.dest, result, cycle + spec.latency)
                    elif spec.is_load:
                        addr = (values[0] + (op.imm or 0)) & 0xFFFFFFFF
                        if op.opcode == "ldw":
                            value, stall = self.memory.load_word(addr, cycle)
                        else:
                            value, stall = self.memory.load_byte(addr, cycle)
                        dstalls += stall
                        cycle += stall
                        self._write(op.dest, value, cycle + spec.latency)
                    elif spec.is_store:
                        addr = (values[1] + (op.imm or 0)) & 0xFFFFFFFF
                        if op.opcode == "stw":
                            self.memory.store_word(addr, values[0], cycle)
                        else:
                            self.memory.store_byte(addr, values[0], cycle)
                    elif op.opcode == "pft":
                        addr = (values[0] + (op.imm or 0)) & 0xFFFFFFFF
                        self.memory.prefetch_line(addr, cycle)
                        self._write(op.dest, 0, cycle + 1)
                    elif spec.is_branch:
                        if op.opcode == "goto":
                            condition = True
                        elif op.opcode == "br":
                            condition = bool(values[0])
                        else:  # brf
                            condition = not values[0]
                        if condition:
                            branch_taken_to = index_of[op.label]
                            taken += 1
                    elif op.opcode == "rfuinit":
                        cycle += self.rfu.init(op.imm, tuple(values))
                    elif op.opcode == "rfusend":
                        self.rfu.send(op.imm, tuple(values))
                    elif op.opcode == "rfuexec":
                        result, latency = self.rfu.execute(op.imm, tuple(values))
                        self._write(op.dest, result, cycle + latency)
                    elif op.opcode == "rfupft":
                        self.rfu.prefetch(tuple(values), cycle)
                    else:
                        raise MachineError(f"unhandled opcode {op.opcode!r}")
                bundles += 1
                cycle += 1
                bundle_index += 1
                if branch_taken_to is not None:
                    bstalls += self.config.taken_branch_penalty
                    cycle += self.config.taken_branch_penalty
                    next_block = branch_taken_to
                    break
            block_index = next_block

        pending = [ready for ready, _ in self._pending_gpr.values()]
        pending += [ready for ready, _ in self._pending_br.values()]
        self._commit(max([cycle] + pending))  # drain outstanding write-backs
        result_reg = loaded.physical_result()
        result = self.read_register(result_reg) if result_reg is not None else None
        return RunResult(
            result=result,
            cycles=cycle - start_cycle,
            bundles=bundles,
            ops=ops,
            interlock_stalls=interlock,
            dcache_stalls=dstalls,
            icache_stalls=istalls,
            branch_stalls=bstalls,
            taken_branches=taken,
        )

"""Machine configuration knobs."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.isa.opcodes import Resource


@dataclass
class MachineConfig:
    """Parameters of the VLIW core model.

    Defaults match the paper's 1-cluster ST200: 4-issue, 4 ALUs, 2 multi-
    pliers, one load/store unit, one branch unit, plus the single RFU slot.
    """

    issue_width: int = 4
    capacity: Dict[Resource, int] = field(default_factory=lambda: {
        Resource.ALU: 4,
        Resource.MUL: 2,
        Resource.LSU: 1,
        Resource.BRANCH: 1,
        Resource.RFU: 1,
    })
    #: extra cycles lost on a taken branch (short VLIW pipeline bubble)
    taken_branch_penalty: int = 1
    #: address where program text is placed (for I-cache indexing)
    text_base: int = 0x0010_0000
    #: simulate instruction fetch through the I-cache
    model_icache: bool = True
    max_cycles: int = 50_000_000
    #: scheduling tier: "paper" (bit-identical to the seed heuristic),
    #: "sweep" (seeded priority sweeps) or "modulo" (software pipelining)
    sched_mode: str = "paper"
    #: candidates per block in the sweep tier (ignored by other modes)
    sweep_seeds: Optional[int] = None
    #: live-value ceiling forwarded to the scheduler's pressure heuristic
    pressure_limit: int = 44

    def with_rfu_issue(self, rfu_per_cycle: int) -> "MachineConfig":
        """Copy of this config with a different RFU issue capacity (the A1
        scenario assumes up to 4 of its simple RFU ops per cycle)."""
        capacity = dict(self.capacity)
        capacity[Resource.RFU] = rfu_per_cycle
        return dataclasses.replace(self, capacity=capacity)

    def with_sched_mode(self, sched_mode: str,
                        sweep_seeds: Optional[int] = None) -> "MachineConfig":
        """Copy of this config compiling under a different scheduling tier."""
        return dataclasses.replace(self, sched_mode=sched_mode,
                                   sweep_seeds=sweep_seeds)

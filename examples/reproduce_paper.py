#!/usr/bin/env python
"""Reproduce every table and figure of the paper and print the report.

Runs through the cached sweep orchestrator (``repro.sweep``): the first
run encodes and replays everything; re-runs restore unchanged cells from
the on-disk cache in seconds, and only cells invalidated by a workload or
``src/repro`` code change are recomputed.  The default workload matches
the paper (25 QCIF frames, Q = 10)::

    python examples/reproduce_paper.py               # full, a few minutes
    python examples/reproduce_paper.py 6             # quick
    python examples/reproduce_paper.py 25 out.md     # also write a file
    python examples/reproduce_paper.py 25 --jobs 4   # parallel fan-out
    python examples/reproduce_paper.py 25 --no-cache # force recompute

Cache, run logs and ``sweep_report.json`` land under ``.repro-sweep/``;
``python -m repro sweep`` exposes the same machinery with more knobs.
"""

import argparse
import sys

from repro.sweep import SweepConfig, run_sweep


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("frames", nargs="?", type=int, default=25)
    parser.add_argument("output", nargs="?", default=None)
    parser.add_argument("--jobs", "-j", type=int, default=1)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args()

    result = run_sweep(
        SweepConfig(frames=args.frames, jobs=args.jobs,
                    use_cache=not args.no_cache),
        progress=lambda message: print(message, flush=True))
    print()
    print(result.report)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(result.report + "\n")
        print(f"\nwritten to {args.output}")
    totals = result.sweep_report["totals"]
    print(f"\nsweep: {totals['cells']} cells, {totals['cache_hits']} cache "
          f"hits, {totals['errors']} failed in {totals['wall_s']:.1f}s; "
          f"run log {result.run_log}")
    return 1 if result.failures else 0


if __name__ == "__main__":
    status = main()
    if status:
        sys.exit(status)

#!/usr/bin/env python
"""Reproduce every table and figure of the paper and print the report.

The default workload matches the paper (25 QCIF frames, Q = 10); pass a
smaller frame count for a quick look::

    python examples/reproduce_paper.py          # full, a few minutes
    python examples/reproduce_paper.py 6        # quick
    python examples/reproduce_paper.py 25 out.md  # also write a file
"""

import sys

from repro.experiments import run_all


def main() -> None:
    frames = int(sys.argv[1]) if len(sys.argv) > 1 else 25
    report = run_all(frames=frames, verbose=True)
    print()
    print(report)
    if len(sys.argv) > 2:
        with open(sys.argv[2], "w") as handle:
            handle.write(report + "\n")
        print(f"\nwritten to {sys.argv[2]}")


if __name__ == "__main__":
    main()

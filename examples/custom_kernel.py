#!/usr/bin/env python
"""Write, compile and run your own VLIW+RFU kernel.

Demonstrates the library as a general architecture-exploration tool rather
than a fixed benchmark: define a custom RFU instruction, build a kernel
with the IR builder, compile it (scheduler + register allocator), execute
it on the cycle-level core, and inspect the timing.

The kernel computes a saturating 8-bit "blend" of two pixel arrays — the
kind of small media op the paper's A1 scenario adds to the ISA — first
with base-ISA operations, then with a 1-cycle RFU configuration, and
compares the cycle counts.

    python examples/custom_kernel.py
"""

from repro import Core, KernelBuilder, MachineConfig, MemorySystem, RfuUnit, \
    compile_kernel
from repro.isa.instruction import format_schedule
from repro.rfu import ConfigRegistry, RfuConfiguration
from repro.utils.bitops import unpack_bytes, pack_bytes

#: custom configuration id (>= 32 keeps clear of the built-in ones)
BLEND4 = 32
PIXELS = 64  # 16 words per array


def blend_execute(state, operands):
    """out = (3*a + b + 2) >> 2 per byte lane — a simple alpha blend."""
    a_lanes, b_lanes = unpack_bytes(operands[0]), unpack_bytes(operands[1])
    return pack_bytes([(3 * x + y + 2) >> 2 for x, y in zip(a_lanes, b_lanes)])


def build_kernel(use_rfu: bool):
    kb = KernelBuilder("blend_rfu" if use_rfu else "blend_base")
    src_a = kb.param("a")
    src_b = kb.param("b")
    dst = kb.param("dst")
    count = kb.persistent_reg("count")
    checksum = kb.persistent_reg("check")
    with kb.block("init"):
        kb.emit("movi", dest=count, imm=PIXELS // 4)
        kb.emit("movi", dest=checksum, imm=0)
        if use_rfu:
            kb.emit("rfuinit", imm=BLEND4)
    with kb.counted_loop("loop", count):
        word_a = kb.emit("ldw", src_a, imm=0, mem_tag="a")
        word_b = kb.emit("ldw", src_b, imm=0, mem_tag="b")
        if use_rfu:
            blended = kb.emit("rfuexec", word_a, word_b, imm=BLEND4)
        else:
            # base ISA: widen to 16-bit lanes, 3*a + b + 2 >> 2, repack
            round_const = kb.const(0x00020002)
            lanes = []
            for unpack in ("unpkl2", "unpkh2"):
                ua = kb.emit(unpack, word_a)
                ub = kb.emit(unpack, word_b)
                tripled = kb.emit("add2", kb.emit("add2", ua, ua), ua)
                total = kb.emit("add2", kb.emit("add2", tripled, ub),
                                round_const)
                lanes.append(kb.emit("shri", total, imm=2))
            blended = kb.emit("pack4", lanes[0], lanes[1])
        kb.emit("stw", blended, dst, imm=0, mem_tag="out")
        kb.emit("add", checksum, blended, dest=checksum)
        for pointer in (src_a, src_b, dst):
            kb.emit("addi", pointer, dest=pointer, imm=4)
    kb.set_result(checksum)
    return kb.finish()


def main() -> None:
    registry = ConfigRegistry()
    registry.register(RfuConfiguration(
        config_id=BLEND4, name="blend4", execute=blend_execute,
        base_latency=1, description="4x8-bit alpha blend (3a+b+2)>>2"))

    memory = MemorySystem()
    base_a, base_b, base_out = 0x10000, 0x20000, 0x30000
    for i in range(PIXELS):
        memory.main.store_byte(base_a + i, (i * 7) & 0xFF)
        memory.main.store_byte(base_b + i, (255 - i) & 0xFF)

    results = {}
    for use_rfu in (False, True):
        program = build_kernel(use_rfu)
        rfu = RfuUnit(registry)
        loaded = compile_kernel(program, rfu, MachineConfig())
        core = Core(memory, rfu)
        core.run(loaded, [base_a, base_b, base_out])          # warm caches
        result = core.run(loaded, [base_a, base_b, base_out])  # measure
        results[program.name] = result
        print(f"{program.name}: {result.cycles} cycles, "
              f"{result.ops} ops, checksum 0x{result.result:08x}")
        if use_rfu:
            print("\nRFU loop body schedule:")
            print(format_schedule(loaded.scheduled.block_map()["loop"]
                                  .bundles))

    assert results["blend_base"].result == results["blend_rfu"].result
    speedup = results["blend_base"].cycles / results["blend_rfu"].cycles
    print(f"\nISA-extension speedup on this kernel: {speedup:.2f}x "
          f"(same 1-2x band the paper reports for instruction-level RFU use)")


if __name__ == "__main__":
    main()

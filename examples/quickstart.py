#!/usr/bin/env python
"""Quickstart: encode a short synthetic sequence and measure how much a
Reconfigurable Functional Unit accelerates its motion-estimation hotspot.

Runs in well under a minute::

    python examples/quickstart.py
"""

from repro import (
    Bandwidth,
    Exploration,
    ExplorationConfig,
    instruction_scenario,
    loop_scenario,
)


def main() -> None:
    # one encoding run (functional) + trace replays under three scenarios
    exploration = Exploration(ExplorationConfig(frames=6))
    result = exploration.run([
        instruction_scenario("a3"),               # best instruction-level RFU
        loop_scenario(Bandwidth.B1X32),           # whole kernel on the RFU
        loop_scenario(Bandwidth.B1X32, line_buffer_b=True),  # + local memory
    ])

    trace = exploration.encoder_report.trace
    print(f"encoded {exploration.config.frames} QCIF frames, "
          f"{len(trace):,} GetSad calls "
          f"({100 * trace.diagonal_fraction():.1f}% diagonal interpolation)")
    print(f"baseline GetSad share of the app: "
          f"{100 * result.me_fraction('orig'):.1f}%  (paper: 25.6%)\n")

    print(f"{'scenario':24s} {'ME cycles':>12s} {'speedup':>8s}")
    for name in ("orig", "a3", "loop_1x32_b1", "loop_1x32+2lb_b1"):
        timing = result.result(name)
        print(f"{name:24s} {timing.total_cycles:>12,} "
              f"{result.speedup(name):>7.2f}x")

    print("\nThe paper's conclusion, reproduced: extending the instruction "
          "set buys 1-2x,\nmapping the whole kernel loop (with prefetch "
          "patterns and local line buffers)\nbuys up to ~8x.")


if __name__ == "__main__":
    main()

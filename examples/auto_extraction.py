#!/usr/bin/env python
"""Automatic custom-instruction extraction on the GetSad kernels.

The paper closes with: "The VLIW compiler support to automate the analysis
and extraction of the configurations is a research topic that will be
taken into future consideration."  This example runs that automation —
the MISO-based extraction pass — on the baseline GetSad kernels and shows
that it rediscovers, per interpolation mode, exactly the clusters the
authors selected by hand for the A1/A2/A3 scenarios.

    python examples/auto_extraction.py
"""

from repro.kernels import KernelShape, build_getsad_kernel
from repro.rfu.extraction import extract_candidates
from repro.rfu.loop_model import InterpMode


def main() -> None:
    for mode in InterpMode:
        program = build_getsad_kernel("orig", KernelShape(1, mode))
        block = program.block("row_loop")
        candidates = extract_candidates(block)
        print(f"--- {mode.name} row body: {len(block.ops)} ops, "
              f"{len(candidates)} candidates ---")
        for candidate in candidates[:3]:
            share = 100.0 * candidate.saved_ops / len(block.ops)
            print(f"  {candidate.description:58s} "
                  f"saves {candidate.saved_ops:3d} ops ({share:4.1f}%)")
        if not candidates:
            print("  (nothing worth a configuration: the full-pel path is "
                  "load/SAD bound)")
        print()

    print("Reading the HV result: the top cluster is the 4-pixel diagonal "
          "interpolation\n(widening adds + rounding + repack, few external "
          "inputs, one output,\noccurring once per pixel group) — precisely "
          "the paper's hand-designed A2\nDIAG4 configuration, found "
          "automatically.")


if __name__ == "__main__":
    main()

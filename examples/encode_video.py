#!/usr/bin/env python
"""Drive the MPEG4-SP encoder substrate directly.

Shows the functional side of the library: synthetic sequence generation,
encoding with different motion-search strategies, per-frame statistics and
the workload properties (interpolation mix, predictor alignments) that the
architectural experiments depend on.

    python examples/encode_video.py
"""

from repro import EncoderConfig, Mpeg4Encoder, SyntheticSequenceConfig, \
    synthetic_sequence
from repro.codec.motion import FullSearch, ThreeStepSearch


def encode_with(strategy, frames):
    report = Mpeg4Encoder(EncoderConfig(strategy=strategy)).encode(frames)
    trace = report.trace
    print(f"--- {strategy.name} ---")
    print(f"{'frame':>5s} {'type':>4s} {'bits':>8s} {'PSNR-Y':>7s} "
          f"{'SAD calls':>9s}")
    for stats in report.frame_stats:
        print(f"{stats.index:>5d} {stats.frame_type:>4s} {stats.bits:>8,} "
              f"{stats.psnr_y:>6.2f} {stats.getsad_calls:>9,}")
    histogram = trace.mode_histogram()
    total = max(1, len(trace))
    mix = ", ".join(f"{mode.name}: {100 * count / total:.1f}%"
                    for mode, count in histogram.items())
    print(f"interpolation mix: {mix}")
    print(f"alignment histogram: {trace.alignment_histogram(176)}")
    print(f"total bits: {report.total_bits:,}, "
          f"mean PSNR-Y: {report.mean_psnr_y:.2f} dB\n")


def main() -> None:
    frames = synthetic_sequence(SyntheticSequenceConfig(frames=5))
    # the experiments' default: logarithmic search + half-sample refinement
    encode_with(ThreeStepSearch(2), frames)
    # the classic reference approach: exhaustive search (more SAD calls,
    # slightly better vectors)
    encode_with(FullSearch(4), frames)


if __name__ == "__main__":
    main()

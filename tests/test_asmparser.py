"""The text assembly frontend."""

import pytest

from repro.errors import IsaError
from repro.isa.asmparser import parse_program
from repro.machine import Core, compile_kernel
from repro.memory import MemorySystem

SUM8 = """
kernel sum8
params base
persistent acc, n

block init:
    movi n = #8
    movi acc = #0
block loop:
    ldw t0 = base, #0 !frame
    add acc = acc, t0
    addi base = base, #4
    addi n = n, #-1
    cmpnei c = n, #0
    br c, loop
result acc
"""


class TestParsing:
    def test_sum8_structure(self):
        program = parse_program(SUM8)
        assert program.name == "sum8"
        assert [blk.label for blk in program.blocks] == ["init", "loop"]
        assert len(program.params) == 1
        assert program.result is not None

    def test_mem_tag_attached(self):
        program = parse_program(SUM8)
        load = next(op for op in program.all_ops() if op.opcode == "ldw")
        assert load.mem_tag == "frame"

    def test_branch_register_inferred(self):
        program = parse_program(SUM8)
        compare = next(op for op in program.all_ops()
                       if op.opcode == "cmpnei")
        assert compare.dest.is_branch

    def test_comments_and_blank_lines_ignored(self):
        program = parse_program("""
kernel c
; full-line comment
# another
block b:
    movi x = #1   // trailing comment
""")
        assert len(program.block("b").ops) == 1

    def test_cfg_operand(self):
        program = parse_program("""
kernel r
params a, b
block x:
    rfusend a, b, cfg=3
    rfuexec out = cfg=3
result out
""")
        send, execute = program.block("x").ops
        assert send.imm == 3
        assert execute.imm == 3
        assert len(send.srcs) == 2

    def test_hex_immediates(self):
        program = parse_program("""
kernel h
block b:
    movi mask = #0x00FF00FF
""")
        assert program.block("b").ops[0].imm == 0x00FF00FF


class TestErrors:
    def test_missing_kernel_directive(self):
        with pytest.raises(IsaError, match="kernel"):
            parse_program("block b:\n    movi x = #1\n")

    def test_empty_text(self):
        with pytest.raises(IsaError, match="empty"):
            parse_program("   \n\n")

    def test_op_outside_block(self):
        with pytest.raises(IsaError, match="outside"):
            parse_program("kernel k\nmovi x = #1\n")

    def test_unknown_opcode_with_line_number(self):
        with pytest.raises(IsaError, match="line 3"):
            parse_program("kernel k\nblock b:\n    frobnicate x = #1\n")

    def test_missing_destination(self):
        with pytest.raises(IsaError, match="destination"):
            parse_program("kernel k\nblock b:\n    movi #1\n")

    def test_destination_on_store(self):
        with pytest.raises(IsaError, match="does not produce"):
            parse_program("kernel k\nparams p, v\nblock b:\n"
                          "    stw x = v, p, #0\n")

    def test_branch_without_label(self):
        with pytest.raises(IsaError, match="label"):
            parse_program("kernel k\nblock b:\n    goto #1\n")

    def test_duplicate_block(self):
        with pytest.raises(IsaError, match="duplicate"):
            parse_program("kernel k\nblock b:\nblock b:\n")

    def test_bad_immediate(self):
        with pytest.raises(IsaError, match="immediate"):
            parse_program("kernel k\nblock b:\n    movi x = #zz\n")

    def test_unresolved_branch_target(self):
        with pytest.raises(IsaError):
            parse_program("kernel k\nblock b:\n    goto nowhere\n")


class TestEndToEnd:
    def test_parsed_kernel_runs_on_the_core(self):
        program = parse_program(SUM8)
        loaded = compile_kernel(program)
        memory = MemorySystem()
        for i in range(8):
            memory.main.store_word(0x2000 + 4 * i, i + 1)
        result = Core(memory).run(loaded, [0x2000])
        assert result.result == 36

    def test_parsed_equals_builder_built(self):
        """The asm frontend and the builder produce equivalent kernels."""
        from repro.program.builder import KernelBuilder
        kb = KernelBuilder("sum8")
        base = kb.param("base")
        n = kb.persistent_reg("n")
        acc = kb.persistent_reg("acc")
        with kb.block("init"):
            kb.emit("movi", dest=n, imm=8)
            kb.emit("movi", dest=acc, imm=0)
        with kb.counted_loop("loop", n):
            value = kb.load_word(base, mem_tag="frame")
            kb.emit("add", acc, value, dest=acc)
            kb.emit("addi", base, dest=base, imm=4)
        kb.set_result(acc)
        built = compile_kernel(kb.finish())
        parsed = compile_kernel(parse_program(SUM8))

        memory = MemorySystem()
        for i in range(8):
            memory.main.store_word(0x2000 + 4 * i, 2 * i)
        core = Core(memory)
        assert core.run(built, [0x2000]).result \
            == core.run(parsed, [0x2000]).result

"""The VLIW integer DCT kernel and its cost-model grounding."""

import numpy as np
import pytest

from repro.codec.costmodel import CycleCostModel
from repro.kernels.dct_kernel import (
    DctKernelTiming,
    build_dct_kernel,
    measure_dct_kernel,
)


class TestDctKernel:
    def test_program_structure(self):
        program = build_dct_kernel()
        program.validate()
        labels = [block.label for block in program.blocks]
        assert "rows_loop" in labels
        assert "cols_loop" in labels

    @pytest.mark.parametrize("seed", [0, 3, 17])
    def test_accuracy_against_float_reference(self, seed):
        timing = measure_dct_kernel(seed)
        # 8.8 fixed point over two passes: a few LSB of error
        assert timing.max_error <= 4.0

    def test_timing_is_deterministic(self):
        assert measure_dct_kernel(5).cycles == measure_dct_kernel(5).cycles

    def test_multiplier_bound_respected(self):
        """1024 multiplies on 2 multipliers bound the schedule below."""
        timing = measure_dct_kernel()
        assert timing.cycles >= 1024 // 2

    def test_grounds_the_cost_model_constant(self):
        """The compiled-C budget (IPC ~1) must exceed the hand-scheduled
        kernel but stay within one order of magnitude: the cost-model
        constant is conservative, not fantastical."""
        timing = measure_dct_kernel()
        budget = CycleCostModel().dct_block
        assert timing.cycles < budget          # scheduled code is faster
        assert budget < 5 * timing.cycles      # ... but not absurdly so

    def test_achieved_ilp_is_vliw_class(self):
        timing = measure_dct_kernel()
        ilp = timing.ops / timing.cycles
        assert ilp > 2.5  # the 4-issue cluster is actually being used

"""Cycle-level core: semantics, timing, control flow, RFU dispatch."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MachineError
from repro.machine import Core, MachineConfig, compile_kernel
from repro.machine.semantics import PURE_OPS, evaluate
from repro.memory import MemorySystem
from repro.program.builder import KernelBuilder
from repro.rfu import RfuUnit, standard_registry
from repro.utils import bitops

words = st.integers(0, 0xFFFFFFFF)


def _run_kernel(build, args, memory=None, rfu=None, config=None):
    kb = KernelBuilder("t")
    build(kb)
    loaded = compile_kernel(kb.finish(), rfu, config)
    core = Core(memory or MemorySystem(), rfu, config)
    return core.run(loaded, args)


class TestPureSemantics:
    @given(words, words)
    def test_add_sub_inverse(self, a, b):
        total = evaluate("add", [a, b], None)
        assert evaluate("sub", [total, b], None) == a

    @given(words, words)
    def test_simd_ops_match_bitops(self, a, b):
        assert evaluate("absd4", [a, b], None) == bitops.absdif_bytes(a, b)
        assert evaluate("avg4", [a, b], None) == bitops.avg_bytes(a, b)
        assert evaluate("sad4", [a, b], None) == bitops.sad_bytes(a, b)
        assert evaluate("add4", [a, b], None) == bitops.add_bytes(a, b)

    @given(words)
    def test_unpack_pack_roundtrip(self, a):
        low = evaluate("unpkl2", [a], None)
        high = evaluate("unpkh2", [a], None)
        assert evaluate("pack4", [low, high], None) == a

    @given(words, st.integers(0, 31))
    def test_shifts(self, a, amount):
        assert evaluate("shri", [a], amount) == a >> amount
        assert evaluate("shli", [a], amount) == (a << amount) & 0xFFFFFFFF
        assert evaluate("sra", [a, amount], None) \
            == (bitops.to_s32(a) >> amount) & 0xFFFFFFFF

    @given(words, words)
    def test_compares_are_boolean(self, a, b):
        for op in ("cmpeq", "cmpne", "cmplt", "cmpltu"):
            assert evaluate(op, [a, b], None) in (0, 1)

    def test_signed_compare(self):
        assert evaluate("cmplt", [0xFFFFFFFF, 0], None) == 1  # -1 < 0
        assert evaluate("cmpltu", [0xFFFFFFFF, 0], None) == 0

    def test_mul_uses_low_16_bits_signed(self):
        assert evaluate("mul", [3, 5], None) == 15
        assert evaluate("mul", [0xFFFF, 2], None) == bitops.to_u32(-2)

    def test_mulh_uses_high_half(self):
        assert evaluate("mulh", [0x00030000, 5], None) == 15

    def test_non_pure_op_raises(self):
        with pytest.raises(MachineError):
            evaluate("ldw", [0], 0)

    def test_every_pure_op_evaluates(self):
        for name, fn in PURE_OPS.items():
            spec_srcs = 2 if name not in ("mov", "movi", "addi", "shli",
                                          "shri", "andi", "cmpgei", "cmpnei",
                                          "unpkl2", "unpkh2") else 1
            args = [7] * spec_srcs
            result = fn(args, 3)
            assert 0 <= result <= 0xFFFFFFFF


class TestExecution:
    def test_result_and_args(self):
        def build(kb):
            x = kb.param("x")
            y = kb.param("y")
            with kb.block("b"):
                total = kb.emit("add", x, y)
            kb.set_result(total)
        result = _run_kernel(build, [20, 22])
        assert result.result == 42

    def test_wrong_arg_count_raises(self):
        def build(kb):
            kb.param("x")
            with kb.block("b"):
                kb.emit("movi", imm=0)
        with pytest.raises(MachineError):
            _run_kernel(build, [1, 2])

    def test_load_store_roundtrip(self):
        def build(kb):
            addr = kb.param("addr")
            value = kb.param("value")
            with kb.block("b"):
                kb.emit("stw", value, addr, imm=0, mem_tag="m")
                loaded = kb.emit("ldw", addr, imm=0, mem_tag="m")
                out = kb.emit("addi", loaded, imm=1)
            kb.set_result(out)
        result = _run_kernel(build, [0x3000, 99])
        assert result.result == 100

    def test_byte_load_store(self):
        def build(kb):
            addr = kb.param("addr")
            value = kb.param("value")
            with kb.block("b"):
                kb.emit("stb", value, addr, imm=2, mem_tag="m")
                loaded = kb.emit("ldb", addr, imm=2, mem_tag="m")
            kb.set_result(loaded)
        result = _run_kernel(build, [0x3000, 0x1FF])
        assert result.result == 0xFF  # truncated to a byte

    def test_loop_iterates(self):
        def build(kb):
            n = kb.persistent_reg("n")
            acc = kb.persistent_reg("acc")
            with kb.block("init"):
                kb.emit("movi", dest=n, imm=10)
                kb.emit("movi", dest=acc, imm=0)
            with kb.counted_loop("loop", n):
                kb.emit("addi", acc, dest=acc, imm=3)
            kb.set_result(acc)
        result = _run_kernel(build, [])
        assert result.result == 30
        assert result.taken_branches == 9

    def test_branch_penalty_counted(self):
        def build(kb):
            n = kb.persistent_reg("n")
            with kb.block("init"):
                kb.emit("movi", dest=n, imm=5)
            with kb.counted_loop("loop", n):
                pass
            kb.set_result(n)
        result = _run_kernel(build, [])
        assert result.branch_stalls == 4 * MachineConfig().taken_branch_penalty

    def test_dcache_miss_stalls_machine(self):
        def build(kb):
            addr = kb.param("addr")
            with kb.block("b"):
                loaded = kb.emit("ldw", addr, imm=0)
            kb.set_result(loaded)
        memory = MemorySystem()
        cold = _run_kernel(build, [0x4000], memory=memory)
        assert cold.dcache_stalls > 0

    def test_warm_run_has_no_dcache_stalls(self):
        def build(kb):
            addr = kb.param("addr")
            with kb.block("b"):
                loaded = kb.emit("ldw", addr, imm=0)
            kb.set_result(loaded)
        kb = KernelBuilder("t")
        build(kb)
        loaded_prog = compile_kernel(kb.finish())
        memory = MemorySystem()
        core = Core(memory)
        core.run(loaded_prog, [0x4000])
        warm = core.run(loaded_prog, [0x4000])
        assert warm.dcache_stalls == 0
        assert warm.icache_stalls == 0

    def test_interlock_stall_on_cross_block_latency(self):
        # a load in block 1 consumed immediately in block 2 must interlock
        def build(kb):
            addr = kb.param("addr")
            loaded_reg = kb.persistent_reg("v")
            with kb.block("first"):
                kb.emit("ldw", addr, imm=0, dest=loaded_reg)
            with kb.block("second"):
                out = kb.emit("addi", loaded_reg, imm=0)
            kb.set_result(out)
        kb = KernelBuilder("t")
        build(kb)
        prog = compile_kernel(kb.finish())
        memory = MemorySystem()
        core = Core(memory)
        core.run(prog, [0x4000])      # warm caches
        warm = core.run(prog, [0x4000])
        assert warm.interlock_stalls > 0

    def test_r0_stays_zero(self):
        from repro.isa.registers import ZERO
        core = Core(MemorySystem())
        core.write_register(ZERO, 123)
        assert core.read_register(ZERO) == 0

    def test_max_cycles_guard(self):
        def build(kb):
            with kb.block("spin"):
                kb.emit("goto", imm=0, label="spin")
        config = MachineConfig(max_cycles=200)
        with pytest.raises(MachineError):
            _run_kernel(build, [], config=config)

    def test_prefetch_op_executes(self):
        def build(kb):
            addr = kb.param("addr")
            with kb.block("b"):
                kb.emit("pft", addr, imm=0)
                out = kb.emit("movi", imm=1)
            kb.set_result(out)
        memory = MemorySystem()
        result = _run_kernel(build, [0x8000], memory=memory)
        assert result.result == 1
        assert memory.prefetch_buffer.stats.issued == 1


class TestRfuIntegration:
    def test_rfu_exec_through_core(self):
        from repro.rfu.custom_ops import A1_HAVG
        def build(kb):
            a = kb.param("a")
            b = kb.param("b")
            with kb.block("x"):
                out = kb.emit("rfuexec", a, b, imm=A1_HAVG)
            kb.set_result(out)
        rfu = RfuUnit(standard_registry())
        result = _run_kernel(build, [0x04040404, 0x02020202], rfu=rfu)
        assert result.result == bitops.avg_bytes(0x04040404, 0x02020202)

    def test_reconfiguration_penalty_costs_cycles(self):
        from repro.rfu.custom_ops import A1_HAVG, DIAG4
        def build(kb):
            a = kb.param("a")
            with kb.block("x"):
                kb.emit("rfuinit", imm=A1_HAVG)
                kb.emit("rfuinit", a, imm=DIAG4)
                out = kb.emit("movi", imm=1)
            kb.set_result(out)
        free = _run_kernel(build, [0],
                           rfu=RfuUnit(standard_registry()))
        costly = _run_kernel(build, [0],
                             rfu=RfuUnit(standard_registry(),
                                         reconfiguration_penalty=50,
                                         active_contexts=1))
        assert costly.cycles > free.cycles

"""Motion estimation: search strategies, half-sample refinement, tracing."""

import numpy as np
import pytest

from repro.codec.motion import (
    FullSearch,
    MotionEstimator,
    ThreeStepSearch,
)
from repro.codec.tracer import MeTrace
from repro.errors import CodecError
from repro.rfu.loop_model import InterpMode


def _planted_pair(dx, dy, size=64, seed=3, smooth=False):
    """(current, reference): current block at (24,24) == reference block at
    (24+dx, 24+dy) exactly.

    ``smooth`` uses textured-but-smooth content whose SAD surface has a
    gradient toward the planted offset (what logarithmic searches rely on);
    the default is random content (adversarial for everything but full
    search)."""
    rng = np.random.default_rng(seed)
    if smooth:
        yy, xx = np.mgrid[0:size, 0:size].astype(float)
        base = 128 + 60 * np.sin(xx / 5.0) * np.cos(yy / 6.0)
        reference = np.clip(base, 0, 255).astype(np.uint8)
        current = np.clip(base + rng.normal(0, 1, base.shape), 0, 255) \
            .astype(np.uint8)
    else:
        reference = rng.integers(0, 256, (size, size), dtype=np.uint8)
        current = rng.integers(0, 256, (size, size), dtype=np.uint8)
    current[24:40, 24:40] = reference[24 + dy:40 + dy, 24 + dx:40 + dx]
    return current, reference


class TestFullSearch:
    def test_finds_planted_integer_motion(self):
        current, reference = _planted_pair(3, -2)
        estimator = MotionEstimator(FullSearch(4), refine_halfpel=False)
        mv = estimator.estimate(current, reference, 24, 24, 1)
        assert (mv.dx, mv.dy) == (6, -4)  # half-sample units
        assert mv.sad == 0

    def test_zero_motion_for_identical_frames(self):
        current, reference = _planted_pair(0, 0)
        estimator = MotionEstimator(FullSearch(2), refine_halfpel=False)
        mv = estimator.estimate(reference, reference, 24, 24, 1)
        assert (mv.dx, mv.dy) == (0, 0)

    def test_invalid_range_rejected(self):
        with pytest.raises(CodecError):
            FullSearch(0)


class TestThreeStepSearch:
    def test_finds_planted_motion_on_smooth_content(self):
        # (4, -2) is reachable by steps 4 then 2; smooth content gives the
        # logarithmic search the SAD gradient it needs
        current, reference = _planted_pair(4, -2, smooth=True)
        estimator = MotionEstimator(ThreeStepSearch(4), refine_halfpel=False)
        mv = estimator.estimate(current, reference, 24, 24, 1)
        assert (mv.dx, mv.dy) == (8, -4)
        assert mv.sad == 0

    def test_evaluates_fewer_candidates_than_full_search(self):
        current, reference = _planted_pair(1, 1)
        full_trace, tss_trace = MeTrace(), MeTrace()
        MotionEstimator(FullSearch(4), refine_halfpel=False).estimate(
            current, reference, 24, 24, 1, full_trace)
        MotionEstimator(ThreeStepSearch(4), refine_halfpel=False).estimate(
            current, reference, 24, 24, 1, tss_trace)
        assert len(tss_trace) < len(full_trace)

    def test_invalid_step_rejected(self):
        with pytest.raises(CodecError):
            ThreeStepSearch(0)


class TestHalfpelRefinement:
    def test_finds_planted_halfpel_motion(self):
        rng = np.random.default_rng(5)
        reference = rng.integers(0, 256, (64, 64), dtype=np.uint8)
        current = reference.copy()
        # plant a horizontal half-sample shift at the tested macroblock
        region = reference[24:40, 24:41].astype(int)
        current[24:40, 24:40] = ((region[:, :-1] + region[:, 1:] + 1) >> 1) \
            .astype(np.uint8)
        estimator = MotionEstimator(FullSearch(2), refine_halfpel=True)
        mv = estimator.estimate(current, reference, 24, 24, 1)
        assert (mv.dx, mv.dy) == (1, 0)
        assert mv.sad == 0

    def test_refinement_never_worse_than_integer(self):
        current, reference = _planted_pair(2, 1)
        integer = MotionEstimator(FullSearch(3), refine_halfpel=False) \
            .estimate(current, reference, 24, 24, 1)
        refined = MotionEstimator(FullSearch(3), refine_halfpel=True) \
            .estimate(current, reference, 24, 24, 1)
        assert refined.sad <= integer.sad


class TestTraceRecording:
    def test_trace_counts_and_modes(self):
        current, reference = _planted_pair(1, 1)
        trace = MeTrace()
        MotionEstimator(ThreeStepSearch(2), refine_halfpel=True).estimate(
            current, reference, 24, 24, frame_index=1, trace=trace)
        histogram = trace.mode_histogram()
        assert histogram[InterpMode.HV] == 4  # the 4 diagonal refinements
        assert histogram[InterpMode.H] == 2
        assert histogram[InterpMode.V] == 2
        assert sum(histogram.values()) == len(trace)

    def test_exactly_one_chosen_invocation(self):
        current, reference = _planted_pair(2, 0)
        trace = MeTrace()
        MotionEstimator(ThreeStepSearch(2)).estimate(
            current, reference, 24, 24, 1, trace)
        chosen = [inv for inv in trace if inv.chosen]
        assert len(chosen) == 1

    def test_refinement_flag_set(self):
        current, reference = _planted_pair(0, 0)
        trace = MeTrace()
        MotionEstimator(ThreeStepSearch(2)).estimate(
            current, reference, 24, 24, 1, trace)
        assert any(inv.is_refinement for inv in trace)
        assert any(not inv.is_refinement for inv in trace)

    def test_candidates_respect_plane_bounds(self):
        current, reference = _planted_pair(0, 0)
        trace = MeTrace()
        # corner macroblock: clamping must keep every candidate in bounds
        MotionEstimator(ThreeStepSearch(4)).estimate(
            current, reference, 0, 0, 1, trace)
        for inv in trace:
            assert inv.pred_x >= 0 and inv.pred_y >= 0
            assert inv.pred_x + 17 <= 64 or inv.mode in (InterpMode.FULL,
                                                         InterpMode.V)
            assert inv.pred_y + 17 <= 64 or inv.mode in (InterpMode.FULL,
                                                         InterpMode.H)


class TestTraceStatistics:
    def test_diagonal_fraction(self):
        current, reference = _planted_pair(1, 1)
        trace = MeTrace()
        MotionEstimator(ThreeStepSearch(2)).estimate(
            current, reference, 24, 24, 1, trace)
        fraction = trace.diagonal_fraction()
        assert 0 < fraction < 0.5

    def test_alignment_histogram_sums_to_calls(self):
        current, reference = _planted_pair(1, 0)
        trace = MeTrace()
        MotionEstimator(ThreeStepSearch(2)).estimate(
            current, reference, 24, 24, 1, trace)
        histogram = trace.alignment_histogram(stride=64)
        assert sum(histogram.values()) == len(trace)

    def test_empty_trace_fraction_is_zero(self):
        assert MeTrace().diagonal_fraction() == 0.0

"""End-to-end integration: the paper's narrative on one medium workload,
plus cross-layer consistency between the trace, the memory layout and the
functional RFU kernel."""

import numpy as np
import pytest

from repro.codec.frame import FrameLayout
from repro.core import Exploration, ExplorationConfig, all_scenarios
from repro.memory import MemorySystem
from repro.rfu.loop_model import Bandwidth, LoopKernelModel, LoopKernelParams


@pytest.fixture(scope="module")
def medium_run():
    exploration = Exploration(ExplorationConfig(frames=6))
    result = exploration.run(all_scenarios())
    return exploration, result


class TestPaperNarrative:
    """The abstract's claims, asserted in one place."""

    def test_initial_profile_near_25_percent(self, medium_run):
        _, result = medium_run
        assert 0.15 < result.me_fraction("orig") < 0.35

    def test_instruction_level_is_marginal(self, medium_run):
        _, result = medium_run
        for name in ("a1", "a2", "a3"):
            assert 1.0 < result.speedup(name) < 2.0

    def test_loop_level_reaches_3_to_8x(self, medium_run):
        _, result = medium_run
        assert 2.5 < result.speedup("loop_1x32_b1") < 5.0
        assert result.speedup("loop_2x64_b1") < 9.0

    def test_headline_8x_with_two_line_buffers(self, medium_run):
        _, result = medium_run
        assert 6.0 < result.speedup("loop_1x32+2lb_b1") < 12.0

    def test_technology_scaling_graceful(self, medium_run):
        _, result = medium_run
        for bandwidth in ("1x32", "1x64", "2x64"):
            fast = result.speedup(f"loop_{bandwidth}_b1")
            slow = result.speedup(f"loop_{bandwidth}_b5")
            assert 0.6 < slow / fast < 1.0

    def test_io_is_the_limiting_factor(self, medium_run):
        """Once parallelism is exposed, bandwidth sets the speedup and
        stalls grow with it (the paper's central conclusion)."""
        _, result = medium_run
        speedups = [result.speedup(f"loop_{bw}_b1")
                    for bw in ("1x32", "1x64", "2x64")]
        stall_shares = [result.result(f"loop_{bw}_b1").stall_fraction()
                        for bw in ("1x32", "1x64", "2x64")]
        assert speedups == sorted(speedups)
        assert stall_shares == sorted(stall_shares)

    def test_application_share_collapses(self, medium_run):
        _, result = medium_run
        assert result.me_fraction("loop_1x32+2lb_b1") \
            < result.me_fraction("orig") / 3


class TestCrossLayerConsistency:
    """The trace's SAD values must be reproducible by the functional RFU
    kernel reading the simulated memory at the replayer's addresses."""

    def test_loop_kernel_sad_matches_trace(self, medium_run):
        exploration, _ = medium_run
        report = exploration.encoder_report
        layout = FrameLayout()
        memory = MemorySystem()
        bases = {}
        frames_by_index = {}
        for frame_index in report.trace.frames():
            recon = report.reconstructed[frame_index - 1]
            frames_by_index[frame_index] = recon
            bases[frame_index] = layout.store_plane(
                memory.main, f"recon{frame_index - 1}", recon.y)
        # the current frames are the encoder's original inputs; regenerate
        from repro.codec.sequence import SyntheticSequenceConfig, \
            synthetic_sequence
        originals = synthetic_sequence(SyntheticSequenceConfig(
            frames=exploration.config.frames))
        orig_bases = {
            index: layout.store_plane(memory.main, f"orig{index}",
                                      originals[index].y)
            for index in report.trace.frames()}

        model = LoopKernelModel(LoopKernelParams(Bandwidth.B1X32),
                                memory=memory)
        stride = layout.stride
        checked = 0
        for invocation in list(report.trace)[:4000:97]:
            pred_base = bases[invocation.frame] \
                + invocation.pred_y * stride + invocation.pred_x
            ref_base = orig_bases[invocation.frame] \
                + invocation.mb_y * stride + invocation.mb_x
            sad = model.compute_sad(ref_base, pred_base, stride,
                                    invocation.mode)
            assert sad == invocation.sad, invocation
            checked += 1
        assert checked > 20

    def test_alignment_distribution_matches_plane_math(self, medium_run):
        exploration, _ = medium_run
        trace = exploration.encoder_report.trace
        layout = FrameLayout()
        base = layout.allocate("probe")
        assert base % 4 == 0  # 32-byte alignment implies word alignment
        histogram = trace.alignment_histogram(layout.stride)
        assert sum(histogram.values()) == len(trace)
